//! The paper's closing case study (§6): join ASdb's classifications with a
//! simulated LZR-style Telnet scan and ask which industries expose the
//! legacy protocol — "alarmingly … critical-infrastructure organizations
//! like electric utility companies, government organizations, and
//! financial institutions are more likely to host Telnet than technology
//! companies."
//!
//! Crucially, the join uses *ASdb's own labels*, not ground truth — this is
//! the kind of analysis the dataset exists to enable.
//!
//! ```sh
//! cargo run --release --example telnet_exposure
//! ```

use asdb_core::AsdbSystem;
use asdb_model::WorldSeed;
use asdb_taxonomy::Layer1;
use asdb_worldgen::scan::scan_world;
use asdb_worldgen::{World, WorldConfig};
use std::collections::HashMap;

fn main() {
    let seed = WorldSeed::DEFAULT;
    let world = World::generate(WorldConfig::standard(seed));
    let system = AsdbSystem::build(&world, seed.derive("telnet"));
    let scan = scan_world(&world, seed.derive("scan"));
    println!(
        "Joining {} scan observations with ASdb classifications...\n",
        scan.len()
    );

    let mut per_industry: HashMap<Layer1, (usize, usize)> = HashMap::new();
    for obs in &scan {
        let record = world.as_record(obs.asn).expect("scanned AS exists");
        let c = system.classify(&record.parsed);
        // Join on ASdb's label (first layer-1), as a downstream user would.
        let Some(l1) = c.categories.layer1s().into_iter().next() else {
            continue;
        };
        let e = per_industry.entry(l1).or_insert((0, 0));
        e.0 += usize::from(obs.telnet);
        e.1 += 1;
    }

    let mut rows: Vec<(Layer1, f64, usize)> = per_industry
        .into_iter()
        .filter(|(_, (_, n))| *n >= 20)
        .map(|(l1, (hits, n))| (l1, hits as f64 / n as f64, n))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("rates are finite"));

    println!(
        "{:<50} {:>10} {:>8}",
        "Industry (per ASdb)", "Telnet", "ASes"
    );
    println!("{}", "-".repeat(72));
    for (l1, rate, n) in &rows {
        println!("{:<50} {:>9.1}% {:>8}", l1.title(), rate * 100.0, n);
    }

    let tech = rows.iter().find(|(l1, _, _)| l1.is_tech());
    let top = rows.first();
    if let (Some((top_l1, top_rate, _)), Some((_, tech_rate, _))) = (top, tech) {
        println!(
            "\n{} exposes Telnet {:.1}x more often than technology companies.",
            top_l1.title(),
            top_rate / tech_rate.max(0.001)
        );
    }
}
