//! Explore the WHOIS substrate: render per-registry dumps, re-parse them,
//! run the Appendix A extraction, and show the §5.1 domain-selection
//! decision for a few ASes — the "plumbing" half of ASdb.
//!
//! ```sh
//! cargo run --release --example whois_explorer
//! ```

use asdb_model::{Rir, WorldSeed};
use asdb_rir::dump::{read_dump, write_dump};
use asdb_rir::extract;
use asdb_worldgen::{World, WorldConfig};

fn main() {
    let seed = WorldSeed::DEFAULT;
    let world = World::generate(WorldConfig::small(seed));

    // One example record per registry, rendered in that registry's dialect.
    println!("=== Per-registry WHOIS dialects ===\n");
    for rir in Rir::ALL {
        let Some(rec) = world.ases.iter().find(|r| r.rir == rir) else {
            continue;
        };
        let rendered = asdb_rir::dialect::serialize(rir, &rec.registration);
        println!("--- {} ({}) ---", rir.name().to_uppercase(), rec.asn);
        for obj in &rendered.objects {
            print!("{obj}");
        }
        println!();
    }

    // Bulk dump round trip.
    let sample: Vec<_> = world
        .ases
        .iter()
        .take(200)
        .map(|r| asdb_rir::dialect::serialize(r.rir, &r.registration))
        .collect();
    let dump = write_dump(&sample);
    let back = read_dump(&dump);
    println!(
        "=== Bulk dump round trip: {} records -> {} KiB of text -> {} records ===\n",
        sample.len(),
        dump.len() / 1024,
        back.len()
    );

    // Appendix A extraction + candidate domains.
    println!("=== Appendix A extraction (5 ASes) ===\n");
    for rec in back.iter().take(5) {
        let parsed = extract(rec);
        println!("{} @ {}", parsed.asn, parsed.rir);
        println!(
            "  name      : {} (from {:?})",
            parsed.name, parsed.name_source
        );
        println!("  address   : {}", parsed.address.as_deref().unwrap_or("-"));
        println!("  phone     : {}", parsed.phone.as_deref().unwrap_or("-"));
        println!(
            "  country   : {}",
            parsed
                .country
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into())
        );
        println!(
            "  domains   : {}",
            parsed
                .candidate_domains()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!();
    }

    // Field-availability census vs the paper's §3.1 numbers.
    let n = world.ases.len() as f64;
    let pct = |count: usize| format!("{:.1}%", 100.0 * count as f64 / n);
    let names = world
        .ases
        .iter()
        .filter(|r| r.registration.org_name.is_some())
        .count();
    let addrs = world
        .ases
        .iter()
        .filter(|r| r.registration.address.is_some())
        .count();
    let phones = world
        .ases
        .iter()
        .filter(|r| r.registration.phone.is_some())
        .count();
    let domains = world
        .ases
        .iter()
        .filter(|r| r.parsed.has_domain_signal())
        .count();
    println!("=== Field availability (paper: 80.19% org name, 61.7% address, 45% phone, 87.1% domain) ===");
    println!("  org name      : {}", pct(names));
    println!("  address       : {}", pct(addrs));
    println!("  phone         : {}", pct(phones));
    println!("  domain signal : {}", pct(domains));
}
