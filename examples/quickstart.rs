//! Quickstart: build a world, assemble ASdb, classify a handful of ASes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asdb_core::AsdbSystem;
use asdb_model::WorldSeed;
use asdb_worldgen::{World, WorldConfig};

fn main() {
    let seed = WorldSeed::DEFAULT;
    println!("Generating a synthetic AS universe (seed {seed})...");
    let world = World::generate(WorldConfig::small(seed));
    println!(
        "  {} organizations, {} ASes, {} live websites",
        world.orgs.len(),
        world.ases.len(),
        world.web.len()
    );

    println!("Assembling ASdb (5 data sources + 2 ML classifiers)...");
    let system = AsdbSystem::build(&world, seed.derive("quickstart"));

    println!("Classifying 10 random ASes:\n");
    for asn in world.sample_asns(10, "quickstart") {
        let record = world.as_record(asn).expect("sampled AS exists");
        let result = system.classify(&record.parsed);
        let truth = world.org_of(asn).expect("owner exists").truth();
        println!("{asn}  [{}]", result.stage.label());
        println!("  WHOIS name : {}", record.parsed.name);
        println!(
            "  domain     : {}",
            result
                .chosen_domain
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "-".into())
        );
        println!("  ASdb says  : {}", result.categories);
        println!("  truth      : {truth}");
        println!(
            "  sources    : {}",
            result
                .sources
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!();
    }
}
