//! Classify the entire AS universe in parallel, dump the released dataset,
//! and print the coverage/accuracy summary — what a production ASdb run
//! looks like end to end.
//!
//! ```sh
//! cargo run --release --example classify_universe
//! ```

use asdb_core::batch::classify_batch_cached;
use asdb_core::dataset;
use asdb_core::AsdbSystem;
use asdb_model::WorldSeed;
use asdb_rir::ParsedWhois;
use asdb_worldgen::{World, WorldConfig};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let seed = WorldSeed::DEFAULT;
    let world = World::generate(WorldConfig::standard(seed));
    let system = AsdbSystem::build(&world, seed.derive("universe"));

    let records: Vec<ParsedWhois> = world.ases.iter().map(|r| r.parsed.clone()).collect();
    println!("Classifying {} ASes on 6 threads...", records.len());
    let start = Instant::now();
    let results = classify_batch_cached(&system, &records, 6);
    let elapsed = start.elapsed();
    println!(
        "  done in {:.1}s ({:.0} ASes/s), {} organizations cached",
        elapsed.as_secs_f64(),
        records.len() as f64 / elapsed.as_secs_f64(),
        system.cache().len(),
    );

    // Coverage and stage breakdown.
    let mut stages: HashMap<&'static str, usize> = HashMap::new();
    let mut classified = 0usize;
    let mut l1_correct = 0usize;
    for (rec, c) in world.ases.iter().zip(&results) {
        *stages.entry(c.stage.label()).or_insert(0) += 1;
        if c.is_classified() {
            classified += 1;
            let truth = world.org(rec.org).expect("owner exists").truth();
            l1_correct += usize::from(c.categories.overlaps_l1(&truth));
        }
    }
    println!("\nStage breakdown:");
    let mut rows: Vec<_> = stages.into_iter().collect();
    rows.sort();
    for (stage, n) in rows {
        println!(
            "  {stage:<35} {n:>6} ({:.1}%)",
            100.0 * n as f64 / results.len() as f64
        );
    }
    println!(
        "\nCoverage: {:.1}%   Layer-1 accuracy (vs ground truth): {:.1}%",
        100.0 * classified as f64 / results.len() as f64,
        100.0 * l1_correct as f64 / classified.max(1) as f64,
    );

    // Dump the dataset, paper-release style.
    let dump = dataset::write_jsonl(&results);
    let path = std::env::temp_dir().join("asdb_dataset.jsonl");
    std::fs::write(&path, &dump).expect("write dataset");
    println!(
        "\nDataset written to {} ({} lines, {} KiB)",
        path.display(),
        results.len(),
        dump.len() / 1024
    );
    let (parsed, skipped) = dataset::read_jsonl(&dump);
    assert_eq!(parsed.len(), results.len());
    assert_eq!(skipped, 0);
    println!("Round-trip parse OK.");
}
