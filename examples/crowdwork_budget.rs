//! Reproduce the Appendix B crowdwork economics: the reward sweep, the
//! consensus sweep, the wage analysis, and the two budget estimates that
//! led the authors to drop crowdwork from ASdb.
//!
//! ```sh
//! cargo run --release --example crowdwork_budget
//! ```

use asdb_crowd::cost::CostModel;
use asdb_eval::crowd_eval::{consensus_sweep, reward_sweep, wage_tasks};
use asdb_eval::ExperimentContext;
use asdb_model::WorldSeed;
use asdb_taxonomy::Layer1;
use asdb_worldgen::WorldConfig;

fn main() {
    let ctx = ExperimentContext::build(WorldConfig::small(WorldSeed::DEFAULT));
    let tech = wage_tasks(&ctx.world, &ctx.gold, Layer1::ComputerAndIT, 20);
    let finance = wage_tasks(&ctx.world, &ctx.uniform, Layer1::Finance, 20);

    println!("Reward sweep (Figures 5a/5b/6): 3 workers, 2/3 consensus\n");
    println!(
        "{:<10} {:>6} {:>9} {:>10} {:>10} {:>12}",
        "tasks", "reward", "coverage", "loose", "strict", "median wage"
    );
    for (label, tasks) in [("tech", &tech), ("finance", &finance)] {
        for p in reward_sweep(tasks, &format!("budget-{label}"), ctx.seed) {
            println!(
                "{:<10} {:>5}c {:>8.0}% {:>9.0}% {:>9.0}% {:>9.2} $/h",
                label,
                p.reward_cents,
                p.coverage * 100.0,
                p.loose_accuracy * 100.0,
                p.strict_accuracy * 100.0,
                p.median_wage
            );
        }
    }

    println!("\nConsensus sweep (Figure 7): 30c fixed reward\n");
    for p in consensus_sweep(&tech, "budget-consensus", ctx.seed) {
        println!(
            "{}/{}: coverage {:.0}%, loose {:.0}%, strict {:.0}%",
            p.rule.k,
            p.rule.n,
            p.coverage * 100.0,
            p.loose_accuracy * 100.0,
            p.strict_accuracy * 100.0
        );
    }

    println!("\nScaling the two candidate uses to all registered ASes:\n");
    let ml = CostModel::ml_failure_review();
    let dis = CostModel::disagreement_resolution();
    println!(
        "  Catching ML false negatives : {:>6} ASes x {} workers x {}c = ${:>8.0}",
        ml.tasks(),
        ml.workers_per_task,
        ml.reward_cents,
        ml.total_dollars()
    );
    println!(
        "  Resolving source conflicts  : {:>6} ASes x {} workers x {}c = ${:>8.0}",
        dis.tasks(),
        dis.workers_per_task,
        dis.reward_cents,
        dis.total_dollars()
    );
    println!(
        "\nThe paper's verdict: \"the accuracy gain from crowdwork is not \
         worth the cost, and we omit crowdwork from our final system design.\""
    );
}
