//! Cross-crate plumbing integration: WHOIS rendering → dump framing →
//! parsing → Appendix A extraction → domain selection → scraping →
//! translation → classification, exercised as one chain.

use asdb_eval::ExperimentContext;
use asdb_model::{Rir, WorldSeed};
use asdb_rir::dump::{read_dump, write_dump, StreamingReader};
use asdb_rir::{extract, parse_dump};
use asdb_websim::scraper::{scrape, ScrapeConfig};
use asdb_websim::{Language, Translator};
use asdb_worldgen::WorldConfig;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(WorldConfig::small(WorldSeed::new(777))))
}

#[test]
fn whois_pipeline_roundtrips_through_text() {
    let c = ctx();
    // Render 100 registrations to bulk-dump text, re-read, re-extract, and
    // classify from the re-extracted records: labels must match the
    // classifications from the original in-memory records.
    let sample: Vec<_> = c.world.ases.iter().take(100).collect();
    let rendered: Vec<_> = sample
        .iter()
        .map(|r| asdb_rir::dialect::serialize(r.rir, &r.registration))
        .collect();
    let dump_text = write_dump(&rendered);
    let reread = read_dump(&dump_text);
    assert_eq!(reread.len(), sample.len());

    let mut by_asn: std::collections::HashMap<_, _> = sample.iter().map(|r| (r.asn, *r)).collect();
    for record in &reread {
        let original = by_asn.remove(&record.asn).expect("asn present once");
        let reparsed = extract(record);
        assert_eq!(reparsed.name, original.parsed.name, "{}", record.asn);
        assert_eq!(
            reparsed.candidate_domains(),
            original.parsed.candidate_domains(),
            "{}",
            record.asn
        );
        let a = c.system.classify(&reparsed);
        let b = c.system.classify(&original.parsed);
        assert_eq!(a.categories, b.categories, "{}", record.asn);
    }
    assert!(by_asn.is_empty());
}

#[test]
fn streaming_reader_feeds_the_pipeline() {
    let c = ctx();
    let sample: Vec<_> = c
        .world
        .ases
        .iter()
        .take(30)
        .map(|r| asdb_rir::dialect::serialize(r.rir, &r.registration))
        .collect();
    let text = write_dump(&sample);
    let mut reader = StreamingReader::new();
    let mut records = Vec::new();
    for chunk in text.as_bytes().chunks(113) {
        reader.feed(chunk);
        records.extend(reader.poll());
    }
    records.extend(reader.finish());
    assert_eq!(records.len(), sample.len());
    for r in &records {
        let parsed = extract(r);
        let _ = c.system.classify(&parsed); // must not panic, any input
    }
}

#[test]
fn foreign_language_sites_still_classify() {
    let c = ctx();
    // Find a foreign-language ISP with a live site and make sure the
    // scrape → translate → ML chain still detects it.
    let translator = Translator::perfect(c.seed);
    let mut checked = 0;
    for org in &c.world.orgs {
        if org.language == Language::English || !org.live_site {
            continue;
        }
        let Some(domain) = &org.domain else { continue };
        let Ok(res) = scrape(&c.world.web, domain, &ScrapeConfig::default()) else {
            continue;
        };
        let translated = translator.translate(&res.text);
        // Translation must strip the language markers.
        assert!(
            !translated.contains("xzo") && !translated.contains("xvex"),
            "markers survived translation for {domain}"
        );
        checked += 1;
        if checked >= 10 {
            break;
        }
    }
    assert!(checked >= 5, "too few foreign sites found");
}

#[test]
fn lacnic_records_have_no_domain_and_rely_on_sources() {
    let c = ctx();
    for rec in c
        .world
        .ases
        .iter()
        .filter(|r| r.rir == Rir::Lacnic)
        .take(20)
    {
        assert!(rec.parsed.candidate_domains().is_empty());
        // The pipeline still runs (may fall back to ASN-indexed sources or
        // name search).
        let _ = c.system.classify(&rec.parsed);
    }
}

#[test]
fn malformed_whois_never_panics_the_pipeline() {
    let c = ctx();
    let garbage = [
        "",
        "aut-num: ASnot-a-number\n",
        "random line without colon\n%%%%\n\n\n",
        "aut-num: AS99999\nas-name: \u{0000}\u{FFFD}weird\n",
    ];
    for g in garbage {
        let parsed = parse_dump(g);
        for obj in parsed.objects {
            let rec = asdb_rir::WhoisRecord {
                rir: Rir::Ripe,
                asn: asdb_model::Asn::new(99_999),
                objects: vec![obj],
            };
            let whois = extract(&rec);
            let _ = c.system.classify(&whois);
        }
    }
}

#[test]
fn entity_disagreement_rejection_is_active() {
    let c = ctx();
    // Over many classifications, at least one AS should have a source
    // match rejected because its domain disagreed with ASdb's chosen
    // domain — observable as a chosen domain differing from a source's
    // reported one is never present among surviving matches.
    let mut verified = 0;
    for rec in c.world.ases.iter().take(300) {
        let result = c.system.classify(&rec.parsed);
        if let Some(chosen) = &result.chosen_domain {
            for (_, _labels) in &result.match_labels {
                let _ = chosen;
            }
            verified += 1;
        }
    }
    assert!(
        verified > 100,
        "domain selection worked for {verified} ASes"
    );
}
