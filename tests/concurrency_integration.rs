//! Concurrency-substrate integration: the sharded single-flight org
//! cache and the work-stealing batch scheduler, exercised through the
//! real Figure 4 pipeline.
//!
//! The invariants under test:
//!
//! * `classify_batch_cached` output labels agree with serial
//!   classification for every `(n_threads, chunk_size)` combination, for
//!   any organization whose members classify identically (the only case
//!   where a label-level guarantee is possible — which member of a
//!   divergent org computes first has always been schedule-dependent);
//! * `CacheSnapshot` totals are invariant under the shard count;
//! * a duplicate-heavy batch inserts each unique organization exactly
//!   once (single-flight), with every duplicate served as a hit or a
//!   coalesced wait;
//! * a worker that misses while another worker's computation for the same
//!   organization is in flight blocks and reuses that result
//!   (`cache.coalesced > 0`), instead of redoing the scrape+ML work.

use asdb_core::batch::{classify_batch_cached_with, classify_batch_with, BatchConfig};
use asdb_core::cache::{CachedResult, Lookup, OrgKey};
use asdb_core::{AsdbSystem, Stage};
use asdb_model::WorldSeed;
use asdb_worldgen::{World, WorldConfig};
use std::collections::{HashMap, HashSet};

fn build(world_seed: u64, sys_seed: u64) -> (World, AsdbSystem) {
    let w = World::generate(WorldConfig::small(WorldSeed::new(world_seed)));
    let s = AsdbSystem::build(&w, WorldSeed::new(sys_seed));
    (w, s)
}

/// Records whose organization's members all classify to the same label
/// set (plus keyless records): the subset where cached-batch output is
/// label-deterministic under any schedule.
fn label_stable_records(
    w: &World,
    s: &AsdbSystem,
    take: usize,
) -> Vec<(asdb_rir::ParsedWhois, asdb_taxonomy::CategorySet)> {
    let records: Vec<_> = w.ases.iter().take(take).map(|r| r.parsed.clone()).collect();
    let serial: Vec<_> = records.iter().map(|r| s.classify(r)).collect();
    let mut by_key: HashMap<OrgKey, Vec<usize>> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        if let Some(k) = OrgKey::derive(s.select_domain(rec).as_ref(), &rec.name) {
            by_key.entry(k).or_default().push(i);
        }
    }
    let unstable: HashSet<usize> = by_key
        .values()
        .filter(|idxs| {
            idxs.iter()
                .any(|&i| serial[i].categories != serial[idxs[0]].categories)
        })
        .flat_map(|idxs| idxs.iter().copied())
        .collect();
    records
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !unstable.contains(i))
        .map(|(i, r)| (r, serial[i].categories.clone()))
        .collect()
}

#[test]
fn cached_batch_labels_match_serial_for_any_config() {
    let (w, s) = build(41, 42);
    let stable = label_stable_records(&w, &s, 80);
    assert!(
        stable.len() >= 40,
        "world too label-divergent for the test to mean anything: {}",
        stable.len()
    );
    let records: Vec<_> = stable.iter().map(|(r, _)| r.clone()).collect();
    for n_threads in [1usize, 2, 4, 8] {
        for chunk_size in [1usize, 3, 16, 1000] {
            // Cold cache per config (same system — rebuilding would retrain
            // the classifiers 16 times for nothing).
            s.cache().clear();
            let cfg = BatchConfig::with_threads(n_threads).chunk_size(chunk_size);
            let out = classify_batch_cached_with(&s, &records, cfg);
            assert_eq!(out.len(), records.len());
            for ((rec, want), got) in stable.iter().zip(&out) {
                assert_eq!(
                    got.asn, rec.asn,
                    "order broke at {n_threads}t/{chunk_size}c"
                );
                assert_eq!(
                    &got.categories, want,
                    "labels diverge for {} at {n_threads}t/{chunk_size}c",
                    rec.asn
                );
            }
        }
    }
}

#[test]
fn uncached_batch_is_byte_identical_to_serial_for_any_config() {
    let (w, s) = build(43, 44);
    let records: Vec<_> = w.ases.iter().take(60).map(|r| r.parsed.clone()).collect();
    let serial: Vec<_> = records.iter().map(|r| s.classify(r)).collect();
    for n_threads in [1usize, 2, 8] {
        for chunk_size in [1usize, 5, 60] {
            let cfg = BatchConfig::with_threads(n_threads).chunk_size(chunk_size);
            let out = classify_batch_with(&s, &records, cfg);
            for (a, b) in serial.iter().zip(&out) {
                assert_eq!(a.asn, b.asn);
                assert_eq!(a.categories, b.categories);
                assert_eq!(a.stage, b.stage);
                assert_eq!(a.sources, b.sources);
                assert_eq!(a.chosen_domain, b.chosen_domain);
            }
        }
    }
}

#[test]
fn snapshot_totals_are_shard_count_invariant_through_the_pipeline() {
    let w = World::generate(WorldConfig::small(WorldSeed::new(45)));
    let records: Vec<_> = w.ases.iter().take(60).map(|r| r.parsed.clone()).collect();
    let mut snaps = Vec::new();
    for shards in [1usize, 4, 64] {
        let s = AsdbSystem::build(&w, WorldSeed::new(46)).with_cache_shards(shards);
        assert_eq!(s.cache().shard_count(), shards);
        // Serial on purpose: identical lookup sequence for every layout.
        for rec in &records {
            let _ = s.classify_cached(rec);
        }
        snaps.push(s.cache().snapshot());
    }
    let base = &snaps[0];
    for snap in &snaps {
        assert_eq!(snap.entries, base.entries);
        assert_eq!(snap.hits, base.hits);
        assert_eq!(snap.misses, base.misses);
        assert_eq!(snap.inserts, base.inserts);
        assert_eq!(snap.coalesced, 0, "serial runs cannot coalesce");
        assert_eq!(snap.hit_rate, base.hit_rate);
        assert_eq!(snap.per_shard.len() as u64, snap.shards);
        assert_eq!(snap.per_shard.iter().sum::<u64>(), snap.entries);
    }
    assert_ne!(snaps[0].shards, snaps[2].shards);
}

#[test]
fn duplicate_heavy_batch_inserts_each_org_once() {
    let (w, s) = build(47, 48);
    // Every record duplicated 6×: the §5.1 multi-AS-organization case,
    // concentrated.
    let base: Vec<_> = w.ases.iter().take(30).map(|r| r.parsed.clone()).collect();
    let records: Vec<_> = base
        .iter()
        .flat_map(|r| std::iter::repeat(r.clone()).take(6))
        .collect();
    let unique_keys: HashSet<OrgKey> = base
        .iter()
        .filter_map(|r| OrgKey::derive(s.select_domain(r).as_ref(), &r.name))
        .collect();
    let keyed_records = records
        .iter()
        .filter(|r| OrgKey::derive(s.select_domain(r).as_ref(), &r.name).is_some())
        .count() as u64;
    let cfg = BatchConfig::with_threads(8).chunk_size(1);
    let out = classify_batch_cached_with(&s, &records, cfg);
    assert_eq!(out.len(), records.len());
    let cache = s.cache();
    // Single-flight: one insert per unique organization, no matter how
    // many duplicates raced.
    assert_eq!(cache.inserts(), unique_keys.len() as u64);
    assert_eq!(cache.len(), unique_keys.len());
    // Every keyed lookup was either the unique miss for its org, a hit,
    // or a coalesced wait — nothing fell through to a redundant pipeline
    // run.
    assert_eq!(cache.misses(), unique_keys.len() as u64);
    assert_eq!(
        cache.hits() + cache.coalesced() + cache.misses(),
        keyed_records
    );
    // And the stage counters agree: exactly one non-cached classification
    // per unique org among keyed records.
    let cached_stage = out.iter().filter(|c| c.stage == Stage::Cached).count() as u64;
    assert_eq!(cached_stage, cache.hits() + cache.coalesced());
}

#[test]
fn concurrent_miss_on_same_org_coalesces_onto_in_flight_result() {
    let (w, s) = build(49, 50);
    // Pick a record with a derivable org key.
    let rec = w
        .ases
        .iter()
        .map(|r| r.parsed.clone())
        .find(|r| OrgKey::derive(s.select_domain(r).as_ref(), &r.name).is_some())
        .expect("some record has an identity key");
    let key = OrgKey::derive(s.select_domain(&rec).as_ref(), &rec.name).unwrap();

    // Become the leader for that organization by hand…
    let Lookup::Miss(flight) = s.cache().begin(&key) else {
        panic!("fresh cache must miss");
    };
    let sentinel = CachedResult {
        categories: asdb_taxonomy::CategorySet::new(),
        provenance: "test-leader".into(),
    };
    let started = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // …while a worker classifies the same organization concurrently.
        let worker = scope.spawn(|| {
            started.store(true, std::sync::atomic::Ordering::SeqCst);
            s.classify_cached(&rec)
        });
        // Wait until the worker is actually running, then give it a
        // generous window to select the domain and block on the in-flight
        // slot before we publish (so thread-spawn latency can't eat the
        // window on slow single-core machines).
        while !started.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        flight.complete(sentinel.clone());
        let c = worker.join().expect("worker thread");
        // The worker must have reused the in-flight result rather than
        // re-running the pipeline: Cached stage, the leader's labels.
        assert_eq!(c.stage, Stage::Cached);
        assert_eq!(c.categories, sentinel.categories);
    });
    assert!(
        s.cache().coalesced() > 0,
        "worker re-ran the pipeline instead of joining the in-flight slot"
    );
    assert_eq!(s.cache().inserts(), 1);
}
