//! Experiment-harness integration: every paper table/figure runner renders
//! over a shared small context, and the headline *shape* claims hold.

use asdb_eval::{experiments, ExperimentContext};
use asdb_model::WorldSeed;
use asdb_worldgen::WorldConfig;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(WorldConfig::small(WorldSeed::new(777))))
}

#[test]
fn full_reproduction_report_renders() {
    let c = ctx();
    let report = experiments::run_all(c);
    for section in [
        "Figure 1",
        "Table 2",
        "Table 3",
        "Table 4",
        "Figure 2",
        "Table 5",
        "Table 6",
        "Table 7",
        "Table 8",
        "Table 9",
        "Table 10",
        "Table 11",
        "Figures 5a/5b/6",
        "Figure 7",
        "Maintenance",
        "Telnet",
        "Background",
        "Ablations",
    ] {
        assert!(
            report.contains(section),
            "missing section {section} in:\n{report}"
        );
    }
    // The report is substantial (all tables rendered with rows).
    assert!(report.lines().count() > 120, "report too short");
}

#[test]
fn figure1_shape_holds_at_small_scale() {
    let c = ctx();
    let report = experiments::fig1(c);
    // Both systems' rows render with four percentage cells.
    assert!(report.contains("NAICS"));
    assert!(report.contains("NAICSlite"));
}

#[test]
fn table8_headline_claims_hold_at_small_scale() {
    let c = ctx();
    use asdb_eval::system_eval::table8;
    let t = table8(&c.world, &c.test, &c.system);
    assert!(t.layer1.0 > 0.85, "L1 coverage = {}", t.layer1.0);
    assert!(t.layer1.1 > 0.80, "L1 accuracy = {}", t.layer1.1);
    assert!(t.layer2.1 < t.layer1.1, "L2 must be harder than L1");
}

#[test]
fn table7_asdb_dominates_at_small_scale() {
    let c = ctx();
    use asdb_eval::system_eval::table7;
    let rows = table7(&c.world, &c.test, &c.system);
    let mut asdb_wins = 0usize;
    let mut contested = 0usize;
    for r in rows {
        if r.n < 5 {
            continue;
        }
        contested += 1;
        if r.asdb >= r.ipinfo && r.asdb >= r.peeringdb {
            asdb_wins += 1;
        }
    }
    assert!(contested > 0);
    assert_eq!(asdb_wins, contested, "ASdb must win every contested class");
}

#[test]
fn reports_are_deterministic() {
    let c = ctx();
    assert_eq!(experiments::fig1(c), experiments::fig1(c));
    assert_eq!(experiments::tab3(c), experiments::tab3(c));
    assert_eq!(experiments::tab6(c), experiments::tab6(c));
}
