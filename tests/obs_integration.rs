//! Observability-layer integration: stage counters reconcile with work
//! done, telemetry does not perturb classification across thread counts,
//! and the JSON metrics snapshot round-trips through serde.

use asdb_core::batch::{classify_batch, classify_batch_cached};
use asdb_core::{AsdbSystem, Stage};
use asdb_model::WorldSeed;
use asdb_obs::RegistrySnapshot;
use asdb_worldgen::{World, WorldConfig};

fn build() -> (World, AsdbSystem) {
    let w = World::generate(WorldConfig::small(WorldSeed::new(31)));
    let s = AsdbSystem::build(&w, WorldSeed::new(32));
    (w, s)
}

#[test]
fn stage_counters_sum_to_batch_size() {
    let (w, s) = build();
    let records: Vec<_> = w.ases.iter().take(80).map(|r| r.parsed.clone()).collect();
    assert_eq!(s.metrics().stage_total(), 0);
    let out = classify_batch(&s, &records, 4);
    assert_eq!(out.len(), 80);
    assert_eq!(s.metrics().stage_total(), 80);
    // Per-stage counts match the stages the batch actually returned.
    for (stage, n) in s.metrics().stage_counts() {
        let observed = out.iter().filter(|c| c.stage == stage).count() as u64;
        assert_eq!(n, observed, "stage {stage:?}");
    }
    // Cached runs on top: every record still lands in exactly one stage,
    // and a repeat pass over the same records is served from the cache.
    let out2 = classify_batch_cached(&s, &records, 4);
    assert_eq!(out2.len(), 80);
    assert_eq!(s.metrics().stage_total(), 160);
    let out3 = classify_batch_cached(&s, &records, 4);
    assert_eq!(out3.len(), 80);
    assert_eq!(s.metrics().stage_total(), 240);
    assert!(
        s.metrics().stage_count(Stage::Cached) > 0,
        "repeat pass over the same records should reuse the org cache"
    );
    assert!(s.cache().hit_rate() > 0.0);
    assert!(!s.cache().is_empty());
}

#[test]
fn thread_count_changes_neither_results_nor_counters() {
    let (w, s) = build();
    let records: Vec<_> = w.ases.iter().take(60).map(|r| r.parsed.clone()).collect();

    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let before = s.metrics().stage_counts();
        let out = classify_batch(&s, &records, threads);
        let after = s.metrics().stage_counts();
        let delta: Vec<u64> = after
            .iter()
            .zip(before.iter())
            .map(|((_, a), (_, b))| a - b)
            .collect();
        runs.push((threads, out, delta));
    }

    let (_, base_out, base_delta) = &runs[0];
    for (threads, out, delta) in &runs[1..] {
        assert_eq!(
            delta, base_delta,
            "stage counter deltas at {threads} threads"
        );
        assert_eq!(out.len(), base_out.len());
        for (a, b) in base_out.iter().zip(out) {
            assert_eq!(a.asn, b.asn, "{threads} threads");
            assert_eq!(a.categories, b.categories, "{} at {threads} threads", a.asn);
            assert_eq!(a.stage, b.stage, "{} at {threads} threads", a.asn);
        }
    }
}

#[test]
fn ml_histogram_reconciles_with_ml_counters() {
    // Perf baseline guard for the textml hot-path rewrite: the lazy-scaled
    // SGD / zero-copy featurization must not change how often the ML stage
    // is metered — exactly one `pipeline.ml` histogram sample per verdict,
    // never zero, never double-recorded.
    let (w, s) = build();
    let records: Vec<_> = w.ases.iter().take(60).map(|r| r.parsed.clone()).collect();
    let _ = classify_batch(&s, &records, 4);
    let snap = s.metrics_snapshot();
    let ml_count = snap.histograms["pipeline.ml"].count;
    assert!(ml_count > 0, "the ML stage ran on none of {} ASes", 60);
    assert_eq!(
        ml_count,
        snap.counter("ml.fired") + snap.counter("ml.abstained"),
        "pipeline.ml must record exactly one sample per ML verdict"
    );
    // A repeat of the same deterministic batch adds exactly the same
    // number of samples.
    let _ = classify_batch(&s, &records, 4);
    let snap2 = s.metrics_snapshot();
    assert_eq!(snap2.histograms["pipeline.ml"].count, 2 * ml_count);
    assert_eq!(
        snap2.counter("ml.fired") + snap2.counter("ml.abstained"),
        2 * ml_count
    );
}

#[test]
fn metrics_snapshot_roundtrips_through_serde() {
    let (w, s) = build();
    let records: Vec<_> = w.ases.iter().take(40).map(|r| r.parsed.clone()).collect();
    let _ = classify_batch_cached(&s, &records, 2);

    let snap = s.metrics_snapshot();
    let json = s.metrics_json();
    let back = RegistrySnapshot::from_json(&json).expect("snapshot parses back");
    assert_eq!(snap, back);

    // The snapshot carries the live numbers, not zeros.
    assert_eq!(back.counter("batch.records"), 40);
    assert!(back.counter("source.dnb.queries") > 0);
    assert!(back.histograms.contains_key("pipeline.classify"));
    assert_eq!(
        back.counter("cache.inserts"),
        s.cache().inserts(),
        "registry cache counters are the OrgCache's own"
    );

    // And the cache's standalone snapshot round-trips too.
    let cs = s.cache().snapshot();
    let cs_back: asdb_core::cache::CacheSnapshot =
        serde_json::from_str(&serde_json::to_string(&cs).unwrap()).unwrap();
    assert_eq!(cs, cs_back);
}
