//! Source-transport integration: the concurrent fan-out must be
//! label-transparent at fault rate 0 (bitwise-identical to the forced
//! sequential path, across a worker-thread grid), exactly reproducible
//! per seed when faults are injected, and honest in its bookkeeping —
//! per-source outcome counters reconcile over a whole world.

use asdb_core::batch::classify_batch;
use asdb_core::{AsdbSystem, FanoutConfig};
use asdb_model::WorldSeed;
use asdb_sources::transport::{BreakerState, FaultPlan, Outage, TransportConfig};
use asdb_sources::SourceId;
use asdb_worldgen::{World, WorldConfig};
use std::time::Duration;

fn world() -> World {
    World::generate(WorldConfig::small(WorldSeed::new(77)))
}

#[test]
fn fault_free_fanout_matches_sequential_labels_across_thread_grid() {
    let w = world();
    let records: Vec<_> = w.ases.iter().map(|r| r.parsed.clone()).collect();

    // The reference run: sequential source calls, single worker.
    let seq = AsdbSystem::build(&w, WorldSeed::new(3)).with_transport(FanoutConfig {
        concurrent: false,
        ..FanoutConfig::default()
    });
    let reference = classify_batch(&seq, &records, 1);

    for threads in [1usize, 2, 4] {
        let conc = AsdbSystem::build(&w, WorldSeed::new(3));
        let out = classify_batch(&conc, &records, threads);
        assert_eq!(out.len(), reference.len());
        for (a, b) in reference.iter().zip(&out) {
            assert_eq!(a.asn, b.asn);
            assert_eq!(a.categories, b.categories, "{} at {threads} threads", a.asn);
            assert_eq!(a.stage, b.stage, "{} at {threads} threads", a.asn);
            assert_eq!(a.sources, b.sources, "{} at {threads} threads", a.asn);
            assert!(b.degraded.is_empty(), "no faults injected");
        }
    }
}

#[test]
fn per_source_outcome_counters_reconcile_over_a_world() {
    let w = world();
    let s = AsdbSystem::build(&w, WorldSeed::new(5)).with_transport(FanoutConfig {
        faults: FaultPlan::uniform(0.3),
        ..FanoutConfig::default()
    });
    for rec in &w.ases {
        let _ = s.classify(&rec.parsed);
    }
    let snap = s.metrics_snapshot();
    let mut any_degraded = 0u64;
    for slug in ["dnb", "crunchbase", "zvelo", "peeringdb", "ipinfo"] {
        let c = |what: &str| snap.counter(&format!("source.{slug}.{what}"));
        // Every issued query resolves to exactly one terminal outcome;
        // breaker-shed calls never reach the wire and are counted apart.
        assert_eq!(
            c("queries"),
            c("matches") + c("rejects") + c("no_match") + c("timeouts") + c("failures"),
            "outcome accounting for {slug}"
        );
        any_degraded += c("timeouts") + c("failures") + c("breaker_open");
    }
    assert!(any_degraded > 0, "30% faults left no trace in the counters");
    assert!(
        snap.histograms["pipeline.fanout"].count > 0,
        "fan-out latency histogram never sampled"
    );
}

#[test]
fn fault_injection_is_bit_reproducible_per_seed() {
    let w = world();
    let noisy = || {
        AsdbSystem::build(&w, WorldSeed::new(8)).with_transport(FanoutConfig {
            faults: FaultPlan::uniform(0.35),
            transport: TransportConfig {
                timeout: Duration::from_millis(120),
                ..TransportConfig::default()
            },
            ..FanoutConfig::default()
        })
    };
    let (a, b) = (noisy(), noisy());
    let mut degraded_records = 0usize;
    for rec in w.ases.iter().take(150) {
        let ca = a.classify(&rec.parsed);
        let cb = b.classify(&rec.parsed);
        assert_eq!(ca.categories, cb.categories, "{}", ca.asn);
        assert_eq!(ca.stage, cb.stage, "{}", ca.asn);
        assert_eq!(ca.sources, cb.sources, "{}", ca.asn);
        assert_eq!(ca.degraded, cb.degraded, "{}", ca.asn);
        degraded_records += usize::from(!ca.degraded.is_empty());
    }
    assert!(
        degraded_records > 0,
        "35% faults never populated Classification::degraded"
    );
}

#[test]
fn burst_outage_trips_the_breaker_and_sheds_calls() {
    let w = world();
    let s = AsdbSystem::build(&w, WorldSeed::new(11)).with_transport(FanoutConfig {
        faults: FaultPlan::none().with_outage(Outage {
            source: Some(SourceId::Dnb),
            start: 0,
            len: u64::MAX,
        }),
        ..FanoutConfig::default()
    });
    let mut dnb_degraded = 0usize;
    for rec in w.ases.iter().take(60) {
        let c = s.classify(&rec.parsed);
        if c.stage != asdb_core::Stage::MatchedByAsn {
            assert!(
                c.degraded.contains(&SourceId::Dnb),
                "{}: permanent D&B outage must surface as degraded",
                c.asn
            );
            dnb_degraded += 1;
        }
    }
    assert!(dnb_degraded > 0, "no record ever reached stage 3");
    assert_eq!(
        s.fanout().breaker_state(SourceId::Dnb),
        Some(BreakerState::Open)
    );
    let snap = s.metrics_snapshot();
    assert!(
        snap.counter("source.dnb.breaker_open") > 0,
        "sustained failures never shed a call"
    );
    assert!(snap.counter("source.dnb.failures") > 0);
    assert!(snap.counter("source.dnb.retries") > 0);
    // The healthy sources are untouched by D&B's outage.
    assert_eq!(snap.counter("source.ipinfo.failures"), 0);
    assert_eq!(snap.counter("source.ipinfo.breaker_open"), 0);
}
