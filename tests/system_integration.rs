//! End-to-end integration: the full ASdb system over a synthetic world,
//! checked against the paper's headline claims at small scale.

use asdb_core::batch::{classify_batch, classify_batch_cached};
use asdb_core::dataset;
use asdb_eval::ExperimentContext;
use asdb_model::WorldSeed;
use asdb_rir::ParsedWhois;
use asdb_worldgen::WorldConfig;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(WorldConfig::small(WorldSeed::new(777))))
}

#[test]
fn classifies_the_vast_majority_of_ases() {
    let c = ctx();
    let records: Vec<ParsedWhois> = c.world.ases.iter().map(|r| r.parsed.clone()).collect();
    let results = classify_batch(&c.system, &records, 4);
    let classified = results.iter().filter(|r| r.is_classified()).count();
    let frac = classified as f64 / results.len() as f64;
    assert!(frac > 0.85, "coverage = {frac}");
}

#[test]
fn accuracy_beats_every_individual_source() {
    let c = ctx();
    use asdb_sources::SourceId;
    // ASdb L1 accuracy over its classified set…
    let records: Vec<ParsedWhois> = c.world.ases.iter().map(|r| r.parsed.clone()).collect();
    let results = classify_batch(&c.system, &records, 4);
    let (mut ok, mut n) = (0usize, 0usize);
    for (rec, res) in c.world.ases.iter().zip(&results) {
        if res.is_classified() {
            let truth = c.world.org(rec.org).unwrap().truth();
            ok += usize::from(res.categories.overlaps_l1(&truth));
            n += 1;
        }
    }
    let asdb_cov = n as f64 / records.len() as f64;
    // …vs each source's *coverage* (ASdb must dominate coverage while
    // keeping accuracy close to the best source).
    for id in SourceId::ASDB_FIVE {
        let src = c.system.sources.get(id).unwrap();
        let covered = c
            .world
            .orgs
            .iter()
            .filter(|o| src.lookup_org(o.id).is_some())
            .count();
        let cov = covered as f64 / c.world.orgs.len() as f64;
        assert!(
            asdb_cov > cov,
            "{id}: source coverage {cov} >= ASdb coverage {asdb_cov}"
        );
    }
    assert!(ok as f64 / n as f64 > 0.85);
}

#[test]
fn cached_batch_is_consistent_with_uncached() {
    let c = ctx();
    let records: Vec<ParsedWhois> = c
        .world
        .ases
        .iter()
        .take(80)
        .map(|r| r.parsed.clone())
        .collect();
    let plain = classify_batch(&c.system, &records, 4);
    // Fresh system for the cached run (the shared ctx cache may be warm).
    let system2 = asdb_core::AsdbSystem::build(&c.world, c.seed.derive("system"));
    let cached = classify_batch_cached(&system2, &records, 4);
    for (a, b) in plain.iter().zip(&cached) {
        assert_eq!(a.asn, b.asn);
        if b.stage != asdb_core::Stage::Cached {
            assert_eq!(a.categories, b.categories, "{}", a.asn);
        }
    }
}

#[test]
fn dataset_dump_roundtrips_at_scale() {
    let c = ctx();
    let records: Vec<ParsedWhois> = c
        .world
        .ases
        .iter()
        .take(120)
        .map(|r| r.parsed.clone())
        .collect();
    let results = classify_batch(&c.system, &records, 4);
    let dump = dataset::write_jsonl(&results);
    let (parsed, skipped) = dataset::read_jsonl(&dump);
    assert_eq!(parsed.len(), results.len());
    assert_eq!(skipped, 0);
    for (rec, out) in results.iter().zip(&parsed) {
        assert_eq!(rec.asn, out.asn);
    }
}

#[test]
fn whole_system_is_deterministic_across_rebuilds() {
    let c = ctx();
    let system2 = asdb_core::AsdbSystem::build(&c.world, c.seed.derive("system"));
    for rec in c.world.ases.iter().take(40) {
        let a = c.system.classify(&rec.parsed);
        let b = system2.classify(&rec.parsed);
        assert_eq!(a.categories, b.categories, "{}", rec.asn);
        assert_eq!(a.stage, b.stage, "{}", rec.asn);
    }
}

#[test]
fn maintenance_loop_keeps_up_with_churn() {
    let c = ctx();
    use asdb_core::maintain::Maintainer;
    use asdb_model::Date;
    use asdb_worldgen::churn::{ChurnConfig, ChurnStream};
    let mut m = Maintainer::new(&c.system, &c.world);
    let stream = ChurnStream::new(
        ChurnConfig {
            window_days: 21,
            ..ChurnConfig::default()
        },
        c.world.asns(),
        c.world.orgs.iter().map(|o| o.id).collect(),
        Date::from_ymd(2020, 10, 1).unwrap(),
        c.seed.derive("integration-churn"),
    );
    m.run(stream);
    let r = m.report();
    assert_eq!(r.days, 21);
    assert!(r.new_ases > 0);
    assert!(r.full_classifications > 0);
    assert!(r.weekly_updates() > 50.0, "weekly = {}", r.weekly_updates());
}
