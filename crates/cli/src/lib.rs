//! # asdb-cli
//!
//! Argument parsing and command dispatch for the `asdb` binary. Parsing is
//! hand-rolled (the workspace's dependency policy allows no CLI crates) and
//! unit-tested; the binary in `main.rs` is a thin shell around
//! [`Command::parse`] and [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asdb_core::batch::{classify_batch_cached_with, BatchConfig};
use asdb_core::{dataset, AsdbSystem, FanoutConfig};
use asdb_model::{Asn, WorldSeed};
use asdb_sources::transport::FaultPlan;
use asdb_worldgen::{World, WorldConfig};
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Source-transport tuning flags shared by the classify-style commands.
/// All `None` (no flags given) keeps the system's default transparent
/// transport.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransportFlags {
    /// `--fault-rate R`: injected fault probability per source call
    /// (split evenly between errors and timeouts).
    pub fault_rate: Option<f64>,
    /// `--source-timeout-ms N`: per-attempt source deadline.
    pub source_timeout_ms: Option<u64>,
    /// `--retries N`: retries after the first attempt.
    pub retries: Option<u32>,
}

impl TransportFlags {
    /// The fan-out config these flags select, or `None` when no flag was
    /// given (leave the system's default transport untouched).
    pub fn fanout_config(&self) -> Option<FanoutConfig> {
        if *self == TransportFlags::default() {
            return None;
        }
        let mut cfg = FanoutConfig::default();
        if let Some(r) = self.fault_rate {
            cfg.faults = FaultPlan::uniform(r);
        }
        if let Some(ms) = self.source_timeout_ms {
            cfg.transport.timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(n) = self.retries {
            cfg.transport.max_retries = n;
        }
        Some(cfg)
    }
}

/// World scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~300 organizations — seconds to build.
    Small,
    /// ~4,000 organizations — the experiment scale.
    Standard,
}

impl Scale {
    fn config(self, seed: WorldSeed) -> WorldConfig {
        match self {
            Scale::Small => WorldConfig::small(seed),
            Scale::Standard => WorldConfig::standard(seed),
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `asdb generate` — build a world and print its census.
    Generate {
        /// World scale.
        scale: Scale,
        /// Seed.
        seed: u64,
        /// Optional path to write the bulk WHOIS dump to.
        whois_out: Option<String>,
    },
    /// `asdb classify` — classify the universe (or specific ASNs).
    Classify {
        /// World scale.
        scale: Scale,
        /// Seed.
        seed: u64,
        /// Specific ASNs; empty = the whole universe.
        asns: Vec<Asn>,
        /// Optional JSONL output path.
        out: Option<String>,
        /// Worker threads.
        threads: usize,
        /// Scheduler chunk size (None = automatic, ~4 chunks per worker).
        chunk_size: Option<usize>,
        /// Org-cache shard count (None = `next_power_of_two(4 × cores)`;
        /// 1 = legacy single-lock behavior).
        shards: Option<usize>,
        /// Optional path to dump the telemetry snapshot (JSON).
        metrics_out: Option<String>,
        /// Source-transport tuning (`--fault-rate`, `--source-timeout-ms`,
        /// `--retries`).
        transport: TransportFlags,
    },
    /// `asdb lookup` — classify one AS and explain every pipeline step.
    Lookup {
        /// World scale.
        scale: Scale,
        /// Seed.
        seed: u64,
        /// The AS to explain.
        asn: Asn,
        /// Optional path to dump the telemetry snapshot (JSON).
        metrics_out: Option<String>,
        /// Source-transport tuning.
        transport: TransportFlags,
    },
    /// `asdb metrics` — classify a world and print the full telemetry
    /// report (stage counters, source hit rates, cache reuse, latency).
    Metrics {
        /// World scale.
        scale: Scale,
        /// Seed.
        seed: u64,
        /// Worker threads.
        threads: usize,
        /// Scheduler chunk size (None = automatic).
        chunk_size: Option<usize>,
        /// Org-cache shard count (None = default).
        shards: Option<usize>,
        /// Classify each AS this many times (duplicate-heavy workload that
        /// exercises cache reuse and single-flight coalescing).
        dup: usize,
        /// Optional path to dump the telemetry snapshot (JSON).
        metrics_out: Option<String>,
        /// Source-transport tuning.
        transport: TransportFlags,
    },
    /// `asdb report` — regenerate the paper's tables and figures.
    Report {
        /// World scale.
        scale: Scale,
        /// Seed.
        seed: u64,
    },
    /// `asdb help`.
    Help,
}

/// A CLI parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
asdb — reproduction of 'ASdb: A System for Classifying Owners of Autonomous Systems' (IMC '21)

USAGE:
  asdb generate [--scale small|standard] [--seed N] [--whois-out FILE]
  asdb classify [--scale small|standard] [--seed N] [--asn N]... [--out FILE] [--threads N]
                [--chunk-size N] [--shards N] [--metrics FILE]
                [--fault-rate R] [--source-timeout-ms N] [--retries N]
  asdb lookup   --asn N [--scale small|standard] [--seed N] [--metrics FILE]
                [--fault-rate R] [--source-timeout-ms N] [--retries N]
  asdb metrics  [--scale small|standard] [--seed N] [--threads N] [--chunk-size N]
                [--shards N] [--dup N] [--metrics FILE]
                [--fault-rate R] [--source-timeout-ms N] [--retries N]
  asdb report   [--scale small|standard] [--seed N]
  asdb help

Defaults: --scale small, --seed = the canonical experiment seed, --threads 4,
--chunk-size automatic (~4 chunks per worker), --shards next_power_of_two(4 x cores).

The metrics subcommand classifies every AS in the world (with the
organization cache) and prints the pipeline telemetry report: per-stage
counters (Table 8's rows), per-source query/match/reject counts, domain-
selection outcomes, ML fire/override counts, cache hit/coalesce rates,
scheduler chunk/steal counts, and latency histograms. --dup N classifies
each AS N times (a duplicate-heavy workload that exercises cache reuse and
single-flight miss coalescing); --shards 1 reproduces the legacy
single-lock cache and --chunk-size ceil(records/threads) the legacy static
split, for before/after comparisons. On classify-style commands,
--metrics FILE writes the same data as a JSON registry snapshot after the
run.

Source transport: --fault-rate R injects deterministic, seed-reproducible
network faults into every source call (R in [0,1], split evenly between
errors and timeouts; per-source timeout/retry/breaker counters and the
degraded-source record show the effect); --source-timeout-ms N sets the
per-attempt source deadline and --retries N the retry budget after the
first attempt. Without these flags the transport is transparent and labels
are identical to the sequential pre-transport pipeline.
";

impl Command {
    /// Parse an argument vector (without the program name).
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Command, CliError> {
        let mut it = args.iter().map(AsRef::as_ref);
        let sub = it.next().unwrap_or("help");
        let rest: Vec<&str> = it.collect();
        let mut scale = Scale::Small;
        let mut seed = WorldSeed::DEFAULT.value();
        let mut whois_out: Option<String> = None;
        let mut out: Option<String> = None;
        let mut metrics_out: Option<String> = None;
        let mut asns: Vec<Asn> = Vec::new();
        let mut threads = 4usize;
        let mut chunk_size: Option<usize> = None;
        let mut shards: Option<usize> = None;
        let mut dup = 1usize;
        let mut transport = TransportFlags::default();

        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
            *i += 1;
            rest.get(*i)
                .map(|s| (*s).to_owned())
                .ok_or_else(|| CliError(format!("{flag} requires a value")))
        };
        while i < rest.len() {
            match rest[i] {
                "--scale" => {
                    scale = match value(&mut i, "--scale")?.as_str() {
                        "small" => Scale::Small,
                        "standard" => Scale::Standard,
                        other => {
                            return Err(CliError(format!(
                                "unknown scale {other:?}; use small or standard"
                            )))
                        }
                    };
                }
                "--seed" => {
                    let v = value(&mut i, "--seed")?;
                    seed = v
                        .parse::<u64>()
                        .map_err(|_| CliError(format!("invalid seed {v:?}")))?;
                }
                "--whois-out" => whois_out = Some(value(&mut i, "--whois-out")?),
                "--out" => out = Some(value(&mut i, "--out")?),
                "--metrics" => metrics_out = Some(value(&mut i, "--metrics")?),
                "--asn" => {
                    let v = value(&mut i, "--asn")?;
                    asns.push(
                        Asn::from_str(&v).map_err(|e| CliError(format!("invalid ASN: {e}")))?,
                    );
                }
                "--threads" => {
                    let v = value(&mut i, "--threads")?;
                    threads = v
                        .parse::<usize>()
                        .map_err(|_| CliError(format!("invalid thread count {v:?}")))?
                        .max(1);
                }
                "--chunk-size" => {
                    let v = value(&mut i, "--chunk-size")?;
                    let n = v
                        .parse::<usize>()
                        .map_err(|_| CliError(format!("invalid chunk size {v:?}")))?;
                    chunk_size = (n > 0).then_some(n);
                }
                "--shards" => {
                    let v = value(&mut i, "--shards")?;
                    let n = v
                        .parse::<usize>()
                        .map_err(|_| CliError(format!("invalid shard count {v:?}")))?;
                    shards = Some(n.max(1));
                }
                "--dup" => {
                    let v = value(&mut i, "--dup")?;
                    dup = v
                        .parse::<usize>()
                        .map_err(|_| CliError(format!("invalid dup factor {v:?}")))?
                        .max(1);
                }
                "--fault-rate" => {
                    let v = value(&mut i, "--fault-rate")?;
                    let r = v
                        .parse::<f64>()
                        .map_err(|_| CliError(format!("invalid fault rate {v:?}")))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(CliError(format!(
                            "fault rate {r} out of range; use 0.0..=1.0"
                        )));
                    }
                    transport.fault_rate = Some(r);
                }
                "--source-timeout-ms" => {
                    let v = value(&mut i, "--source-timeout-ms")?;
                    let ms = v
                        .parse::<u64>()
                        .map_err(|_| CliError(format!("invalid timeout {v:?}")))?;
                    transport.source_timeout_ms = Some(ms.max(1));
                }
                "--retries" => {
                    let v = value(&mut i, "--retries")?;
                    transport.retries = Some(
                        v.parse::<u32>()
                            .map_err(|_| CliError(format!("invalid retry count {v:?}")))?,
                    );
                }
                other => return Err(CliError(format!("unknown flag {other:?}"))),
            }
            i += 1;
        }

        match sub {
            "generate" => Ok(Command::Generate {
                scale,
                seed,
                whois_out,
            }),
            "classify" => Ok(Command::Classify {
                scale,
                seed,
                asns,
                out,
                threads,
                chunk_size,
                shards,
                metrics_out,
                transport,
            }),
            "lookup" => {
                let asn = *asns
                    .first()
                    .ok_or_else(|| CliError("lookup requires --asn N".into()))?;
                Ok(Command::Lookup {
                    scale,
                    seed,
                    asn,
                    metrics_out,
                    transport,
                })
            }
            "metrics" => Ok(Command::Metrics {
                scale,
                seed,
                threads,
                chunk_size,
                shards,
                dup,
                metrics_out,
                transport,
            }),
            "report" => Ok(Command::Report { scale, seed }),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(CliError(format!("unknown command {other:?}"))),
        }
    }
}

/// Execute a parsed command, writing human output to `out`. Returns the
/// process exit code.
pub fn run(cmd: Command, out: &mut dyn std::io::Write) -> std::io::Result<i32> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(0)
        }
        Command::Generate {
            scale,
            seed,
            whois_out,
        } => {
            let world = World::generate(scale.config(WorldSeed::new(seed)));
            writeln!(
                out,
                "world: {} organizations, {} ASes, {} live sites",
                world.orgs.len(),
                world.ases.len(),
                world.web.len()
            )?;
            let mut per_rir: std::collections::BTreeMap<&str, usize> = Default::default();
            for rec in &world.ases {
                *per_rir.entry(rec.rir.name()).or_insert(0) += 1;
            }
            for (rir, n) in per_rir {
                writeln!(out, "  {rir:<8} {n}")?;
            }
            if let Some(path) = whois_out {
                let rendered: Vec<_> = world
                    .ases
                    .iter()
                    .map(|r| asdb_rir::dialect::serialize(r.rir, &r.registration))
                    .collect();
                let text = asdb_rir::dump::write_dump(&rendered);
                std::fs::write(&path, &text)?;
                writeln!(
                    out,
                    "WHOIS dump written to {path} ({} KiB)",
                    text.len() / 1024
                )?;
            }
            Ok(0)
        }
        Command::Classify {
            scale,
            seed,
            asns,
            out: out_path,
            threads,
            chunk_size,
            shards,
            metrics_out,
            transport,
        } => {
            let seed = WorldSeed::new(seed);
            let world = World::generate(scale.config(seed));
            let mut system = AsdbSystem::build(&world, seed.derive("cli"));
            if let Some(n) = shards {
                system = system.with_cache_shards(n);
            }
            if let Some(cfg) = transport.fanout_config() {
                system = system.with_transport(cfg);
            }
            let records: Vec<_> = if asns.is_empty() {
                world.ases.iter().map(|r| r.parsed.clone()).collect()
            } else {
                let mut rs = Vec::new();
                for a in &asns {
                    match world.as_record(*a) {
                        Some(r) => rs.push(r.parsed.clone()),
                        None => {
                            writeln!(out, "error: {a} is not registered in this world")?;
                            return Ok(2);
                        }
                    }
                }
                rs
            };
            let config = BatchConfig {
                n_threads: threads,
                chunk_size,
            };
            let results = classify_batch_cached_with(&system, &records, config);
            let classified = results.iter().filter(|c| c.is_classified()).count();
            writeln!(
                out,
                "classified {}/{} ASes ({} organizations cached)",
                classified,
                results.len(),
                system.cache().len()
            )?;
            match out_path {
                Some(path) => {
                    std::fs::write(&path, dataset::write_jsonl(&results))?;
                    writeln!(out, "dataset written to {path}")?;
                }
                None => {
                    for c in results.iter().take(20) {
                        writeln!(out, "{}  [{}]  {}", c.asn, c.stage.label(), c.categories)?;
                    }
                    if results.len() > 20 {
                        writeln!(
                            out,
                            "… ({} more; use --out FILE for the full dump)",
                            results.len() - 20
                        )?;
                    }
                }
            }
            if let Some(path) = metrics_out {
                std::fs::write(&path, system.metrics_json())?;
                writeln!(out, "metrics snapshot written to {path}")?;
            }
            Ok(0)
        }
        Command::Lookup {
            scale,
            seed,
            asn,
            metrics_out,
            transport,
        } => {
            let seed = WorldSeed::new(seed);
            let world = World::generate(scale.config(seed));
            let Some(rec) = world.as_record(asn) else {
                writeln!(out, "error: {asn} is not registered in this world")?;
                return Ok(2);
            };
            let mut system = AsdbSystem::build(&world, seed.derive("cli"));
            if let Some(cfg) = transport.fanout_config() {
                system = system.with_transport(cfg);
            }
            let c = system.classify(&rec.parsed);
            writeln!(out, "{asn} @ {}", rec.rir)?;
            writeln!(out, "  WHOIS name : {}", rec.parsed.name)?;
            writeln!(
                out,
                "  candidates : {}",
                rec.parsed
                    .candidate_domains()
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
            writeln!(
                out,
                "  chosen     : {}",
                c.chosen_domain
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "-".into())
            )?;
            if let Some(v) = &c.ml {
                writeln!(
                    out,
                    "  ML         : p_isp={:.2} p_hosting={:.2}",
                    v.p_isp, v.p_hosting
                )?;
            }
            for (src, labels) in &c.match_labels {
                writeln!(out, "  {src:<10} : {labels}")?;
            }
            if !c.degraded.is_empty() {
                writeln!(
                    out,
                    "  degraded   : {}",
                    c.degraded
                        .iter()
                        .map(|s| s.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )?;
            }
            writeln!(out, "  stage      : {}", c.stage.label())?;
            writeln!(out, "  verdict    : {}", c.categories)?;
            if let Some(path) = metrics_out {
                std::fs::write(&path, system.metrics_json())?;
                writeln!(out, "metrics snapshot written to {path}")?;
            }
            Ok(0)
        }
        Command::Metrics {
            scale,
            seed,
            threads,
            chunk_size,
            shards,
            dup,
            metrics_out,
            transport,
        } => {
            let seed = WorldSeed::new(seed);
            let world = World::generate(scale.config(seed));
            let mut system = AsdbSystem::build(&world, seed.derive("cli"));
            if let Some(n) = shards {
                system = system.with_cache_shards(n);
            }
            if let Some(cfg) = transport.fanout_config() {
                system = system.with_transport(cfg);
            }
            let records: Vec<_> = world
                .ases
                .iter()
                .flat_map(|r| std::iter::repeat(r.parsed.clone()).take(dup))
                .collect();
            let config = BatchConfig {
                n_threads: threads,
                chunk_size,
            };
            let results = classify_batch_cached_with(&system, &records, config);
            writeln!(
                out,
                "classified {} ASes across {} threads\n",
                results.len(),
                threads
            )?;
            writeln!(out, "{}", system.metrics_text())?;
            if let Some(path) = metrics_out {
                std::fs::write(&path, system.metrics_json())?;
                writeln!(out, "metrics snapshot written to {path}")?;
            }
            Ok(0)
        }
        Command::Report { scale, seed } => {
            let ctx = asdb_eval::ExperimentContext::build(scale.config(WorldSeed::new(seed)));
            writeln!(out, "{}", asdb_eval::experiments::run_all(&ctx))?;
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, CliError> {
        Command::parse(args)
    }

    #[test]
    fn parses_defaults() {
        assert_eq!(parse(&["help"]), Ok(Command::Help));
        assert_eq!(parse(&[]), Ok(Command::Help));
        let g = parse(&["generate"]).unwrap();
        assert!(matches!(
            g,
            Command::Generate {
                scale: Scale::Small,
                whois_out: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_flags() {
        let c = parse(&[
            "classify",
            "--scale",
            "standard",
            "--seed",
            "42",
            "--asn",
            "AS1000",
            "--asn",
            "2000",
            "--out",
            "/tmp/x.jsonl",
            "--threads",
            "8",
            "--chunk-size",
            "16",
            "--shards",
            "4",
            "--metrics",
            "/tmp/m.json",
        ])
        .unwrap();
        match c {
            Command::Classify {
                scale,
                seed,
                asns,
                out,
                threads,
                chunk_size,
                shards,
                metrics_out,
                transport,
            } => {
                assert_eq!(scale, Scale::Standard);
                assert_eq!(seed, 42);
                assert_eq!(asns, vec![Asn::new(1000), Asn::new(2000)]);
                assert_eq!(out.as_deref(), Some("/tmp/x.jsonl"));
                assert_eq!(threads, 8);
                assert_eq!(chunk_size, Some(16));
                assert_eq!(shards, Some(4));
                assert_eq!(metrics_out.as_deref(), Some("/tmp/m.json"));
                assert_eq!(transport, TransportFlags::default());
                assert!(transport.fanout_config().is_none());
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parses_transport_flags() {
        let c = parse(&[
            "classify",
            "--fault-rate",
            "0.25",
            "--source-timeout-ms",
            "200",
            "--retries",
            "5",
        ])
        .unwrap();
        match c {
            Command::Classify { transport, .. } => {
                assert_eq!(transport.fault_rate, Some(0.25));
                assert_eq!(transport.source_timeout_ms, Some(200));
                assert_eq!(transport.retries, Some(5));
                let cfg = transport.fanout_config().expect("flags select a config");
                assert_eq!(cfg.transport.timeout, Duration::from_millis(200));
                assert_eq!(cfg.transport.max_retries, 5);
                assert!(!cfg.faults.is_none());
            }
            other => panic!("parsed {other:?}"),
        }
        // A partial flag set still selects a config, defaulting the rest.
        match parse(&["metrics", "--retries", "0"]).unwrap() {
            Command::Metrics { transport, .. } => {
                let cfg = transport.fanout_config().expect("config selected");
                assert_eq!(cfg.transport.max_retries, 0);
                assert!(cfg.faults.is_none(), "no faults unless asked for");
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&["classify", "--fault-rate", "1.5"]).is_err());
        assert!(parse(&["classify", "--fault-rate", "x"]).is_err());
        assert!(parse(&["classify", "--source-timeout-ms"]).is_err());
        assert!(parse(&["classify", "--retries", "-1"]).is_err());
    }

    #[test]
    fn parses_metrics_command() {
        let c = parse(&[
            "metrics",
            "--threads",
            "2",
            "--dup",
            "3",
            "--metrics",
            "/tmp/m.json",
        ])
        .unwrap();
        match c {
            Command::Metrics {
                scale,
                threads,
                chunk_size,
                shards,
                dup,
                metrics_out,
                ..
            } => {
                assert_eq!(scale, Scale::Small);
                assert_eq!(threads, 2);
                assert_eq!(chunk_size, None);
                assert_eq!(shards, None);
                assert_eq!(dup, 3);
                assert_eq!(metrics_out.as_deref(), Some("/tmp/m.json"));
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&["metrics", "--metrics"]).is_err());
    }

    #[test]
    fn scheduler_flag_defaults_and_validation() {
        // 0 chunk size means automatic; shard counts are clamped to ≥ 1.
        match parse(&["classify", "--chunk-size", "0", "--shards", "0"]).unwrap() {
            Command::Classify {
                chunk_size, shards, ..
            } => {
                assert_eq!(chunk_size, None);
                assert_eq!(shards, Some(1));
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&["classify", "--chunk-size", "x"]).is_err());
        assert!(parse(&["classify", "--shards"]).is_err());
        assert!(parse(&["metrics", "--dup", "nope"]).is_err());
    }

    #[test]
    fn metrics_report_stage_counts_sum_to_universe() {
        let mut buf = Vec::new();
        let code = run(
            Command::Metrics {
                scale: Scale::Small,
                seed: 9,
                threads: 2,
                chunk_size: None,
                shards: None,
                dup: 1,
                metrics_out: None,
                transport: TransportFlags::default(),
            },
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("pipeline stages"), "{text}");
        assert!(text.contains("source transport"), "{text}");
        assert!(text.contains("org cache"), "{text}");
        assert!(text.contains("coalesced"), "{text}");
        assert!(text.contains("steals"), "{text}");
        // "classified N ASes" must equal the stage-counter total printed
        // on the report's total row.
        let n: u64 = text
            .split("classified ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("report names the universe size");
        let total: u64 = text
            .lines()
            .find(|l| l.trim_start().starts_with("total"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("report has a total row");
        assert_eq!(n, total, "{text}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["generate", "--scale", "galactic"]).is_err());
        assert!(parse(&["generate", "--seed"]).is_err());
        assert!(parse(&["generate", "--seed", "NaN"]).is_err());
        assert!(parse(&["classify", "--asn", "ASX"]).is_err());
        assert!(parse(&["lookup"]).is_err(), "lookup needs --asn");
        assert!(parse(&["generate", "--bogus"]).is_err());
    }

    #[test]
    fn help_runs() {
        let mut buf = Vec::new();
        let code = run(Command::Help, &mut buf).unwrap();
        assert_eq!(code, 0);
        assert!(String::from_utf8(buf).unwrap().contains("USAGE"));
    }

    #[test]
    fn generate_small_runs() {
        let mut buf = Vec::new();
        let code = run(
            Command::Generate {
                scale: Scale::Small,
                seed: 9,
                whois_out: None,
            },
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 0);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("organizations"), "{text}");
    }

    #[test]
    fn lookup_unknown_asn_fails_cleanly() {
        let mut buf = Vec::new();
        let code = run(
            Command::Lookup {
                scale: Scale::Small,
                seed: 9,
                asn: Asn::new(999_999_999),
                metrics_out: None,
                transport: TransportFlags::default(),
            },
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, 2);
        assert!(String::from_utf8(buf).unwrap().contains("not registered"));
    }
}
