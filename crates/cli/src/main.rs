//! The `asdb` binary: parse, dispatch, exit.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match asdb_cli::Command::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", asdb_cli::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match asdb_cli::run(cmd, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("I/O error: {e}");
            std::process::exit(1);
        }
    }
}
