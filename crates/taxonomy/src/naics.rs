//! The North American Industry Classification System (NAICS).
//!
//! NAICS is the "de facto U.S. federal standard for classifying industries"
//! (§3.2): a hierarchical system of 2-digit sectors refined down to 6-digit
//! national industries, defined across a 517-page manual with over 2,000
//! categories. ASdb consumes NAICS codes from Dun & Bradstreet and ZoomInfo
//! and immediately translates them to NAICSlite; this module provides the
//! validated code type, sector structure, and a catalog subset with titles —
//! including every code the paper cites and the near-synonym sibling codes
//! that drive labeler disagreement (Figure 1) and D&B's ISP/hosting
//! ambiguity (§3.3).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A NAICS code of 2–6 digits.
///
/// Stored as the numeric value plus its digit count, so `22` (Utilities,
/// the sector) and `221122` (Electric Power Distribution, the national
/// industry) are distinct values with a prefix relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NaicsCode {
    value: u32,
    digits: u8,
}

/// Error for malformed NAICS codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidNaics(pub String);

impl fmt::Display for InvalidNaics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid NAICS code: {:?}", self.0)
    }
}

impl std::error::Error for InvalidNaics {}

impl NaicsCode {
    /// Build from a numeric value and digit count (2–6 digits, value must
    /// fit the count and not have a leading zero).
    pub fn new(value: u32, digits: u8) -> Result<NaicsCode, InvalidNaics> {
        if !(2..=6).contains(&digits) {
            return Err(InvalidNaics(format!("{value} ({digits} digits)")));
        }
        let lo = 10u32.pow(u32::from(digits) - 1);
        let hi = 10u32.pow(u32::from(digits)) - 1;
        if value < lo || value > hi {
            return Err(InvalidNaics(format!("{value} ({digits} digits)")));
        }
        Ok(NaicsCode { value, digits })
    }

    /// Convenience constructor for a full 6-digit national industry code.
    pub fn six(value: u32) -> NaicsCode {
        NaicsCode::new(value, 6).expect("caller passes a 6-digit code")
    }

    /// Convenience constructor for a 2-digit sector code.
    pub fn sector_code(value: u32) -> NaicsCode {
        NaicsCode::new(value, 2).expect("caller passes a 2-digit code")
    }

    /// Numeric value.
    pub fn value(self) -> u32 {
        self.value
    }

    /// Digit count (2–6).
    pub fn digits(self) -> u8 {
        self.digits
    }

    /// The 2-digit sector this code belongs to.
    pub fn sector(self) -> u32 {
        self.value / 10u32.pow(u32::from(self.digits) - 2)
    }

    /// Truncate to the first `n` digits (n ≤ digits).
    pub fn prefix(self, n: u8) -> NaicsCode {
        assert!(n >= 2 && n <= self.digits, "prefix length out of range");
        NaicsCode {
            value: self.value / 10u32.pow(u32::from(self.digits - n)),
            digits: n,
        }
    }

    /// Whether `self` is a (non-strict) hierarchical prefix of `other`.
    pub fn is_prefix_of(self, other: NaicsCode) -> bool {
        self.digits <= other.digits && other.prefix(self.digits) == self
    }

    /// Official title if the code is in the bundled catalog.
    pub fn title(self) -> Option<&'static str> {
        CATALOG
            .iter()
            .find(|(c, _, _)| *c == self.value && usize::from(self.digits) == digit_count(*c))
            .map(|(_, t, _)| *t)
    }

    /// Sector title for the code's 2-digit sector.
    pub fn sector_title(self) -> &'static str {
        match self.sector() {
            11 => "Agriculture, Forestry, Fishing and Hunting",
            21 => "Mining, Quarrying, and Oil and Gas Extraction",
            22 => "Utilities",
            23 => "Construction",
            31..=33 => "Manufacturing",
            42 => "Wholesale Trade",
            44 | 45 => "Retail Trade",
            48 | 49 => "Transportation and Warehousing",
            51 => "Information",
            52 => "Finance and Insurance",
            53 => "Real Estate and Rental and Leasing",
            54 => "Professional, Scientific, and Technical Services",
            55 => "Management of Companies and Enterprises",
            56 => "Administrative and Support and Waste Management",
            61 => "Educational Services",
            62 => "Health Care and Social Assistance",
            71 => "Arts, Entertainment, and Recreation",
            72 => "Accommodation and Food Services",
            81 => "Other Services (except Public Administration)",
            92 => "Public Administration",
            _ => "Unknown Sector",
        }
    }
}

fn digit_count(v: u32) -> usize {
    if v == 0 {
        1
    } else {
        (v.ilog10() + 1) as usize
    }
}

impl fmt::Display for NaicsCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

impl FromStr for NaicsCode {
    type Err = InvalidNaics;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) || t.len() > 6 || t.len() < 2 {
            return Err(InvalidNaics(t.chars().take(16).collect()));
        }
        let value: u32 = t.parse().map_err(|_| InvalidNaics(t.to_owned()))?;
        NaicsCode::new(value, t.len() as u8)
    }
}

/// Catalog entry: `(code, title, cited_in_paper)`.
///
/// A representative subset of the NAICS manual: every code the paper cites,
/// the redundant sibling groups that drive Figure 1's disagreement, and at
/// least one code for each NAICSlite layer-2 category so the translation
/// tables (see [`crate::translate`]) are fully exercised.
pub static CATALOG: &[(u32, &str, bool)] = &[
    // --- Codes cited in the paper ----------------------------------------
    (517911, "Telecommunications Resellers", true),
    (541512, "Computer Systems Design Services", true),
    (519190, "All Other Information Services", true),
    (335911, "Storage Battery Manufacturing", true),
    (
        334416,
        "Capacitor, Resistor, Coil, Transformer, and Other Inductor Manufacturing",
        true,
    ),
    // --- Information sector (51) ------------------------------------------
    (517311, "Wired Telecommunications Carriers", false),
    (
        517312,
        "Wireless Telecommunications Carriers (except Satellite)",
        false,
    ),
    (517410, "Satellite Telecommunications", false),
    (517919, "All Other Telecommunications", false),
    (
        518210,
        "Data Processing, Hosting, and Related Services",
        false,
    ),
    (
        519130,
        "Internet Publishing and Broadcasting and Web Search Portals",
        false,
    ),
    (511210, "Software Publishers", false),
    (512110, "Motion Picture and Video Production", false),
    (512250, "Record Production and Distribution", false),
    (515120, "Television Broadcasting", false),
    (515111, "Radio Networks", false),
    (511110, "Newspaper Publishers", false),
    (511130, "Book Publishers", false),
    (519120, "Libraries and Archives", false),
    // --- Professional services (54) ----------------------------------------
    (541511, "Custom Computer Programming Services", false),
    (541513, "Computer Facilities Management Services", false),
    (541519, "Other Computer Related Services", false),
    (
        541690,
        "Other Scientific and Technical Consulting Services",
        false,
    ),
    (541110, "Offices of Lawyers", false),
    (541211, "Offices of Certified Public Accountants", false),
    (541214, "Payroll Services", false),
    (
        541611,
        "Administrative Management Consulting Services",
        false,
    ),
    (
        541715,
        "R&D in the Physical, Engineering, and Life Sciences",
        false,
    ),
    (541720, "R&D in the Social Sciences and Humanities", false),
    // --- Finance (52) -------------------------------------------------------
    (522110, "Commercial Banking", false),
    (522210, "Credit Card Issuing", false),
    (522292, "Real Estate Credit", false),
    (524113, "Direct Life Insurance Carriers", false),
    (524210, "Insurance Agencies and Brokerages", false),
    (523920, "Portfolio Management", false),
    (525110, "Pension Funds", false),
    (
        522320,
        "Financial Transactions Processing and Clearing",
        false,
    ),
    // --- Education (61) -----------------------------------------------------
    (611110, "Elementary and Secondary Schools", false),
    (
        611310,
        "Colleges, Universities, and Professional Schools",
        false,
    ),
    (611420, "Computer Training", false),
    (611691, "Exam Preparation and Tutoring", false),
    (611512, "Flight Training", false),
    // --- Health care & social assistance (62) -------------------------------
    (622110, "General Medical and Surgical Hospitals", false),
    (621511, "Medical Laboratories", false),
    (623110, "Nursing Care Facilities", false),
    (621610, "Home Health Care Services", false),
    (624221, "Temporary Shelters", false),
    (624410, "Child Day Care Services", false),
    // --- Utilities (22) ------------------------------------------------------
    (221122, "Electric Power Distribution", false),
    (
        221121,
        "Electric Bulk Power Transmission and Control",
        false,
    ),
    (221210, "Natural Gas Distribution", false),
    (221310, "Water Supply and Irrigation Systems", false),
    (221320, "Sewage Treatment Facilities", false),
    (221330, "Steam and Air-Conditioning Supply", false),
    // --- Agriculture & mining (11, 21) --------------------------------------
    (111110, "Soybean Farming", false),
    (111419, "Other Food Crops Grown Under Cover", false),
    (112111, "Beef Cattle Ranching and Farming", false),
    (112511, "Finfish Farming and Fish Hatcheries", false),
    (113310, "Logging", false),
    (212114, "Surface Coal Mining", false),
    (211120, "Crude Petroleum Extraction", false),
    (324110, "Petroleum Refineries", false),
    // --- Construction & real estate (23, 53) ---------------------------------
    (236115, "New Single-Family Housing Construction", false),
    (
        236220,
        "Commercial and Institutional Building Construction",
        false,
    ),
    (237310, "Highway, Street, and Bridge Construction", false),
    (237130, "Power and Communication Line Construction", false),
    (531210, "Offices of Real Estate Agents and Brokers", false),
    (
        531110,
        "Lessors of Residential Buildings and Dwellings",
        false,
    ),
    // --- Arts, entertainment (71) --------------------------------------------
    (712110, "Museums", false),
    (712130, "Zoos and Botanical Gardens", false),
    (711211, "Sports Teams and Clubs", false),
    (713110, "Amusement and Theme Parks", false),
    (713210, "Casinos (except Casino Hotels)", false),
    (713940, "Fitness and Recreational Sports Centers", false),
    (711130, "Musical Groups and Artists", false),
    // --- Accommodation & food (72) --------------------------------------------
    (721110, "Hotels (except Casino Hotels) and Motels", false),
    (
        721211,
        "RV (Recreational Vehicle) Parks and Campgrounds",
        false,
    ),
    (721310, "Rooming and Boarding Houses, Dormitories", false),
    (722511, "Full-Service Restaurants", false),
    // --- Transportation (48-49) -------------------------------------------------
    (481111, "Scheduled Passenger Air Transportation", false),
    (482111, "Line-Haul Railroads", false),
    (483111, "Deep Sea Freight Transportation", false),
    (484121, "General Freight Trucking, Long-Distance", false),
    (485210, "Interurban and Rural Bus Transportation", false),
    (491110, "Postal Service", false),
    (492110, "Couriers and Express Delivery Services", false),
    (
        481212,
        "Nonscheduled Chartered Freight Air Transportation",
        false,
    ),
    (
        487210,
        "Scenic and Sightseeing Transportation, Water",
        false,
    ),
    (927110, "Space Research and Technology", false),
    // --- Retail & wholesale (42, 44-45) ------------------------------------------
    (445110, "Supermarkets and Other Grocery Stores", false),
    (448120, "Women's Clothing Stores", false),
    (454110, "Electronic Shopping and Mail-Order Houses", false),
    (
        423430,
        "Computer and Computer Peripheral Equipment Merchant Wholesalers",
        false,
    ),
    // --- Manufacturing (31-33) -----------------------------------------------------
    (336111, "Automobile Manufacturing", false),
    (311230, "Breakfast Cereal Manufacturing", false),
    (313210, "Broadwoven Fabric Mills", false),
    (333120, "Construction Machinery Manufacturing", false),
    (325412, "Pharmaceutical Preparation Manufacturing", false),
    (334111, "Electronic Computer Manufacturing", false),
    (
        334413,
        "Semiconductor and Related Device Manufacturing",
        false,
    ),
    // --- Government (92) --------------------------------------------------------------
    (928110, "National Security", false),
    (922120, "Police Protection", false),
    (921110, "Executive Offices", false),
    (923130, "Administration of Human Resource Programs", false),
    // --- Nonprofits & religious (81) ----------------------------------------------------
    (813110, "Religious Organizations", false),
    (813311, "Human Rights Organizations", false),
    (
        813312,
        "Environment, Conservation and Wildlife Organizations",
        false,
    ),
    (813410, "Civic and Social Organizations", false),
    // --- Services (56, 81) ------------------------------------------------------------------
    (561612, "Security Guards and Patrol Services", false),
    (561720, "Janitorial Services", false),
    (561730, "Landscaping Services", false),
    (811111, "General Automotive Repair", false),
    (812111, "Barber Shops", false),
    (812310, "Coin-Operated Laundries and Drycleaners", false),
];

/// Near-synonym sibling groups: sets of distinct 6-digit codes that expert
/// labelers plausibly use interchangeably for the same organization. These
/// drive the simulated NAICS-level disagreement in Figure 1 — e.g. the
/// paper's AS56885 (SUMIDA Romania SRL) was labeled 335911 by one researcher
/// and 334416 by the other.
pub static CONFUSABLE_SIBLINGS: &[&[u32]] = &[
    // The paper's own example: battery vs. inductor manufacturing.
    &[335911, 334416, 334413],
    // D&B's interchangeable ISP/hosting codes (§3.3).
    &[517911, 541512, 519190],
    // Telecom carriers: wired / wireless / other.
    &[517311, 517312, 517919],
    // Computer services: programming / systems design / facilities / other.
    &[541511, 541512, 541513, 541519],
    // Hosting vs. internet publishing vs. other information services.
    &[518210, 519130, 519190],
    // Banking vs. card issuing vs. transaction processing.
    &[522110, 522210, 522320],
    // Insurance carriers vs. agencies.
    &[524113, 524210],
    // R&D physical vs. social sciences.
    &[541715, 541720],
    // Electric distribution vs. transmission.
    &[221122, 221121],
    // Residential vs. commercial construction.
    &[236115, 236220],
    // Lawyers vs. management consulting (generic "professional services").
    &[541110, 541611],
    // Couriers vs. postal service.
    &[491110, 492110],
    // Grocery retail vs. e-commerce.
    &[445110, 454110],
];

/// The sibling group containing `code`, if any.
pub fn confusable_group(code: NaicsCode) -> Option<&'static [u32]> {
    CONFUSABLE_SIBLINGS
        .iter()
        .copied()
        .find(|group| group.contains(&code.value()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_validate() {
        assert!(NaicsCode::new(51, 2).is_ok());
        assert!(NaicsCode::new(517911, 6).is_ok());
        assert!(NaicsCode::new(51, 6).is_err()); // too few digits for count
        assert!(NaicsCode::new(1234567, 6).is_err()); // too many
        assert!(NaicsCode::new(5, 1).is_err()); // digit count out of range
    }

    #[test]
    fn sector_and_prefix() {
        let c = NaicsCode::six(517911);
        assert_eq!(c.sector(), 51);
        assert_eq!(c.prefix(3).value(), 517);
        assert_eq!(c.prefix(6), c);
        assert!(NaicsCode::sector_code(51).is_prefix_of(c));
        assert!(!NaicsCode::sector_code(52).is_prefix_of(c));
        assert!(c.is_prefix_of(c));
    }

    #[test]
    fn parses_and_displays() {
        let c: NaicsCode = "517911".parse().unwrap();
        assert_eq!(c, NaicsCode::six(517911));
        assert_eq!(c.to_string(), "517911");
        assert!("".parse::<NaicsCode>().is_err());
        assert!("5".parse::<NaicsCode>().is_err());
        assert!("51791x".parse::<NaicsCode>().is_err());
        assert!("1234567".parse::<NaicsCode>().is_err());
    }

    #[test]
    fn catalog_has_cited_codes_with_titles() {
        for code in [517911, 541512, 519190, 335911, 334416] {
            let c = NaicsCode::six(code);
            assert!(c.title().is_some(), "code {code} must be in catalog");
        }
        assert_eq!(
            NaicsCode::six(517911).title().unwrap(),
            "Telecommunications Resellers"
        );
    }

    #[test]
    fn catalog_codes_are_valid_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for (code, title, _) in CATALOG {
            assert!(seen.insert(*code), "duplicate catalog code {code}");
            assert!(!title.is_empty());
            let parsed = NaicsCode::new(*code, digit_count(*code) as u8).unwrap();
            assert_ne!(parsed.sector_title(), "Unknown Sector", "code {code}");
        }
    }

    #[test]
    fn confusable_groups_contain_paper_example() {
        let g = confusable_group(NaicsCode::six(335911)).unwrap();
        assert!(g.contains(&334416));
        assert!(confusable_group(NaicsCode::six(722511)).is_none());
    }

    #[test]
    fn sector_titles() {
        assert_eq!(NaicsCode::six(517911).sector_title(), "Information");
        assert_eq!(
            NaicsCode::six(622110).sector_title(),
            "Health Care and Social Assistance"
        );
    }

    proptest! {
        #[test]
        fn parse_never_panics(s in ".{0,12}") {
            let _ = s.parse::<NaicsCode>();
        }

        #[test]
        fn prefix_is_idempotent_on_own_length(v in 100_000u32..999_999) {
            let c = NaicsCode::six(v);
            prop_assert_eq!(c.prefix(6), c);
            prop_assert!(c.prefix(2).is_prefix_of(c));
            prop_assert_eq!(c.prefix(2).value(), c.sector());
        }
    }
}
