//! # asdb-taxonomy
//!
//! Industry classification systems used by ASdb.
//!
//! The crate implements, from the paper:
//!
//! * **NAICS** (§3.2): the 6-digit hierarchical North American Industry
//!   Classification System — the code type, a catalog subset with titles,
//!   and the structural properties that make it a poor fit for Internet
//!   measurement (redundant sibling codes, technology categories folded
//!   together).
//! * **NAICSlite** (§3.2 + Appendix C): the paper's simplified two-layer
//!   system — 17 top-level ("layer 1") categories and 95 lower-layer
//!   ("layer 2") categories. The layer-2 lists follow Appendix C verbatim;
//!   see [`naicslite`] for the two places the printed appendix under-counts
//!   the stated 95 and how we resolve them.
//! * **Translation layers** (§3.2): NAICS → NAICSlite (automatic, by code
//!   prefix, including the deliberately ambiguous codes D&B abuses), and
//!   each external source's custom scheme → NAICSlite
//!   (PeeringDB, IPinfo, Crunchbase, Zvelo, Clearbit).
//! * **Agreement metrics** (Figure 1): complete-overlap and ≥1-overlap
//!   between two labelers' label sets, at both layers, for both NAICS and
//!   NAICSlite labels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod naics;
pub mod naicslite;
pub mod schemes;
pub mod translate;

pub use agreement::{Agreement, LabelSet};
pub use naics::NaicsCode;
pub use naicslite::{Category, CategorySet, Layer1, Layer2};
pub use translate::naics_to_naicslite;
