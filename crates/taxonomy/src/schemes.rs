//! Per-source custom classification schemes and their NAICSlite mappings.
//!
//! "Clearbit, Crunchbase, PeeringDB, and Zvelo provide their own
//! organization classification systems … We translate other data sources'
//! custom classification schemes into NAICSlite using a manual process, with
//! each mapping reviewed by at least two researchers" (§3.2).
//!
//! PeeringDB and IPinfo have small, fixed schemes that pipeline logic
//! branches on (e.g. the "PeeringDB returns an ISP label" high-confidence
//! shortcut in Figure 4), so they are enums. Crunchbase, Zvelo, and Clearbit
//! have larger schemes modeled as tables of named categories, each carrying
//! the manually-reviewed NAICSlite mapping.

use crate::naicslite::{known, Category, CategorySet, Layer1, Layer2};
use serde::{Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------------
// PeeringDB
// ---------------------------------------------------------------------------

/// PeeringDB's six self-reported network types (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeeringDbType {
    /// "Cable/DSL/ISP"
    CableDslIsp,
    /// "Network Service Provider"
    NetworkServiceProvider,
    /// "Content"
    Content,
    /// "Education/Research"
    EducationResearch,
    /// "Enterprise"
    Enterprise,
    /// "Non-profit"
    NonProfit,
}

impl PeeringDbType {
    /// All six types.
    pub const ALL: [PeeringDbType; 6] = [
        PeeringDbType::CableDslIsp,
        PeeringDbType::NetworkServiceProvider,
        PeeringDbType::Content,
        PeeringDbType::EducationResearch,
        PeeringDbType::Enterprise,
        PeeringDbType::NonProfit,
    ];

    /// Display name as registered operators see it.
    pub fn name(self) -> &'static str {
        match self {
            PeeringDbType::CableDslIsp => "Cable/DSL/ISP",
            PeeringDbType::NetworkServiceProvider => "Network Service Provider",
            PeeringDbType::Content => "Content",
            PeeringDbType::EducationResearch => "Education/Research",
            PeeringDbType::Enterprise => "Enterprise",
            PeeringDbType::NonProfit => "Non-profit",
        }
    }

    /// The reviewed NAICSlite mapping used when ASdb ingests a PeeringDB
    /// label.
    pub fn to_naicslite(self) -> CategorySet {
        match self {
            PeeringDbType::CableDslIsp | PeeringDbType::NetworkServiceProvider => {
                CategorySet::single(known::isp())
            }
            PeeringDbType::Content => {
                let mut s = CategorySet::single(known::hosting());
                s.insert(known::online_content());
                s
            }
            PeeringDbType::EducationResearch => {
                let mut s = CategorySet::single(known::universities());
                s.insert(known::research_orgs());
                s
            }
            PeeringDbType::Enterprise => CategorySet::single(Layer1::Service),
            PeeringDbType::NonProfit => CategorySet::single(Layer1::Nonprofits),
        }
    }

    /// Whether this label is the ISP signal the Figure 4 pipeline treats as
    /// a high-confidence match ("only if PeeringDB returns an ISP label").
    pub fn is_isp_signal(self) -> bool {
        matches!(
            self,
            PeeringDbType::CableDslIsp | PeeringDbType::NetworkServiceProvider
        )
    }

    /// The §5.2 comparison mapping: PeeringDB types projected onto IPinfo's
    /// four-way scheme ("we map PeeringDB's content, enterprise and
    /// non-profit, education, and all remaining categories to IPinfo's
    /// hosting, business, education, and ISP categories, respectively").
    pub fn comparison_class(self) -> IpinfoType {
        match self {
            PeeringDbType::Content => IpinfoType::Hosting,
            PeeringDbType::Enterprise | PeeringDbType::NonProfit => IpinfoType::Business,
            PeeringDbType::EducationResearch => IpinfoType::Education,
            _ => IpinfoType::Isp,
        }
    }
}

impl fmt::Display for PeeringDbType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// IPinfo
// ---------------------------------------------------------------------------

/// IPinfo's four-way AS classification (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpinfoType {
    /// Internet service provider.
    Isp,
    /// Hosting / cloud provider.
    Hosting,
    /// Educational institution.
    Education,
    /// Everything else.
    Business,
}

impl IpinfoType {
    /// All four types.
    pub const ALL: [IpinfoType; 4] = [
        IpinfoType::Isp,
        IpinfoType::Hosting,
        IpinfoType::Education,
        IpinfoType::Business,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IpinfoType::Isp => "isp",
            IpinfoType::Hosting => "hosting",
            IpinfoType::Education => "education",
            IpinfoType::Business => "business",
        }
    }

    /// Reviewed NAICSlite mapping for ingestion.
    pub fn to_naicslite(self) -> CategorySet {
        match self {
            IpinfoType::Isp => CategorySet::single(known::isp()),
            IpinfoType::Hosting => CategorySet::single(known::hosting()),
            IpinfoType::Education => CategorySet::single(known::universities()),
            // "Business" is deliberately broad: a bare layer-1-less marker
            // is unrepresentable, so the mapping is the generic Service L1.
            IpinfoType::Business => CategorySet::single(Layer1::Service),
        }
    }

    /// The §5.2 evaluation projection: NAICSlite → IPinfo's scheme. "We map
    /// IPinfo and NAICSlite's hosting, ISP, and education categories to each
    /// other, and also map all other 92 NAICSlite categories to IPinfo's
    /// business."
    pub fn project(cats: &CategorySet) -> Option<IpinfoType> {
        if cats.is_empty() {
            return None;
        }
        let l2s = cats.layer2s();
        if l2s.contains(&known::isp()) {
            Some(IpinfoType::Isp)
        } else if l2s.contains(&known::hosting()) {
            Some(IpinfoType::Hosting)
        } else if cats.layer1s().contains(&Layer1::Education) {
            Some(IpinfoType::Education)
        } else {
            Some(IpinfoType::Business)
        }
    }
}

impl fmt::Display for IpinfoType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Table-driven schemes: Crunchbase, Zvelo, Clearbit
// ---------------------------------------------------------------------------

/// A category in a table-driven custom scheme, with its reviewed NAICSlite
/// mapping.
#[derive(Debug, Clone)]
pub struct SchemeCategory {
    /// The source's own category name.
    pub name: &'static str,
    /// NAICSlite categories this maps to: `(Layer1, Some(index))` for a
    /// layer-2 mapping, `(Layer1, None)` for layer-1 only.
    pub targets: &'static [(Layer1, Option<u8>)],
}

impl SchemeCategory {
    /// Materialize the NAICSlite mapping.
    pub fn to_naicslite(&self) -> CategorySet {
        let mut set = CategorySet::new();
        for (l1, idx) in self.targets {
            match idx {
                Some(i) => {
                    if let Some(l2) = Layer2::new(*l1, *i) {
                        set.insert(Category::l2(l2));
                    }
                }
                None => set.insert(Category::l1(*l1)),
            }
        }
        set
    }
}

/// A named custom classification scheme.
#[derive(Debug, Clone)]
pub struct Scheme {
    /// The owning data source's name.
    pub source: &'static str,
    /// Its categories.
    pub categories: &'static [SchemeCategory],
}

impl Scheme {
    /// Look up a category by name (case-insensitive).
    pub fn category(&self, name: &str) -> Option<&SchemeCategory> {
        self.categories
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Scheme categories whose mapping covers the given NAICSlite category —
    /// the candidates a source drawing from this scheme could emit for an
    /// organization of that type.
    pub fn covering(&self, cat: Category) -> Vec<&SchemeCategory> {
        self.categories
            .iter()
            .filter(|c| {
                let set = c.to_naicslite();
                match cat.layer2 {
                    Some(l2) => set.layer2s().contains(&l2),
                    None => set.layer1s().contains(&cat.layer1),
                }
            })
            .collect()
    }

    /// Scheme categories that at least share the layer-1 category.
    pub fn covering_l1(&self, l1: Layer1) -> Vec<&SchemeCategory> {
        self.categories
            .iter()
            .filter(|c| c.to_naicslite().layer1s().contains(&l1))
            .collect()
    }
}

use Layer1::*;

macro_rules! cat {
    ($name:literal => $($l1:ident $idx:tt),+) => {
        SchemeCategory {
            name: $name,
            targets: &[$( ($l1, cat!(@idx $idx)) ),+],
        }
    };
    (@idx _) => { None };
    (@idx $i:literal) => { Some($i) };
}

/// Crunchbase's category groups (a representative subset of the real ~45;
/// Crunchbase "focuses more on startups and specifically US companies").
pub static CRUNCHBASE: Scheme = Scheme {
    source: "Crunchbase",
    categories: &[
        cat!("Internet Services" => ComputerAndIT 0, ComputerAndIT 2, ComputerAndIT 9),
        cat!("Information Technology" => ComputerAndIT 9, ComputerAndIT 4),
        cat!("Software" => ComputerAndIT 4),
        cat!("Privacy and Security" => ComputerAndIT 3),
        cat!("Hardware" => Manufacturing 5),
        cat!("Telecommunications" => ComputerAndIT 0, ComputerAndIT 1, ComputerAndIT 6),
        cat!("Cloud Infrastructure" => ComputerAndIT 2),
        cat!("Search Engine" => ComputerAndIT 7),
        cat!("Consulting" => Service 0, ComputerAndIT 5),
        cat!("Media and Entertainment" => Media _, Entertainment _),
        cat!("Music and Audio" => Media 0, Media 3),
        cat!("Video" => Media 0, Media 3),
        cat!("Publishing" => Media 2),
        cat!("Financial Services" => Finance _),
        cat!("Banking" => Finance 0),
        cat!("Insurance" => Finance 1),
        cat!("Payments" => Finance 4),
        cat!("Venture Capital" => Finance 3),
        cat!("Education" => Education _),
        cat!("EdTech" => Education 4),
        cat!("Science and Engineering" => Education 3),
        cat!("Health Care" => HealthCare _),
        cat!("Biotechnology" => HealthCare 1, Manufacturing 4),
        cat!("Agriculture and Farming" => Agriculture 0, Agriculture 4),
        cat!("Mining" => Agriculture 2),
        cat!("Energy" => Utilities 0, Agriculture 2),
        cat!("Natural Resources" => Agriculture 2, Agriculture 3),
        cat!("Real Estate" => Construction 2),
        cat!("Construction" => Construction 0, Construction 1),
        cat!("Government and Military" => Government _),
        cat!("Non Profit" => Nonprofits _),
        cat!("Transportation" => Freight _, Travel _),
        cat!("Logistics" => Freight 4, Freight 0),
        cat!("Travel and Tourism" => Travel _),
        cat!("Food and Beverage" => Travel 6, Manufacturing 1),
        cat!("Retail" => Retail _),
        cat!("E-Commerce" => Retail 2),
        cat!("Fashion" => Retail 1, Manufacturing 2),
        cat!("Manufacturing" => Manufacturing _),
        cat!("Automotive" => Manufacturing 0),
        cat!("Sports" => Entertainment 1),
        cat!("Gaming" => Entertainment 4, ComputerAndIT 4),
        cat!("Utilities" => Utilities _),
        cat!("Professional Services" => Service 0),
        cat!("Events" => Entertainment 1, Service 4),
    ],
};

/// Zvelo's website-content categories (a representative subset of its 100+;
/// Zvelo "runs an existing production-grade machine learning classifier
/// whose goal is to differentiate between over 100 business categories").
pub static ZVELO: Scheme = Scheme {
    source: "Zvelo",
    categories: &[
        cat!("Internet Services" => ComputerAndIT 0, ComputerAndIT 9),
        cat!("Telephony" => ComputerAndIT 1),
        cat!("Web Hosting" => ComputerAndIT 2),
        cat!("Content Delivery" => ComputerAndIT 2, Media 0),
        cat!("Computer and Internet Security" => ComputerAndIT 3),
        cat!("Software Downloads" => ComputerAndIT 4),
        cat!("Technology (General)" => ComputerAndIT 9, ComputerAndIT 5),
        cat!("Search Engines and Portals" => ComputerAndIT 7),
        cat!("Streaming Media" => Media 0),
        cat!("News and Media" => Media 1, Media 2),
        cat!("Television and Video" => Media 4, Media 3),
        cat!("Radio" => Media 4),
        cat!("Banking" => Finance 0),
        cat!("Finance and Insurance" => Finance _),
        cat!("Accounting" => Finance 2),
        cat!("Investing" => Finance 3),
        cat!("Education" => Education _),
        cat!("Universities and Colleges" => Education 1),
        cat!("K-12 Schools" => Education 0),
        cat!("Research Institutions" => Education 3),
        cat!("Legal Services" => Service 0),
        cat!("Business Services" => Service 0, Service 4),
        cat!("Home and Garden" => Service 1),
        cat!("Beauty and Personal Care" => Service 2),
        cat!("Social Services" => Service 3),
        cat!("Agriculture" => Agriculture 0, Agriculture 4),
        cat!("Oil, Gas and Mining" => Agriculture 2),
        cat!("Religion" => Nonprofits 0),
        cat!("Advocacy Organizations" => Nonprofits 1, Nonprofits 2),
        cat!("Non-Profit and NGOs" => Nonprofits 3),
        cat!("Real Estate" => Construction 2),
        cat!("Construction and Engineering" => Construction 0, Construction 1),
        cat!("Museums and Libraries" => Entertainment 0, Entertainment 3),
        cat!("Sports and Recreation" => Entertainment 1, Entertainment 2),
        cat!("Gambling" => Entertainment 4),
        cat!("Utilities and Energy" => Utilities _),
        cat!("Health and Medicine" => HealthCare _),
        cat!("Hospitals" => HealthCare 0),
        cat!("Travel" => Travel _),
        cat!("Hotels and Accommodation" => Travel 3),
        cat!("Restaurants and Dining" => Travel 6),
        cat!("Shipping and Logistics" => Freight _),
        cat!("Postal Services" => Freight 0),
        cat!("Government" => Government _),
        cat!("Military" => Government 0),
        cat!("Law Enforcement" => Government 1),
        cat!("Shopping" => Retail _),
        cat!("Groceries" => Retail 0),
        cat!("Fashion and Apparel" => Retail 1, Manufacturing 2),
        cat!("Manufacturing (General)" => Manufacturing _),
        cat!("Automotive Industry" => Manufacturing 0),
        cat!("Pharmaceuticals" => Manufacturing 4),
        cat!("Electronics" => Manufacturing 5),
        cat!("Personal Pages and Blogs" => Other 0),
        cat!("Parked Domains" => Other 1),
    ],
};

/// Clearbit's scheme: 2-digit NAICS sector prefixes plus custom tags
/// ("Clearbit provides 2-digit NAICS prefixes and their own custom system",
/// Table 1). The 2-digit granularity is what makes Clearbit's tech recall so
/// poor (6%, Table 4): sector 51 alone cannot distinguish ISPs from TV
/// stations.
pub static CLEARBIT: Scheme = Scheme {
    source: "Clearbit",
    categories: &[
        // Sector-level entries — deliberately coarse.
        cat!("51" => Media 5),
        cat!("52" => Finance 4),
        cat!("54" => Service 0),
        cat!("61" => Education 5),
        cat!("62" => HealthCare 3),
        cat!("22" => Utilities 5),
        cat!("23" => Construction 3),
        cat!("31-33" => Manufacturing 6),
        cat!("44-45" => Retail 2),
        cat!("48-49" => Freight 7),
        cat!("11" => Agriculture 5),
        cat!("21" => Agriculture 2),
        cat!("53" => Construction 2),
        cat!("56" => Service 4),
        cat!("71" => Entertainment 6),
        cat!("72" => Travel 7),
        cat!("81" => Service 4, Nonprofits 3),
        cat!("92" => Government 3),
        // Custom tags.
        cat!("internet" => ComputerAndIT 9),
        cat!("telecommunications" => ComputerAndIT 0, ComputerAndIT 1),
        cat!("information_technology_and_services" => ComputerAndIT 5, ComputerAndIT 9),
        cat!("computer_software" => ComputerAndIT 4),
        cat!("financial_services" => Finance 4),
        cat!("higher_education" => Education 1),
        cat!("hospital_and_health_care" => HealthCare 0),
        cat!("government_administration" => Government 2),
        cat!("nonprofit_organization_management" => Nonprofits 3),
    ],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peeringdb_isp_signal() {
        assert!(PeeringDbType::CableDslIsp.is_isp_signal());
        assert!(PeeringDbType::NetworkServiceProvider.is_isp_signal());
        assert!(!PeeringDbType::Content.is_isp_signal());
    }

    #[test]
    fn peeringdb_mappings_are_sensible() {
        assert!(PeeringDbType::CableDslIsp
            .to_naicslite()
            .layer2s()
            .contains(&known::isp()));
        assert!(PeeringDbType::Content
            .to_naicslite()
            .layer2s()
            .contains(&known::hosting()));
        assert!(PeeringDbType::EducationResearch
            .to_naicslite()
            .layer1s()
            .contains(&Layer1::Education));
    }

    #[test]
    fn peeringdb_comparison_projection() {
        assert_eq!(
            PeeringDbType::Content.comparison_class(),
            IpinfoType::Hosting
        );
        assert_eq!(
            PeeringDbType::Enterprise.comparison_class(),
            IpinfoType::Business
        );
        assert_eq!(
            PeeringDbType::CableDslIsp.comparison_class(),
            IpinfoType::Isp
        );
    }

    #[test]
    fn ipinfo_projection_of_naicslite() {
        assert_eq!(
            IpinfoType::project(&CategorySet::single(known::isp())),
            Some(IpinfoType::Isp)
        );
        assert_eq!(
            IpinfoType::project(&CategorySet::single(known::hosting())),
            Some(IpinfoType::Hosting)
        );
        assert_eq!(
            IpinfoType::project(&CategorySet::single(Layer1::Finance)),
            Some(IpinfoType::Business)
        );
        assert_eq!(IpinfoType::project(&CategorySet::new()), None);
        // ISP takes precedence over hosting when both are present.
        let mut both = CategorySet::single(known::isp());
        both.insert(known::hosting());
        assert_eq!(IpinfoType::project(&both), Some(IpinfoType::Isp));
    }

    #[test]
    fn scheme_lookup_is_case_insensitive() {
        assert!(CRUNCHBASE.category("banking").is_some());
        assert!(ZVELO.category("WEB HOSTING").is_some());
        assert!(CLEARBIT.category("nope").is_none());
    }

    #[test]
    fn scheme_mappings_materialize() {
        let c = ZVELO.category("Web Hosting").unwrap();
        assert!(c.to_naicslite().layer2s().contains(&known::hosting()));
        let c = CRUNCHBASE.category("Internet Services").unwrap();
        let set = c.to_naicslite();
        assert!(set.layer2s().contains(&known::isp()));
        assert!(set.layer2s().contains(&known::hosting()));
    }

    #[test]
    fn every_layer1_is_coverable_by_each_big_scheme() {
        for scheme in [&CRUNCHBASE, &ZVELO] {
            for l1 in Layer1::SUBSTANTIVE {
                assert!(
                    !scheme.covering_l1(l1).is_empty(),
                    "{} cannot express {l1:?}",
                    scheme.source
                );
            }
        }
    }

    #[test]
    fn covering_finds_specific_categories() {
        let covers = ZVELO.covering(Category::l2(known::hosting()));
        assert!(covers.iter().any(|c| c.name == "Web Hosting"));
        let covers = CRUNCHBASE.covering(Category::l2(known::banks()));
        assert!(covers.iter().any(|c| c.name == "Banking"));
    }

    #[test]
    fn scheme_category_names_unique() {
        for scheme in [&CRUNCHBASE, &ZVELO, &CLEARBIT] {
            let mut seen = std::collections::HashSet::new();
            for c in scheme.categories {
                assert!(
                    seen.insert(c.name),
                    "{} has duplicate category {}",
                    scheme.source,
                    c.name
                );
            }
        }
    }

    #[test]
    fn all_scheme_targets_are_valid_layer2_indices() {
        for scheme in [&CRUNCHBASE, &ZVELO, &CLEARBIT] {
            for c in scheme.categories {
                let set = c.to_naicslite();
                // Every target with Some(idx) must have materialized.
                let expected = c.targets.len();
                assert!(
                    set.len() <= expected,
                    "{}/{} lost targets",
                    scheme.source,
                    c.name
                );
                assert!(
                    !set.is_empty(),
                    "{}/{} maps to nothing",
                    scheme.source,
                    c.name
                );
                // And none may have been silently dropped by Layer2::new.
                for (l1, idx) in c.targets {
                    if let Some(i) = idx {
                        assert!(
                            Layer2::new(*l1, *i).is_some(),
                            "{}/{} has invalid index {i} for {l1:?}",
                            scheme.source,
                            c.name
                        );
                    }
                }
            }
        }
    }
}
