//! NAICS → NAICSlite translation (§3.2).
//!
//! "We translate all NAICS categories to NAICSlite … this translation can be
//! done automatically." The translation is longest-prefix based: a 6-digit
//! code first looks for an exact entry, then its 5-, 4-, 3-, and 2-digit
//! prefixes. A single NAICS code may map to *several* NAICSlite categories —
//! that is precisely the ambiguity the paper blames for 58–67% of D&B's and
//! Zvelo's inaccurate matches ("D&B uses three different NAICS codes
//! interchangeably to classify both ISPs and hosting providers: 517911,
//! 541512, and 519190").
//!
//! The reverse direction, [`naics_candidates`], lists plausible NAICS codes
//! for each NAICSlite layer-2 category; the simulated expert labelers and
//! business databases draw from these lists.

use crate::naics::NaicsCode;
use crate::naicslite::{Category, CategorySet, Layer1, Layer2};

/// One translation rule: a NAICS prefix and the NAICSlite categories it
/// implies. More-specific (longer) prefixes win over shorter ones.
struct Rule {
    value: u32,
    digits: u8,
    targets: &'static [(Layer1, Option<u8>)],
}

const fn rule(value: u32, digits: u8, targets: &'static [(Layer1, Option<u8>)]) -> Rule {
    Rule {
        value,
        digits,
        targets,
    }
}

use Layer1::*;

/// The rule table. Order is irrelevant; longest matching prefix wins and all
/// rules of that length apply.
static RULES: &[Rule] = &[
    // ---- Sector-level fallbacks (2 digits) --------------------------------
    rule(11, 2, &[(Agriculture, Some(0))]),
    rule(21, 2, &[(Agriculture, Some(2))]),
    rule(22, 2, &[(Utilities, Some(5))]),
    rule(23, 2, &[(Construction, Some(3))]),
    rule(31, 2, &[(Manufacturing, Some(6))]),
    rule(32, 2, &[(Manufacturing, Some(6))]),
    rule(33, 2, &[(Manufacturing, Some(6))]),
    rule(42, 2, &[(Retail, Some(2))]),
    rule(44, 2, &[(Retail, Some(2))]),
    rule(45, 2, &[(Retail, Some(2))]),
    rule(48, 2, &[(Freight, Some(7))]),
    rule(49, 2, &[(Freight, Some(7))]),
    // Sector 51 ("Information") at 2-digit granularity reads as media /
    // publishing — the reason Clearbit's sector prefixes lose the tech
    // signal (Table 4: 6% tech recall).
    rule(51, 2, &[(Media, Some(5))]),
    rule(52, 2, &[(Finance, Some(4))]),
    rule(53, 2, &[(Construction, Some(2))]),
    rule(54, 2, &[(Service, Some(0))]),
    rule(55, 2, &[(Service, Some(0))]),
    rule(56, 2, &[(Service, Some(4))]),
    rule(61, 2, &[(Education, Some(5))]),
    rule(62, 2, &[(HealthCare, Some(3))]),
    rule(71, 2, &[(Entertainment, Some(6))]),
    rule(72, 2, &[(Travel, Some(7))]),
    rule(81, 2, &[(Service, Some(4))]),
    rule(92, 2, &[(Government, Some(3))]),
    // ---- Agriculture / mining ---------------------------------------------
    rule(111, 3, &[(Agriculture, Some(0))]),
    rule(1114, 4, &[(Agriculture, Some(1))]),
    rule(112, 3, &[(Agriculture, Some(4))]),
    rule(113, 3, &[(Agriculture, Some(3))]),
    rule(212, 3, &[(Agriculture, Some(2))]),
    rule(211, 3, &[(Agriculture, Some(2))]),
    rule(324, 3, &[(Agriculture, Some(2))]),
    // ---- Utilities -----------------------------------------------------------
    rule(2211, 4, &[(Utilities, Some(0))]),
    rule(221121, 6, &[(Utilities, Some(0))]),
    rule(221122, 6, &[(Utilities, Some(0))]),
    rule(22121, 5, &[(Utilities, Some(1))]),
    rule(221210, 6, &[(Utilities, Some(1))]),
    rule(221310, 6, &[(Utilities, Some(2))]),
    rule(221320, 6, &[(Utilities, Some(3))]),
    rule(221330, 6, &[(Utilities, Some(4))]),
    // ---- Construction / real estate --------------------------------------------
    rule(236, 3, &[(Construction, Some(0))]),
    rule(237, 3, &[(Construction, Some(1))]),
    rule(531, 3, &[(Construction, Some(2))]),
    // ---- Manufacturing ------------------------------------------------------------
    rule(3361, 4, &[(Manufacturing, Some(0))]),
    rule(311, 3, &[(Manufacturing, Some(1))]),
    rule(312, 3, &[(Manufacturing, Some(1))]),
    rule(313, 3, &[(Manufacturing, Some(2))]),
    rule(315, 3, &[(Manufacturing, Some(2))]),
    rule(333, 3, &[(Manufacturing, Some(3))]),
    rule(325, 3, &[(Manufacturing, Some(4))]),
    rule(334, 3, &[(Manufacturing, Some(5))]),
    rule(335, 3, &[(Manufacturing, Some(5))]),
    // ---- Retail / wholesale ----------------------------------------------------------
    rule(445, 3, &[(Retail, Some(0))]),
    rule(448, 3, &[(Retail, Some(1))]),
    rule(454110, 6, &[(Retail, Some(2))]),
    // ---- Transportation & postal --------------------------------------------------------
    rule(481, 3, &[(Freight, Some(1)), (Travel, Some(0))]),
    rule(481111, 6, &[(Travel, Some(0))]),
    rule(481212, 6, &[(Freight, Some(1))]),
    rule(482, 3, &[(Freight, Some(2)), (Travel, Some(1))]),
    rule(483, 3, &[(Freight, Some(3)), (Travel, Some(2))]),
    rule(484, 3, &[(Freight, Some(4))]),
    rule(485, 3, &[(Freight, Some(6))]),
    rule(487210, 6, &[(Entertainment, Some(5))]),
    rule(491, 3, &[(Freight, Some(0))]),
    rule(492, 3, &[(Freight, Some(0))]),
    rule(927110, 6, &[(Freight, Some(5))]),
    // ---- Information sector: the interesting part ------------------------------------------
    // ISPs and phone providers share wired-carrier codes — NAICS "combines
    // ISPs and phone providers in one code" (§3.2).
    rule(
        517311,
        6,
        &[(ComputerAndIT, Some(0)), (ComputerAndIT, Some(1))],
    ),
    rule(
        517312,
        6,
        &[(ComputerAndIT, Some(1)), (ComputerAndIT, Some(0))],
    ),
    rule(517410, 6, &[(ComputerAndIT, Some(6))]),
    rule(
        517919,
        6,
        &[
            (ComputerAndIT, Some(0)),
            (ComputerAndIT, Some(8)),
            (ComputerAndIT, Some(9)),
        ],
    ),
    // The three codes D&B uses "interchangeably to classify both ISPs and
    // hosting providers" (§3.3). The *translation* of each code is specific
    // — resellers, systems design, other information services — which is
    // exactly why D&B's interchangeable use of them destroys layer-2
    // accuracy: the translated label lands on the wrong subcategory.
    rule(
        517911,
        6,
        &[(ComputerAndIT, Some(0)), (ComputerAndIT, Some(1))],
    ),
    rule(
        541512,
        6,
        &[(ComputerAndIT, Some(5)), (ComputerAndIT, Some(4))],
    ),
    rule(519190, 6, &[(ComputerAndIT, Some(9))]),
    // "data processing has the same NAICS code as hosting provider" (§3.2).
    rule(
        518210,
        6,
        &[(ComputerAndIT, Some(2)), (ComputerAndIT, Some(9))],
    ),
    rule(
        519130,
        6,
        &[(Media, Some(1)), (Media, Some(0)), (ComputerAndIT, Some(7))],
    ),
    rule(511210, 6, &[(ComputerAndIT, Some(4))]),
    rule(5112, 4, &[(ComputerAndIT, Some(4))]),
    rule(5111, 4, &[(Media, Some(2))]),
    rule(5121, 4, &[(Media, Some(3))]),
    rule(5122, 4, &[(Media, Some(3))]),
    rule(5151, 4, &[(Media, Some(4))]),
    rule(519120, 6, &[(Entertainment, Some(0))]),
    // ---- Professional / technical services ---------------------------------------------------
    rule(
        541511,
        6,
        &[(ComputerAndIT, Some(4)), (ComputerAndIT, Some(5))],
    ),
    rule(
        541513,
        6,
        &[(ComputerAndIT, Some(2)), (ComputerAndIT, Some(5))],
    ),
    rule(541519, 6, &[(ComputerAndIT, Some(9))]),
    rule(541690, 6, &[(Service, Some(0)), (ComputerAndIT, Some(5))]),
    rule(5411, 4, &[(Service, Some(0))]),
    rule(54121, 5, &[(Finance, Some(2))]),
    rule(541611, 6, &[(Service, Some(0))]),
    rule(54171, 5, &[(Education, Some(3))]),
    rule(54172, 5, &[(Education, Some(3))]),
    // ---- Finance ---------------------------------------------------------------------------------
    rule(5221, 4, &[(Finance, Some(0))]),
    rule(5222, 4, &[(Finance, Some(0))]),
    rule(5223, 4, &[(Finance, Some(0))]),
    rule(5241, 4, &[(Finance, Some(1))]),
    rule(5242, 4, &[(Finance, Some(1))]),
    rule(5239, 4, &[(Finance, Some(3))]),
    rule(5251, 4, &[(Finance, Some(3))]),
    // ---- Education -----------------------------------------------------------------------------------
    rule(611110, 6, &[(Education, Some(0))]),
    rule(611310, 6, &[(Education, Some(1))]),
    rule(6114, 4, &[(Education, Some(2))]),
    rule(6115, 4, &[(Education, Some(2))]),
    rule(6116, 4, &[(Education, Some(2))]),
    rule(611420, 6, &[(Education, Some(2)), (Education, Some(4))]),
    // ---- Health care & social assistance ----------------------------------------------------------------
    rule(622, 3, &[(HealthCare, Some(0))]),
    rule(6215, 4, &[(HealthCare, Some(1))]),
    rule(623, 3, &[(HealthCare, Some(2))]),
    rule(621610, 6, &[(HealthCare, Some(2))]),
    rule(624, 3, &[(Service, Some(3))]),
    // ---- Arts & entertainment ---------------------------------------------------------------------------
    rule(712110, 6, &[(Entertainment, Some(3))]),
    rule(712130, 6, &[(Entertainment, Some(3))]),
    rule(7112, 4, &[(Entertainment, Some(1))]),
    rule(7111, 4, &[(Entertainment, Some(1))]),
    rule(713110, 6, &[(Entertainment, Some(2))]),
    rule(713210, 6, &[(Entertainment, Some(4))]),
    rule(713940, 6, &[(Entertainment, Some(2))]),
    // ---- Accommodation & food ------------------------------------------------------------------------------
    rule(721110, 6, &[(Travel, Some(3))]),
    rule(721211, 6, &[(Travel, Some(4))]),
    rule(721310, 6, &[(Travel, Some(5))]),
    rule(722, 3, &[(Travel, Some(6))]),
    // ---- Government -------------------------------------------------------------------------------------------
    rule(928110, 6, &[(Government, Some(0))]),
    rule(9221, 4, &[(Government, Some(1))]),
    rule(921, 3, &[(Government, Some(2))]),
    rule(923, 3, &[(Government, Some(2))]),
    // ---- Nonprofits / religious / advocacy ---------------------------------------------------------------------
    rule(813110, 6, &[(Nonprofits, Some(0))]),
    rule(813311, 6, &[(Nonprofits, Some(1))]),
    rule(813312, 6, &[(Nonprofits, Some(2))]),
    rule(8134, 4, &[(Nonprofits, Some(3))]),
    rule(8133, 4, &[(Nonprofits, Some(1))]),
    // ---- Misc services ---------------------------------------------------------------------------------------------
    rule(5616, 4, &[(Service, Some(1))]),
    rule(5617, 4, &[(Service, Some(1))]),
    rule(8111, 4, &[(Service, Some(1))]),
    rule(8121, 4, &[(Service, Some(2))]),
    rule(8123, 4, &[(Service, Some(2))]),
];

/// Translate a NAICS code to its NAICSlite categories by longest-prefix
/// match. Returns an empty set only for codes in no known sector.
pub fn naics_to_naicslite(code: NaicsCode) -> CategorySet {
    let mut best_len: Option<u8> = None;
    let mut out = CategorySet::new();
    for r in RULES {
        let Ok(prefix) = NaicsCode::new(r.value, r.digits) else {
            continue;
        };
        if r.digits <= code.digits() && prefix.is_prefix_of(code) {
            match best_len {
                Some(l) if r.digits < l => continue,
                Some(l) if r.digits > l => {
                    out = CategorySet::new();
                    best_len = Some(r.digits);
                }
                None => best_len = Some(r.digits),
                _ => {}
            }
            for (l1, idx) in r.targets {
                match idx {
                    Some(i) => {
                        if let Some(l2) = Layer2::new(*l1, *i) {
                            out.insert(Category::l2(l2));
                        }
                    }
                    None => out.insert(Category::l1(*l1)),
                }
            }
        }
    }
    out
}

/// Plausible NAICS codes for a NAICSlite layer-2 category — the codes an
/// expert labeler or business database would assign to an organization of
/// that type. Several categories share codes or have near-synonym siblings;
/// this is deliberate (it reproduces NAICS's redundancy, Figure 1).
pub fn naics_candidates(l2: Layer2) -> Vec<NaicsCode> {
    let codes: &[u32] = match (l2.layer1, l2.index()) {
        (ComputerAndIT, 0) => &[517311, 517911, 517919],
        (ComputerAndIT, 1) => &[517312, 517311],
        (ComputerAndIT, 2) => &[518210, 541513],
        (ComputerAndIT, 3) => &[541512, 541519],
        (ComputerAndIT, 4) => &[511210, 541511],
        (ComputerAndIT, 5) => &[541512, 541511, 541690],
        (ComputerAndIT, 6) => &[517410],
        (ComputerAndIT, 7) => &[519130],
        (ComputerAndIT, 8) => &[517919, 518210],
        (ComputerAndIT, 9) => &[519190, 541519, 518210],
        (Media, 0) => &[512110, 519130],
        (Media, 1) => &[519130],
        (Media, 2) => &[511110, 511130],
        (Media, 3) => &[512110, 512250],
        (Media, 4) => &[515120, 515111],
        (Media, 5) => &[51],
        (Finance, 0) => &[522110, 522210, 522292],
        (Finance, 1) => &[524113, 524210],
        (Finance, 2) => &[541211, 541214],
        (Finance, 3) => &[523920, 525110],
        (Finance, 4) => &[52, 522320],
        (Education, 0) => &[611110],
        (Education, 1) => &[611310],
        (Education, 2) => &[611420, 611691, 611512],
        (Education, 3) => &[541715, 541720],
        (Education, 4) => &[611420],
        (Education, 5) => &[61],
        (Service, 0) => &[541110, 541611, 541690],
        (Service, 1) => &[561720, 561730, 811111],
        (Service, 2) => &[812111, 812310],
        (Service, 3) => &[624221, 624410],
        (Service, 4) => &[56, 81],
        (Agriculture, 0) => &[111110, 112111],
        (Agriculture, 1) => &[111419],
        (Agriculture, 2) => &[212114, 211120, 324110],
        (Agriculture, 3) => &[113310],
        (Agriculture, 4) => &[112111, 112511],
        (Agriculture, 5) => &[11],
        (Nonprofits, 0) => &[813110],
        (Nonprofits, 1) => &[813311, 813410],
        (Nonprofits, 2) => &[813312],
        (Nonprofits, 3) => &[813410, 813311],
        (Construction, 0) => &[236115, 236220],
        (Construction, 1) => &[237310, 237130],
        (Construction, 2) => &[531210, 531110],
        (Construction, 3) => &[23],
        (Entertainment, 0) => &[519120],
        (Entertainment, 1) => &[711211, 711130],
        (Entertainment, 2) => &[713110, 713940],
        (Entertainment, 3) => &[712110, 712130],
        (Entertainment, 4) => &[713210],
        (Entertainment, 5) => &[487210],
        (Entertainment, 6) => &[71],
        (Utilities, 0) => &[221122, 221121],
        (Utilities, 1) => &[221210],
        (Utilities, 2) => &[221310],
        (Utilities, 3) => &[221320],
        (Utilities, 4) => &[221330],
        (Utilities, 5) => &[22],
        (HealthCare, 0) => &[622110],
        (HealthCare, 1) => &[621511],
        (HealthCare, 2) => &[623110, 621610],
        (HealthCare, 3) => &[62],
        (Travel, 0) => &[481111],
        (Travel, 1) => &[482111],
        (Travel, 2) => &[483111],
        (Travel, 3) => &[721110],
        (Travel, 4) => &[721211],
        (Travel, 5) => &[721310],
        (Travel, 6) => &[722511],
        (Travel, 7) => &[72],
        (Freight, 0) => &[491110, 492110],
        (Freight, 1) => &[481212],
        (Freight, 2) => &[482111],
        (Freight, 3) => &[483111],
        (Freight, 4) => &[484121],
        (Freight, 5) => &[927110],
        (Freight, 6) => &[485210],
        (Freight, 7) => &[48, 49],
        (Government, 0) => &[928110],
        (Government, 1) => &[922120],
        (Government, 2) => &[921110, 923130],
        (Government, 3) => &[92],
        (Retail, 0) => &[445110],
        (Retail, 1) => &[448120],
        (Retail, 2) => &[454110, 423430],
        (Manufacturing, 0) => &[336111],
        (Manufacturing, 1) => &[311230],
        (Manufacturing, 2) => &[313210],
        (Manufacturing, 3) => &[333120],
        (Manufacturing, 4) => &[325412],
        (Manufacturing, 5) => &[334111, 334413, 334416, 335911],
        (Manufacturing, 6) => &[31, 33],
        (Other, _) => &[541611],
        _ => &[],
    };
    codes
        .iter()
        .map(|&c| {
            if c < 100 {
                NaicsCode::sector_code(c)
            } else {
                NaicsCode::six(c)
            }
        })
        .collect()
}

/// Whether a NAICSlite layer-2 category's NAICS candidates include a
/// confusable-sibling group (used by the labeler simulation to decide where
/// NAICS-level disagreement can occur).
pub fn has_confusable_naics(l2: Layer2) -> bool {
    naics_candidates(l2)
        .iter()
        .any(|c| crate::naics::confusable_group(*c).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naicslite::known;

    #[test]
    fn cited_ambiguous_codes_translate_to_disjoint_tech_subcategories() {
        // 517911/541512/519190 are all tech codes, but each translates to a
        // *different* layer-2 set — so a source using them interchangeably
        // for ISPs and hosting providers gets layer-2 labels wrong, which
        // is the paper's explanation for D&B's poor tech recall.
        let sets: Vec<_> = [517911u32, 541512, 519190]
            .into_iter()
            .map(|c| naics_to_naicslite(NaicsCode::six(c)))
            .collect();
        for set in &sets {
            assert!(set.layer1s().contains(&Layer1::ComputerAndIT));
        }
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                assert!(
                    !sets[i].overlaps_l2(&sets[j]),
                    "code sets {i} and {j} overlap at layer 2"
                );
            }
        }
        // And only 517911 lands on ISP; none land on hosting.
        assert!(sets[0].layer2s().contains(&known::isp()));
        assert!(!sets[1].layer2s().contains(&known::isp()));
        for set in &sets {
            assert!(!set.layer2s().contains(&known::hosting()));
        }
    }

    #[test]
    fn hosting_and_data_processing_share_a_code() {
        // "data processing has the same NAICS code as hosting provider".
        let set = naics_to_naicslite(NaicsCode::six(518210));
        assert!(set.layer2s().contains(&known::hosting()));
    }

    #[test]
    fn isps_and_phone_share_a_code() {
        let set = naics_to_naicslite(NaicsCode::six(517311));
        let l2s = set.layer2s();
        assert!(l2s.contains(&known::isp()));
        assert!(l2s.contains(&known::phone()));
    }

    #[test]
    fn longest_prefix_wins() {
        // 517911 has an exact rule; sector 51's fallback must not apply.
        let set = naics_to_naicslite(NaicsCode::six(517911));
        assert!(!set.layer1s().contains(&Layer1::Media));
        // An uncatalogued 51xxxx code falls back to the sector rule.
        let set = naics_to_naicslite(NaicsCode::six(516999));
        assert!(!set.is_empty());
    }

    #[test]
    fn every_catalog_code_translates() {
        for (code, _, _) in crate::naics::CATALOG {
            let digits = (code.ilog10() + 1) as u8;
            let c = NaicsCode::new(*code, digits).unwrap();
            let set = naics_to_naicslite(c);
            assert!(!set.is_empty(), "catalog code {code} has no translation");
        }
    }

    #[test]
    fn every_layer2_has_candidates() {
        for l2 in Layer2::all() {
            let cands = naics_candidates(l2);
            assert!(!cands.is_empty(), "{l2} has no NAICS candidates");
        }
    }

    #[test]
    fn candidates_roundtrip_to_their_layer1() {
        // Every candidate code, translated forward, must include its source
        // layer-1 category — otherwise labeler simulation would emit labels
        // the translation layer contradicts.
        for l2 in Layer2::all() {
            if l2.layer1 == Layer1::Other {
                continue; // "Other" borrows a generic services code.
            }
            for c in naics_candidates(l2) {
                let set = naics_to_naicslite(c);
                assert!(
                    set.layer1s().contains(&l2.layer1),
                    "candidate {c} for {l2} translates to {set}"
                );
            }
        }
    }

    #[test]
    fn sumida_example_has_confusable_codes() {
        // Manufacturing > Electronics: the paper's AS56885 example.
        let l2 = Layer2::new(Layer1::Manufacturing, 5).unwrap();
        assert!(has_confusable_naics(l2));
    }

    #[test]
    fn unknown_sector_yields_empty() {
        let set = naics_to_naicslite(NaicsCode::new(99, 2).unwrap());
        assert!(set.is_empty());
    }
}
