//! The NAICSlite classification system (paper §3.2 and Appendix C).
//!
//! NAICSlite is the paper's two-layer simplification of NAICS: 17 top-level
//! ("layer 1") categories and 95 lower-layer ("layer 2") categories, built
//! by collapsing NAICS categories irrelevant to Internet measurement (163
//! retail codes → 3 categories) and expanding the ones that matter (the
//! single NAICS information-technology bucket → ISP / hosting / software /
//! security / …).
//!
//! ## Fidelity note
//!
//! Appendix C as printed enumerates 91 layer-2 entries while the paper body
//! reports 95. We close the gap with three principled expansions, each
//! flagged inline below:
//!
//! 1. *Agriculture, Mining, and Refineries* is printed with a parenthetical
//!    ("Farming, Greenhouses, Mining, Forestry, and Animal Farming") and no
//!    bullet list; we promote the parenthetical to five layer-2 categories
//!    plus "Other" (+6).
//! 2. *Government and Public Administration* is the only multi-entry
//!    category printed without an "Other"; we add one (+1).
//! 3. *Human Rights and Social Advocacy (Human Rights, Environment and
//!    Wildlife Conservation, Other)* carries its own parenthetical split; we
//!    promote "Environment and Wildlife Conservation" to a sibling layer-2
//!    category (+1), and give the top-level *Other* category an
//!    "Uncategorized" sibling (+1).
//!
//! This yields exactly 17 layer-1 and 95 layer-2 categories, matching the
//! paper's headline numbers; a unit test pins both counts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// A NAICSlite layer-1 (top-level) category. 17 variants (Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // Variant names mirror Appendix C titles.
pub enum Layer1 {
    ComputerAndIT,
    Media,
    Finance,
    Education,
    Service,
    Agriculture,
    Nonprofits,
    Construction,
    Entertainment,
    Utilities,
    HealthCare,
    Travel,
    Freight,
    Government,
    Retail,
    Manufacturing,
    Other,
}

impl Layer1 {
    /// All 17 layer-1 categories in Appendix C order.
    pub const ALL: [Layer1; 17] = [
        Layer1::ComputerAndIT,
        Layer1::Media,
        Layer1::Finance,
        Layer1::Education,
        Layer1::Service,
        Layer1::Agriculture,
        Layer1::Nonprofits,
        Layer1::Construction,
        Layer1::Entertainment,
        Layer1::Utilities,
        Layer1::HealthCare,
        Layer1::Travel,
        Layer1::Freight,
        Layer1::Government,
        Layer1::Retail,
        Layer1::Manufacturing,
        Layer1::Other,
    ];

    /// The 16 "substantive" categories the paper uniformly samples over for
    /// the Uniform Gold Standard ("uniformly sub-sampled across all 16
    /// NAICSlite Layer 1 categories", Table 2) — everything but `Other`.
    pub const SUBSTANTIVE: [Layer1; 16] = [
        Layer1::ComputerAndIT,
        Layer1::Media,
        Layer1::Finance,
        Layer1::Education,
        Layer1::Service,
        Layer1::Agriculture,
        Layer1::Nonprofits,
        Layer1::Construction,
        Layer1::Entertainment,
        Layer1::Utilities,
        Layer1::HealthCare,
        Layer1::Travel,
        Layer1::Freight,
        Layer1::Government,
        Layer1::Retail,
        Layer1::Manufacturing,
    ];

    /// Full Appendix C title.
    pub fn title(self) -> &'static str {
        match self {
            Layer1::ComputerAndIT => "Computer and Information Technology",
            Layer1::Media => "Media, Publishing, and Broadcasting",
            Layer1::Finance => "Finance and Insurance",
            Layer1::Education => "Education and Research",
            Layer1::Service => "Service",
            Layer1::Agriculture => "Agriculture, Mining, and Refineries",
            Layer1::Nonprofits => "Community Groups and Nonprofits",
            Layer1::Construction => "Construction and Real Estate",
            Layer1::Entertainment => "Museums, Libraries, and Entertainment",
            Layer1::Utilities => "Utilities (Excluding Internet Service)",
            Layer1::HealthCare => "Health Care Services",
            Layer1::Travel => "Travel and Accommodation",
            Layer1::Freight => "Freight, Shipment, and Postal Services",
            Layer1::Government => "Government and Public Administration",
            Layer1::Retail => "Retail Stores, Wholesale, and E-commerce Sites",
            Layer1::Manufacturing => "Manufacturing",
            Layer1::Other => "Other",
        }
    }

    /// Short stable identifier used in dataset dumps and tables.
    pub fn slug(self) -> &'static str {
        match self {
            Layer1::ComputerAndIT => "tech",
            Layer1::Media => "media",
            Layer1::Finance => "finance",
            Layer1::Education => "education",
            Layer1::Service => "service",
            Layer1::Agriculture => "agriculture",
            Layer1::Nonprofits => "nonprofits",
            Layer1::Construction => "construction",
            Layer1::Entertainment => "entertainment",
            Layer1::Utilities => "utilities",
            Layer1::HealthCare => "healthcare",
            Layer1::Travel => "travel",
            Layer1::Freight => "freight",
            Layer1::Government => "government",
            Layer1::Retail => "retail",
            Layer1::Manufacturing => "manufacturing",
            Layer1::Other => "other",
        }
    }

    /// Whether this is the technology category — the axis the paper's
    /// tech/non-tech breakdowns (Tables 3 and 4) split on.
    pub fn is_tech(self) -> bool {
        self == Layer1::ComputerAndIT
    }

    /// Names of this category's layer-2 subcategories, in Appendix C order.
    pub fn layer2_names(self) -> &'static [&'static str] {
        LAYER2_NAMES[self.ordinal()]
    }

    /// Number of layer-2 subcategories.
    pub fn layer2_count(self) -> u8 {
        self.layer2_names().len() as u8
    }

    /// Iterate this category's layer-2 categories.
    pub fn layer2_iter(self) -> impl Iterator<Item = Layer2> {
        (0..self.layer2_count()).map(move |i| Layer2 {
            layer1: self,
            index: i,
        })
    }

    /// Position in [`Layer1::ALL`].
    pub fn ordinal(self) -> usize {
        Layer1::ALL
            .iter()
            .position(|l| *l == self)
            .expect("Layer1::ALL is exhaustive")
    }
}

impl fmt::Display for Layer1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

impl FromStr for Layer1 {
    type Err = UnknownCategory;

    /// Parse either the slug or the full title (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        Layer1::ALL
            .iter()
            .copied()
            .find(|l| l.slug().eq_ignore_ascii_case(t) || l.title().eq_ignore_ascii_case(t))
            .ok_or_else(|| UnknownCategory(t.chars().take(64).collect()))
    }
}

/// Error returned when a category name cannot be resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCategory(pub String);

impl fmt::Display for UnknownCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown NAICSlite category: {:?}", self.0)
    }
}

impl std::error::Error for UnknownCategory {}

/// Layer-2 name tables, indexed by [`Layer1::ordinal`]. Appendix C verbatim,
/// plus the three documented expansions (see module docs).
static LAYER2_NAMES: [&[&str]; 17] = [
    // Computer and Information Technology (10)
    &[
        "Internet Service Provider (ISP)",
        "Phone Provider",
        "Hosting, Cloud Provider, Data Center, Server Colocation",
        "Computer and Network Security",
        "Software Development",
        "Technology Consulting Services",
        "Satellite Communication",
        "Search Engine",
        "Internet Exchange Point (IXP)",
        "Other",
    ],
    // Media, Publishing, and Broadcasting (6)
    &[
        "Online Music and Video Streaming Services",
        "Online Informational Content",
        "Print Media (Newspapers, Magazines, Books)",
        "Music and Video Industry",
        "Radio and Television Providers",
        "Other",
    ],
    // Finance and Insurance (5)
    &[
        "Banks, Credit Card Companies, Mortgage Providers",
        "Insurance Carriers and Agencies",
        "Accountants, Tax Preparers, Payroll Services",
        "Investment, Portfolio Management, Pensions and Funds",
        "Other",
    ],
    // Education and Research (6)
    &[
        "Elementary and Secondary Schools",
        "Colleges, Universities, and Professional Schools",
        "Other Schools, Instruction, and Exam Preparation",
        "Research and Development Organizations",
        "Education Software",
        "Other",
    ],
    // Service (5)
    &[
        "Law, Business, and Consulting Services",
        "Buildings, Repair, Maintenance",
        "Personal Care and Lifestyle",
        "Social Assistance",
        "Other",
    ],
    // Agriculture, Mining, and Refineries (6) — promoted parenthetical.
    &[
        "Farming and Ranching",
        "Greenhouses and Nurseries",
        "Mining, Quarrying, and Refineries",
        "Forestry and Logging",
        "Animal Production and Aquaculture",
        "Other",
    ],
    // Community Groups and Nonprofits (4) — advocacy parenthetical split.
    &[
        "Churches and Religious Organizations",
        "Human Rights and Social Advocacy",
        "Environment and Wildlife Conservation",
        "Other",
    ],
    // Construction and Real Estate (4)
    &[
        "Buildings (Residential or Commercial)",
        "Civil Engineering Construction",
        "Real Estate (Residential and/or Commercial)",
        "Other",
    ],
    // Museums, Libraries, and Entertainment (7)
    &[
        "Libraries and Archives",
        "Recreation, Sports, and Performing Arts",
        "Amusement Parks, Arcades, Fitness Centers, Other",
        "Museums, Historical Sites, Zoos, Nature Parks",
        "Casinos and Gambling",
        "Tours and Sightseeing",
        "Other",
    ],
    // Utilities (Excluding Internet Service) (6)
    &[
        "Electric Power Generation, Transmission, Distribution",
        "Natural Gas Distribution",
        "Water Supply and Irrigation",
        "Sewage Treatment",
        "Steam and Air-Conditioning Supply",
        "Other",
    ],
    // Health Care Services (4)
    &[
        "Hospitals and Medical Centers",
        "Medical Laboratories and Diagnostic Centers",
        "Nursing, Residential Care, Assisted Living, Home Health Care",
        "Other",
    ],
    // Travel and Accommodation (8)
    &[
        "Air Travel",
        "Railroad Travel",
        "Water Travel",
        "Hotels, Motels, Inns, Other Traveler Accommodation",
        "Recreational Vehicle Parks and Campgrounds",
        "Boarding Houses, Dormitories, Workers' Camps",
        "Food Services and Drinking Places",
        "Other",
    ],
    // Freight, Shipment, and Postal Services (8)
    &[
        "Postal Services and Couriers",
        "Air Transportation",
        "Railroad Transportation",
        "Water Transportation",
        "Trucking",
        "Space, Satellites",
        "Passenger Transit (Car, Bus, Taxi, Subway)",
        "Other",
    ],
    // Government and Public Administration (4) — "Other" added.
    &[
        "Military, Defense, National Security, and Intl. Affairs",
        "Law Enforcement, Public Safety, and Justice",
        "Government and Regulatory Agencies, Administrations, Departments, and Services",
        "Other",
    ],
    // Retail Stores, Wholesale, and E-commerce Sites (3)
    &[
        "Food, Grocery, Beverages",
        "Clothing, Fashion, Luggage",
        "Other",
    ],
    // Manufacturing (7)
    &[
        "Automotive and Transportation",
        "Food, Beverage, and Tobacco",
        "Clothing and Textiles",
        "Machinery",
        "Chemical and Pharmaceutical Manufacturing",
        "Electronics and Computer Components",
        "Other",
    ],
    // Other (2) — "Uncategorized" sibling added.
    &["Individually Owned", "Uncategorized"],
];

/// A NAICSlite layer-2 category: a layer-1 category plus a subcategory index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Layer2 {
    /// Parent layer-1 category.
    pub layer1: Layer1,
    /// Index into [`Layer1::layer2_names`].
    index: u8,
}

impl Layer2 {
    /// Build a layer-2 category, validating the index.
    pub fn new(layer1: Layer1, index: u8) -> Option<Layer2> {
        (index < layer1.layer2_count()).then_some(Layer2 { layer1, index })
    }

    /// The subcategory index within the parent.
    pub fn index(self) -> u8 {
        self.index
    }

    /// The Appendix C name of this subcategory.
    pub fn name(self) -> &'static str {
        self.layer1.layer2_names()[self.index as usize]
    }

    /// Whether this is the parent category's "Other" bucket.
    pub fn is_other(self) -> bool {
        self.name() == "Other"
    }

    /// Find a layer-2 category by (case-insensitive, substring-tolerant)
    /// name under a given parent.
    pub fn by_name(layer1: Layer1, name: &str) -> Option<Layer2> {
        let needle = name.trim().to_lowercase();
        layer1
            .layer2_iter()
            .find(|l2| l2.name().to_lowercase() == needle)
            .or_else(|| {
                layer1
                    .layer2_iter()
                    .find(|l2| l2.name().to_lowercase().contains(&needle))
            })
    }

    /// Iterate all 95 layer-2 categories in Appendix C order.
    pub fn all() -> impl Iterator<Item = Layer2> {
        Layer1::ALL.into_iter().flat_map(Layer1::layer2_iter)
    }
}

impl fmt::Display for Layer2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} > {}", self.layer1.title(), self.name())
    }
}

/// Well-known layer-2 categories referenced throughout the system.
pub mod known {
    use super::{Layer1, Layer2};

    /// Build a constant-like accessor; panics only on programmer error.
    fn l2(l1: Layer1, idx: u8) -> Layer2 {
        Layer2::new(l1, idx).expect("static index valid")
    }

    /// Computer and IT > Internet Service Provider (ISP).
    pub fn isp() -> Layer2 {
        l2(Layer1::ComputerAndIT, 0)
    }
    /// Computer and IT > Phone Provider.
    pub fn phone() -> Layer2 {
        l2(Layer1::ComputerAndIT, 1)
    }
    /// Computer and IT > Hosting, Cloud Provider, Data Center, Colocation.
    pub fn hosting() -> Layer2 {
        l2(Layer1::ComputerAndIT, 2)
    }
    /// Computer and IT > Computer and Network Security.
    pub fn security() -> Layer2 {
        l2(Layer1::ComputerAndIT, 3)
    }
    /// Computer and IT > Software Development.
    pub fn software() -> Layer2 {
        l2(Layer1::ComputerAndIT, 4)
    }
    /// Computer and IT > Technology Consulting Services.
    pub fn tech_consulting() -> Layer2 {
        l2(Layer1::ComputerAndIT, 5)
    }
    /// Computer and IT > Satellite Communication.
    pub fn satellite() -> Layer2 {
        l2(Layer1::ComputerAndIT, 6)
    }
    /// Computer and IT > Search Engine.
    pub fn search_engine() -> Layer2 {
        l2(Layer1::ComputerAndIT, 7)
    }
    /// Computer and IT > Internet Exchange Point (IXP).
    pub fn ixp() -> Layer2 {
        l2(Layer1::ComputerAndIT, 8)
    }
    /// Computer and IT > Other.
    pub fn tech_other() -> Layer2 {
        l2(Layer1::ComputerAndIT, 9)
    }
    /// Education > Colleges, Universities, and Professional Schools.
    pub fn universities() -> Layer2 {
        l2(Layer1::Education, 1)
    }
    /// Education > Research and Development Organizations.
    pub fn research_orgs() -> Layer2 {
        l2(Layer1::Education, 3)
    }
    /// Finance > Banks, Credit Card Companies, Mortgage Providers.
    pub fn banks() -> Layer2 {
        l2(Layer1::Finance, 0)
    }
    /// Finance > Insurance Carriers and Agencies.
    pub fn insurance() -> Layer2 {
        l2(Layer1::Finance, 1)
    }
    /// Utilities > Electric Power Generation, Transmission, Distribution.
    pub fn electric() -> Layer2 {
        l2(Layer1::Utilities, 0)
    }
    /// Government > Government and Regulatory Agencies, ….
    pub fn gov_agencies() -> Layer2 {
        l2(Layer1::Government, 2)
    }
    /// Media > Online Informational Content.
    pub fn online_content() -> Layer2 {
        l2(Layer1::Media, 1)
    }
}

/// A classification label: always a layer-1 category, optionally refined to
/// layer 2. ("We note that NAICSlite layer 2 coverage can be greater than
/// NAICSlite layer 1 coverage" — some gold-standard entries only carry a
/// layer-1 label, Table 8 notes.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Category {
    /// The layer-1 category.
    pub layer1: Layer1,
    /// Optional layer-2 refinement; its `layer1` always equals `self.layer1`.
    pub layer2: Option<Layer2>,
}

impl Category {
    /// A layer-1-only label.
    pub fn l1(layer1: Layer1) -> Category {
        Category {
            layer1,
            layer2: None,
        }
    }

    /// A fully refined label.
    pub fn l2(layer2: Layer2) -> Category {
        Category {
            layer1: layer2.layer1,
            layer2: Some(layer2),
        }
    }

    /// Whether the label carries a layer-2 refinement.
    pub fn has_layer2(self) -> bool {
        self.layer2.is_some()
    }

    /// Drop the layer-2 refinement.
    pub fn coarsened(self) -> Category {
        Category::l1(self.layer1)
    }

    /// Whether this is a technology label.
    pub fn is_tech(self) -> bool {
        self.layer1.is_tech()
    }
}

impl From<Layer1> for Category {
    fn from(l: Layer1) -> Self {
        Category::l1(l)
    }
}

impl From<Layer2> for Category {
    fn from(l: Layer2) -> Self {
        Category::l2(l)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.layer2 {
            Some(l2) => l2.fmt(f),
            None => self.layer1.fmt(f),
        }
    }
}

/// An ordered set of [`Category`] labels, as applied by one labeler or one
/// data source to one AS. ("80% of data source matches assign only one
/// category and a maximum of seven categories are assigned to a single AS",
/// §3.3.)
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CategorySet {
    labels: BTreeSet<Category>,
}

impl CategorySet {
    /// Empty set.
    pub fn new() -> CategorySet {
        CategorySet::default()
    }

    /// Singleton set.
    pub fn single(cat: impl Into<Category>) -> CategorySet {
        let mut s = CategorySet::new();
        s.insert(cat.into());
        s
    }

    /// Insert a label.
    pub fn insert(&mut self, cat: impl Into<Category>) {
        self.labels.insert(cat.into());
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate the labels.
    pub fn iter(&self) -> impl Iterator<Item = Category> + '_ {
        self.labels.iter().copied()
    }

    /// The distinct layer-1 categories present.
    pub fn layer1s(&self) -> BTreeSet<Layer1> {
        self.labels.iter().map(|c| c.layer1).collect()
    }

    /// The distinct layer-2 categories present (labels without a layer-2
    /// refinement contribute nothing).
    pub fn layer2s(&self) -> BTreeSet<Layer2> {
        self.labels.iter().filter_map(|c| c.layer2).collect()
    }

    /// Whether any label is a technology label.
    pub fn any_tech(&self) -> bool {
        self.labels.iter().any(|c| c.is_tech())
    }

    /// Whether any layer-1 category is shared with `other`.
    pub fn overlaps_l1(&self, other: &CategorySet) -> bool {
        let mine = self.layer1s();
        other.layer1s().iter().any(|l| mine.contains(l))
    }

    /// Whether any layer-2 category is shared with `other`.
    pub fn overlaps_l2(&self, other: &CategorySet) -> bool {
        let mine = self.layer2s();
        other.layer2s().iter().any(|l| mine.contains(l))
    }

    /// Union of two sets.
    pub fn union(&self, other: &CategorySet) -> CategorySet {
        CategorySet {
            labels: self.labels.union(&other.labels).copied().collect(),
        }
    }

    /// The labels whose layer-1 appears in both sets — the "union of the
    /// overlapping data sources' categories" ASdb returns on agreement
    /// (§5.1), restricted to agreed layer-1 categories.
    pub fn agreed_with(&self, other: &CategorySet) -> CategorySet {
        let shared: BTreeSet<Layer1> = self
            .layer1s()
            .intersection(&other.layer1s())
            .copied()
            .collect();
        CategorySet {
            labels: self
                .labels
                .union(&other.labels)
                .copied()
                .filter(|c| shared.contains(&c.layer1))
                .collect(),
        }
    }

    /// Whether both sets contain exactly the same labels.
    pub fn complete_overlap(&self, other: &CategorySet) -> bool {
        self.labels == other.labels
    }
}

impl FromIterator<Category> for CategorySet {
    fn from_iter<T: IntoIterator<Item = Category>>(iter: T) -> Self {
        CategorySet {
            labels: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for CategorySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in self.iter() {
            if !first {
                f.write_str("; ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_17_layer1_and_95_layer2() {
        assert_eq!(Layer1::ALL.len(), 17);
        assert_eq!(Layer2::all().count(), 95, "paper reports 95 subcategories");
    }

    #[test]
    fn at_most_9_layer2_per_layer1() {
        // "up to 9 lower-layer categories per top level" (§3.2). Our
        // Computer&IT list has 10 entries including "Other"; the paper's
        // "9" counts substantive subcategories, excluding the Other bucket.
        for l1 in Layer1::ALL {
            let substantive = l1.layer2_iter().filter(|l2| !l2.is_other()).count();
            assert!(
                substantive <= 9,
                "{l1:?} has {substantive} substantive subcategories"
            );
        }
    }

    #[test]
    fn substantive_excludes_other() {
        assert_eq!(Layer1::SUBSTANTIVE.len(), 16);
        assert!(!Layer1::SUBSTANTIVE.contains(&Layer1::Other));
    }

    #[test]
    fn ordinals_are_consistent() {
        for (i, l1) in Layer1::ALL.iter().enumerate() {
            assert_eq!(l1.ordinal(), i);
        }
    }

    #[test]
    fn slug_roundtrip() {
        for l1 in Layer1::ALL {
            assert_eq!(l1.slug().parse::<Layer1>().unwrap(), l1);
            assert_eq!(l1.title().parse::<Layer1>().unwrap(), l1);
        }
        assert!("bogus".parse::<Layer1>().is_err());
    }

    #[test]
    fn layer2_validation() {
        assert!(Layer2::new(Layer1::Retail, 2).is_some());
        assert!(Layer2::new(Layer1::Retail, 3).is_none());
        assert_eq!(known::isp().name(), "Internet Service Provider (ISP)");
        assert!(known::isp().layer1.is_tech());
    }

    #[test]
    fn layer2_by_name() {
        let l2 = Layer2::by_name(Layer1::ComputerAndIT, "hosting").unwrap();
        assert_eq!(l2, known::hosting());
        let exact = Layer2::by_name(Layer1::Retail, "Other").unwrap();
        assert!(exact.is_other());
        assert!(Layer2::by_name(Layer1::Retail, "spaceships").is_none());
    }

    #[test]
    fn category_coarsening() {
        let c = Category::l2(known::hosting());
        assert!(c.has_layer2());
        assert!(c.is_tech());
        let coarse = c.coarsened();
        assert!(!coarse.has_layer2());
        assert_eq!(coarse.layer1, Layer1::ComputerAndIT);
    }

    #[test]
    fn category_set_overlap_semantics() {
        let mut a = CategorySet::new();
        a.insert(known::isp());
        a.insert(Layer1::Media);
        let mut b = CategorySet::new();
        b.insert(known::hosting());
        assert!(a.overlaps_l1(&b)); // both have ComputerAndIT at L1
        assert!(!a.overlaps_l2(&b)); // ISP != hosting at L2
        let mut c = CategorySet::new();
        c.insert(Layer1::Finance);
        assert!(!a.overlaps_l1(&c));
    }

    #[test]
    fn agreed_with_returns_union_restricted_to_shared_l1() {
        let mut dnb = CategorySet::new();
        dnb.insert(known::isp());
        dnb.insert(Layer1::Finance);
        let mut zvelo = CategorySet::new();
        zvelo.insert(known::hosting());
        let agreed = dnb.agreed_with(&zvelo);
        // Finance is not shared, so only the tech labels survive; both
        // tech labels (union) are returned.
        assert_eq!(agreed.layer1s().len(), 1);
        assert_eq!(agreed.layer2s().len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Category::l2(known::isp()).to_string(),
            "Computer and Information Technology > Internet Service Provider (ISP)"
        );
        let set = CategorySet::single(Layer1::Finance);
        assert_eq!(set.to_string(), "Finance and Insurance");
    }

    #[test]
    fn all_layer2_names_unique_within_parent() {
        for l1 in Layer1::ALL {
            let names: BTreeSet<&str> = l1.layer2_names().iter().copied().collect();
            assert_eq!(
                names.len(),
                l1.layer2_names().len(),
                "{l1:?} has duplicate subcategories"
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = Category::l2(known::hosting());
        let json = serde_json::to_string(&c).unwrap();
        let back: Category = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
