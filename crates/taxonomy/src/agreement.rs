//! Inter-labeler agreement metrics (Figure 1).
//!
//! "We define complete overlap to mean that both labels have the exact same
//! set of codes, while ≥ 1 overlap is defined as having one shared label
//! from both labelers." Figure 1 reports these two metrics at the top and
//! low levels for both NAICS and NAICSlite; the NAICSlite system roughly
//! halves disagreement.

use crate::naics::NaicsCode;
use crate::naicslite::CategorySet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A labeler's label set at two granularities, abstracted over the
/// classification system.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LabelSet {
    /// Top-level labels (NAICS 2-digit sectors, or NAICSlite layer 1),
    /// rendered to stable strings for system-agnostic comparison.
    pub top: BTreeSet<String>,
    /// Low-level labels (full NAICS codes, or NAICSlite layer 2).
    pub low: BTreeSet<String>,
}

impl LabelSet {
    /// Build from NAICS codes: top = 2-digit sectors, low = full codes.
    pub fn from_naics(codes: &[NaicsCode]) -> LabelSet {
        LabelSet {
            top: codes.iter().map(|c| c.sector().to_string()).collect(),
            low: codes.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Build from NAICSlite categories: top = layer 1, low = layer 2.
    pub fn from_naicslite(cats: &CategorySet) -> LabelSet {
        LabelSet {
            top: cats.layer1s().iter().map(|l| l.slug().to_owned()).collect(),
            low: cats
                .layer2s()
                .iter()
                .map(|l| format!("{}/{}", l.layer1.slug(), l.index()))
                .collect(),
        }
    }

    /// Whether the labeler provided any low-level refinement.
    pub fn has_low(&self) -> bool {
        !self.low.is_empty()
    }
}

/// Pairwise agreement between two labelers on one AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Agreement {
    /// Exact same set of top-level labels.
    pub complete_top: bool,
    /// Exact same set of low-level labels.
    pub complete_low: bool,
    /// At least one shared top-level label.
    pub any_top: bool,
    /// At least one shared low-level label.
    pub any_low: bool,
}

impl Agreement {
    /// Compare two label sets.
    pub fn between(a: &LabelSet, b: &LabelSet) -> Agreement {
        Agreement {
            complete_top: !a.top.is_empty() && a.top == b.top,
            complete_low: a.has_low() && a.low == b.low,
            any_top: a.top.intersection(&b.top).next().is_some(),
            any_low: a.low.intersection(&b.low).next().is_some(),
        }
    }
}

/// Aggregated agreement fractions over a set of doubly-labeled ASes — one
/// group of four bars in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AgreementStats {
    /// Number of doubly-labeled ASes.
    pub n: usize,
    /// Fraction with complete top-level overlap.
    pub complete_top: f64,
    /// Fraction with complete low-level overlap.
    pub complete_low: f64,
    /// Fraction with ≥1 shared top-level label.
    pub any_top: f64,
    /// Fraction with ≥1 shared low-level label.
    pub any_low: f64,
}

impl AgreementStats {
    /// Aggregate pairwise agreements.
    pub fn aggregate<I: IntoIterator<Item = Agreement>>(pairs: I) -> AgreementStats {
        let mut n = 0usize;
        let (mut ct, mut cl, mut at, mut al) = (0usize, 0usize, 0usize, 0usize);
        for a in pairs {
            n += 1;
            ct += usize::from(a.complete_top);
            cl += usize::from(a.complete_low);
            at += usize::from(a.any_top);
            al += usize::from(a.any_low);
        }
        let frac = |x: usize| if n == 0 { 0.0 } else { x as f64 / n as f64 };
        AgreementStats {
            n,
            complete_top: frac(ct),
            complete_low: frac(cl),
            any_top: frac(at),
            any_low: frac(al),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naicslite::{known, Layer1};

    #[test]
    fn naics_topcode_is_sector() {
        let a = LabelSet::from_naics(&[NaicsCode::six(517911)]);
        assert!(a.top.contains("51"));
        assert!(a.low.contains("517911"));
    }

    #[test]
    fn sumida_example_disagrees_low_agrees_top() {
        // The paper's AS56885: 335911 vs 334416 — same sector (33),
        // different codes → "no overlap in labelers' NAICS codes despite
        // researchers sharing semantic agreement".
        let a = LabelSet::from_naics(&[NaicsCode::six(335911)]);
        let b = LabelSet::from_naics(&[NaicsCode::six(334416)]);
        let agr = Agreement::between(&a, &b);
        assert!(agr.any_top);
        assert!(!agr.any_low);
        assert!(!agr.complete_low);
    }

    #[test]
    fn naicslite_collapses_the_disagreement() {
        // Both labelers pick Manufacturing > Electronics in NAICSlite.
        let l2 = crate::naicslite::Layer2::new(Layer1::Manufacturing, 5).unwrap();
        let a = LabelSet::from_naicslite(&CategorySet::single(l2));
        let b = LabelSet::from_naicslite(&CategorySet::single(l2));
        let agr = Agreement::between(&a, &b);
        assert!(agr.complete_top && agr.complete_low && agr.any_top && agr.any_low);
    }

    #[test]
    fn empty_sets_never_completely_agree() {
        let e = LabelSet::default();
        let agr = Agreement::between(&e, &e);
        assert!(!agr.complete_top);
        assert!(!agr.complete_low);
        assert!(!agr.any_top);
    }

    #[test]
    fn layer1_only_labels_have_no_low() {
        let a = LabelSet::from_naicslite(&CategorySet::single(Layer1::Finance));
        assert!(!a.has_low());
        let b = LabelSet::from_naicslite(&CategorySet::single(known::banks()));
        let agr = Agreement::between(&a, &b);
        assert!(agr.any_top);
        assert!(!agr.any_low);
    }

    #[test]
    fn stats_aggregate_fractions() {
        let full = Agreement {
            complete_top: true,
            complete_low: true,
            any_top: true,
            any_low: true,
        };
        let none = Agreement {
            complete_top: false,
            complete_low: false,
            any_top: false,
            any_low: false,
        };
        let s = AgreementStats::aggregate([full, none, full, none]);
        assert_eq!(s.n, 4);
        assert!((s.complete_top - 0.5).abs() < 1e-12);
        assert!((s.any_low - 0.5).abs() < 1e-12);
        let empty = AgreementStats::aggregate([]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.any_top, 0.0);
    }
}
