//! Regenerate the complete paper evaluation — every table and figure — at
//! standard scale and print the full report.
//!
//! ```sh
//! cargo run --release --example paper_report
//! ```
//!
//! `EXPERIMENTS.md` records this output against the paper's numbers.

use asdb_eval::{experiments, ExperimentContext};
use asdb_model::WorldSeed;
use std::time::Instant;

fn main() {
    let start = Instant::now();
    eprintln!("Building standard experiment context (world + sources + ML)...");
    let ctx = ExperimentContext::standard(WorldSeed::DEFAULT);
    eprintln!("  ready in {:.1}s\n", start.elapsed().as_secs_f64());
    println!("{}", experiments::run_all(&ctx));
    eprintln!("\nTotal: {:.1}s", start.elapsed().as_secs_f64());
}
