//! One entry point per paper table/figure, each returning a rendered text
//! report (and structured data via the underlying modules).
//!
//! The paper-vs-measured comparison these produce is recorded in the
//! repository's `EXPERIMENTS.md`.

use crate::category_eval;
use crate::context::ExperimentContext;
use crate::crowd_eval::{self, consensus_sweep, reward_sweep, wage_tasks};
use crate::entity_eval;
use crate::labeler::LabelerModel;
use crate::ml_eval;
use crate::report::{pct, pct1, TextTable};
use crate::source_eval::{self, AllSources};
use crate::system_eval;
use asdb_core::maintain::Maintainer;
use asdb_model::Date;
use asdb_taxonomy::Layer1;
use asdb_worldgen::churn::{ChurnConfig, ChurnStream};
use asdb_worldgen::scan::{scan_world, telnet_exposure_rate};
use asdb_worldgen::Organization;

/// Figure 1: NAICS vs NAICSlite inter-labeler agreement.
pub fn fig1(ctx: &ExperimentContext) -> String {
    let sample: Vec<&Organization> = ctx.world.orgs.iter().take(600).collect();
    let (naics, lite) =
        LabelerModel::default().agreement_experiment(&sample, ctx.seed.derive("fig1"));
    let mut t = TextTable::new(
        "Figure 1 — labeler agreement (paper: NAICS 71/31/41/18, NAICSlite 92/78/78/73)",
    )
    .header([
        "System",
        ">=1 top",
        ">=1 low",
        "complete top",
        "complete low",
    ]);
    t.row([
        "NAICS".to_owned(),
        pct(naics.any_top),
        pct(naics.any_low),
        pct(naics.complete_top),
        pct(naics.complete_low),
    ]);
    t.row([
        "NAICSlite".to_owned(),
        pct(lite.any_top),
        pct(lite.any_low),
        pct(lite.complete_top),
        pct(lite.complete_low),
    ]);
    t.render()
}

/// Table 2: the four labeled datasets.
pub fn tab2(ctx: &ExperimentContext) -> String {
    let mut t = TextTable::new("Table 2 — labeled ground truth").header([
        "Dataset",
        "ASes",
        "Labeled",
        "With layer 2",
    ]);
    for set in [&ctx.gold, &ctx.uniform, &ctx.test] {
        t.row([
            set.name.to_owned(),
            set.entries.len().to_string(),
            set.labeled_count().to_string(),
            set.layer2_count().to_string(),
        ]);
    }
    t.row([
        "ML training set".to_owned(),
        "225".to_owned(),
        "150 random + 75 hosting".to_owned(),
        "-".to_owned(),
    ]);
    t.render()
}

fn all_sources(ctx: &ExperimentContext) -> AllSources<'_> {
    AllSources::build(&ctx.system.sources, &ctx.world, ctx.seed.derive("dropped"))
}

/// Table 3: external data source coverage.
pub fn tab3(ctx: &ExperimentContext) -> String {
    let s = all_sources(ctx);
    let rows = source_eval::table3(&ctx.world, &ctx.gold, &s);
    let mut t = TextTable::new("Table 3 — external data source coverage (paper: D&B 82%, Zvelo 93%, CB 37%, PDB 15%, IPinfo 30%)")
        .header(["Source", "Coverage", "Tech", "Non-tech"]);
    for r in rows {
        t.row([
            r.source.name().to_owned(),
            r.overall.to_string(),
            r.tech.to_string(),
            r.nontech.to_string(),
        ]);
    }
    let union = source_eval::union_coverage(
        &ctx.world,
        &ctx.gold,
        &s,
        &asdb_sources::SourceId::ASDB_FIVE,
    );
    t.row([
        "All - ZI, CL".to_owned(),
        union.to_string(),
        String::new(),
        String::new(),
    ]);
    t.render()
}

/// Table 4: external data source correctness.
pub fn tab4(ctx: &ExperimentContext) -> String {
    let s = all_sources(ctx);
    let rows = source_eval::table4(&ctx.world, &ctx.gold, &s);
    let mut t = TextTable::new(
        "Table 4 — external data source correctness (paper: D&B L1 96%, hosting 45%, ISP 70%)",
    )
    .header([
        "Source", "L1", "L1 tech", "L1 non", "L2", "L2 tech", "L2 non", "Hosting", "ISP",
    ]);
    for r in rows {
        t.row([
            r.source.name().to_owned(),
            r.l1_overall.to_string(),
            r.l1_tech.to_string(),
            r.l1_nontech.to_string(),
            r.l2_overall.to_string(),
            r.l2_tech.to_string(),
            r.l2_nontech.to_string(),
            r.l2_hosting.to_string(),
            r.l2_isp.to_string(),
        ]);
    }
    t.render()
}

/// Figure 2: D&B confidence-code reliability.
pub fn fig2(ctx: &ExperimentContext) -> String {
    let dist = entity_eval::dnb_confidence_distribution(&ctx.world, &ctx.gold, &ctx.system.sources);
    let mut t = TextTable::new(
        "Figure 2 — D&B match accuracy by confidence code (paper: <50% below 6, >=80% at 6+)",
    )
    .header(["Code", "Accuracy", "Matches"]);
    for (code, acc, n) in dist {
        t.row([code.to_string(), pct(acc), n.to_string()]);
    }
    t.render()
}

/// Table 5: automated entity-resolution accuracy.
pub fn tab5(ctx: &ExperimentContext) -> String {
    let rows = entity_eval::table5(
        &ctx.world,
        &ctx.gold,
        &ctx.system.sources,
        ctx.seed.derive("tab5"),
    );
    let mut t = TextTable::new("Table 5 — automated entity resolution (paper: D&B 83/89%, CB domain 100%, most-similar 91%)")
        .header(["Strategy", "Match acc.", "Correct", "Incorrect", "Missing"]);
    for r in rows {
        t.row([
            r.label,
            pct(r.match_accuracy),
            pct(r.correct),
            pct(r.incorrect),
            pct(r.missing),
        ]);
    }
    t.render()
}

/// Table 6: ML classifier evaluation.
pub fn tab6(ctx: &ExperimentContext) -> String {
    let panels = ml_eval::table6(&ctx.world, &ctx.gold, &ctx.system);
    let mut t = TextTable::new(
        "Table 6 — classifier evaluation (paper: hosting 90%/AUC .80, ISP 94%/AUC .94)",
    )
    .header([
        "Classifier",
        "TP",
        "FN",
        "FP",
        "TN",
        "Accuracy",
        "FP rate",
        "AUC",
    ]);
    for p in panels {
        t.row([
            p.name.to_owned(),
            p.confusion.tp.to_string(),
            p.confusion.fn_.to_string(),
            p.confusion.fp.to_string(),
            p.confusion.tn.to_string(),
            pct(p.confusion.accuracy()),
            pct1(p.confusion.fp_fraction()),
            format!("{:.2}", p.auc),
        ]);
    }
    t.render()
}

/// Table 7: F1 against IPinfo and PeeringDB.
pub fn tab7(ctx: &ExperimentContext) -> String {
    let mut t =
        TextTable::new("Table 7 — F1 vs prior work (paper: ASdb always wins; hosting hardest)")
            .header(["Dataset", "Class", "N", "ASdb", "IPinfo", "PeeringDB"]);
    for set in [&ctx.gold, &ctx.test] {
        for r in system_eval::table7(&ctx.world, set, &ctx.system) {
            t.row([
                set.name.to_owned(),
                r.class.to_string(),
                r.n.to_string(),
                format!("{:.2}", r.asdb),
                format!("{:.2}", r.ipinfo),
                format!("{:.2}", r.peeringdb),
            ]);
        }
    }
    t.render()
}

/// Table 8: ASdb per-stage evaluation over the three datasets.
pub fn tab8(ctx: &ExperimentContext) -> String {
    let mut t = TextTable::new("Table 8 — ASdb stages (paper: overall L1 97/93/89%, L2 87/75/82%)")
        .header(["Dataset", "Stage", "Coverage", "Accuracy"]);
    for set in [&ctx.gold, &ctx.test, &ctx.uniform] {
        let st = system_eval::table8(&ctx.world, set, &ctx.system);
        for (stage, cov, acc) in &st.stages {
            t.row([st.dataset.clone(), stage.clone(), pct(*cov), pct(*acc)]);
        }
        t.row([
            st.dataset.clone(),
            "Overall Layer 1".to_owned(),
            pct(st.layer1.0),
            pct(st.layer1.1),
        ]);
        t.row([
            st.dataset.clone(),
            "Overall Layer 2".to_owned(),
            pct(st.layer2.0),
            pct(st.layer2.1),
        ]);
        t.row([
            st.dataset,
            "Layer 2 tech / non-tech".to_owned(),
            String::new(),
            format!("{} / {}", pct(st.layer2_tech.1), pct(st.layer2_nontech.1)),
        ]);
    }
    t.render()
}

/// Table 9: ASdb supplemented with crowdwork.
pub fn tab9(ctx: &ExperimentContext) -> String {
    let t9 = crowd_eval::table9(&ctx.world, &ctx.test, &ctx.system, ctx.seed.derive("tab9"));
    let mut t = TextTable::new("Table 9 — ASdb + crowdwork (paper: accuracy delta <= +3-4%)")
        .header(["Stage", "N", "Baseline acc.", "Crowd acc."]);
    for r in &t9.rows {
        t.row([
            r.stage.clone(),
            r.n.to_string(),
            pct(r.baseline_accuracy),
            pct(r.crowd_accuracy),
        ]);
    }
    t.row([
        "Overall Layer 1".to_owned(),
        String::new(),
        pct(t9.base_l1_accuracy),
        pct(t9.crowd_l1_accuracy),
    ]);
    t.render()
}

/// Table 10: per-category accuracy/coverage with automated matching.
pub fn tab10(ctx: &ExperimentContext) -> String {
    let rows = category_eval::table10(&ctx.world, &ctx.uniform, &ctx.system);
    let mut header = vec!["Source".to_owned(), "Overall".to_owned()];
    header.extend(Layer1::SUBSTANTIVE.iter().map(|l| l.slug().to_owned()));
    let mut t =
        TextTable::new("Table 10 — per-category accuracy with matching (Uniform Gold Standard)")
            .header(header);
    for r in rows {
        let mut cols = vec![r.label.clone(), r.overall.to_string()];
        for l1 in Layer1::SUBSTANTIVE {
            cols.push(r.per_l1[l1.ordinal()].to_string());
        }
        t.row(cols);
    }
    t.render()
}

/// Table 11: per-category precision with source-agreement combos.
pub fn tab11(ctx: &ExperimentContext) -> String {
    let s = all_sources(ctx);
    let rows = source_eval::table11(&ctx.world, &ctx.uniform, &s);
    let mut t =
        TextTable::new("Table 11 — per-category precision; 2-source agreement ~100% (paper)")
            .header(["Source", "Overall precision", "Covered"]);
    for r in rows {
        t.row([r.label, pct(r.overall.frac()), r.overall.den.to_string()]);
    }
    t.render()
}

/// Figures 5a/5b and 6: the reward sweep.
pub fn fig5_fig6(ctx: &ExperimentContext) -> String {
    let tech = wage_tasks(&ctx.world, &ctx.uniform, Layer1::ComputerAndIT, 20);
    let fin = wage_tasks(&ctx.world, &ctx.uniform, Layer1::Finance, 20);
    let mut t = TextTable::new(
        "Figures 5a/5b/6 — reward sweep (paper: coverage rises, accuracy flat, wages uncorrelated)",
    )
    .header([
        "Tasks",
        "Reward",
        "Coverage",
        "Loose acc.",
        "Strict acc.",
        "Median wage",
    ]);
    for (label, tasks) in [("Technology", &tech), ("Finance", &fin)] {
        if tasks.is_empty() {
            continue;
        }
        for p in reward_sweep(tasks, &format!("fig5-{label}"), ctx.seed.derive("fig5")) {
            t.row([
                label.to_owned(),
                format!("{}c", p.reward_cents),
                pct(p.coverage),
                pct(p.loose_accuracy),
                pct(p.strict_accuracy),
                format!("${:.2}/h", p.median_wage),
            ]);
        }
    }
    t.render()
}

/// Figure 7: the consensus-requirement sweep.
pub fn fig7(ctx: &ExperimentContext) -> String {
    let tech = wage_tasks(&ctx.world, &ctx.uniform, Layer1::ComputerAndIT, 20);
    let mut t =
        TextTable::new("Figure 7 — consensus requirement (paper: 4/5 = +accuracy, -coverage)")
            .header(["Rule", "Coverage", "Loose acc.", "Strict acc."]);
    for p in consensus_sweep(&tech, "fig7", ctx.seed.derive("fig7")) {
        t.row([
            format!("{}/{}", p.rule.k, p.rule.n),
            pct(p.coverage),
            pct(p.loose_accuracy),
            pct(p.strict_accuracy),
        ]);
    }
    t.render()
}

/// §5.3: the maintenance estimate.
pub fn maintenance(ctx: &ExperimentContext) -> String {
    let mut maintainer = Maintainer::new(&ctx.system, &ctx.world);
    let stream = ChurnStream::new(
        ChurnConfig {
            window_days: 28,
            ..ChurnConfig::default()
        },
        ctx.world.asns(),
        ctx.world.orgs.iter().map(|o| o.id).collect(),
        Date::from_ymd(2020, 10, 1).expect("static date"),
        ctx.seed.derive("maintenance"),
    );
    maintainer.run(stream);
    let r = maintainer.report();
    let mut t = TextTable::new("Maintenance (§5.3; paper: ~21 ASes/day, ~140 updates/week)")
        .header(["Metric", "Value"]);
    t.row(["Days simulated".to_owned(), r.days.to_string()]);
    t.row(["New ASes".to_owned(), r.new_ases.to_string()]);
    t.row(["Cache hits".to_owned(), r.cache_hits.to_string()]);
    t.row([
        "Full classifications".to_owned(),
        r.full_classifications.to_string(),
    ]);
    t.row(["Invalidations".to_owned(), r.invalidations.to_string()]);
    t.row([
        "Weekly updates".to_owned(),
        format!("{:.0}", r.weekly_updates()),
    ]);
    t.render()
}

/// §6: the Telnet case study.
pub fn telnet(ctx: &ExperimentContext) -> String {
    let scan = scan_world(&ctx.world, ctx.seed.derive("telnet"));
    let mut per_l1: std::collections::HashMap<Layer1, (usize, usize)> = Default::default();
    for obs in &scan {
        if let Some(org) = ctx.world.org_of(obs.asn) {
            let e = per_l1.entry(org.category.layer1).or_insert((0, 0));
            e.0 += usize::from(obs.telnet);
            e.1 += 1;
        }
    }
    let mut rows: Vec<(Layer1, f64, usize)> = per_l1
        .into_iter()
        .map(|(l1, (hit, n))| (l1, hit as f64 / n.max(1) as f64, n))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut t =
        TextTable::new("§6 — Telnet exposure by industry (paper: critical infrastructure > tech)")
            .header(["Industry", "Telnet rate", "ASes", "Model rate"]);
    for (l1, rate, n) in rows {
        t.row([
            l1.title().to_owned(),
            pct(rate),
            n.to_string(),
            pct(telnet_exposure_rate(l1)),
        ]);
    }
    t.render()
}

/// ML cross-validation + ensemble-size ablation (extension): 5-fold CV of
/// the ISP detector at three ensemble sizes, quantifying the variance
/// behind Table 6's single-split numbers.
pub fn ml_cv_report(ctx: &ExperimentContext) -> String {
    use asdb_taxonomy::naicslite::known;
    use asdb_textml::pipeline::PipelineConfig;
    use asdb_websim::scraper::{scrape, ScrapeConfig};
    use asdb_websim::Translator;

    let translator = Translator::new(0.05, ctx.seed.derive("cv-mt"));
    let mut docs: Vec<String> = Vec::new();
    let mut labels: Vec<bool> = Vec::new();
    for asn in ctx.world.sample_asns(300, "ml-cv") {
        let Some(org) = ctx.world.org_of(asn) else {
            continue;
        };
        let Some(domain) = &org.domain else { continue };
        let Ok(res) = scrape(&ctx.world.web, domain, &ScrapeConfig::default()) else {
            continue;
        };
        docs.push(translator.translate(&res.text));
        labels.push(org.truth().layer2s().contains(&known::isp()));
    }
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();

    let mut t = TextTable::new("ML cross-validation — ISP detector, 5-fold (extension)").header([
        "Ensemble size",
        "Mean accuracy",
        "Std",
        "Mean AUC",
    ]);
    for members in [1usize, 3, 7] {
        let mut cfg = PipelineConfig::asdb_default();
        cfg.n_members = members;
        let cv = asdb_textml::cross_validate(
            &doc_refs,
            &labels,
            5,
            cfg,
            ctx.seed.derive_index("ml-cv", members as u64),
        );
        t.row([
            members.to_string(),
            pct1(cv.mean_accuracy()),
            pct1(cv.accuracy_std()),
            format!("{:.3}", cv.mean_auc()),
        ]);
    }
    t.render()
}

/// §3.4: the disagreement-type analysis (nuanced / blatant / entity).
pub fn disagreement(ctx: &ExperimentContext) -> String {
    let mut t = TextTable::new("Disagreement analysis (§3.4; paper: GS 13% zero-overlap; 6% nuanced, 7% blatant, 14% entity)")
        .header(["Dataset", "Multi-source", "Agreeing", "Nuanced", "Blatant", "Entity"]);
    for set in [&ctx.gold, &ctx.uniform] {
        let a = source_eval::disagreement_analysis(&ctx.world, set, &ctx.system.sources);
        let p = |n: usize| format!("{} ({:.0}%)", n, 100.0 * n as f64 / a.total.max(1) as f64);
        t.row([
            set.name.to_owned(),
            p(a.multi_source),
            p(a.agreeing),
            p(a.nuanced),
            p(a.blatant),
            p(a.entity),
        ]);
    }
    t.render()
}

/// Design-choice ablations (DESIGN.md extension): the Table-8-style
/// evaluation with one pipeline ingredient disabled per arm.
pub fn ablation_report(ctx: &ExperimentContext) -> String {
    let arms = crate::ablations::run_ablations(&ctx.world, &ctx.test, &ctx.system);
    let mut t = TextTable::new("Ablations — what each Figure 4 ingredient contributes (test set)")
        .header(["Arm", "Coverage", "L1 acc.", "L2 acc.", "Hosting recall"]);
    for a in arms {
        t.row([
            a.name,
            pct(a.coverage),
            pct(a.l1_accuracy.frac()),
            pct(a.l2_accuracy.frac()),
            pct(a.hosting_recall.frac()),
        ]);
    }
    t.render()
}

/// Background comparison (§2): prior-work baselines vs ASdb on the gold
/// standard.
pub fn background_report(ctx: &ExperimentContext) -> String {
    let rows = crate::background::compare(&ctx.world, &ctx.gold, &ctx.system, ctx.seed);
    let mut t =
        TextTable::new("Background (§2) — prior work vs ASdb on the gold standard").header([
            "System",
            "Categories",
            "Coverage",
            "Accuracy (own label space)",
        ]);
    for r in rows {
        t.row([
            r.name,
            r.n_categories.to_string(),
            pct(r.coverage.frac()),
            pct(r.accuracy.frac()),
        ]);
    }
    t.render()
}

/// Run every experiment and concatenate the reports — the full paper
/// reproduction.
pub fn run_all(ctx: &ExperimentContext) -> String {
    [
        fig1(ctx),
        tab2(ctx),
        tab3(ctx),
        tab4(ctx),
        fig2(ctx),
        tab5(ctx),
        tab6(ctx),
        tab7(ctx),
        tab8(ctx),
        tab9(ctx),
        tab10(ctx),
        tab11(ctx),
        fig5_fig6(ctx),
        fig7(ctx),
        maintenance(ctx),
        telnet(ctx),
        disagreement(ctx),
        ml_cv_report(ctx),
        background_report(ctx),
        ablation_report(ctx),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    #[test]
    fn every_report_renders_nonempty() {
        let c = ctx();
        for (name, report) in [
            ("fig1", fig1(c)),
            ("tab2", tab2(c)),
            ("fig2", fig2(c)),
            ("tab5", tab5(c)),
            ("tab6", tab6(c)),
            ("fig7", fig7(c)),
            ("telnet", telnet(c)),
        ] {
            assert!(
                report.lines().count() >= 3,
                "{name} report too small:\n{report}"
            );
        }
    }

    #[test]
    fn telnet_report_ranks_infrastructure_over_tech() {
        let c = ctx();
        let report = telnet(c);
        let tech_pos = report.find("Computer and Information Technology").unwrap();
        let util_pos = report.find("Utilities").unwrap();
        assert!(
            util_pos < tech_pos,
            "utilities should rank above tech:\n{report}"
        );
    }
}
