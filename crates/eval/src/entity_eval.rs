//! Automated entity-resolution evaluation: Table 5 and Figure 2.

use crate::goldsets::GoldSet;
use asdb_entity::domain_select::{select_domain, DomainCandidates, DomainStrategy};
use asdb_model::WorldSeed;
use asdb_sources::{DataSource, Query};
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};

/// A Table 5 row: the accuracy of one automated matching strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchingRow {
    /// Strategy label as printed in Table 5.
    pub label: String,
    /// Fraction of returned matches that point at the right entity.
    pub match_accuracy: f64,
    /// Correct matches / all gold ASes.
    pub correct: f64,
    /// Incorrect matches / all gold ASes.
    pub incorrect: f64,
    /// No match returned / all gold ASes.
    pub missing: f64,
}

fn row(label: &str, correct: usize, incorrect: usize, total: usize) -> MatchingRow {
    let returned = correct + incorrect;
    MatchingRow {
        label: label.to_owned(),
        match_accuracy: if returned == 0 {
            0.0
        } else {
            correct as f64 / returned as f64
        },
        correct: correct as f64 / total.max(1) as f64,
        incorrect: incorrect as f64 / total.max(1) as f64,
        missing: (total - returned) as f64 / total.max(1) as f64,
    }
}

/// The D&B rows of Table 5: bulk search filtered at two confidence
/// thresholds.
pub fn dnb_rows(world: &World, gold: &GoldSet, sources: &asdb_core::SourceSet) -> Vec<MatchingRow> {
    let mut out = Vec::new();
    for (label, min_conf) in [("D&B Conf. >=1", 1u8), ("D&B Conf. >=6", 6)] {
        let (mut correct, mut incorrect, mut total) = (0usize, 0usize, 0usize);
        for (entry, _) in gold.labeled() {
            total += 1;
            let rec = world.as_record(entry.asn).expect("record exists");
            let q = Query {
                asn: Some(entry.asn),
                name: Some(rec.parsed.name.clone()),
                domain: None,
                address: rec.parsed.address.clone(),
                phone: rec.parsed.phone.clone(),
            };
            let Some(m) = sources.dnb.search(&q) else {
                continue;
            };
            if m.confidence.map(|c| c.value()).unwrap_or(0) < min_conf {
                continue;
            }
            if m.entity == Some(rec.org) {
                correct += 1;
            } else {
                incorrect += 1;
            }
        }
        out.push(row(label, correct, incorrect, total));
    }
    out
}

/// Figure 2: D&B match accuracy bucketed by confidence code.
pub fn dnb_confidence_distribution(
    world: &World,
    gold: &GoldSet,
    sources: &asdb_core::SourceSet,
) -> Vec<(u8, f64, usize)> {
    let mut buckets: Vec<(usize, usize)> = vec![(0, 0); 11];
    for (entry, _) in gold.labeled() {
        let rec = world.as_record(entry.asn).expect("record exists");
        let q = Query {
            asn: Some(entry.asn),
            name: Some(rec.parsed.name.clone()),
            domain: None,
            address: rec.parsed.address.clone(),
            phone: rec.parsed.phone.clone(),
        };
        if let Some(m) = sources.dnb.search(&q) {
            let code = m.confidence.map(|c| c.value()).unwrap_or(0) as usize;
            buckets[code].1 += 1;
            buckets[code].0 += usize::from(m.entity == Some(rec.org));
        }
    }
    buckets
        .into_iter()
        .enumerate()
        .skip(1)
        .filter(|(_, (_, n))| *n > 0)
        .map(|(code, (ok, n))| (code as u8, ok as f64 / n as f64, n))
        .collect()
}

/// The Crunchbase rows of Table 5: domain query vs tokenized-name query.
pub fn crunchbase_rows(
    world: &World,
    gold: &GoldSet,
    sources: &asdb_core::SourceSet,
) -> Vec<MatchingRow> {
    let mut out = Vec::new();
    // Domain query: scored as entity-resolution precision *for the queried
    // domain* — whether Crunchbase returns the company operating that
    // domain. (Which domain to query is the Domain rows' problem; WHOIS
    // pools legitimately contain upstream-provider domains.)
    let mut domain_owner: std::collections::HashMap<asdb_model::Domain, asdb_model::OrgId> =
        Default::default();
    for org in &world.orgs {
        if let Some(d) = &org.domain {
            domain_owner.insert(d.registrable(), org.id);
        }
    }
    let (mut correct, mut incorrect, mut total) = (0usize, 0usize, 0usize);
    for (entry, _) in gold.labeled() {
        total += 1;
        let rec = world.as_record(entry.asn).expect("record exists");
        let Some(domain) = rec.parsed.candidate_domains().into_iter().next() else {
            continue;
        };
        if let Some(m) = sources.crunchbase.search(&Query::by_domain(domain.clone())) {
            let owner = domain_owner.get(&domain.registrable()).copied();
            if m.entity.is_some() && m.entity == owner {
                correct += 1;
            } else {
                incorrect += 1;
            }
        }
    }
    out.push(row("Crunchbase Domain", correct, incorrect, total));
    // Tokenized-name query.
    let (mut correct, mut incorrect, mut total) = (0usize, 0usize, 0usize);
    for (entry, _) in gold.labeled() {
        total += 1;
        let rec = world.as_record(entry.asn).expect("record exists");
        if let Some(m) = sources.crunchbase.search(&Query::by_name(&rec.parsed.name)) {
            if m.entity == Some(rec.org) {
                correct += 1;
            } else {
                incorrect += 1;
            }
        }
    }
    out.push(row("Crunchbase Name", correct, incorrect, total));
    out
}

/// The domain-selection rows of Table 5 (random / least common / most
/// similar) plus the IPinfo row.
pub fn domain_rows(
    world: &World,
    gold: &GoldSet,
    sources: &asdb_core::SourceSet,
    seed: WorldSeed,
) -> Vec<MatchingRow> {
    let mut out = Vec::new();
    for (label, strategy) in [
        ("Domain Random", DomainStrategy::Random),
        ("Domain Least Common", DomainStrategy::LeastCommon),
        ("Domain Most Similar", DomainStrategy::MostSimilar),
    ] {
        let (mut correct, mut incorrect, mut total) = (0usize, 0usize, 0usize);
        for (entry, _) in gold.labeled() {
            total += 1;
            let rec = world.as_record(entry.asn).expect("record exists");
            let org = world.org_of(entry.asn).expect("owner exists");
            let pool: Vec<_> = rec
                .parsed
                .candidate_domains()
                .into_iter()
                .map(|d| {
                    let c = world.domain_as_count(&d).max(1);
                    (d, c)
                })
                .collect();
            let candidates = DomainCandidates::new(pool);
            if let Some(d) =
                select_domain(&candidates, &rec.parsed.name, strategy, &world.web, seed)
            {
                let right = org
                    .domain
                    .as_ref()
                    .map(|od| od.registrable() == d.registrable())
                    .unwrap_or(false);
                if right {
                    correct += 1;
                } else {
                    incorrect += 1;
                }
            }
        }
        out.push(row(label, correct, incorrect, total));
    }
    // IPinfo row: how often its ASN-indexed entity is the right one.
    let (mut correct, mut incorrect, mut total) = (0usize, 0usize, 0usize);
    for (entry, _) in gold.labeled() {
        total += 1;
        let rec = world.as_record(entry.asn).expect("record exists");
        if let Some(m) = sources.ipinfo.search(&Query::by_asn(entry.asn)) {
            if m.entity == Some(rec.org) {
                correct += 1;
            } else {
                incorrect += 1;
            }
        }
    }
    out.push(row("IPinfo", correct, incorrect, total));
    out
}

/// The whole of Table 5.
pub fn table5(
    world: &World,
    gold: &GoldSet,
    sources: &asdb_core::SourceSet,
    seed: WorldSeed,
) -> Vec<MatchingRow> {
    let mut rows = dnb_rows(world, gold, sources);
    rows.extend(crunchbase_rows(world, gold, sources));
    rows.extend(domain_rows(world, gold, sources, seed));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    #[test]
    fn dnb_confidence_threshold_trades_coverage_for_accuracy() {
        let c = ctx();
        let rows = dnb_rows(&c.world, &c.gold, &c.system.sources);
        let any = &rows[0];
        let conf6 = &rows[1];
        assert!(
            conf6.match_accuracy >= any.match_accuracy,
            "thresholding must help accuracy"
        );
        assert!(
            conf6.missing >= any.missing,
            "thresholding must cost coverage"
        );
        assert!(
            any.match_accuracy > 0.7,
            "conf>=1 accuracy = {}",
            any.match_accuracy
        );
    }

    #[test]
    fn figure2_low_codes_are_unreliable() {
        let c = ctx();
        let dist = dnb_confidence_distribution(&c.world, &c.gold, &c.system.sources);
        assert!(!dist.is_empty());
        let high: Vec<_> = dist.iter().filter(|(code, _, _)| *code >= 8).collect();
        assert!(!high.is_empty());
        for (code, acc, _) in &high {
            assert!(*acc >= 0.7, "code {code} accuracy {acc}");
        }
        // Weighted accuracy above vs below the threshold.
        let wacc = |pred: &dyn Fn(u8) -> bool| {
            let (mut ok, mut n) = (0.0, 0usize);
            for (code, acc, count) in &dist {
                if pred(*code) {
                    ok += acc * *count as f64;
                    n += count;
                }
            }
            (ok / n.max(1) as f64, n)
        };
        let (hi, _) = wacc(&|c| c >= 6);
        let (lo, lo_n) = wacc(&|c| c < 6);
        assert!(hi >= 0.8, "conf>=6 accuracy = {hi}");
        if lo_n >= 5 {
            assert!(lo < hi, "low-confidence should be worse: {lo} vs {hi}");
        }
    }

    #[test]
    fn crunchbase_domain_matching_is_precise() {
        let c = ctx();
        let rows = crunchbase_rows(&c.world, &c.gold, &c.system.sources);
        let domain = &rows[0];
        assert!(
            domain.match_accuracy > 0.95,
            "domain accuracy = {}",
            domain.match_accuracy
        );
        assert!(domain.missing > 0.5, "crunchbase coverage must be low");
    }

    #[test]
    fn most_similar_beats_random(/* Table 5's key comparison */) {
        let c = ctx();
        let rows = domain_rows(&c.world, &c.gold, &c.system.sources, c.seed);
        let by = |l: &str| rows.iter().find(|r| r.label.contains(l)).unwrap();
        let random = by("Random");
        let least = by("Least Common");
        let similar = by("Most Similar");
        assert!(
            similar.match_accuracy >= random.match_accuracy,
            "similar {} vs random {}",
            similar.match_accuracy,
            random.match_accuracy
        );
        assert!(
            least.match_accuracy >= random.match_accuracy,
            "least {} vs random {}",
            least.match_accuracy,
            random.match_accuracy
        );
        assert!(
            similar.match_accuracy > 0.75,
            "similar = {}",
            similar.match_accuracy
        );
    }
}
