//! The four labeled datasets of Table 2.

use crate::labeler::LabelerModel;
use asdb_model::{Asn, WorldSeed};
use asdb_taxonomy::{CategorySet, Layer1};
use asdb_worldgen::World;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One labeled AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldEntry {
    /// The AS.
    pub asn: Asn,
    /// The researchers' resolved NAICSlite labels; `None` when the pair
    /// could not classify the AS at all.
    pub labels: Option<CategorySet>,
}

impl GoldEntry {
    /// Whether the entry carries a layer-2 refinement.
    pub fn has_layer2(&self) -> bool {
        self.labels
            .as_ref()
            .map(|l| !l.layer2s().is_empty())
            .unwrap_or(false)
    }
}

/// A labeled dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldSet {
    /// Dataset name (Table 2's rows).
    pub name: &'static str,
    /// The labeled entries.
    pub entries: Vec<GoldEntry>,
}

impl GoldSet {
    /// Entries the researchers could label.
    pub fn labeled(&self) -> impl Iterator<Item = (&GoldEntry, &CategorySet)> {
        self.entries
            .iter()
            .filter_map(|e| e.labels.as_ref().map(|l| (e, l)))
    }

    /// Number of labelable entries (e.g. 148 of the 150 Gold Standard).
    pub fn labeled_count(&self) -> usize {
        self.labeled().count()
    }

    /// Number of entries with layer-2 gold labels (Table 8's 142/141/189).
    pub fn layer2_count(&self) -> usize {
        self.entries.iter().filter(|e| e.has_layer2()).count()
    }

    /// Build the "Gold Standard": 150 random ASes, expert-labeled
    /// (Table 2 row 1).
    pub fn gold_standard(world: &World, seed: WorldSeed) -> GoldSet {
        Self::random_sample(world, seed, "gold-standard", "Gold Standard", 150)
    }

    /// Build the "new test set": 150 *different* random ASes labeled the
    /// same way — "a fresh, random sample of ASes that provides a fairer
    /// evaluation" (Table 2 row 4).
    pub fn test_set(world: &World, seed: WorldSeed) -> GoldSet {
        Self::random_sample(world, seed, "test-set", "Test Set", 150)
    }

    fn random_sample(
        world: &World,
        seed: WorldSeed,
        sample_label: &str,
        name: &'static str,
        n: usize,
    ) -> GoldSet {
        let model = LabelerModel::default();
        let entries = world
            .sample_asns(n, sample_label)
            .into_iter()
            .map(|asn| {
                let org = world.org_of(asn).expect("sampled AS has an owner");
                GoldEntry {
                    asn,
                    labels: model.resolved_label(org, seed.derive(sample_label)),
                }
            })
            .collect();
        GoldSet { name, entries }
    }

    /// Build the "Uniform Gold Standard": 320 ASes "uniformly sub-sampled
    /// across all 16 NAICSlite Layer 1 categories" (Table 2 row 2) — 20
    /// per substantive layer-1 category.
    pub fn uniform_gold_standard(world: &World, seed: WorldSeed) -> GoldSet {
        let model = LabelerModel::default();
        let mut rng = StdRng::seed_from_u64(seed.derive("uniform-gold").value());
        let mut entries = Vec::with_capacity(320);
        for l1 in Layer1::SUBSTANTIVE {
            let mut pool = world.asns_in_layer1(l1);
            let take = 20.min(pool.len());
            for _ in 0..take {
                let i = rng.random_range(0..pool.len());
                let asn = pool.swap_remove(i);
                let org = world.org_of(asn).expect("owner exists");
                entries.push(GoldEntry {
                    asn,
                    labels: model.resolved_label(org, seed.derive("uniform-gold")),
                });
            }
        }
        GoldSet {
            name: "Uniform Gold Standard",
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_worldgen::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::standard(WorldSeed::new(101)))
    }

    #[test]
    fn gold_standard_has_150_mostly_labeled() {
        let w = world();
        let gs = GoldSet::gold_standard(&w, WorldSeed::new(1));
        assert_eq!(gs.entries.len(), 150);
        // Paper: 148/150 labelable, 142 with layer-2.
        assert!(
            gs.labeled_count() >= 144,
            "labeled = {}",
            gs.labeled_count()
        );
        assert!(gs.layer2_count() >= 136, "layer2 = {}", gs.layer2_count());
        assert!(gs.layer2_count() <= gs.labeled_count());
    }

    #[test]
    fn test_set_is_disjoint_sample() {
        let w = world();
        let gs = GoldSet::gold_standard(&w, WorldSeed::new(1));
        let ts = GoldSet::test_set(&w, WorldSeed::new(1));
        let gs_asns: std::collections::HashSet<_> = gs.entries.iter().map(|e| e.asn).collect();
        let overlap = ts
            .entries
            .iter()
            .filter(|e| gs_asns.contains(&e.asn))
            .count();
        // Random samples may collide occasionally, but must be essentially
        // disjoint in a 4000-org world.
        assert!(overlap < 10, "overlap = {overlap}");
    }

    #[test]
    fn uniform_set_spans_all_16_categories() {
        let w = world();
        let ugs = GoldSet::uniform_gold_standard(&w, WorldSeed::new(1));
        // The rarest synthetic categories can fall just short of 20 ASes;
        // the builder then takes everything available.
        assert!(ugs.entries.len() >= 310, "entries = {}", ugs.entries.len());
        let mut per_l1: std::collections::HashMap<Layer1, usize> = Default::default();
        for e in &ugs.entries {
            let org = w.org_of(e.asn).unwrap();
            *per_l1.entry(org.category.layer1).or_insert(0) += 1;
        }
        assert_eq!(per_l1.len(), 16, "all 16 substantive categories present");
        for (l1, n) in per_l1 {
            assert!((10..=20).contains(&n), "{l1:?} has {n}");
        }
    }

    #[test]
    fn gold_labels_match_truth_closely() {
        let w = world();
        let gs = GoldSet::gold_standard(&w, WorldSeed::new(1));
        let (mut ok, mut n) = (0usize, 0usize);
        for (entry, labels) in gs.labeled() {
            let truth = w.org_of(entry.asn).unwrap().truth();
            ok += usize::from(labels.overlaps_l1(&truth));
            n += 1;
        }
        assert!(ok as f64 / n as f64 > 0.97);
    }

    #[test]
    fn sets_are_deterministic() {
        let w = world();
        let a = GoldSet::gold_standard(&w, WorldSeed::new(1));
        let b = GoldSet::gold_standard(&w, WorldSeed::new(1));
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.labels, y.labels);
        }
    }
}
