//! Background comparisons (§2): run the prior-work baselines over the same
//! gold standard ASdb is scored on, reproducing the paper's framing that
//! existing classifications are coarse, partially covering, or decayed.

use crate::goldsets::GoldSet;
use crate::source_eval::Ratio;
use asdb_baselines::baumann::BaumannClassifier;
use asdb_baselines::caida::{CaidaClass, CaidaClassifier};
use asdb_baselines::topo::{TopoClass, TopoClassifier};
use asdb_core::AsdbSystem;
use asdb_model::WorldSeed;
use asdb_worldgen::topology::AsGraph;
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};

/// One baseline's scorecard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRow {
    /// System name.
    pub name: String,
    /// Label-space size (how many categories it can express).
    pub n_categories: usize,
    /// Coverage over gold ASes.
    pub coverage: Ratio,
    /// Accuracy over covered ASes, in that system's own label space.
    pub accuracy: Ratio,
}

/// Run all §2 baselines plus ASdb over a gold set.
pub fn compare(
    world: &World,
    set: &GoldSet,
    system: &AsdbSystem,
    seed: WorldSeed,
) -> Vec<BaselineRow> {
    let graph = AsGraph::generate(world, seed.derive("baseline-topology"));
    let caida = CaidaClassifier;
    let baumann = BaumannClassifier;
    let topo = TopoClassifier::default();

    let mut caida_row = BaselineRow {
        name: "CAIDA (Dimitropoulos et al.)".into(),
        n_categories: 3,
        coverage: Ratio::default(),
        accuracy: Ratio::default(),
    };
    let mut baumann_row = BaselineRow {
        name: "Baumann & Fabian".into(),
        n_categories: 10,
        coverage: Ratio::default(),
        accuracy: Ratio::default(),
    };
    let mut topo_row = BaselineRow {
        name: "Topological (Dhamdhere & Dovrolis)".into(),
        n_categories: 5,
        coverage: Ratio::default(),
        accuracy: Ratio::default(),
    };
    let mut asdb_row = BaselineRow {
        name: "ASdb".into(),
        n_categories: 95,
        coverage: Ratio::default(),
        accuracy: Ratio::default(),
    };

    for (entry, labels) in set.labeled() {
        let rec = world.as_record(entry.asn).expect("record exists");

        // CAIDA three-way.
        match caida.classify(&rec.parsed) {
            Some(pred) => {
                caida_row.coverage.add(true);
                caida_row.accuracy.add(pred == CaidaClass::project(labels));
            }
            None => caida_row.coverage.add(false),
        }
        // Baumann ten-way.
        match baumann.classify(&rec.parsed) {
            Some(pred) => {
                baumann_row.coverage.add(true);
                baumann_row.accuracy.add(pred.matches(labels));
            }
            None => baumann_row.coverage.add(false),
        }
        // Topological five-way (always emits a class).
        topo_row.coverage.add(true);
        let pred = topo.classify(&graph, entry.asn);
        topo_row
            .accuracy
            .add(pred.matches(TopoClass::project(labels)));

        // ASdb, scored at layer 1 — the strictest common footing available
        // (the baselines cannot express layer 2 at all).
        let c = system.classify(&rec.parsed);
        if c.is_classified() {
            asdb_row.coverage.add(true);
            asdb_row.accuracy.add(c.categories.overlaps_l1(labels));
        } else {
            asdb_row.coverage.add(false);
        }
    }
    vec![caida_row, baumann_row, topo_row, asdb_row]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    fn rows() -> &'static Vec<BaselineRow> {
        static ROWS: OnceLock<Vec<BaselineRow>> = OnceLock::new();
        ROWS.get_or_init(|| {
            let c = ctx();
            compare(&c.world, &c.gold, &c.system, c.seed)
        })
    }

    #[test]
    fn asdb_has_the_richest_label_space_and_best_coverage() {
        let asdb = rows().iter().find(|r| r.name == "ASdb").unwrap();
        for r in rows() {
            assert!(asdb.n_categories >= r.n_categories);
            assert!(
                asdb.coverage.frac() >= r.coverage.frac() - 0.05,
                "{} covers more than ASdb: {} vs {}",
                r.name,
                r.coverage.frac(),
                asdb.coverage.frac()
            );
        }
        // "ASdb offers at least 89 additional categories compared to the
        // most popular AS classification databases."
        assert_eq!(asdb.n_categories, 95);
    }

    #[test]
    fn keyword_baselines_have_partial_coverage() {
        let caida = rows().iter().find(|r| r.name.starts_with("CAIDA")).unwrap();
        let baumann = rows()
            .iter()
            .find(|r| r.name.starts_with("Baumann"))
            .unwrap();
        assert!(
            caida.coverage.frac() < 0.98,
            "caida = {}",
            caida.coverage.frac()
        );
        assert!(
            baumann.coverage.frac() < caida.coverage.frac() + 0.15,
            "baumann = {}",
            baumann.coverage.frac()
        );
        assert!(baumann.coverage.frac() > 0.3);
    }

    #[test]
    fn asdb_effective_yield_beats_every_baseline() {
        // A keyword baseline that abstains on everything hard can show
        // perfect conditional accuracy, so the fair scalar is coverage ×
        // accuracy — the fraction of *all* ASes that end up correctly
        // labeled. (And the baselines are scored in their own far coarser
        // label spaces; ASdb is held to layer-1 NAICSlite.)
        let yield_of = |r: &BaselineRow| r.coverage.frac() * r.accuracy.frac();
        let asdb = rows().iter().find(|r| r.name == "ASdb").unwrap();
        for r in rows() {
            if r.name == "ASdb" {
                continue;
            }
            assert!(
                yield_of(asdb) > yield_of(r),
                "{} (yield {:.2}) beats ASdb ({:.2})",
                r.name,
                yield_of(r),
                yield_of(asdb)
            );
        }
    }
}
