//! # asdb-eval
//!
//! Gold-standard construction and the experiment harness: one runner per
//! table and figure in the paper's evaluation, over the synthetic world.
//!
//! | module | reproduces |
//! |---|---|
//! | [`labeler`] | the expert-labeling process (§3.2) and Figure 1 |
//! | [`goldsets`] | Table 2's four labeled datasets |
//! | [`source_eval`] | Tables 3, 4, and 11 |
//! | [`entity_eval`] | Table 5 and Figure 2 |
//! | [`ml_eval`] | Table 6 |
//! | [`system_eval`] | Tables 7 and 8 |
//! | [`category_eval`] | Table 10 |
//! | [`crowd_eval`] | Figures 5a/5b/6/7 and Table 9 |
//! | [`ablations`] | design-choice ablations (DESIGN.md §3 extensions) |
//! | [`background`] | the §2 prior-work baseline comparison |
//! | [`experiments`] | the per-experiment entry points and text reports |
//! | [`report`] | plain-text table rendering |
//!
//! All runners take an [`ExperimentContext`] — a world, the ASdb system
//! built over it, and the labeled datasets — so a whole paper-reproduction
//! run shares one (expensive) setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod background;
pub mod category_eval;
pub mod context;
pub mod crowd_eval;
pub mod entity_eval;
pub mod experiments;
pub mod goldsets;
pub mod labeler;
pub mod ml_eval;
pub mod report;
pub mod source_eval;
pub mod system_eval;

pub use context::ExperimentContext;
pub use goldsets::{GoldEntry, GoldSet};
