//! External data-source evaluation: Tables 3, 4, and 11.
//!
//! Protocol (§3.2): researchers *manually* look up each gold-standard AS in
//! each source "to ensure that the correct data source entry is found" —
//! modeled by [`asdb_sources::DataSource::lookup_org`] — and "define a
//! match to be accurate if there exists at least one NAICSlite category
//! overlap between the Gold Standard and data source."

use crate::goldsets::GoldSet;
use asdb_model::WorldSeed;
use asdb_sources::clearbit::Clearbit;
use asdb_sources::zoominfo::ZoomInfo;
use asdb_sources::{DataSource, SourceId, SourceMatch};
use asdb_taxonomy::naicslite::known;
use asdb_taxonomy::{CategorySet, Layer1};
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};

/// `covered / total` with a percentage accessor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    /// Numerator.
    pub num: usize,
    /// Denominator.
    pub den: usize,
}

impl Ratio {
    /// Add one observation.
    pub fn add(&mut self, hit: bool) {
        self.num += usize::from(hit);
        self.den += 1;
    }

    /// As a fraction (0 when empty).
    pub fn frac(&self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            self.num as f64 / self.den as f64
        }
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} ({:.0}%)", self.num, self.den, self.frac() * 100.0)
    }
}

/// A Table 3 row: per-source coverage, overall and tech/non-tech.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageRow {
    /// The source.
    pub source: SourceId,
    /// Coverage over all labelable gold ASes.
    pub overall: Ratio,
    /// Coverage over technology ASes.
    pub tech: Ratio,
    /// Coverage over non-technology ASes.
    pub nontech: Ratio,
}

/// A Table 4 row: per-source correctness at both layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrectnessRow {
    /// The source.
    pub source: SourceId,
    /// Layer-1 correctness: overall / tech / non-tech.
    pub l1_overall: Ratio,
    /// Layer-1, technology ASes.
    pub l1_tech: Ratio,
    /// Layer-1, non-technology ASes.
    pub l1_nontech: Ratio,
    /// Layer-2 correctness: overall / tech / non-tech / hosting / ISP.
    pub l2_overall: Ratio,
    /// Layer-2, technology ASes.
    pub l2_tech: Ratio,
    /// Layer-2, non-technology ASes.
    pub l2_nontech: Ratio,
    /// Layer-2, gold-labeled hosting providers.
    pub l2_hosting: Ratio,
    /// Layer-2, gold-labeled ISPs.
    pub l2_isp: Ratio,
}

/// All seven sources, including the two ASdb ultimately drops.
pub struct AllSources<'a> {
    /// The production five.
    pub five: &'a asdb_core::SourceSet,
    /// ZoomInfo (evaluated, then dropped).
    pub zoominfo: ZoomInfo,
    /// Clearbit (evaluated, then dropped).
    pub clearbit: Clearbit,
}

impl<'a> AllSources<'a> {
    /// Build the two dropped sources alongside an existing production set.
    pub fn build(five: &'a asdb_core::SourceSet, world: &World, seed: WorldSeed) -> AllSources<'a> {
        AllSources {
            five,
            zoominfo: ZoomInfo::build(world, seed),
            clearbit: Clearbit::build(world, seed),
        }
    }

    /// Dispatch by id across all seven.
    pub fn get(&self, id: SourceId) -> &dyn DataSource {
        match id {
            SourceId::ZoomInfo => &self.zoominfo,
            SourceId::Clearbit => &self.clearbit,
            other => self.five.get(other).expect("production source present"),
        }
    }
}

fn is_tech_gold(labels: &CategorySet) -> bool {
    labels.layer1s().contains(&Layer1::ComputerAndIT)
}

/// Table 3: per-source coverage on the (labelable) gold standard.
pub fn table3(world: &World, gold: &GoldSet, sources: &AllSources) -> Vec<CoverageRow> {
    SourceId::ALL
        .iter()
        .map(|id| {
            let src = sources.get(*id);
            let mut row = CoverageRow {
                source: *id,
                overall: Ratio::default(),
                tech: Ratio::default(),
                nontech: Ratio::default(),
            };
            for (entry, labels) in gold.labeled() {
                let org = world.org_of(entry.asn).expect("owner exists");
                let covered = src.lookup_org(org.id).is_some();
                row.overall.add(covered);
                if is_tech_gold(labels) {
                    row.tech.add(covered);
                } else {
                    row.nontech.add(covered);
                }
            }
            row
        })
        .collect()
}

/// Union coverage of a set of sources (Table 3's "All - ZI, CL" row).
pub fn union_coverage(
    world: &World,
    gold: &GoldSet,
    sources: &AllSources,
    ids: &[SourceId],
) -> Ratio {
    let mut r = Ratio::default();
    for (entry, _) in gold.labeled() {
        let org = world.org_of(entry.asn).expect("owner exists");
        let covered = ids
            .iter()
            .any(|id| sources.get(*id).lookup_org(org.id).is_some());
        r.add(covered);
    }
    r
}

/// Whether a source match is "accurate" at layer 1 / layer 2 against gold
/// labels (the ≥1-overlap rule).
fn accurate(m: &SourceMatch, gold: &CategorySet) -> (bool, bool) {
    (
        m.categories.overlaps_l1(gold),
        m.categories.overlaps_l2(gold),
    )
}

/// Table 4: per-source correctness over the gold standard.
pub fn table4(world: &World, gold: &GoldSet, sources: &AllSources) -> Vec<CorrectnessRow> {
    SourceId::ALL
        .iter()
        .map(|id| {
            let src = sources.get(*id);
            let mut row = CorrectnessRow {
                source: *id,
                l1_overall: Ratio::default(),
                l1_tech: Ratio::default(),
                l1_nontech: Ratio::default(),
                l2_overall: Ratio::default(),
                l2_tech: Ratio::default(),
                l2_nontech: Ratio::default(),
                l2_hosting: Ratio::default(),
                l2_isp: Ratio::default(),
            };
            for (entry, labels) in gold.labeled() {
                let org = world.org_of(entry.asn).expect("owner exists");
                let Some(m) = src.lookup_org(org.id) else {
                    continue;
                };
                let (l1_ok, l2_ok) = accurate(&m, labels);
                let tech = is_tech_gold(labels);
                row.l1_overall.add(l1_ok);
                if tech {
                    row.l1_tech.add(l1_ok);
                } else {
                    row.l1_nontech.add(l1_ok);
                }
                // Layer-2 rows only count entries with a layer-2 gold
                // label (the Table 4 caption's exclusion).
                if labels.layer2s().is_empty() {
                    continue;
                }
                row.l2_overall.add(l2_ok);
                if tech {
                    row.l2_tech.add(l2_ok);
                } else {
                    row.l2_nontech.add(l2_ok);
                }
                if labels.layer2s().contains(&known::hosting()) {
                    row.l2_hosting.add(l2_ok);
                }
                if labels.layer2s().contains(&known::isp()) {
                    row.l2_isp.add(l2_ok);
                }
            }
            row
        })
        .collect()
}

/// A Table 11 cell: per-layer-1 precision for one source or combo.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoryPrecision {
    /// Row label ("D&B", "DB + ZV", …).
    pub label: String,
    /// Overall precision.
    pub overall: Ratio,
    /// Per-layer-1 precision (index = `Layer1::ordinal`).
    pub per_l1: Vec<Ratio>,
}

/// Table 11: per-category precision of D&B, Zvelo, Crunchbase and their
/// pairwise-agreement combos over the Uniform Gold Standard.
pub fn table11(world: &World, uniform: &GoldSet, sources: &AllSources) -> Vec<CategoryPrecision> {
    let singles = [SourceId::Dnb, SourceId::Zvelo, SourceId::Crunchbase];
    let mut rows: Vec<CategoryPrecision> = Vec::new();

    let lookup = |id: SourceId, asn| -> Option<SourceMatch> {
        let org = world.org_of(asn)?;
        sources.get(id).lookup_org(org.id)
    };

    for id in singles {
        let mut row = CategoryPrecision {
            label: id.name().to_owned(),
            overall: Ratio::default(),
            per_l1: vec![Ratio::default(); Layer1::ALL.len()],
        };
        for (entry, labels) in uniform.labeled() {
            let Some(m) = lookup(id, entry.asn) else {
                continue;
            };
            let ok = m.categories.overlaps_l1(labels);
            row.overall.add(ok);
            for l1 in labels.layer1s() {
                row.per_l1[l1.ordinal()].add(ok);
            }
        }
        rows.push(row);
    }

    // Pairwise (and triple) agreement combos: count only ASes where all
    // members match AND agree among themselves; precision of the agreed
    // reading.
    let combos: [(&str, &[SourceId]); 4] = [
        ("DB + ZV", &[SourceId::Dnb, SourceId::Zvelo]),
        ("DB + CB", &[SourceId::Dnb, SourceId::Crunchbase]),
        ("ZV + CB", &[SourceId::Zvelo, SourceId::Crunchbase]),
        (
            "All 3",
            &[SourceId::Dnb, SourceId::Zvelo, SourceId::Crunchbase],
        ),
    ];
    for (label, ids) in combos {
        let mut row = CategoryPrecision {
            label: label.to_owned(),
            overall: Ratio::default(),
            per_l1: vec![Ratio::default(); Layer1::ALL.len()],
        };
        for (entry, labels) in uniform.labeled() {
            let matches: Vec<SourceMatch> =
                ids.iter().filter_map(|id| lookup(*id, entry.asn)).collect();
            if matches.len() != ids.len() {
                continue;
            }
            // All members must pairwise agree at layer 1.
            let all_agree = matches
                .windows(2)
                .all(|w| w[0].categories.overlaps_l1(&w[1].categories))
                && (matches.len() < 3 || matches[0].categories.overlaps_l1(&matches[2].categories));
            if !all_agree {
                continue;
            }
            let agreed = matches
                .iter()
                .skip(1)
                .fold(matches[0].categories.clone(), |acc, m| {
                    acc.agreed_with(&m.categories)
                });
            let ok = agreed.overlaps_l1(labels);
            row.overall.add(ok);
            for l1 in labels.layer1s() {
                row.per_l1[l1.ordinal()].add(ok);
            }
        }
        rows.push(row);
    }
    rows
}

/// §3.4's taxonomy of data-source disagreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DisagreementKind {
    /// "both categories applied accurately describe the entity".
    Nuanced,
    /// "one of the categories applied is incorrect".
    Blatant,
    /// "the entity being matched to is different" (automated matching
    /// pulled records for two different companies).
    Entity,
}

/// §3.4 analysis output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DisagreementAnalysis {
    /// ASes with ≥2 source matches.
    pub multi_source: usize,
    /// Of those, ASes where all sources share ≥1 layer-1 category.
    pub agreeing: usize,
    /// Nuanced disagreements (as a count over all gold ASes).
    pub nuanced: usize,
    /// Blatant disagreements.
    pub blatant: usize,
    /// Entity disagreements (automated protocol only).
    pub entity: usize,
    /// Gold ASes examined.
    pub total: usize,
}

/// Run the §3.4 disagreement analysis over a gold set using the automated
/// protocol (which is the one that can produce entity disagreement).
pub fn disagreement_analysis(
    world: &World,
    gold: &GoldSet,
    sources: &asdb_core::SourceSet,
) -> DisagreementAnalysis {
    use asdb_sources::Query;
    let mut out = DisagreementAnalysis::default();
    for (entry, labels) in gold.labeled() {
        out.total += 1;
        let rec = world.as_record(entry.asn).expect("record exists");
        let query = Query {
            asn: Some(entry.asn),
            name: Some(rec.parsed.name.clone()),
            domain: rec.parsed.candidate_domains().into_iter().next(),
            address: rec.parsed.address.clone(),
            phone: rec.parsed.phone.clone(),
        };
        let matches = sources.search_all(&query);
        if matches.len() < 2 {
            continue;
        }
        out.multi_source += 1;
        // Entity disagreement: two matches claiming different entities.
        let entities: std::collections::BTreeSet<_> =
            matches.iter().filter_map(|m| m.entity).collect();
        let entity_conflict = entities.len() > 1;
        let any_pair_agrees = matches.iter().enumerate().any(|(i, a)| {
            matches
                .iter()
                .skip(i + 1)
                .any(|b| a.categories.overlaps_l1(&b.categories))
        });
        if any_pair_agrees {
            out.agreeing += 1;
            // Layer-2-level nuance inside a layer-1 agreement: "nuanced
            // disagreement most often occurs when technology companies
            // offer multiple services (e.g., ISP, Hosting, Cell), and data
            // sources match to different services."
            let l2_sources: Vec<_> = matches
                .iter()
                .filter(|m| !m.categories.layer2s().is_empty())
                .collect();
            let any_l2_shared = l2_sources.iter().enumerate().any(|(i, a)| {
                l2_sources
                    .iter()
                    .skip(i + 1)
                    .any(|b| a.categories.overlaps_l2(&b.categories))
            });
            if l2_sources.len() >= 2 && !any_l2_shared {
                out.nuanced += 1;
            }
            continue;
        }
        if entity_conflict {
            out.entity += 1;
            continue;
        }
        // Same entity, zero category overlap: nuanced if every source's
        // reading is still consistent with the gold labels, blatant
        // otherwise.
        let all_defensible = matches.iter().all(|m| m.categories.overlaps_l1(labels));
        if all_defensible {
            out.nuanced += 1;
        } else {
            out.blatant += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use asdb_model::WorldSeed;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    fn all_sources(c: &ExperimentContext) -> AllSources<'_> {
        AllSources::build(&c.system.sources, &c.world, c.seed.derive("dropped"))
    }

    #[test]
    fn table3_shape_matches_paper() {
        let c = ctx();
        let s = all_sources(c);
        let rows = table3(&c.world, &c.gold, &s);
        let get = |id: SourceId| rows.iter().find(|r| r.source == id).unwrap();
        // D&B and Zvelo lead; Crunchbase lowest business DB; networking
        // sources far behind.
        let dnb = get(SourceId::Dnb).overall.frac();
        let zvelo = get(SourceId::Zvelo).overall.frac();
        let cb = get(SourceId::Crunchbase).overall.frac();
        let pdb = get(SourceId::PeeringDb).overall.frac();
        let ipinfo = get(SourceId::Ipinfo).overall.frac();
        assert!(dnb > 0.70, "dnb = {dnb}");
        assert!(zvelo > 0.65, "zvelo = {zvelo}");
        assert!(cb < dnb && cb < 0.55, "cb = {cb}");
        assert!(pdb < 0.25, "pdb = {pdb}");
        assert!((0.15..0.45).contains(&ipinfo), "ipinfo = {ipinfo}");
        // Business sources skew non-tech; networking sources skew tech.
        assert!(get(SourceId::Dnb).nontech.frac() > get(SourceId::Dnb).tech.frac());
        assert!(get(SourceId::PeeringDb).tech.frac() > get(SourceId::PeeringDb).nontech.frac());
    }

    #[test]
    fn union_of_five_beats_any_single(/* Table 3's "All - ZI, CL" row */) {
        let c = ctx();
        let s = all_sources(c);
        let union = union_coverage(&c.world, &c.gold, &s, &SourceId::ASDB_FIVE);
        let rows = table3(&c.world, &c.gold, &s);
        for r in rows {
            assert!(union.frac() >= r.overall.frac(), "{} beats union", r.source);
        }
        assert!(union.frac() > 0.90, "union = {}", union.frac());
    }

    #[test]
    fn table4_hosting_is_weakest_for_business_sources() {
        let c = ctx();
        let s = all_sources(c);
        let rows = table4(&c.world, &c.gold, &s);
        let get = |id: SourceId| rows.iter().find(|r| r.source == id).unwrap();
        let dnb = get(SourceId::Dnb);
        // L1 strong, L2 tech weak, hosting weakest.
        assert!(
            dnb.l1_overall.frac() > 0.88,
            "dnb l1 = {}",
            dnb.l1_overall.frac()
        );
        assert!(
            dnb.l2_hosting.frac() < dnb.l2_isp.frac() + 0.05,
            "hosting {} vs isp {}",
            dnb.l2_hosting.frac(),
            dnb.l2_isp.frac()
        );
        assert!(
            dnb.l2_nontech.frac() > dnb.l2_tech.frac(),
            "tech should be harder: {} vs {}",
            dnb.l2_tech.frac(),
            dnb.l2_nontech.frac()
        );
        // Clearbit's tech collapse.
        let cl = get(SourceId::Clearbit);
        assert!(
            cl.l1_tech.frac() < 0.25,
            "clearbit tech = {}",
            cl.l1_tech.frac()
        );
        assert!(cl.l1_nontech.frac() > 0.5);
        // PeeringDB ISP reliability.
        let pdb = get(SourceId::PeeringDb);
        assert!(pdb.l2_isp.frac() > 0.9, "pdb isp = {}", pdb.l2_isp.frac());
    }

    #[test]
    fn table11_agreement_boosts_precision() {
        let c = ctx();
        let s = all_sources(c);
        let rows = table11(&c.world, &c.uniform, &s);
        let single_avg: f64 = rows[..3].iter().map(|r| r.overall.frac()).sum::<f64>() / 3.0;
        let combo = rows.iter().find(|r| r.label == "DB + ZV").unwrap();
        assert!(
            combo.overall.frac() > single_avg,
            "combo {} vs singles {}",
            combo.overall.frac(),
            single_avg
        );
        assert!(
            combo.overall.frac() > 0.9,
            "combo = {}",
            combo.overall.frac()
        );
        // Combos have lower coverage than singles.
        assert!(combo.overall.den < rows[0].overall.den);
    }
}

#[cfg(test)]
mod disagreement_tests {
    use super::*;
    use crate::context::ExperimentContext;
    use asdb_model::WorldSeed;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    #[test]
    fn disagreement_taxonomy_shape(/* §3.4 */) {
        let c = ctx();
        let a = disagreement_analysis(&c.world, &c.gold, &c.system.sources);
        assert!(a.total >= 140);
        // Most gold ASes match multiple sources, and most of those agree.
        assert!(
            a.multi_source * 2 > a.total,
            "multi = {}/{}",
            a.multi_source,
            a.total
        );
        assert!(a.agreeing * 2 > a.multi_source);
        // All three disagreement kinds occur, each as a minority
        // phenomenon (paper: 6% nuanced, 7% blatant, 14% entity).
        let frac = |n: usize| n as f64 / a.total as f64;
        let disagreeing = a.nuanced + a.blatant + a.entity;
        assert!(disagreeing > 0, "no disagreements at all");
        assert!(
            frac(disagreeing) < 0.45,
            "disagreement = {}",
            frac(disagreeing)
        );
        // The uniform set disagrees more than the random gold standard
        // ("zero overlap … for 40% and 13% of ASes in the Uniform Gold
        // Standard and Gold Standard set, respectively").
        let u = disagreement_analysis(&c.world, &c.uniform, &c.system.sources);
        let gold_rate = frac(disagreeing);
        let uniform_rate = (u.nuanced + u.blatant + u.entity) as f64 / u.total.max(1) as f64;
        assert!(
            uniform_rate > gold_rate * 0.8,
            "uniform {uniform_rate} vs gold {gold_rate}"
        );
    }
}
