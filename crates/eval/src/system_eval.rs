//! End-to-end system evaluation: Tables 7 and 8.

use crate::goldsets::GoldSet;
use crate::source_eval::Ratio;
use asdb_core::{AsdbSystem, Classification, Stage};
use asdb_sources::{DataSource, Query};
use asdb_taxonomy::schemes::IpinfoType;
use asdb_taxonomy::{CategorySet, Layer1};
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-stage coverage/accuracy rows plus the overall lines of Table 8, for
/// one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTable {
    /// Dataset name.
    pub dataset: String,
    /// Entries evaluated (the labelable subset).
    pub n: usize,
    /// Per-stage: (stage, coverage over n, L1 accuracy over classified).
    pub stages: Vec<(String, f64, f64)>,
    /// Overall layer-1 (coverage, accuracy).
    pub layer1: (f64, f64),
    /// Overall layer-2 (coverage, accuracy).
    pub layer2: (f64, f64),
    /// Layer-2 tech (coverage, accuracy).
    pub layer2_tech: (f64, f64),
    /// Layer-2 non-tech (coverage, accuracy).
    pub layer2_nontech: (f64, f64),
}

/// Classify every labelable entry of a gold set (no cache — the evaluation
/// protocol) and keep the classifications around for further analysis.
pub fn classify_set(
    world: &World,
    set: &GoldSet,
    system: &AsdbSystem,
) -> Vec<(asdb_model::Asn, CategorySet, Classification)> {
    set.labeled()
        .map(|(entry, labels)| {
            let rec = world.as_record(entry.asn).expect("record exists");
            let c = system.classify(&rec.parsed);
            (entry.asn, labels.clone(), c)
        })
        .collect()
}

/// Build the Table 8 panel for one dataset.
pub fn table8(world: &World, set: &GoldSet, system: &AsdbSystem) -> StageTable {
    let results = classify_set(world, set, system);
    let n = results.len();

    let mut per_stage: HashMap<Stage, (Ratio, usize)> = HashMap::new();
    let mut l1 = Ratio::default();
    let mut l1_covered = 0usize;
    let mut l2 = Ratio::default();
    let mut l2_tech = Ratio::default();
    let mut l2_nontech = Ratio::default();
    let mut l2_covered = 0usize;
    let mut l2_eligible = 0usize;

    for (_asn, gold, c) in &results {
        let e = per_stage.entry(c.stage).or_insert((Ratio::default(), 0));
        e.1 += 1;
        if c.is_classified() {
            let ok = c.categories.overlaps_l1(gold);
            e.0.add(ok);
            l1.add(ok);
            l1_covered += 1;
        }
        // Layer-2 metrics only over entries with layer-2 gold labels
        // (Table 8's caption).
        if !gold.layer2s().is_empty() {
            l2_eligible += 1;
            let has_l2 = !c.categories.layer2s().is_empty();
            if has_l2 {
                l2_covered += 1;
                let ok = c.categories.overlaps_l2(gold);
                l2.add(ok);
                if gold.layer1s().contains(&Layer1::ComputerAndIT) {
                    l2_tech.add(ok);
                } else {
                    l2_nontech.add(ok);
                }
            }
        }
    }

    let mut stages: Vec<(String, f64, f64)> = per_stage
        .iter()
        .map(|(stage, (acc, count))| {
            (
                stage.label().to_owned(),
                *count as f64 / n.max(1) as f64,
                acc.frac(),
            )
        })
        .collect();
    stages.sort_by(|a, b| a.0.cmp(&b.0));

    StageTable {
        dataset: set.name.to_owned(),
        n,
        stages,
        layer1: (l1_covered as f64 / n.max(1) as f64, l1.frac()),
        layer2: (l2_covered as f64 / l2_eligible.max(1) as f64, l2.frac()),
        layer2_tech: (0.0, l2_tech.frac()),
        layer2_nontech: (0.0, l2_nontech.frac()),
    }
}

/// A Table 7 panel: F1 per comparison class for ASdb, IPinfo, PeeringDB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F1Row {
    /// The four-way comparison class.
    pub class: IpinfoType,
    /// Gold-positive count (the table's N column).
    pub n: usize,
    /// ASdb's F1.
    pub asdb: f64,
    /// IPinfo's F1.
    pub ipinfo: f64,
    /// PeeringDB's F1.
    pub peeringdb: f64,
}

fn f1(pred: &[Option<IpinfoType>], truth: &[IpinfoType], class: IpinfoType) -> f64 {
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for (p, t) in pred.iter().zip(truth) {
        let is_pos = *t == class;
        match p {
            Some(p) if *p == class => {
                if is_pos {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
            _ => {
                if is_pos {
                    fn_ += 1;
                }
            }
        }
    }
    if 2 * tp + fp + fn_ == 0 {
        0.0
    } else {
        2.0 * tp as f64 / (2 * tp + fp + fn_) as f64
    }
}

/// Table 7: project everything onto IPinfo's four-way scheme (§5.2's
/// mapping rules) and compute one-vs-rest F1 per class for the three
/// systems.
pub fn table7(world: &World, set: &GoldSet, system: &AsdbSystem) -> Vec<F1Row> {
    let results = classify_set(world, set, system);
    let mut truth: Vec<IpinfoType> = Vec::new();
    let mut asdb_pred: Vec<Option<IpinfoType>> = Vec::new();
    let mut ipinfo_pred: Vec<Option<IpinfoType>> = Vec::new();
    let mut pdb_pred: Vec<Option<IpinfoType>> = Vec::new();

    for (asn, gold, c) in &results {
        let Some(t) = IpinfoType::project(gold) else {
            continue;
        };
        truth.push(t);
        asdb_pred.push(IpinfoType::project(&c.categories));
        ipinfo_pred.push(
            system
                .sources
                .ipinfo
                .search(&Query::by_asn(*asn))
                .and_then(|m| {
                    system
                        .sources
                        .ipinfo
                        .class_of(*asn)
                        .or_else(|| IpinfoType::project(&m.categories))
                }),
        );
        pdb_pred.push(
            system
                .sources
                .peeringdb
                .network_type(*asn)
                .map(|t| t.comparison_class()),
        );
    }

    IpinfoType::ALL
        .iter()
        .map(|class| F1Row {
            class: *class,
            n: truth.iter().filter(|t| *t == class).count(),
            asdb: f1(&asdb_pred, &truth, *class),
            ipinfo: f1(&ipinfo_pred, &truth, *class),
            peeringdb: f1(&pdb_pred, &truth, *class),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use asdb_model::WorldSeed;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    #[test]
    fn table8_coverage_and_accuracy(/* the headline claims */) {
        let c = ctx();
        let t = table8(&c.world, &c.test, &c.system);
        // "ASdb provides a layer 1 and layer 2 classification for at least
        // 93% of all ASes" and "93% accuracy" on the test set's layer 1.
        assert!(t.layer1.0 > 0.88, "L1 coverage = {}", t.layer1.0);
        assert!(t.layer1.1 > 0.85, "L1 accuracy = {}", t.layer1.1);
        assert!(t.layer2.0 > 0.80, "L2 coverage = {}", t.layer2.0);
        // Layer-2 accuracy is meaningfully lower than layer-1 (75% vs 93%).
        assert!(
            t.layer2.1 < t.layer1.1,
            "L2 {} vs L1 {}",
            t.layer2.1,
            t.layer1.1
        );
        assert!(t.layer2.1 > 0.55, "L2 accuracy = {}", t.layer2.1);
    }

    #[test]
    fn table8_stage_structure() {
        let c = ctx();
        let t = table8(&c.world, &c.gold, &c.system);
        // Coverages sum to ~1 across stages.
        let total: f64 = t.stages.iter().map(|(_, cov, _)| cov).sum();
        assert!((total - 1.0).abs() < 1e-9, "stage coverages sum to {total}");
        // The agreement stage exists and is highly accurate.
        let agree = t
            .stages
            .iter()
            .find(|(s, _, _)| s.contains(">=2 Agree"))
            .expect("agreement stage present");
        assert!(agree.2 > 0.9, "agree accuracy = {}", agree.2);
    }

    #[test]
    fn table7_asdb_beats_both_baselines() {
        let c = ctx();
        for set in [&c.gold, &c.test] {
            let rows = table7(&c.world, set, &c.system);
            for r in &rows {
                if r.n < 5 {
                    continue; // tiny classes are noise
                }
                assert!(
                    r.asdb >= r.ipinfo - 0.02,
                    "{}: ASdb {} vs IPinfo {} (n={})",
                    r.class,
                    r.asdb,
                    r.ipinfo,
                    r.n
                );
                assert!(
                    r.asdb >= r.peeringdb - 0.02,
                    "{}: ASdb {} vs PeeringDB {} (n={})",
                    r.class,
                    r.asdb,
                    r.peeringdb,
                    r.n
                );
            }
            // ISP is a large class and ASdb should be strong there.
            let isp = rows.iter().find(|r| r.class == IpinfoType::Isp).unwrap();
            assert!(isp.asdb > 0.75, "ASdb ISP F1 = {}", isp.asdb);
        }
    }

    #[test]
    fn hosting_remains_the_hardest_class(/* §5.2's 0.65 test-set hosting F1 */) {
        let c = ctx();
        let rows = table7(&c.world, &c.test, &c.system);
        let hosting = rows
            .iter()
            .find(|r| r.class == IpinfoType::Hosting)
            .unwrap();
        let isp = rows.iter().find(|r| r.class == IpinfoType::Isp).unwrap();
        if hosting.n >= 5 {
            assert!(
                hosting.asdb <= isp.asdb + 0.05,
                "hosting {} should not beat ISP {}",
                hosting.asdb,
                isp.asdb
            );
        }
    }
}
