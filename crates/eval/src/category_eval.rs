//! Per-category system evaluation: Table 10.
//!
//! "To assess ASdb's coverage and accuracy across the long tail of
//! NAICSlite layer-1 categories, we perform a per-category analysis using
//! the Uniform Gold Standard dataset." Unlike Table 11 (manual lookups),
//! Table 10 scores the *automated* protocol — source searches with
//! matching loss included — for D&B, Zvelo, Crunchbase, and full ASdb.

use crate::goldsets::GoldSet;
use crate::source_eval::Ratio;
use asdb_core::AsdbSystem;
use asdb_sources::{Query, SourceId};
use asdb_taxonomy::Layer1;
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};

/// One row of Table 10: accuracy-with-coverage per layer-1 category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoryRow {
    /// "D&B", "Zvelo", "Crunchbase", or "ASdb".
    pub label: String,
    /// Overall (correct/covered).
    pub overall: Ratio,
    /// Per-layer-1 (index = ordinal).
    pub per_l1: Vec<Ratio>,
}

/// Build Table 10 over the Uniform Gold Standard.
pub fn table10(world: &World, uniform: &GoldSet, system: &AsdbSystem) -> Vec<CategoryRow> {
    let mut rows = Vec::new();
    for id in [SourceId::Dnb, SourceId::Zvelo, SourceId::Crunchbase] {
        let src = system.sources.get(id).expect("production source");
        let mut row = CategoryRow {
            label: id.name().to_owned(),
            overall: Ratio::default(),
            per_l1: vec![Ratio::default(); Layer1::ALL.len()],
        };
        for (entry, labels) in uniform.labeled() {
            let rec = world.as_record(entry.asn).expect("record exists");
            // Automated protocol: search with whatever the pipeline would
            // supply (name + §5.1 domain).
            let query = Query {
                asn: Some(entry.asn),
                name: Some(rec.parsed.name.clone()),
                domain: system.select_domain(&rec.parsed),
                address: rec.parsed.address.clone(),
                phone: rec.parsed.phone.clone(),
            };
            let Some(m) = src.search(&query) else {
                continue;
            };
            let ok = m.categories.overlaps_l1(labels);
            row.overall.add(ok);
            for l1 in labels.layer1s() {
                row.per_l1[l1.ordinal()].add(ok);
            }
        }
        rows.push(row);
    }
    // Full ASdb.
    let mut row = CategoryRow {
        label: "ASdb".to_owned(),
        overall: Ratio::default(),
        per_l1: vec![Ratio::default(); Layer1::ALL.len()],
    };
    for (entry, labels) in uniform.labeled() {
        let rec = world.as_record(entry.asn).expect("record exists");
        let c = system.classify(&rec.parsed);
        if !c.is_classified() {
            continue;
        }
        let ok = c.categories.overlaps_l1(labels);
        row.overall.add(ok);
        for l1 in labels.layer1s() {
            row.per_l1[l1.ordinal()].add(ok);
        }
    }
    rows.push(row);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use asdb_model::WorldSeed;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    #[test]
    fn asdb_coverage_tracks_best_source(/* Table 10's headline */) {
        let c = ctx();
        let rows = table10(&c.world, &c.uniform, &c.system);
        let asdb = rows.iter().find(|r| r.label == "ASdb").unwrap();
        let best_single = rows
            .iter()
            .filter(|r| r.label != "ASdb")
            .map(|r| r.overall.den)
            .max()
            .unwrap();
        // "ASdb consistently achieves nearly identical coverage compared to
        // the data source with the best coverage."
        assert!(
            asdb.overall.den as f64 >= best_single as f64 * 0.9,
            "ASdb covered {} vs best single {}",
            asdb.overall.den,
            best_single
        );
    }

    #[test]
    fn asdb_accuracy_competitive_across_categories() {
        let c = ctx();
        let rows = table10(&c.world, &c.uniform, &c.system);
        let asdb = rows.iter().find(|r| r.label == "ASdb").unwrap();
        assert!(
            asdb.overall.frac() > 0.75,
            "ASdb overall = {}",
            asdb.overall.frac()
        );
        // Equivalent-or-better accuracy than the best source in at least
        // half the categories (the paper says 9/16).
        let mut wins = 0usize;
        let mut contested = 0usize;
        for l1 in Layer1::SUBSTANTIVE {
            let i = l1.ordinal();
            if asdb.per_l1[i].den < 5 {
                continue;
            }
            contested += 1;
            let best = rows
                .iter()
                .filter(|r| r.label != "ASdb" && r.per_l1[i].den >= 3)
                .map(|r| r.per_l1[i].frac())
                .fold(0.0f64, f64::max);
            if asdb.per_l1[i].frac() >= best - 0.05 {
                wins += 1;
            }
        }
        assert!(
            wins * 2 >= contested,
            "ASdb competitive in only {wins}/{contested} categories"
        );
    }
}
