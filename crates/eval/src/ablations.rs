//! Design-choice ablations.
//!
//! The paper argues each pipeline ingredient earns its place ("aggregating
//! existing data sources — no matter their coverage or accuracy — and
//! different classification solutions … helps build the best-performing
//! classification system", §6). These ablations quantify that: turn one
//! ingredient off at a time, re-run the Table 8 evaluation, and report the
//! damage.

use crate::goldsets::GoldSet;
use crate::source_eval::Ratio;
use asdb_core::pipeline::PipelineOptions;
use asdb_core::AsdbSystem;
use asdb_entity::domain_select::DomainStrategy;
use asdb_taxonomy::naicslite::known;
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};

/// One ablation arm's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationArm {
    /// Arm name ("full", "no-ml", …).
    pub name: String,
    /// Coverage over the evaluated set.
    pub coverage: f64,
    /// Layer-1 accuracy over classified entries.
    pub l1_accuracy: Ratio,
    /// Layer-2 accuracy over classified entries with layer-2 gold labels.
    pub l2_accuracy: Ratio,
    /// Hosting layer-2 recall — the class ablations hurt most.
    pub hosting_recall: Ratio,
}

/// The ablation arms: full system plus one-off variants.
pub fn arms() -> Vec<(&'static str, PipelineOptions)> {
    let full = PipelineOptions::default();
    vec![
        ("full", full),
        (
            "no-ml",
            PipelineOptions {
                use_ml: false,
                ..full
            },
        ),
        (
            "no-consensus",
            PipelineOptions {
                use_consensus: false,
                ..full
            },
        ),
        (
            "no-asn-shortcut",
            PipelineOptions {
                use_asn_shortcut: false,
                ..full
            },
        ),
        (
            "no-entity-rejection",
            PipelineOptions {
                reject_entity_disagreement: false,
                ..full
            },
        ),
        (
            "random-domain",
            PipelineOptions {
                domain_strategy: DomainStrategy::Random,
                ..full
            },
        ),
    ]
}

/// Evaluate one pipeline configuration over a gold set.
pub fn evaluate_arm(
    world: &World,
    set: &GoldSet,
    system: &AsdbSystem,
    options: &PipelineOptions,
    name: &str,
) -> AblationArm {
    let mut l1 = Ratio::default();
    let mut l2 = Ratio::default();
    let mut hosting = Ratio::default();
    let mut classified = 0usize;
    let mut n = 0usize;
    for (entry, labels) in set.labeled() {
        n += 1;
        let rec = world.as_record(entry.asn).expect("record exists");
        let c = system.classify_with(&rec.parsed, options);
        if !c.is_classified() {
            continue;
        }
        classified += 1;
        l1.add(c.categories.overlaps_l1(labels));
        if !labels.layer2s().is_empty() {
            l2.add(c.categories.overlaps_l2(labels));
        }
        if labels.layer2s().contains(&known::hosting()) {
            hosting.add(c.categories.layer2s().contains(&known::hosting()));
        }
    }
    AblationArm {
        name: name.to_owned(),
        coverage: classified as f64 / n.max(1) as f64,
        l1_accuracy: l1,
        l2_accuracy: l2,
        hosting_recall: hosting,
    }
}

/// Run every arm against a shared, pre-built system — only the option
/// struct changes between arms, so the expensive state (sources, trained
/// classifiers) is reused.
pub fn run_ablations(world: &World, set: &GoldSet, system: &AsdbSystem) -> Vec<AblationArm> {
    arms()
        .into_iter()
        .map(|(name, options)| evaluate_arm(world, set, system, &options, name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use asdb_model::WorldSeed;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    fn run() -> &'static Vec<AblationArm> {
        static ARMS: OnceLock<Vec<AblationArm>> = OnceLock::new();
        ARMS.get_or_init(|| {
            let c = ctx();
            run_ablations(&c.world, &c.test, &c.system)
        })
    }

    fn arm(name: &str) -> &'static AblationArm {
        run().iter().find(|a| a.name == name).expect("arm exists")
    }

    #[test]
    fn full_system_is_the_best_overall() {
        let full = arm("full");
        for a in run() {
            assert!(
                full.l1_accuracy.frac() >= a.l1_accuracy.frac() - 0.03,
                "{} beats full at L1: {} vs {}",
                a.name,
                a.l1_accuracy.frac(),
                full.l1_accuracy.frac()
            );
        }
    }

    #[test]
    fn removing_ml_collapses_hosting_recall() {
        let full = arm("full");
        let no_ml = arm("no-ml");
        assert!(
            no_ml.hosting_recall.frac() < full.hosting_recall.frac(),
            "no-ml hosting {} vs full {}",
            no_ml.hosting_recall.frac(),
            full.hosting_recall.frac()
        );
    }

    #[test]
    fn removing_consensus_hurts_l1_accuracy() {
        let full = arm("full");
        let no_consensus = arm("no-consensus");
        assert!(
            no_consensus.l1_accuracy.frac() <= full.l1_accuracy.frac() + 0.01,
            "no-consensus {} vs full {}",
            no_consensus.l1_accuracy.frac(),
            full.l1_accuracy.frac()
        );
    }

    #[test]
    fn random_domain_hurts() {
        let full = arm("full");
        let random = arm("random-domain");
        // Random domain selection degrades either accuracy or the ML path
        // (hosting recall) — usually both.
        let degraded = random.l1_accuracy.frac() < full.l1_accuracy.frac() - 0.005
            || random.hosting_recall.frac() < full.hosting_recall.frac() - 0.005
            || random.l2_accuracy.frac() < full.l2_accuracy.frac() - 0.005;
        assert!(
            degraded,
            "random-domain did not degrade anything: L1 {} vs {}, hosting {} vs {}",
            random.l1_accuracy.frac(),
            full.l1_accuracy.frac(),
            random.hosting_recall.frac(),
            full.hosting_recall.frac()
        );
    }

    #[test]
    fn every_arm_still_covers_most_ases() {
        for a in run() {
            assert!(a.coverage > 0.7, "{} coverage = {}", a.name, a.coverage);
        }
    }
}
