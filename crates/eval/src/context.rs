//! Shared experiment setup.

use crate::goldsets::GoldSet;
use asdb_core::AsdbSystem;
use asdb_model::WorldSeed;
use asdb_worldgen::{World, WorldConfig};

/// Everything a paper-reproduction run needs, built once: the world, the
/// ASdb system over it (sources + trained classifiers), and the labeled
/// datasets of Table 2.
pub struct ExperimentContext {
    /// The synthetic universe.
    pub world: World,
    /// The assembled ASdb system.
    pub system: AsdbSystem,
    /// Table 2 row 1: the 150-AS Gold Standard.
    pub gold: GoldSet,
    /// Table 2 row 2: the 320-AS Uniform Gold Standard.
    pub uniform: GoldSet,
    /// Table 2 row 4: the fresh 150-AS test set.
    pub test: GoldSet,
    /// The seed everything derives from.
    pub seed: WorldSeed,
}

impl ExperimentContext {
    /// Build the canonical context at a given scale.
    pub fn build(config: WorldConfig) -> ExperimentContext {
        let seed = config.seed;
        let world = World::generate(config);
        let system = AsdbSystem::build(&world, seed.derive("system"));
        let gold = GoldSet::gold_standard(&world, seed.derive("gold"));
        let uniform = GoldSet::uniform_gold_standard(&world, seed.derive("gold"));
        let test = GoldSet::test_set(&world, seed.derive("gold"));
        ExperimentContext {
            world,
            system,
            gold,
            uniform,
            test,
            seed,
        }
    }

    /// The standard-scale context used by the experiment binaries/benches.
    pub fn standard(seed: WorldSeed) -> ExperimentContext {
        ExperimentContext::build(WorldConfig::standard(seed))
    }

    /// A small, fast context for unit tests.
    pub fn small(seed: WorldSeed) -> ExperimentContext {
        ExperimentContext::build(WorldConfig::small(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_assembles() {
        let ctx = ExperimentContext::small(WorldSeed::new(7));
        assert_eq!(ctx.gold.entries.len(), 150);
        assert_eq!(ctx.test.entries.len(), 150);
        assert!(!ctx.uniform.entries.is_empty());
        assert!(!ctx.world.ases.is_empty());
    }
}
