//! Plain-text table rendering for experiment reports.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title.
    pub fn new(title: &str) -> TextTable {
        TextTable {
            title: title.to_owned(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn header<S: Into<String>, I: IntoIterator<Item = S>>(mut self, cols: I) -> TextTable {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cols: I) {
        self.rows.push(cols.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  ", width = w));
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
        }
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Format a fraction with one decimal.
pub fn pct1(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo").header(["Source", "Coverage"]);
        t.row(["D&B", "82%"]);
        t.row(["PeeringDB", "15%"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("Source"));
        let lines: Vec<&str> = s.lines().collect();
        // Layout: title, header, separator, then data rows.
        // Columns align: "82%" and "15%" start at the same offset.
        let off_a = lines[3].find("82%").unwrap();
        let off_b = lines[4].find("15%").unwrap();
        assert_eq!(off_a, off_b);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.934), "93%");
        assert_eq!(pct1(0.934), "93.4%");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new("Empty");
        assert!(t.is_empty());
        assert!(t.render().contains("Empty"));
    }
}
