//! Simulated expert labelers (§3.2, Figure 1).
//!
//! "Starting with 150 randomly selected ASes, we assign 60 ASes to each of
//! five computer-networking researchers each such that each AS is
//! independently classified by two researchers." Each simulated researcher
//! perceives the organization's true category with high — but imperfect —
//! fidelity, then writes it down twice: once as NAICSlite categories and
//! once as NAICS codes drawn from the candidate codes for the perceived
//! category. NAICS's redundant sibling codes (e.g. 335911 vs 334416 for
//! the paper's SUMIDA example) make *code-level* agreement far worse than
//! *semantic* agreement — which is exactly Figure 1.

use asdb_model::WorldSeed;
use asdb_taxonomy::agreement::{Agreement, AgreementStats, LabelSet};
use asdb_taxonomy::translate::naics_candidates;
use asdb_taxonomy::{Category, CategorySet, Layer1, Layer2, NaicsCode};
use asdb_worldgen::Organization;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// One researcher's label for one AS.
#[derive(Debug, Clone)]
pub struct ResearcherLabel {
    /// NAICSlite reading.
    pub naicslite: CategorySet,
    /// NAICS codes assigned.
    pub naics: Vec<NaicsCode>,
}

/// Labeling-noise parameters, calibrated so the Figure 1 bars land.
#[derive(Debug, Clone, Copy)]
pub struct LabelerModel {
    /// P(the researcher's primary reading is the true layer-2 category).
    pub p_semantic: f64,
    /// P(a sibling subcategory is perceived instead, given a miss).
    pub p_sibling_given_miss: f64,
    /// P(a multi-service org's secondary category is also written down).
    pub p_include_secondary: f64,
    /// P(the researcher can only commit to a layer-1 reading).
    pub p_layer1_only: f64,
}

impl Default for LabelerModel {
    fn default() -> Self {
        LabelerModel {
            p_semantic: 0.90,
            p_sibling_given_miss: 0.75,
            p_include_secondary: 0.35,
            p_layer1_only: 0.03,
        }
    }
}

impl LabelerModel {
    /// Produce one researcher's label for an organization.
    ///
    /// `researcher` distinguishes the two independent labelers of an AS.
    pub fn label(&self, org: &Organization, researcher: u64, seed: WorldSeed) -> ResearcherLabel {
        let mut rng = StdRng::seed_from_u64(
            seed.derive_index("labeler", org.id.value() * 7 + researcher)
                .value(),
        );
        let perceived: Layer2 = if rng.random_bool(self.p_semantic) {
            org.category
        } else if rng.random_bool(self.p_sibling_given_miss) {
            // A defensible sibling reading within the same family.
            let siblings: Vec<Layer2> = org
                .category
                .layer1
                .layer2_iter()
                .filter(|l| *l != org.category)
                .collect();
            *siblings.choose(&mut rng).unwrap_or(&org.category)
        } else {
            // A cross-family reading — nuanced disagreement: "13% of ASes
            // had each researcher label with disagreeing, yet accurate,
            // categories" (§3.4). The org's secondary line of business if
            // it has one, else a universally-confusable family.
            match org.secondary {
                Some(sec) => sec,
                None => {
                    let fallback = match org.category.layer1 {
                        Layer1::Media => Layer1::ComputerAndIT,
                        Layer1::ComputerAndIT => Layer1::Media,
                        Layer1::Education => Layer1::Nonprofits,
                        _ => Layer1::Service,
                    };
                    Layer2::new(fallback, 0).unwrap_or(org.category)
                }
            }
        };

        let mut naicslite = CategorySet::new();
        if rng.random_bool(self.p_layer1_only) {
            naicslite.insert(Category::l1(perceived.layer1));
        } else {
            naicslite.insert(Category::l2(perceived));
        }
        if let Some(sec) = org.secondary {
            if rng.random_bool(self.p_include_secondary) {
                naicslite.insert(Category::l2(sec));
            }
        }

        // NAICS writing: one code per NAICSlite layer-2 label, drawn from
        // the candidates — the redundancy lives here. Researchers also
        // wander within NAICS's *confusable sibling* groups (the paper's
        // SUMIDA example: one wrote 335911, the other 334416), so half the
        // time the code is swapped for a group sibling.
        let mut naics = Vec::new();
        for l2 in naicslite.layer2s() {
            let cands = naics_candidates(l2);
            if let Some(code) = cands.choose(&mut rng) {
                let written = match asdb_taxonomy::naics::confusable_group(*code) {
                    Some(group) if rng.random_bool(0.5) => {
                        let v = *group.choose(&mut rng).expect("groups non-empty");
                        NaicsCode::six(v)
                    }
                    _ => *code,
                };
                naics.push(written);
            }
        }
        ResearcherLabel { naicslite, naics }
    }

    /// Label an AS twice (two researchers) and report the Figure 1
    /// agreement in both systems: `(naics, naicslite)`.
    pub fn double_label(&self, org: &Organization, seed: WorldSeed) -> (Agreement, Agreement) {
        let a = self.label(org, 0, seed);
        let b = self.label(org, 1, seed);
        let naics = Agreement::between(
            &LabelSet::from_naics(&a.naics),
            &LabelSet::from_naics(&b.naics),
        );
        let naicslite = Agreement::between(
            &LabelSet::from_naicslite(&a.naicslite),
            &LabelSet::from_naicslite(&b.naicslite),
        );
        (naics, naicslite)
    }

    /// The Figure 1 experiment over a set of organizations: aggregate
    /// agreement stats for both classification systems.
    pub fn agreement_experiment(
        &self,
        orgs: &[&Organization],
        seed: WorldSeed,
    ) -> (AgreementStats, AgreementStats) {
        let mut naics = Vec::with_capacity(orgs.len());
        let mut lite = Vec::with_capacity(orgs.len());
        for org in orgs {
            let (n, l) = self.double_label(org, seed);
            naics.push(n);
            lite.push(l);
        }
        (
            AgreementStats::aggregate(naics),
            AgreementStats::aggregate(lite),
        )
    }

    /// The pair-resolution step: "Researchers then meet in pairs to resolve
    /// any labeling discrepancies." The resolved label is near-truth: the
    /// primary (plus secondary where either researcher saw it), with a
    /// small residue of layer-1-only entries and a tiny unlabelable
    /// fraction (148/150 in the paper).
    pub fn resolved_label(&self, org: &Organization, seed: WorldSeed) -> Option<CategorySet> {
        let mut rng = StdRng::seed_from_u64(seed.derive_index("resolve", org.id.value()).value());
        if rng.random_bool(0.013) {
            return None; // the 2-in-150 nobody could classify
        }
        let mut set = CategorySet::new();
        if rng.random_bool(0.04) {
            // Layer-1-only resolution (Table 8 footnote: only 142/150 have
            // a layer-2 gold label).
            set.insert(Category::l1(org.category.layer1));
        } else {
            set.insert(Category::l2(org.category));
            if let Some(sec) = org.secondary {
                if rng.random_bool(0.6) {
                    set.insert(Category::l2(sec));
                }
            }
        }
        Some(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_worldgen::{World, WorldConfig};

    fn orgs() -> World {
        World::generate(WorldConfig::standard(WorldSeed::new(91)))
    }

    #[test]
    fn naicslite_roughly_halves_disagreement(/* Figure 1 */) {
        let w = orgs();
        let sample: Vec<&Organization> = w.orgs.iter().take(600).collect();
        let model = LabelerModel::default();
        let (naics, lite) = model.agreement_experiment(&sample, WorldSeed::new(1));

        // Every NAICSlite bar beats its NAICS counterpart.
        assert!(lite.any_top > naics.any_top);
        assert!(lite.any_low > naics.any_low);
        assert!(lite.complete_top > naics.complete_top);
        assert!(lite.complete_low > naics.complete_low);

        // Shape targets (generous bands around 71/31/41/18 vs 92/78/78/73).
        assert!(
            (naics.any_top - 0.71).abs() < 0.15,
            "naics any_top = {}",
            naics.any_top
        );
        assert!(naics.any_low < 0.55, "naics any_low = {}", naics.any_low);
        assert!(
            naics.complete_low < 0.40,
            "naics complete_low = {}",
            naics.complete_low
        );
        assert!(
            (lite.any_top - 0.92).abs() < 0.08,
            "lite any_top = {}",
            lite.any_top
        );
        assert!(
            (lite.any_low - 0.78).abs() < 0.12,
            "lite any_low = {}",
            lite.any_low
        );
        assert!(
            lite.complete_low > 0.55,
            "lite complete_low = {}",
            lite.complete_low
        );

        // "NAICSlite decreases disagreement amongst researchers … by a
        // factor of two": complete-overlap disagreement halves.
        let naics_disagree = 1.0 - naics.complete_low;
        let lite_disagree = 1.0 - lite.complete_low;
        assert!(
            naics_disagree / lite_disagree > 1.6,
            "disagreement ratio = {}",
            naics_disagree / lite_disagree
        );
    }

    #[test]
    fn labels_are_deterministic_per_researcher() {
        let w = orgs();
        let model = LabelerModel::default();
        let a = model.label(&w.orgs[5], 0, WorldSeed::new(2));
        let b = model.label(&w.orgs[5], 0, WorldSeed::new(2));
        assert_eq!(a.naicslite, b.naicslite);
        assert_eq!(a.naics, b.naics);
        let c = model.label(&w.orgs[5], 1, WorldSeed::new(2));
        // The other researcher is an independent draw (may or may not
        // coincide on this one org, but the seeds differ).
        let _ = c;
    }

    #[test]
    fn resolved_labels_are_near_truth() {
        let w = orgs();
        let model = LabelerModel::default();
        let (mut labeled, mut correct, mut l1_only) = (0usize, 0usize, 0usize);
        for org in w.orgs.iter().take(500) {
            match model.resolved_label(org, WorldSeed::new(3)) {
                None => continue,
                Some(set) => {
                    labeled += 1;
                    if set.layer2s().contains(&org.category) {
                        correct += 1;
                    } else if set.layer1s().contains(&org.category.layer1) {
                        l1_only += 1;
                    }
                }
            }
        }
        assert!(labeled > 480, "labeled = {labeled}");
        let exact = correct as f64 / labeled as f64;
        assert!(exact > 0.92, "exact = {exact}");
        assert!(l1_only > 0, "some layer-1-only resolutions expected");
    }
}
