//! ML classifier evaluation: Table 6.
//!
//! "We evaluate our pipeline by using the Gold Standard (Section 3.2) as
//! our test set. … The ISP and hosting classifiers exhibit a test AUC score
//! of .94 and .80, respectively."

use crate::goldsets::GoldSet;
use asdb_core::AsdbSystem;
use asdb_taxonomy::naicslite::known;
use asdb_textml::{BinaryConfusion, Metrics};
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};

/// One classifier's Table 6 panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierPanel {
    /// "Hosting" or "ISP".
    pub name: &'static str,
    /// Confusion matrix at the 0.5 threshold.
    pub confusion: BinaryConfusion,
    /// ROC AUC of the probability scores.
    pub auc: f64,
}

/// Table 6: evaluate both classifiers over a labeled set, using the
/// researcher-verified domain for each AS (the manual evaluation protocol —
/// domain-selection error is scored separately in Table 5).
pub fn table6(world: &World, gold: &GoldSet, system: &AsdbSystem) -> Vec<ClassifierPanel> {
    let mut isp_pairs: Vec<(bool, bool)> = Vec::new();
    let mut isp_scores: Vec<f32> = Vec::new();
    let mut isp_truth: Vec<bool> = Vec::new();
    let mut host_pairs: Vec<(bool, bool)> = Vec::new();
    let mut host_scores: Vec<f32> = Vec::new();
    let mut host_truth: Vec<bool> = Vec::new();

    for (entry, labels) in gold.labeled() {
        let org = world.org_of(entry.asn).expect("owner exists");
        let Some(domain) = &org.domain else { continue };
        let Some(v) = system.ml.classify(system.web(), domain) else {
            continue;
        };
        let is_isp = labels.layer2s().contains(&known::isp());
        let is_host = labels.layer2s().contains(&known::hosting());
        isp_pairs.push((is_isp, v.is_isp()));
        isp_scores.push(v.p_isp);
        isp_truth.push(is_isp);
        host_pairs.push((is_host, v.is_hosting()));
        host_scores.push(v.p_hosting);
        host_truth.push(is_host);
    }

    vec![
        ClassifierPanel {
            name: "Hosting",
            confusion: BinaryConfusion::from_pairs(host_pairs),
            auc: Metrics::roc_auc(&host_scores, &host_truth),
        },
        ClassifierPanel {
            name: "ISP",
            confusion: BinaryConfusion::from_pairs(isp_pairs),
            auc: Metrics::roc_auc(&isp_scores, &isp_truth),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use asdb_model::WorldSeed;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    #[test]
    fn table6_matches_paper_shape() {
        let c = ctx();
        let panels = table6(&c.world, &c.gold, &c.system);
        let hosting = &panels[0];
        let isp = &panels[1];
        assert_eq!(hosting.name, "Hosting");
        // Paper: ISP 94% accuracy / AUC .94; hosting 90% / AUC .80; FP
        // rates 1% and 3%; both classifiers FN-heavy.
        assert!(
            isp.confusion.accuracy() > 0.85,
            "isp acc = {}",
            isp.confusion.accuracy()
        );
        assert!(
            hosting.confusion.accuracy() > 0.80,
            "hosting acc = {}",
            hosting.confusion.accuracy()
        );
        assert!(isp.auc > 0.88, "isp auc = {}", isp.auc);
        assert!(hosting.auc > 0.72, "hosting auc = {}", hosting.auc);
        assert!(
            isp.confusion.fp_fraction() < 0.08,
            "isp fp = {}",
            isp.confusion.fp_fraction()
        );
        assert!(
            hosting.confusion.fp_fraction() < 0.10,
            "hosting fp = {}",
            hosting.confusion.fp_fraction()
        );
        // ISP is the stronger classifier, as in the paper.
        assert!(isp.auc >= hosting.auc - 0.02);
    }

    #[test]
    fn false_negatives_dominate_false_positives() {
        let c = ctx();
        let panels = table6(&c.world, &c.gold, &c.system);
        for p in &panels {
            assert!(
                p.confusion.fn_fraction() + 0.02 >= p.confusion.fp_fraction(),
                "{}: FN {} vs FP {}",
                p.name,
                p.confusion.fn_fraction(),
                p.confusion.fp_fraction()
            );
        }
    }
}
