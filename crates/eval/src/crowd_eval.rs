//! Crowdwork experiments: Figures 5a/5b/6/7 and Table 9.

use crate::goldsets::GoldSet;
use asdb_core::{AsdbSystem, Stage};
use asdb_crowd::consensus::ConsensusRule;
use asdb_crowd::experiment::{run_assignment, AssignmentOutcome, CrowdConfig};
use asdb_crowd::task::{CrowdTask, TaskKind};
use asdb_model::WorldSeed;
use asdb_taxonomy::{Category, CategorySet, Layer1};
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};

/// Build the Appendix B wage-experiment task sets: "a group of 20
/// technology and 20 finance ASes", asking for layer-2 labels.
pub fn wage_tasks(world: &World, gold: &GoldSet, l1: Layer1, n: usize) -> Vec<CrowdTask> {
    let mut tasks = Vec::new();
    for (entry, labels) in gold.labeled() {
        if tasks.len() >= n {
            break;
        }
        if !labels.layer1s().contains(&l1) {
            continue;
        }
        let org = world.org_of(entry.asn).expect("owner exists");
        // Ease: finance is easy; technology is hard; a dead site makes
        // everything harder.
        let mut ease = if l1 == Layer1::ComputerAndIT {
            0.45
        } else {
            0.92
        };
        if !org.live_site {
            ease *= 0.5;
        }
        tasks.push(CrowdTask {
            asn: entry.asn,
            kind: TaskKind::OpenClassification,
            options: l1.layer2_iter().map(Category::l2).collect(),
            truth: labels.clone(),
            ease,
        });
    }
    tasks
}

/// One reward point of Figures 5a/5b/6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RewardPoint {
    /// Reward in cents.
    pub reward_cents: u32,
    /// Consensus coverage (Figure 5a).
    pub coverage: f64,
    /// Loose-match accuracy (Figure 5b).
    pub loose_accuracy: f64,
    /// Strict-match accuracy (Figure 5b).
    pub strict_accuracy: f64,
    /// Median hourly wage in dollars (Figure 6).
    pub median_wage: f64,
    /// Mean hourly wage.
    pub mean_wage: f64,
}

/// Sweep the offered reward 10–60¢ for one task set (Figures 5a/5b/6).
pub fn reward_sweep(tasks: &[CrowdTask], label: &str, seed: WorldSeed) -> Vec<RewardPoint> {
    (1..=6u32)
        .map(|step| {
            let reward = step * 10;
            let outcome = run_assignment(
                tasks,
                CrowdConfig {
                    reward_cents: reward,
                    rule: ConsensusRule::TWO_OF_THREE,
                },
                &format!("{label}-{reward}c"),
                seed,
            );
            point(reward, &outcome)
        })
        .collect()
}

fn point(reward: u32, o: &AssignmentOutcome) -> RewardPoint {
    RewardPoint {
        reward_cents: reward,
        coverage: o.coverage(),
        loose_accuracy: o.loose_accuracy(),
        strict_accuracy: o.strict_accuracy(),
        median_wage: o.median_wage(),
        mean_wage: o.mean_wage(),
    }
}

/// One consensus-rule point of Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsensusPoint {
    /// The rule (k of n).
    pub rule: ConsensusRule,
    /// Coverage.
    pub coverage: f64,
    /// Loose accuracy.
    pub loose_accuracy: f64,
    /// Strict accuracy.
    pub strict_accuracy: f64,
}

/// Figure 7: fix the reward at 30¢ and vary the consensus requirement.
pub fn consensus_sweep(tasks: &[CrowdTask], label: &str, seed: WorldSeed) -> Vec<ConsensusPoint> {
    [
        ConsensusRule::TWO_OF_THREE,
        ConsensusRule::THREE_OF_FIVE,
        ConsensusRule::FOUR_OF_FIVE,
    ]
    .into_iter()
    .map(|rule| {
        let o = run_assignment(
            tasks,
            CrowdConfig {
                reward_cents: 30,
                rule,
            },
            &format!("{label}-{}of{}", rule.k, rule.n),
            seed,
        );
        ConsensusPoint {
            rule,
            coverage: o.coverage(),
            loose_accuracy: o.loose_accuracy(),
            strict_accuracy: o.strict_accuracy(),
        }
    })
    .collect()
}

/// Table 9: ASdb with crowdwork replacing the auto-choose heuristic on the
/// weak stages (0 sources / 1 source / none agree).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdSystemRow {
    /// Stage label.
    pub stage: String,
    /// Entries in this stage.
    pub n: usize,
    /// Baseline L1 accuracy (auto-choose / no label).
    pub baseline_accuracy: f64,
    /// Crowd-assisted L1 accuracy.
    pub crowd_accuracy: f64,
}

/// Table 9 output: per-stage rows plus overall deltas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9 {
    /// The reviewed stages.
    pub rows: Vec<CrowdSystemRow>,
    /// Overall L1 accuracy before crowdwork.
    pub base_l1_accuracy: f64,
    /// Overall L1 accuracy with crowdwork.
    pub crowd_l1_accuracy: f64,
}

/// Run the Table 9 experiment over a labeled set.
pub fn table9(world: &World, set: &GoldSet, system: &AsdbSystem, seed: WorldSeed) -> Table9 {
    let mut rows_acc: std::collections::HashMap<Stage, (usize, usize, usize)> = Default::default();
    let (mut base_ok, mut crowd_ok, mut n_classified) = (0usize, 0usize, 0usize);

    for (entry, labels) in set.labeled() {
        let rec = world.as_record(entry.asn).expect("record exists");
        let c = system.classify(&rec.parsed);
        let weak = matches!(
            c.stage,
            Stage::ZeroSources | Stage::OneSource | Stage::MultiNoneAgree
        );
        let base_correct = c.is_classified() && c.categories.overlaps_l1(labels);

        let final_labels: CategorySet = if weak {
            // Build the crowd task: union of source labels, or an open
            // layer-1 classification when nothing matched.
            let org = world.org_of(entry.asn).expect("owner exists");
            let (options, ease): (Vec<Category>, f64) = if c.match_labels.is_empty() {
                (
                    Layer1::ALL.iter().map(|l| Category::l1(*l)).collect(),
                    if org.live_site { 0.3 } else { 0.1 },
                )
            } else {
                let mut opts: Vec<Category> = c
                    .match_labels
                    .iter()
                    .flat_map(|(_, set)| set.iter())
                    .collect();
                opts.sort();
                opts.dedup();
                (opts, if org.live_site { 0.6 } else { 0.25 })
            };
            let task = CrowdTask {
                asn: entry.asn,
                kind: TaskKind::ChooseAmongSources,
                options,
                truth: labels.clone(),
                ease,
            };
            let o = run_assignment(
                &[task],
                CrowdConfig {
                    reward_cents: 10,
                    rule: ConsensusRule::TWO_OF_THREE,
                },
                &format!("table9-{}", entry.asn),
                seed,
            );
            let consensus = o.consensus.into_iter().next().unwrap_or_default();
            if consensus.is_empty() {
                c.categories.clone()
            } else {
                consensus
            }
        } else {
            c.categories.clone()
        };

        let crowd_correct = !final_labels.is_empty() && final_labels.overlaps_l1(labels);
        if c.is_classified() || !final_labels.is_empty() {
            n_classified += 1;
        }
        base_ok += usize::from(base_correct);
        crowd_ok += usize::from(crowd_correct);
        if weak {
            let e = rows_acc.entry(c.stage).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += usize::from(base_correct);
            e.2 += usize::from(crowd_correct);
        }
    }

    let mut rows: Vec<CrowdSystemRow> = rows_acc
        .into_iter()
        .map(|(stage, (n, base, crowd))| CrowdSystemRow {
            stage: stage.label().to_owned(),
            n,
            baseline_accuracy: base as f64 / n.max(1) as f64,
            crowd_accuracy: crowd as f64 / n.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| a.stage.cmp(&b.stage));
    Table9 {
        rows,
        base_l1_accuracy: base_ok as f64 / n_classified.max(1) as f64,
        crowd_l1_accuracy: crowd_ok as f64 / n_classified.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::standard(WorldSeed::new(424)))
    }

    #[test]
    fn figure5_coverage_rises_accuracy_flat() {
        let c = ctx();
        // The paper used 20 ASes per type; unit tests use larger samples
        // so the monotonicity claims aren't drowned by 1-task noise (the
        // experiment reports still use the paper's 20).
        let tech = wage_tasks(&c.world, &c.gold, Layer1::ComputerAndIT, 60);
        let fin = wage_tasks(&c.world, &c.uniform, Layer1::Finance, 20);
        assert!(tech.len() >= 15, "tech tasks = {}", tech.len());
        assert!(fin.len() >= 4, "finance tasks = {}", fin.len());
        let sweep = reward_sweep(&tech, "fig5-tech", c.seed);
        assert_eq!(sweep.len(), 6);
        assert!(
            sweep[5].coverage >= sweep[0].coverage - 0.05,
            "coverage {:.2} → {:.2}",
            sweep[0].coverage,
            sweep[5].coverage
        );
        let delta = (sweep[5].loose_accuracy - sweep[0].loose_accuracy).abs();
        assert!(delta < 0.30, "loose accuracy moved {delta}");
        // Strict ≤ loose always.
        for p in &sweep {
            assert!(p.strict_accuracy <= p.loose_accuracy + 1e-9);
        }
    }

    #[test]
    fn figure5_finance_easier_than_tech() {
        let c = ctx();
        let tech = wage_tasks(&c.world, &c.gold, Layer1::ComputerAndIT, 60);
        let fin = wage_tasks(&c.world, &c.uniform, Layer1::Finance, 20);
        if fin.len() >= 15 {
            let t = reward_sweep(&tech, "fig5b-tech", c.seed);
            let f = reward_sweep(&fin, "fig5b-fin", c.seed);
            let t_avg: f64 = t.iter().map(|p| p.loose_accuracy).sum::<f64>() / 6.0;
            let f_avg: f64 = f.iter().map(|p| p.loose_accuracy).sum::<f64>() / 6.0;
            // 20-task samples are noisy; allow a modest band.
            assert!(f_avg >= t_avg - 0.12, "finance {f_avg} vs tech {t_avg}");
        }
    }

    #[test]
    fn figure6_wages_not_proportional_to_reward() {
        let c = ctx();
        let tech = wage_tasks(&c.world, &c.gold, Layer1::ComputerAndIT, 60);
        let sweep = reward_sweep(&tech, "fig6", c.seed);
        let ratio = sweep[5].median_wage / sweep[0].median_wage.max(0.01);
        assert!(ratio < 6.0, "6x reward gave {ratio}x wage");
        // Wages land in a human range overall.
        let mean: f64 = sweep.iter().map(|p| p.mean_wage).sum::<f64>() / 6.0;
        assert!(mean > 4.0 && mean < 80.0, "mean wage = {mean}");
    }

    #[test]
    fn figure7_stricter_consensus() {
        let c = ctx();
        let tech = wage_tasks(&c.world, &c.gold, Layer1::ComputerAndIT, 60);
        let sweep = consensus_sweep(&tech, "fig7", c.seed);
        assert_eq!(sweep.len(), 3);
        let two_three = &sweep[0];
        let four_five = &sweep[2];
        assert!(four_five.coverage <= two_three.coverage + 0.05);
        assert!(four_five.loose_accuracy >= two_three.loose_accuracy - 0.12);
    }

    #[test]
    fn table9_crowd_changes_little(/* "Adding crowdwork … affects coverage
                                      and accuracy negligibly" */) {
        let c = ctx();
        let t9 = table9(&c.world, &c.test, &c.system, c.seed);
        let delta = t9.crowd_l1_accuracy - t9.base_l1_accuracy;
        assert!(
            delta.abs() < 0.08,
            "crowd moved overall accuracy by {delta}"
        );
        assert!(t9.base_l1_accuracy > 0.80);
    }
}
