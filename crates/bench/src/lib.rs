//! # asdb-bench
//!
//! Shared setup for the Criterion benchmark harness. Each bench target
//! regenerates part of the paper's evaluation:
//!
//! * `tables` — one benchmark per evaluation table (3, 4, 5, 6, 7, 8, 9,
//!   10, 11), each measuring a full regeneration of that table;
//! * `figures` — Figures 1, 2, 5, 6, 7 plus the §5.3 maintenance and §6
//!   Telnet analyses;
//! * `throughput` — the operational costs the paper quotes (classification
//!   latency, ML inference, scraping, WHOIS parsing, batch scaling);
//! * `ablations` — design-choice comparisons called out in DESIGN.md
//!   (domain strategies, consensus vs auto-choose, confidence thresholds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asdb_eval::ExperimentContext;
use asdb_model::WorldSeed;
use asdb_worldgen::WorldConfig;
use std::sync::OnceLock;

/// The shared benchmark context (small world so Criterion iterations stay
/// in milliseconds; the shapes it produces match the standard world).
pub fn bench_context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(WorldConfig::small(WorldSeed::new(20211102))))
}
