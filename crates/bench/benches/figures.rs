//! One benchmark per evaluation figure, plus the §5.3 maintenance and §6
//! Telnet analyses.

use asdb_bench::bench_context;
use asdb_eval::experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig1_agreement", |b| {
        b.iter(|| black_box(experiments::fig1(ctx)))
    });
    group.bench_function("fig2_dnb_confidence", |b| {
        b.iter(|| black_box(experiments::fig2(ctx)))
    });
    group.bench_function("fig5_fig6_reward_sweep", |b| {
        b.iter(|| black_box(experiments::fig5_fig6(ctx)))
    });
    group.bench_function("fig7_consensus", |b| {
        b.iter(|| black_box(experiments::fig7(ctx)))
    });
    group.bench_function("maintenance_week", |b| {
        b.iter(|| black_box(experiments::maintenance(ctx)))
    });
    group.bench_function("telnet_case_study", |b| {
        b.iter(|| black_box(experiments::telnet(ctx)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
