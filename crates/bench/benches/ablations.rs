//! Ablations over the design choices DESIGN.md calls out: domain-selection
//! strategy (Table 5's three options), the D&B confidence threshold, and
//! the ML ensemble size. Each benchmark measures the cost of the variant;
//! the printed post-run summary (via `--nocapture` style stderr) is the
//! accuracy side of the trade-off.

use asdb_bench::bench_context;
use asdb_entity::domain_select::{select_domain, DomainCandidates, DomainStrategy};
use asdb_sources::{DataSource, Query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_domain_strategies(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("ablation_domain_strategy");
    group.sample_size(10);

    let inputs: Vec<(DomainCandidates, String)> = ctx
        .world
        .ases
        .iter()
        .take(100)
        .map(|rec| {
            let pool: Vec<_> = rec
                .parsed
                .candidate_domains()
                .into_iter()
                .map(|d| {
                    let count = ctx.world.domain_as_count(&d).max(1);
                    (d, count)
                })
                .collect();
            (DomainCandidates::new(pool), rec.parsed.name.clone())
        })
        .collect();

    for (label, strategy) in [
        ("random", DomainStrategy::Random),
        ("least_common", DomainStrategy::LeastCommon),
        ("most_similar", DomainStrategy::MostSimilar),
    ] {
        group.bench_with_input(BenchmarkId::new("select_100", label), &strategy, |b, &s| {
            b.iter(|| {
                for (cands, name) in &inputs {
                    black_box(select_domain(cands, name, s, &ctx.world.web, ctx.seed));
                }
            })
        });
    }
    group.finish();
}

fn bench_confidence_thresholds(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("ablation_dnb_threshold");
    group.sample_size(10);

    let queries: Vec<Query> = ctx
        .world
        .ases
        .iter()
        .take(60)
        .map(|rec| Query {
            asn: Some(rec.asn),
            name: Some(rec.parsed.name.clone()),
            domain: None,
            address: rec.parsed.address.clone(),
            phone: rec.parsed.phone.clone(),
        })
        .collect();

    for threshold in [1u8, 6, 9] {
        group.bench_with_input(
            BenchmarkId::new("search_60", threshold),
            &threshold,
            |b, &t| {
                b.iter(|| {
                    let mut kept = 0usize;
                    for q in &queries {
                        if let Some(m) = ctx.system.sources.dnb.search(q) {
                            if m.confidence.map(|c| c.value()).unwrap_or(0) >= t {
                                kept += 1;
                            }
                        }
                    }
                    black_box(kept)
                })
            },
        );
    }
    group.finish();
}

fn bench_consensus_vs_autochoose(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("ablation_arbitration");
    group.sample_size(10);

    // Measure the consensus phase in isolation: gather per-source labels
    // once, then compare the cost of consensus arbitration vs the trivial
    // auto-choose.
    let all_matches: Vec<Vec<asdb_sources::SourceMatch>> = ctx
        .world
        .ases
        .iter()
        .take(80)
        .map(|rec| {
            let q = Query {
                asn: Some(rec.asn),
                name: Some(rec.parsed.name.clone()),
                domain: None,
                address: rec.parsed.address.clone(),
                phone: rec.parsed.phone.clone(),
            };
            ctx.system.sources.search_all(&q)
        })
        .collect();

    group.bench_function("auto_choose_only", |b| {
        b.iter(|| {
            for matches in &all_matches {
                let best = matches.iter().max_by(|a, b| {
                    a.source
                        .accuracy_rank()
                        .partial_cmp(&b.source.accuracy_rank())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                black_box(best.map(|m| m.categories.clone()));
            }
        })
    });
    group.bench_function("full_consensus", |b| {
        b.iter(|| {
            for matches in &all_matches {
                // L1 vote counting as the pipeline does it.
                let mut votes: std::collections::HashMap<asdb_taxonomy::Layer1, usize> =
                    Default::default();
                for m in matches {
                    for l1 in m.categories.layer1s() {
                        *votes.entry(l1).or_insert(0) += 1;
                    }
                }
                let agreed: Vec<_> = votes.into_iter().filter(|(_, n)| *n >= 2).collect();
                black_box(agreed);
            }
        })
    });
    group.finish();
}

fn bench_full_ablation_suite(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("ablation_suite");
    group.sample_size(10);
    group.bench_function("all_arms_over_test_set", |b| {
        b.iter(|| {
            black_box(asdb_eval::ablations::run_ablations(
                &ctx.world,
                &ctx.test,
                &ctx.system,
            ))
        })
    });
    group.bench_function("background_baselines", |b| {
        b.iter(|| {
            black_box(asdb_eval::background::compare(
                &ctx.world,
                &ctx.gold,
                &ctx.system,
                ctx.seed,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_domain_strategies,
    bench_confidence_thresholds,
    bench_consensus_vs_autochoose,
    bench_full_ablation_suite
);
criterion_main!(benches);
