//! One benchmark per evaluation table: each iteration regenerates the
//! table from the shared context (sources and classifiers pre-built, as in
//! a deployed ASdb instance).

use asdb_bench::bench_context;
use asdb_eval::experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);

    group.bench_function("tab3_coverage", |b| {
        b.iter(|| black_box(experiments::tab3(ctx)))
    });
    group.bench_function("tab4_correctness", |b| {
        b.iter(|| black_box(experiments::tab4(ctx)))
    });
    group.bench_function("tab5_entity_resolution", |b| {
        b.iter(|| black_box(experiments::tab5(ctx)))
    });
    group.bench_function("tab6_classifiers", |b| {
        b.iter(|| black_box(experiments::tab6(ctx)))
    });
    group.bench_function("tab7_f1", |b| b.iter(|| black_box(experiments::tab7(ctx))));
    group.bench_function("tab8_stages", |b| {
        b.iter(|| black_box(experiments::tab8(ctx)))
    });
    group.bench_function("tab9_crowd_system", |b| {
        b.iter(|| black_box(experiments::tab9(ctx)))
    });
    group.bench_function("tab10_per_category", |b| {
        b.iter(|| black_box(experiments::tab10(ctx)))
    });
    group.bench_function("tab11_agreement_precision", |b| {
        b.iter(|| black_box(experiments::tab11(ctx)))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
