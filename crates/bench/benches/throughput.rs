//! Operational throughput: the per-AS costs behind the paper's "5–30
//! seconds to scrape … 1 second to classify 150 domains" and the batch
//! parallelism a production deployment relies on.

use asdb_bench::bench_context;
use asdb_core::batch::classify_batch;
use asdb_entity::name_similarity;
use asdb_rir::dump::{read_dump, write_dump};
use asdb_rir::extract;
use asdb_websim::scraper::{scrape, ScrapeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("throughput");

    // Single-AS classification latency through the full Figure 4 pipeline.
    let sample: Vec<_> = ctx.world.ases.iter().take(32).collect();
    group.throughput(Throughput::Elements(sample.len() as u64));
    group.bench_function("pipeline_classify_32_ases", |b| {
        b.iter(|| {
            for rec in &sample {
                black_box(ctx.system.classify(&rec.parsed));
            }
        })
    });

    // ML inference on pre-scraped text ("1 second to classify 150
    // domains" — ours is far faster, being in-process).
    let texts: Vec<String> = ctx
        .world
        .orgs
        .iter()
        .filter(|o| o.live_site)
        .take(150)
        .filter_map(|o| {
            let d = o.domain.as_ref()?;
            scrape(&ctx.world.web, d, &ScrapeConfig::default())
                .ok()
                .map(|r| r.text)
        })
        .collect();
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.bench_function("ml_inference_150_domains", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(ctx.system.ml.classify_text(t));
            }
        })
    });

    // Scraping (in-memory web).
    let domains: Vec<_> = ctx
        .world
        .orgs
        .iter()
        .filter(|o| o.live_site)
        .filter_map(|o| o.domain.clone())
        .take(50)
        .collect();
    group.throughput(Throughput::Elements(domains.len() as u64));
    group.bench_function("scrape_50_sites", |b| {
        b.iter(|| {
            for d in &domains {
                let _ = black_box(scrape(&ctx.world.web, d, &ScrapeConfig::default()));
            }
        })
    });

    // WHOIS dump render + parse + extraction.
    let rendered: Vec<_> = ctx
        .world
        .ases
        .iter()
        .take(500)
        .map(|r| asdb_rir::dialect::serialize(r.rir, &r.registration))
        .collect();
    let dump_text = write_dump(&rendered);
    group.throughput(Throughput::Bytes(dump_text.len() as u64));
    group.bench_function("whois_parse_500_records", |b| {
        b.iter(|| {
            let records = read_dump(black_box(&dump_text));
            for r in &records {
                black_box(extract(r));
            }
        })
    });

    // Name similarity (the entity-resolution hot loop).
    group.throughput(Throughput::Elements(1));
    group.bench_function("name_similarity", |b| {
        b.iter(|| {
            black_box(name_similarity(
                black_box("Nortel Ridge Telecom LLC"),
                black_box("NORTELRIDGE-NET backbone services"),
            ))
        })
    });

    // Batch scaling across thread counts.
    let records: Vec<_> = ctx
        .world
        .ases
        .iter()
        .take(64)
        .map(|r| r.parsed.clone())
        .collect();

    // Telemetry reconciliation: the stage counters must account for
    // exactly the records a batch processes — the observability layer's
    // core invariant, checked here against the real pipeline before any
    // timing happens.
    {
        let before = ctx.system.metrics().stage_total();
        let out = classify_batch(&ctx.system, &records, 4);
        let after = ctx.system.metrics().stage_total();
        assert_eq!(
            after - before,
            out.len() as u64,
            "stage counters must reconcile with records processed"
        );
    }

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch_classify_64", threads),
            &threads,
            |b, &t| b.iter(|| black_box(classify_batch(&ctx.system, &records, t))),
        );
    }

    // Instrumentation overhead: the same batch with telemetry recording
    // turned into a no-op. The delta between this and
    // batch_classify_64/4 is the cost of the metrics layer (required:
    // < 5%).
    ctx.system.metrics().set_enabled(false);
    group.bench_function("batch_classify_64_noop_metrics", |b| {
        b.iter(|| black_box(classify_batch(&ctx.system, &records, 4)))
    });
    ctx.system.metrics().set_enabled(true);

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput
}
criterion_main!(benches);
