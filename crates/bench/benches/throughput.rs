//! Operational throughput: the per-AS costs behind the paper's "5–30
//! seconds to scrape … 1 second to classify 150 domains" and the batch
//! parallelism a production deployment relies on.

use asdb_bench::bench_context;
use asdb_core::batch::{classify_batch, classify_batch_cached_with, BatchConfig};
use asdb_core::{AsdbSystem, FanoutConfig};
use asdb_entity::name_similarity;
use asdb_rir::dump::{read_dump, write_dump};
use asdb_rir::extract;
use asdb_websim::scraper::{scrape, ScrapeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

fn bench_throughput(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("throughput");

    // Single-AS classification latency through the full Figure 4 pipeline.
    let sample: Vec<_> = ctx.world.ases.iter().take(32).collect();
    group.throughput(Throughput::Elements(sample.len() as u64));
    group.bench_function("pipeline_classify_32_ases", |b| {
        b.iter(|| {
            for rec in &sample {
                black_box(ctx.system.classify(&rec.parsed));
            }
        })
    });

    // ML inference on pre-scraped text ("1 second to classify 150
    // domains" — ours is far faster, being in-process).
    let texts: Vec<String> = ctx
        .world
        .orgs
        .iter()
        .filter(|o| o.live_site)
        .take(150)
        .filter_map(|o| {
            let d = o.domain.as_ref()?;
            scrape(&ctx.world.web, d, &ScrapeConfig::default())
                .ok()
                .map(|r| r.text)
        })
        .collect();
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.bench_function("ml_inference_150_domains", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(ctx.system.ml.classify_text(t));
            }
        })
    });

    // Scraping (in-memory web).
    let domains: Vec<_> = ctx
        .world
        .orgs
        .iter()
        .filter(|o| o.live_site)
        .filter_map(|o| o.domain.clone())
        .take(50)
        .collect();
    group.throughput(Throughput::Elements(domains.len() as u64));
    group.bench_function("scrape_50_sites", |b| {
        b.iter(|| {
            for d in &domains {
                let _ = black_box(scrape(&ctx.world.web, d, &ScrapeConfig::default()));
            }
        })
    });

    // WHOIS dump render + parse + extraction.
    let rendered: Vec<_> = ctx
        .world
        .ases
        .iter()
        .take(500)
        .map(|r| asdb_rir::dialect::serialize(r.rir, &r.registration))
        .collect();
    let dump_text = write_dump(&rendered);
    group.throughput(Throughput::Bytes(dump_text.len() as u64));
    group.bench_function("whois_parse_500_records", |b| {
        b.iter(|| {
            let records = read_dump(black_box(&dump_text));
            for r in &records {
                black_box(extract(r));
            }
        })
    });

    // Name similarity (the entity-resolution hot loop).
    group.throughput(Throughput::Elements(1));
    group.bench_function("name_similarity", |b| {
        b.iter(|| {
            black_box(name_similarity(
                black_box("Nortel Ridge Telecom LLC"),
                black_box("NORTELRIDGE-NET backbone services"),
            ))
        })
    });

    // Batch scaling across thread counts.
    let records: Vec<_> = ctx
        .world
        .ases
        .iter()
        .take(64)
        .map(|r| r.parsed.clone())
        .collect();

    // Telemetry reconciliation: the stage counters must account for
    // exactly the records a batch processes — the observability layer's
    // core invariant, checked here against the real pipeline before any
    // timing happens.
    {
        let before = ctx.system.metrics().stage_total();
        let out = classify_batch(&ctx.system, &records, 4);
        let after = ctx.system.metrics().stage_total();
        assert_eq!(
            after - before,
            out.len() as u64,
            "stage counters must reconcile with records processed"
        );
    }

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch_classify_64", threads),
            &threads,
            |b, &t| b.iter(|| black_box(classify_batch(&ctx.system, &records, t))),
        );
    }

    // Instrumentation overhead: the same batch with telemetry recording
    // turned into a no-op. The delta between this and
    // batch_classify_64/4 is the cost of the metrics layer (required:
    // < 5%).
    ctx.system.metrics().set_enabled(false);
    group.bench_function("batch_classify_64_noop_metrics", |b| {
        b.iter(|| black_box(classify_batch(&ctx.system, &records, 4)))
    });
    ctx.system.metrics().set_enabled(true);

    // Cached-batch thread scaling: the sharded single-flight cache with
    // work-stealing chunks against the legacy layout (one shard, static
    // contiguous split — reproduced exactly via chunk_size =
    // len.div_ceil(threads) on a 1-shard system). Each iteration clears
    // the cache so every run exercises the cold miss/coalesce path; the
    // clear is identical across arms so the comparison stays fair.
    let legacy =
        AsdbSystem::build(&ctx.world, ctx.seed.derive("bench-legacy")).with_cache_shards(1);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("cached_batch_64_sharded", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    ctx.system.cache().clear();
                    black_box(classify_batch_cached_with(
                        &ctx.system,
                        &records,
                        BatchConfig::with_threads(t),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached_batch_64_legacy_1shard_static", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    legacy.cache().clear();
                    black_box(classify_batch_cached_with(
                        &legacy,
                        &records,
                        BatchConfig::with_threads(t).chunk_size(records.len().div_ceil(t)),
                    ))
                })
            },
        );
    }

    // Duplicate-heavy coalescing workload: every record 4×, so most
    // lookups land on an organization that is either cached or in
    // flight. This is the §5.1 multi-AS-organization shape that the
    // single-flight slot exists for.
    let dup_records: Vec<_> = records
        .iter()
        .flat_map(|r| std::iter::repeat(r.clone()).take(4))
        .collect();
    group.throughput(Throughput::Elements(dup_records.len() as u64));
    group.bench_function("cached_batch_256_dup4_coalescing", |b| {
        b.iter(|| {
            ctx.system.cache().clear();
            black_box(classify_batch_cached_with(
                &ctx.system,
                &dup_records,
                BatchConfig::with_threads(8).chunk_size(1),
            ))
        })
    });

    // Source fan-out: concurrent scoped-thread stage-1/stage-3 calls vs
    // the forced-sequential transport, same seed and world, single batch
    // worker so only the per-record fan-out differs. Outcomes are
    // bit-identical (asserted by tests/fanout_integration.rs); this arm
    // measures what the concurrency buys (or costs) on the in-memory
    // sources, where per-call work is microseconds and thread spawn
    // overhead is the interesting number.
    let fanout_conc = AsdbSystem::build(&ctx.world, ctx.seed.derive("bench-fanout"));
    let fanout_seq = AsdbSystem::build(&ctx.world, ctx.seed.derive("bench-fanout")).with_transport(
        FanoutConfig {
            concurrent: false,
            ..FanoutConfig::default()
        },
    );
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("fanout_concurrent_64", |b| {
        b.iter(|| {
            for rec in &records {
                black_box(fanout_conc.classify(rec));
            }
        })
    });
    group.bench_function("fanout_sequential_64", |b| {
        b.iter(|| {
            for rec in &records {
                black_box(fanout_seq.classify(rec));
            }
        })
    });

    group.finish();

    write_throughput_json(&ctx.system, &legacy, &records, &dup_records);
    write_fanout_json(&fanout_conc, &fanout_seq, &records);
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Machine-readable summary of the scheduler/cache comparison, written to
/// the workspace root so CI and the perf snapshots in `perf/` can diff
/// runs without scraping Criterion's HTML.
fn write_throughput_json(
    sharded: &AsdbSystem,
    legacy: &AsdbSystem,
    records: &[asdb_rir::ParsedWhois],
    dup_records: &[asdb_rir::ParsedWhois],
) {
    const RUNS: usize = 7;
    let mut arms = Vec::new();
    for &t in &[1usize, 2, 4, 8] {
        let ns = median_ns(RUNS, || {
            sharded.cache().clear();
            black_box(classify_batch_cached_with(
                sharded,
                records,
                BatchConfig::with_threads(t),
            ));
        });
        arms.push(format!(
            "    {{\"name\": \"cached_batch_64_sharded\", \"threads\": {t}, \"median_ns\": {ns}}}"
        ));
        let ns = median_ns(RUNS, || {
            legacy.cache().clear();
            black_box(classify_batch_cached_with(
                legacy,
                records,
                BatchConfig::with_threads(t).chunk_size(records.len().div_ceil(t)),
            ));
        });
        arms.push(format!(
            "    {{\"name\": \"cached_batch_64_legacy_1shard_static\", \"threads\": {t}, \"median_ns\": {ns}}}"
        ));
    }
    let ns = median_ns(RUNS, || {
        sharded.cache().clear();
        black_box(classify_batch_cached_with(
            sharded,
            dup_records,
            BatchConfig::with_threads(8).chunk_size(1),
        ));
    });
    arms.push(format!(
        "    {{\"name\": \"cached_batch_256_dup4_coalescing\", \"threads\": 8, \"median_ns\": {ns}}}"
    ));

    // One instrumented run for the coalescing accounting.
    sharded.cache().clear();
    let before_inserts = sharded.cache().inserts();
    let before_coalesced = sharded.cache().coalesced();
    let _ = classify_batch_cached_with(
        sharded,
        dup_records,
        BatchConfig::with_threads(8).chunk_size(1),
    );
    let inserts = sharded.cache().inserts() - before_inserts;
    let coalesced = sharded.cache().coalesced() - before_coalesced;

    let json = format!(
        "{{\n  \"bench\": \"throughput/cached_batch\",\n  \"records\": {}, \"dup_records\": {},\n  \"shards_default\": {}, \"runs_per_arm\": {RUNS},\n  \"dup_run_inserts\": {inserts}, \"dup_run_coalesced\": {coalesced},\n  \"arms\": [\n{}\n  ]\n}}\n",
        records.len(),
        dup_records.len(),
        sharded.cache().shard_count(),
        arms.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

/// Machine-readable fan-out-vs-sequential comparison, written to the
/// workspace root as `BENCH_fanout.json` (same median-of-7 protocol as
/// `BENCH_throughput.json`).
fn write_fanout_json(conc: &AsdbSystem, seq: &AsdbSystem, records: &[asdb_rir::ParsedWhois]) {
    const RUNS: usize = 7;
    let conc_ns = median_ns(RUNS, || {
        for rec in records {
            black_box(conc.classify(rec));
        }
    });
    let seq_ns = median_ns(RUNS, || {
        for rec in records {
            black_box(seq.classify(rec));
        }
    });
    let json = format!(
        "{{\n  \"bench\": \"throughput/fanout\",\n  \"records\": {}, \"runs_per_arm\": {RUNS},\n  \"arms\": [\n    {{\"name\": \"fanout_concurrent\", \"median_ns\": {conc_ns}}},\n    {{\"name\": \"fanout_sequential\", \"median_ns\": {seq_ns}}}\n  ]\n}}\n",
        records.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fanout.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput
}
criterion_main!(benches);
