//! The text-ML hot path: lazy-scaled sparse SGD, zero-copy featurization,
//! and parallel ensemble training versus the retained pre-optimization
//! reference implementations (`asdb-textml`'s `dense-ref` feature).
//!
//! Besides the Criterion arms, the harness writes `BENCH_textml.json` at
//! the workspace root with median wall times for each before/after pair so
//! the perf trajectory is machine-diffable (see `perf/README.md`).

use asdb_model::WorldSeed;
use asdb_textml::pipeline::PipelineConfig;
use asdb_textml::sgd::{dense_ref, SgdClassifier, SgdConfig, SgdEnsemble};
use asdb_textml::vectorize::VectorizerConfig;
use asdb_textml::{CountVectorizer, SparseVec, TextPipeline, TfidfTransformer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Corpus scale from the acceptance criteria: ~2k docs over a ~20k-word
/// vocabulary, averaged logistic SGD, 20 epochs.
const N_DOCS: usize = 2_000;
const VOCAB: usize = 20_000;
const DOC_LEN: usize = 60;

/// Deterministic xorshift64* so the corpus is identical across runs and
/// does not depend on the `rand` crate's stream.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Synthetic corpus: near-uniform draws over the vocabulary (so ~all of it
/// survives df filtering) with a label-correlated skew in the first 1000
/// words, which keeps the learning problem non-degenerate.
fn corpus() -> (Vec<String>, Vec<bool>) {
    let mut rng = XorShift(0x5DEECE66D);
    let mut docs = Vec::with_capacity(N_DOCS);
    let mut labels = Vec::with_capacity(N_DOCS);
    for d in 0..N_DOCS {
        let label = d % 2 == 0;
        let mut words = Vec::with_capacity(DOC_LEN);
        for _ in 0..DOC_LEN {
            let w = if label && rng.next() % 5 == 0 {
                (rng.next() % 1_000) as usize
            } else {
                (rng.next() % VOCAB as u64) as usize
            };
            words.push(format!("w{w:05}"));
        }
        docs.push(words.join(" "));
        labels.push(label);
    }
    (docs, labels)
}

struct TrainSetup {
    features: Vec<SparseVec>,
    labels: Vec<bool>,
    n_features: usize,
    config: SgdConfig,
}

fn train_setup(docs: &[&str], labels: &[bool]) -> TrainSetup {
    let mut vectorizer = CountVectorizer::new(VectorizerConfig {
        max_features: VOCAB,
        min_df: 1,
        max_df_ratio: 1.0,
    });
    let counts = vectorizer.fit_transform(docs);
    let (_, features) = TfidfTransformer::fit_transform(&counts);
    TrainSetup {
        features,
        labels: labels.to_vec(),
        n_features: vectorizer.vocab_len(),
        config: SgdConfig::default(), // averaged logistic SGD, 20 epochs
    }
}

fn bench_textml(c: &mut Criterion) {
    let (docs, labels) = corpus();
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let setup = train_setup(&doc_refs, &labels);
    let seed = WorldSeed::new(20211102);

    let mut group = c.benchmark_group("textml_train");
    group.sample_size(10);
    group.bench_function("lazy_sparse_sgd", |b| {
        b.iter(|| {
            black_box(SgdClassifier::fit(
                &setup.features,
                &setup.labels,
                setup.n_features,
                setup.config.clone(),
                seed,
            ))
        })
    });
    group.bench_function("dense_ref_sgd", |b| {
        b.iter(|| {
            black_box(dense_ref::fit_dense(
                &setup.features,
                &setup.labels,
                setup.n_features,
                setup.config.clone(),
                seed,
            ))
        })
    });
    group.bench_function("ensemble3_parallel_lazy", |b| {
        b.iter(|| {
            black_box(SgdEnsemble::fit(
                &setup.features,
                &setup.labels,
                setup.n_features,
                setup.config.clone(),
                seed,
                3,
            ))
        })
    });
    group.finish();

    // Inference: full raw-text → probability, old vs new featurization.
    let mut cfg = PipelineConfig::asdb_default();
    cfg.vectorizer.min_df = 1;
    let pipe = TextPipeline::fit(&doc_refs, &labels, cfg, seed);
    let mut group = c.benchmark_group("textml_predict");
    group.sample_size(10);
    group.bench_function("zero_copy_2k_docs", |b| {
        b.iter(|| {
            for d in &doc_refs {
                black_box(pipe.predict_proba(d));
            }
        })
    });
    group.bench_function("naive_ref_2k_docs", |b| {
        b.iter(|| {
            for d in &doc_refs {
                black_box(pipe.ensemble().predict_proba(&pipe.featurize_naive(d)));
            }
        })
    });
    group.finish();

    write_textml_json(&setup, &pipe, &doc_refs, seed);
}

/// Median wall time of `runs` executions of `f`, in nanoseconds.
fn median_ns(runs: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Machine-readable before/after summary, written to the workspace root so
/// the perf trajectory survives outside Criterion's HTML.
fn write_textml_json(setup: &TrainSetup, pipe: &TextPipeline, docs: &[&str], seed: WorldSeed) {
    const TRAIN_RUNS: usize = 5;
    const PREDICT_RUNS: usize = 7;
    let nnz: usize = setup.features.iter().map(SparseVec::nnz).sum();

    let train_dense = median_ns(TRAIN_RUNS, || {
        black_box(dense_ref::fit_dense(
            &setup.features,
            &setup.labels,
            setup.n_features,
            setup.config.clone(),
            seed,
        ));
    });
    let train_lazy = median_ns(TRAIN_RUNS, || {
        black_box(SgdClassifier::fit(
            &setup.features,
            &setup.labels,
            setup.n_features,
            setup.config.clone(),
            seed,
        ));
    });
    let ens_serial_dense = median_ns(TRAIN_RUNS, || {
        for i in 0..3u64 {
            black_box(dense_ref::fit_dense(
                &setup.features,
                &setup.labels,
                setup.n_features,
                setup.config.clone(),
                seed.derive_index("sgd-member", i),
            ));
        }
    });
    let ens_parallel_lazy = median_ns(TRAIN_RUNS, || {
        black_box(SgdEnsemble::fit(
            &setup.features,
            &setup.labels,
            setup.n_features,
            setup.config.clone(),
            seed,
            3,
        ));
    });
    let predict_naive = median_ns(PREDICT_RUNS, || {
        for d in docs {
            black_box(pipe.ensemble().predict_proba(&pipe.featurize_naive(d)));
        }
    });
    let predict_fast = median_ns(PREDICT_RUNS, || {
        for d in docs {
            black_box(pipe.predict_proba(d));
        }
    });

    let ratio = |before: u128, after: u128| before as f64 / after.max(1) as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"textml\",\n",
            "  \"docs\": {docs}, \"vocab\": {vocab}, \"nnz_total\": {nnz},\n",
            "  \"sgd\": \"averaged logistic, 20 epochs\",\n",
            "  \"train_runs\": {train_runs}, \"predict_runs\": {predict_runs},\n",
            "  \"arms\": [\n",
            "    {{\"name\": \"textml_train_dense_ref\", \"median_ns\": {td}}},\n",
            "    {{\"name\": \"textml_train_lazy\", \"median_ns\": {tl}}},\n",
            "    {{\"name\": \"textml_train_ensemble3_serial_dense\", \"median_ns\": {esd}}},\n",
            "    {{\"name\": \"textml_train_ensemble3_parallel_lazy\", \"median_ns\": {epl}}},\n",
            "    {{\"name\": \"textml_predict_naive_ref_2k_docs\", \"median_ns\": {pn}}},\n",
            "    {{\"name\": \"textml_predict_zero_copy_2k_docs\", \"median_ns\": {pf}}}\n",
            "  ],\n",
            "  \"speedup\": {{\n",
            "    \"textml_train\": {strain:.2},\n",
            "    \"textml_train_ensemble3\": {sens:.2},\n",
            "    \"textml_predict\": {spred:.2}\n",
            "  }}\n",
            "}}\n",
        ),
        docs = docs.len(),
        vocab = setup.n_features,
        nnz = nnz,
        train_runs = TRAIN_RUNS,
        predict_runs = PREDICT_RUNS,
        td = train_dense,
        tl = train_lazy,
        esd = ens_serial_dense,
        epl = ens_parallel_lazy,
        pn = predict_naive,
        pf = predict_fast,
        strain = ratio(train_dense, train_lazy),
        sens = ratio(ens_serial_dense, ens_parallel_lazy),
        spred = ratio(predict_naive, predict_fast),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_textml.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_textml
}
criterion_main!(benches);
