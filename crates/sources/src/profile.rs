//! Calibration profiles: each constant is a measurement the paper made of
//! the *real* service (§3.3, Tables 3–4), used here as the corresponding
//! simulated service's generative parameter. Tests pin every value.

use serde::{Deserialize, Serialize};

/// Coverage and label-correctness profile for a business-registry source.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SourceProfile {
    /// P(source covers a technology organization).
    pub coverage_tech: f64,
    /// P(source covers a non-technology organization).
    pub coverage_nontech: f64,
    /// P(the stored label's layer-1 category is right).
    pub l1_correct: f64,
    /// P(the stored label's layer-2 subcategory is right | non-tech org).
    pub l2_correct_nontech: f64,
    /// P(the stored label's layer-2 subcategory is right | tech org other
    /// than ISP/hosting).
    pub l2_correct_tech: f64,
    /// P(correct | the org is an ISP).
    pub l2_correct_isp: f64,
    /// P(correct | the org is a hosting provider).
    pub l2_correct_hosting: f64,
}

/// Dun & Bradstreet (Table 3: 82% coverage, 76% tech / 94% non-tech;
/// Table 4: L1 96%, L2 non-tech 86%, tech 63%, ISP 70%, hosting 45%).
pub const DNB: SourceProfile = SourceProfile {
    coverage_tech: 0.76,
    coverage_nontech: 0.94,
    l1_correct: 0.96,
    l2_correct_nontech: 0.86,
    l2_correct_tech: 0.63,
    l2_correct_isp: 0.70,
    l2_correct_hosting: 0.45,
};

/// Crunchbase (coverage 37%: 29% tech / 52% non-tech; L1 80%,
/// L2 non-tech 93%, tech 54%, ISP 62%, hosting 40%).
pub const CRUNCHBASE: SourceProfile = SourceProfile {
    coverage_tech: 0.29,
    coverage_nontech: 0.52,
    l1_correct: 0.80,
    l2_correct_nontech: 0.93,
    l2_correct_tech: 0.54,
    l2_correct_isp: 0.62,
    l2_correct_hosting: 0.40,
};

/// ZoomInfo (coverage 68%: 57% tech / 88% non-tech; L1 70%,
/// L2 non-tech 74%, tech 62%, ISP 61%, hosting 63%).
pub const ZOOMINFO: SourceProfile = SourceProfile {
    coverage_tech: 0.57,
    coverage_nontech: 0.88,
    l1_correct: 0.70,
    l2_correct_nontech: 0.74,
    l2_correct_tech: 0.62,
    l2_correct_isp: 0.61,
    l2_correct_hosting: 0.63,
};

/// Clearbit (coverage 61%: 80% tech / 90% non-tech in raw counts; L1 34%
/// overall with tech 6% / non-tech 76% — its 2-digit NAICS prefixes cannot
/// express "technology").
pub const CLEARBIT: SourceProfile = SourceProfile {
    coverage_tech: 0.80,
    coverage_nontech: 0.90,
    l1_correct: 0.76, // non-tech only; tech correctness is structural (≈6%)
    l2_correct_nontech: 0.40,
    l2_correct_tech: 0.05,
    l2_correct_isp: 0.05,
    l2_correct_hosting: 0.05,
};

/// Zvelo's tech-label confusion: even when the underlying website
/// classifier scores the right content cluster, Zvelo's business taxonomy
/// files hosting providers under generic internet/technology labels more
/// often than not — hosting recall 25%, ISP 81% (Table 4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZveloProfile {
    /// P(a hosting site keeps the "Web Hosting" label rather than a generic
    /// internet/technology one).
    pub hosting_kept: f64,
    /// P(an ISP site keeps the "Internet Services" label).
    pub isp_kept: f64,
    /// P(a non-tech site's label survives taxonomy mapping; Table 4 L2
    /// non-tech = 41%).
    pub nontech_kept: f64,
}

/// Calibrated Zvelo profile.
pub const ZVELO: ZveloProfile = ZveloProfile {
    hosting_kept: 0.25,
    isp_kept: 0.81,
    nontech_kept: 0.41,
};

/// PeeringDB (coverage 15%: 22% tech / 2% non-tech; ISP recall 100%,
/// L2 tech 95%).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PeeringDbProfile {
    /// P(an ISP/IXP-ish tech org registered itself).
    pub coverage_network: f64,
    /// P(any other tech org registered).
    pub coverage_other_tech: f64,
    /// P(a non-tech org registered).
    pub coverage_nontech: f64,
    /// P(the self-reported type is the right one).
    pub type_correct: f64,
}

/// Calibrated PeeringDB profile.
pub const PEERINGDB: PeeringDbProfile = PeeringDbProfile {
    coverage_network: 0.28,
    coverage_other_tech: 0.08,
    coverage_nontech: 0.02,
    type_correct: 0.95,
};

/// IPinfo (coverage 30%: 39% tech / 15% non-tech; L1 96%; L2 76%: hosting
/// 83%, ISP 81%; Table 5: 14% of automated matches describe the wrong
/// entity).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IpinfoProfile {
    /// P(covers a tech org's ASes).
    pub coverage_tech: f64,
    /// P(covers a non-tech org's ASes).
    pub coverage_nontech: f64,
    /// P(the four-way type is right).
    pub type_correct: f64,
    /// P(an entry is stale and describes a previous/wrong owner).
    pub stale_entity: f64,
}

/// Calibrated IPinfo profile.
pub const IPINFO: IpinfoProfile = IpinfoProfile {
    coverage_tech: 0.39,
    coverage_nontech: 0.15,
    type_correct: 0.81,
    stale_entity: 0.14,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnb_matches_table_3_and_4() {
        assert_eq!(DNB.coverage_tech, 0.76);
        assert_eq!(DNB.coverage_nontech, 0.94);
        assert_eq!(DNB.l1_correct, 0.96);
        assert_eq!(DNB.l2_correct_isp, 0.70);
        assert_eq!(DNB.l2_correct_hosting, 0.45);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // calibration guards on consts
    fn hosting_is_every_registry_sources_weakest_class() {
        for p in [DNB, CRUNCHBASE] {
            assert!(p.l2_correct_hosting < p.l2_correct_isp);
            assert!(p.l2_correct_hosting < p.l2_correct_nontech);
        }
        assert!(ZVELO.hosting_kept < ZVELO.isp_kept);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // calibration guards on consts
    fn clearbit_cannot_express_tech() {
        assert!(CLEARBIT.l2_correct_tech < 0.10);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // calibration guards on consts
    fn networking_sources_skew_tech() {
        assert!(PEERINGDB.coverage_network > PEERINGDB.coverage_nontech * 5.0);
        assert!(IPINFO.coverage_tech > IPINFO.coverage_nontech);
    }

    #[test]
    fn probabilities_in_range() {
        for p in [DNB, CRUNCHBASE, ZOOMINFO, CLEARBIT] {
            for v in [
                p.coverage_tech,
                p.coverage_nontech,
                p.l1_correct,
                p.l2_correct_nontech,
                p.l2_correct_tech,
                p.l2_correct_isp,
                p.l2_correct_hosting,
            ] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
