//! Simulated Dun & Bradstreet.
//!
//! "D&B allows searching for companies by name, address, phone, and domain.
//! In response, their service returns a single company's information (e.g.,
//! DUNS#, a unique company identifier) and a 1–10 confidence score. For
//! bulk access, there is no control over which company is chosen if
//! multiple companies share the same name or address" (§3.5).
//!
//! The search returns the best-matching entry with a confidence code
//! derived from match quality plus editorial noise; Figure 2's property —
//! codes below 6 are right less than half the time, codes ≥ 6 at least 80%
//! — emerges because wrong entities only ever match at middling similarity.

use crate::profile::{self};
use crate::registry::{emit_naics_label, profile_covers, BusinessRegistry};
use crate::{DataSource, Query, SourceId, SourceMatch};
use asdb_model::{ConfidenceCode, OrgId, WorldSeed};
use asdb_worldgen::World;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The simulated D&B service.
#[derive(Debug, Clone)]
pub struct Dnb {
    registry: BusinessRegistry,
    seed: WorldSeed,
}

impl Dnb {
    /// Build over a world.
    pub fn build(world: &World, seed: WorldSeed) -> Dnb {
        let p = profile::DNB;
        let registry = BusinessRegistry::build(
            &world.orgs,
            seed.derive("dnb"),
            move |o, rng| profile_covers(&p, o, rng),
            move |o, rng| emit_naics_label(&p, o, rng),
        );
        Dnb {
            registry,
            seed: seed.derive("dnb-search"),
        }
    }

    /// Number of listed organizations.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the listing is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// Match quality → confidence code, with ±1 editorial noise. The
    /// mapping is deliberately steep near the top: only near-exact,
    /// unambiguous matches reach codes 9–10, and the sub-0.7 quality zone
    /// (where homonym mismatches live) lands below the reliability
    /// threshold — producing Figure 2's accuracy-by-code shape.
    fn confidence(&self, quality: f64, name: &str) -> ConfidenceCode {
        let mut rng = StdRng::seed_from_u64(self.seed.derive("conf").derive(name).value());
        let base = (2.0 + 9.0 * (quality - 0.55) / 0.45).round() as i32;
        let noisy = (base + rng.random_range(-1..=1)).clamp(1, 10);
        ConfidenceCode::new(noisy as u8).expect("clamped to range")
    }

    /// Full search result including the confidence code, even below any
    /// threshold — Table 5's "Conf ≥ 1" row uses everything.
    pub fn search_with_confidence(&self, query: &Query) -> Option<SourceMatch> {
        // Domain search is the strongest key.
        if let Some(d) = &query.domain {
            if let Some(e) = self.registry.by_domain(d) {
                return Some(self.to_match(e, 0.97, &d.to_string()));
            }
        }
        let name = query.name.as_deref()?;
        let (entry, mut quality, runner_up) = self.registry.best_two_name_match(name)?;
        // Ambiguity penalty: when a second company scores nearly as well,
        // the matcher cannot know which record is meant, and the returned
        // confidence reflects that (this is what pushes homonym mismatches
        // below the Figure 2 reliability threshold).
        let margin = (quality - runner_up).max(0.0);
        let ambiguity = (0.18 - margin).clamp(0.0, 0.18) * 1.3;
        quality -= ambiguity;
        // An address hit nudges quality up; a mismatch nudges down.
        if let (Some(addr), city) = (&query.address, &entry.city) {
            if addr.to_lowercase().contains(&city.to_lowercase()) {
                quality = (quality + 0.10).min(1.0);
            } else {
                quality = (quality - 0.05).max(0.0);
            }
        }
        if quality < 0.55 {
            return None; // not even a bulk-API hit
        }
        Some(self.to_match(entry, quality, name))
    }

    fn to_match(
        &self,
        entry: &crate::registry::RegistryEntry,
        quality: f64,
        key: &str,
    ) -> SourceMatch {
        SourceMatch {
            source: SourceId::Dnb,
            entity: Some(entry.org),
            domain: entry.domain.clone(),
            raw_label: format!("NAICS {}", entry.raw_label),
            categories: entry.categories.clone(),
            confidence: Some(self.confidence(quality, key)),
        }
    }
}

impl DataSource for Dnb {
    fn id(&self) -> SourceId {
        SourceId::Dnb
    }

    fn lookup_org(&self, org: OrgId) -> Option<SourceMatch> {
        let e = self.registry.by_org(org)?;
        Some(SourceMatch {
            source: SourceId::Dnb,
            entity: Some(e.org),
            domain: e.domain.clone(),
            raw_label: format!("NAICS {}", e.raw_label),
            categories: e.categories.clone(),
            confidence: Some(ConfidenceCode::MAX),
        })
    }

    fn search(&self, query: &Query) -> Option<SourceMatch> {
        self.search_with_confidence(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::WorldConfig;

    fn setup() -> (World, Dnb) {
        let w = World::generate(WorldConfig::small(WorldSeed::new(11)));
        let d = Dnb::build(&w, WorldSeed::new(12));
        (w, d)
    }

    #[test]
    fn covers_about_82_percent() {
        let (w, d) = setup();
        let frac = d.len() as f64 / w.orgs.len() as f64;
        assert!((frac - 0.82).abs() < 0.07, "coverage = {frac}");
    }

    #[test]
    fn exact_name_search_hits_right_entity_with_high_confidence() {
        let (w, d) = setup();
        let mut checked = 0;
        for org in &w.orgs {
            let Some(m) = d.search(&Query::by_name(org.legal_name.as_str())) else {
                continue;
            };
            if m.entity == Some(org.id) {
                assert!(
                    m.confidence.unwrap().value() >= 7,
                    "exact match got conf {}",
                    m.confidence.unwrap()
                );
                checked += 1;
            }
            if checked > 30 {
                break;
            }
        }
        assert!(checked > 10, "too few exact matches to evaluate");
    }

    #[test]
    fn domain_search_is_precise() {
        let (w, d) = setup();
        let org = w
            .orgs
            .iter()
            .find(|o| o.domain.is_some() && d.lookup_org(o.id).is_some())
            .unwrap();
        let m = d
            .search(&Query::by_domain(org.domain.clone().unwrap()))
            .unwrap();
        assert_eq!(m.entity, Some(org.id));
        assert!(m.confidence.unwrap().value() >= 8);
    }

    #[test]
    fn garbage_names_return_none_or_low_confidence() {
        let (_, d) = setup();
        let m = d.search(&Query::by_name("zzzz qqqq completely unknown entity"));
        if let Some(m) = m {
            assert!(
                m.confidence.unwrap().value() <= 6,
                "conf = {:?}",
                m.confidence
            );
        }
    }

    #[test]
    fn confidence_separates_right_from_wrong(/* Figure 2's shape */) {
        let (w, d) = setup();
        let mut by_band = [(0usize, 0usize); 2]; // [low (<6), high (>=6)]
        for rec in &w.ases {
            let org = w.org_of(rec.asn).unwrap();
            let q = Query {
                asn: Some(rec.asn),
                name: Some(rec.parsed.name.clone()),
                domain: None,
                address: rec.parsed.address.clone(),
                phone: rec.parsed.phone.clone(),
            };
            if let Some(m) = d.search(&q) {
                let right = m.entity == Some(org.id);
                let band = usize::from(m.confidence.unwrap().is_reliable());
                by_band[band].0 += usize::from(right);
                by_band[band].1 += 1;
            }
        }
        let high_acc = by_band[1].0 as f64 / by_band[1].1.max(1) as f64;
        assert!(high_acc >= 0.80, "conf>=6 accuracy = {high_acc}");
        if by_band[0].1 >= 10 {
            let low_acc = by_band[0].0 as f64 / by_band[0].1 as f64;
            assert!(low_acc < high_acc, "low {low_acc} vs high {high_acc}");
        }
    }

    #[test]
    fn manual_lookup_only_for_covered_orgs() {
        let (w, d) = setup();
        let covered = w
            .orgs
            .iter()
            .filter(|o| d.lookup_org(o.id).is_some())
            .count();
        assert_eq!(covered, d.len());
    }
}
