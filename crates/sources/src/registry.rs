//! The shared business-registry machinery behind D&B, Crunchbase, ZoomInfo,
//! and Clearbit: coverage sampling, label emission with calibrated
//! confusion, and similarity-based search.

use crate::profile::SourceProfile;
use asdb_entity::name_similarity;
use asdb_model::{Domain, OrgId, WorldSeed};
use asdb_taxonomy::naicslite::known;
use asdb_taxonomy::translate::{naics_candidates, naics_to_naicslite};
use asdb_taxonomy::{CategorySet, Layer1, Layer2, NaicsCode};
use asdb_worldgen::Organization;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// One listed organization inside a business registry.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// Which real organization this entry describes.
    pub org: OrgId,
    /// The name as listed (usually the legal name).
    pub listed_name: String,
    /// The domain the registry has on file.
    pub domain: Option<Domain>,
    /// City on file.
    pub city: String,
    /// The source's raw label (NAICS codes or scheme category names).
    pub raw_label: String,
    /// The NAICSlite translation of the label.
    pub categories: CategorySet,
}

/// An in-memory registry with org/domain/name indexes.
#[derive(Debug, Clone, Default)]
pub struct BusinessRegistry {
    entries: Vec<RegistryEntry>,
    by_org: HashMap<OrgId, usize>,
    by_domain: HashMap<Domain, usize>,
}

impl BusinessRegistry {
    /// Build a registry from the organization population: `cover` decides
    /// membership, `label` produces the stored label.
    pub fn build(
        orgs: &[Organization],
        seed: WorldSeed,
        mut cover: impl FnMut(&Organization, &mut StdRng) -> bool,
        mut label: impl FnMut(&Organization, &mut StdRng) -> (String, CategorySet),
    ) -> BusinessRegistry {
        let mut reg = BusinessRegistry::default();
        for (i, org) in orgs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed.derive_index("entry", i as u64).value());
            if !cover(org, &mut rng) {
                continue;
            }
            let (raw_label, categories) = label(org, &mut rng);
            let idx = reg.entries.len();
            reg.entries.push(RegistryEntry {
                org: org.id,
                listed_name: org.legal_name.as_str().to_owned(),
                domain: org.domain.clone(),
                city: org.city.clone(),
                raw_label,
                categories,
            });
            reg.by_org.insert(org.id, idx);
            if let Some(d) = &org.domain {
                reg.by_domain.entry(d.registrable()).or_insert(idx);
            }
        }
        reg
    }

    /// Number of listed organizations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Manual lookup by exact organization.
    pub fn by_org(&self, org: OrgId) -> Option<&RegistryEntry> {
        self.by_org.get(&org).map(|&i| &self.entries[i])
    }

    /// Exact (registrable) domain lookup.
    pub fn by_domain(&self, domain: &Domain) -> Option<&RegistryEntry> {
        self.by_domain
            .get(&domain.registrable())
            .map(|&i| &self.entries[i])
    }

    /// Best name match with its similarity score (linear scan; registries
    /// hold a few thousand entries).
    pub fn best_name_match(&self, name: &str) -> Option<(&RegistryEntry, f64)> {
        self.best_two_name_match(name).map(|(e, s, _)| (e, s))
    }

    /// Best name match plus the runner-up's score — the margin between the
    /// two is the matching engine's ambiguity signal ("there is no control
    /// over which company is chosen if multiple companies share the same
    /// name", §3.5; ambiguous matches get low confidence codes).
    pub fn best_two_name_match(&self, name: &str) -> Option<(&RegistryEntry, f64, f64)> {
        let mut best: Option<(usize, f64)> = None;
        let mut second: f64 = 0.0;
        for (i, e) in self.entries.iter().enumerate() {
            let s = name_similarity(name, &e.listed_name);
            match best {
                Some((_, bs)) if bs >= s => {
                    if s > second {
                        second = s;
                    }
                }
                Some((_, bs)) => {
                    second = bs;
                    best = Some((i, s));
                }
                None => best = Some((i, s)),
            }
        }
        best.map(|(i, s)| (&self.entries[i], s, second))
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }
}

/// Coverage draw for a standard profile.
pub fn profile_covers(profile: &SourceProfile, org: &Organization, rng: &mut StdRng) -> bool {
    let p = if org.is_tech() {
        profile.coverage_tech
    } else {
        profile.coverage_nontech
    };
    rng.random_bool(p)
}

/// The per-class correctness probability a profile assigns to an org.
pub fn correctness_for(profile: &SourceProfile, org: &Organization) -> f64 {
    if org.category == known::isp() {
        profile.l2_correct_isp
    } else if org.category == known::hosting() {
        profile.l2_correct_hosting
    } else if org.is_tech() {
        profile.l2_correct_tech
    } else {
        profile.l2_correct_nontech
    }
}

/// Emit a NAICS-code label for an organization under a profile: correct
/// with the class-specific probability, otherwise the documented confusion
/// (interchangeable tech codes; sibling codes within the sector; a cross-
/// sector escape at rate `1 - l1_correct`).
pub fn emit_naics_label(
    profile: &SourceProfile,
    org: &Organization,
    rng: &mut StdRng,
) -> (String, CategorySet) {
    // Multi-service orgs sometimes get labeled by their secondary line of
    // business — accurate, but a source of nuanced disagreement.
    let target: Layer2 = match org.secondary {
        Some(s) if rng.random_bool(0.25) => s,
        _ => org.category,
    };
    // Two-stage draw: first whether the layer-1 family is right (the
    // profile's `l1_correct` is the *marginal* layer-1 accuracy), then —
    // conditionally — whether the layer-2 subcategory is right too.
    let l1_right = rng.random_bool(profile.l1_correct);
    let p_l2_given_l1 = (correctness_for(profile, org) / profile.l1_correct).clamp(0.0, 1.0);
    let correct = l1_right && rng.random_bool(p_l2_given_l1);
    let code: NaicsCode = if correct {
        // Prefer candidates whose translation actually lands back on the
        // target subcategory; some categories (computer security, §3.2:
        // NAICS "has no code for computer security organizations") are
        // inexpressible, in which case the nearest candidate is used and
        // the label is simply imprecise — as it is for the real services.
        let cands = naics_candidates(target);
        let expressive: Vec<NaicsCode> = cands
            .iter()
            .copied()
            .filter(|c| naics_to_naicslite(*c).layer2s().contains(&target))
            .collect();
        *expressive
            .choose(rng)
            .or_else(|| cands.first())
            .expect("every layer2 has candidates")
    } else if !l1_right {
        // Cross-sector escape: a wholly wrong code.
        random_cross_sector_code(target.layer1, rng)
    } else if target.layer1 == Layer1::ComputerAndIT {
        // The interchangeable-tech-code failure: ISPs and hosting providers
        // get one of the three §3.3 codes, or the hosting/data-processing
        // code, without regard to which subcategory is right.
        let pool: Vec<u32> = [517911u32, 541512, 519190, 518210]
            .into_iter()
            .filter(|c| {
                // Never accidentally emit a code that is actually correct.
                !naics_to_naicslite(NaicsCode::six(*c))
                    .layer2s()
                    .contains(&target)
            })
            .collect();
        NaicsCode::six(*pool.choose(rng).unwrap_or(&519190))
    } else {
        // Wrong sibling within the right sector.
        wrong_sibling(target, rng)
    };
    (code.to_string(), naics_to_naicslite(code))
}

/// A code from a different layer-1 family.
fn random_cross_sector_code(avoid: Layer1, rng: &mut StdRng) -> NaicsCode {
    for _ in 0..32 {
        let l1 = *Layer1::ALL.choose(rng).expect("non-empty");
        if l1 == avoid || l1 == Layer1::Other {
            continue;
        }
        let subs: Vec<Layer2> = l1.layer2_iter().collect();
        let l2 = *subs.choose(rng).expect("non-empty");
        if let Some(code) = naics_candidates(l2).first() {
            return *code;
        }
    }
    NaicsCode::six(541611)
}

/// A code for a *different* subcategory of the same layer-1 family.
fn wrong_sibling(target: Layer2, rng: &mut StdRng) -> NaicsCode {
    let siblings: Vec<Layer2> = target
        .layer1
        .layer2_iter()
        .filter(|l2| *l2 != target)
        .collect();
    for _ in 0..16 {
        if let Some(s) = siblings.choose(rng) {
            let cands = naics_candidates(*s);
            if let Some(c) = cands.choose(rng) {
                // The candidate must not translate back onto the target.
                if !naics_to_naicslite(*c).layer2s().contains(&target) {
                    return *c;
                }
            }
        }
    }
    NaicsCode::six(541611)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile;
    use asdb_model::WorldSeed;
    use asdb_worldgen::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(WorldSeed::new(77)))
    }

    fn dnb_like(w: &World) -> BusinessRegistry {
        let p = profile::DNB;
        BusinessRegistry::build(
            &w.orgs,
            WorldSeed::new(1),
            move |o, rng| profile_covers(&p, o, rng),
            move |o, rng| emit_naics_label(&p, o, rng),
        )
    }

    #[test]
    fn coverage_tracks_profile() {
        let w = world();
        let reg = dnb_like(&w);
        let frac = reg.len() as f64 / w.orgs.len() as f64;
        // Blend of 76% tech / 94% non-tech at 64% tech mix ≈ 82%.
        assert!((frac - 0.82).abs() < 0.06, "coverage = {frac}");
    }

    #[test]
    fn lookups_work() {
        let w = world();
        let reg = dnb_like(&w);
        let entry = reg.iter().next().unwrap();
        assert_eq!(reg.by_org(entry.org).unwrap().org, entry.org);
        if let Some(d) = &entry.domain {
            assert_eq!(reg.by_domain(d).unwrap().org, entry.org);
        }
    }

    #[test]
    fn best_name_match_finds_exact_names() {
        let w = world();
        let reg = dnb_like(&w);
        let entry = reg.iter().nth(3).unwrap().clone();
        let (found, score) = reg.best_name_match(&entry.listed_name).unwrap();
        assert_eq!(found.org, entry.org);
        assert!(score > 0.95);
    }

    #[test]
    fn emission_accuracy_tracks_profile() {
        let w = world();
        let reg = dnb_like(&w);
        let mut isp = (0usize, 0usize);
        let mut hosting = (0usize, 0usize);
        let mut nontech = (0usize, 0usize);
        for e in reg.iter() {
            let org = w.org(e.org).unwrap();
            let truth = org.truth();
            let ok = e.categories.overlaps_l2(&truth);
            if org.category == known::isp() {
                isp.0 += usize::from(ok);
                isp.1 += 1;
            } else if org.category == known::hosting() {
                hosting.0 += usize::from(ok);
                hosting.1 += 1;
            } else if !org.is_tech() {
                nontech.0 += usize::from(ok);
                nontech.1 += 1;
            }
        }
        let rate = |(a, b): (usize, usize)| a as f64 / b.max(1) as f64;
        // Small-world tolerances are generous; the shape is what matters.
        assert!((rate(isp) - 0.70).abs() < 0.12, "isp = {:?}", rate(isp));
        assert!(rate(hosting) < 0.70, "hosting = {:?}", rate(hosting));
        assert!(rate(nontech) > 0.75, "nontech = {:?}", rate(nontech));
        assert!(rate(nontech) > rate(hosting), "hosting must be hardest");
    }

    #[test]
    fn l1_errors_are_rare() {
        let w = world();
        let reg = dnb_like(&w);
        let mut ok = 0usize;
        let mut n = 0usize;
        for e in reg.iter() {
            let org = w.org(e.org).unwrap();
            n += 1;
            ok += usize::from(e.categories.overlaps_l1(&org.truth()));
        }
        let rate = ok as f64 / n as f64;
        assert!(rate > 0.90, "l1 accuracy = {rate}");
    }

    #[test]
    fn registry_is_deterministic() {
        let w = world();
        let a = dnb_like(&w);
        let b = dnb_like(&w);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.org, y.org);
            assert_eq!(x.raw_label, y.raw_label);
        }
    }
}
