//! The fault-aware source transport layer.
//!
//! The paper treats the five production sources as instant, infallible
//! lookups; real business-data APIs are none of those things. This module
//! is the seam where those transport concerns live, split in three:
//!
//! * [`NetworkSim`] ([`sim`]) — deterministic, seed-driven network
//!   weather: per-source latency distributions and an injectable
//!   [`FaultPlan`] (error rate, timeout rate, burst [`Outage`]s).
//! * [`CircuitBreaker`] ([`breaker`]) — consecutive-failure breaker with
//!   cooldown-then-half-open-probe recovery.
//! * [`SourceClient`] ([`client`]) — wraps any [`DataSource`] with
//!   per-source timeout, bounded retry with exponential backoff and
//!   deterministic jitter, and the breaker, returning a typed
//!   [`SourceOutcome`].
//!
//! Everything is a pure function of `(seed, source, per-source call
//! index)` plus breaker state driven only by call outcomes — no wall
//! clock, no global RNG — so a serial run is bit-reproducible per seed,
//! and with faults disabled the layer is behaviourally transparent: the
//! wrapped source's answer comes back unchanged.
//!
//! [`DataSource`]: crate::DataSource

pub mod breaker;
pub mod client;
pub mod sim;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{backoff_delay, OutcomeKind, SourceClient, SourceOutcome, TransportConfig};
pub use sim::{CallObservation, Fault, FaultPlan, LatencyProfile, NetworkSim, Outage};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataSource, Query, SourceId, SourceMatch};
    use asdb_model::{Asn, OrgId, WorldSeed};
    use proptest::prelude::*;
    use std::time::Duration;

    struct Always(SourceId);

    impl DataSource for Always {
        fn id(&self) -> SourceId {
            self.0
        }
        fn lookup_org(&self, _org: OrgId) -> Option<SourceMatch> {
            None
        }
        fn search(&self, _query: &Query) -> Option<SourceMatch> {
            Some(SourceMatch {
                source: self.0,
                entity: None,
                domain: None,
                raw_label: "always".into(),
                categories: asdb_taxonomy::CategorySet::new(),
                confidence: None,
            })
        }
    }

    /// Replay a whole faulted call sequence twice; every outcome —
    /// kind, attempt count, and virtual elapsed time (which embeds the
    /// full retry/backoff schedule) — must be identical per seed.
    fn replay(seed: u64, rate: f64, calls: u32) -> Vec<(String, u32, Duration)> {
        let cfg = TransportConfig::default();
        let sim = NetworkSim::with_faults(WorldSeed::new(seed), FaultPlan::uniform(rate));
        let src = Always(SourceId::Crunchbase);
        let client = SourceClient::new(SourceId::Crunchbase, &cfg);
        let q = Query::by_asn(Asn::new(64500));
        (0..calls)
            .map(|_| {
                let o = client.call(&cfg, &sim, &src, &q);
                (format!("{:?}", o.kind), o.attempts, o.elapsed)
            })
            .collect()
    }

    // Pinned-seed instance of the property below; keeps one concrete
    // replay in the plain test suite (and the helpers exercised) even
    // where proptest is unavailable.
    #[test]
    fn faulted_replay_is_stable_for_a_fixed_seed() {
        assert_eq!(replay(42, 0.3, 12), replay(42, 0.3, 12));
        assert_ne!(replay(42, 0.3, 12), replay(43, 0.3, 12));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn retry_backoff_schedules_are_deterministic_per_seed(
            seed in any::<u64>(),
            rate in 0.0f64..0.45,
        ) {
            prop_assert_eq!(replay(seed, rate, 12), replay(seed, rate, 12));
        }

        #[test]
        fn backoff_delay_is_pure_and_bounded(
            seed in any::<u64>(),
            call_index in 0u64..100_000,
            attempt in 1u32..12,
        ) {
            let cfg = TransportConfig::default();
            let s = WorldSeed::new(seed);
            let a = backoff_delay(&cfg, s, SourceId::Dnb, call_index, attempt);
            let b = backoff_delay(&cfg, s, SourceId::Dnb, call_index, attempt);
            prop_assert_eq!(a, b, "same inputs, same delay");
            let full = cfg
                .backoff_base
                .saturating_mul(1 << (attempt - 1).min(20))
                .min(cfg.backoff_cap);
            prop_assert!(a >= full / 2 && a <= full);
        }

        #[test]
        fn distinct_attempts_jitter_independently(seed in any::<u64>()) {
            let cfg = TransportConfig::default();
            let s = WorldSeed::new(seed);
            // With the cap reached, consecutive attempts share the same
            // envelope; the jitter draw must still differ somewhere.
            let delays: Vec<Duration> = (8..16)
                .map(|a| backoff_delay(&cfg, s, SourceId::Ipinfo, 3, a))
                .collect();
            prop_assert!(delays.windows(2).any(|w| w[0] != w[1]));
        }
    }
}
