//! A per-source circuit breaker.
//!
//! After [`BreakerConfig::threshold`] *consecutive* wire failures the
//! breaker opens and calls are shed without touching the upstream (the
//! fast path a real client needs during an outage: failing locally in
//! nanoseconds instead of burning a timeout per request). After
//! [`BreakerConfig::cooldown`] shed calls, one half-open probe is
//! admitted: success closes the breaker, failure re-opens it for another
//! cooldown.
//!
//! State transitions are driven purely by call outcomes — no wall clock —
//! so a serial run of the transport layer is exactly reproducible.

use std::sync::Mutex;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub threshold: u32,
    /// Calls shed while open before a half-open probe is admitted.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 5,
            cooldown: 8,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; calls flow through.
    Closed,
    /// Shedding calls.
    Open,
    /// One probe is in flight; further calls are shed until it resolves.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { failures: u32 },
    Open { shed: u32 },
    HalfOpen,
}

/// A consecutive-failure circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed { failures: 0 }),
        }
    }

    /// The tuning this breaker runs with.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        match *self.state.lock().expect("breaker lock") {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// Ask to place a call. `false` means the call is shed (breaker open).
    /// While open, every `cooldown + 1`-th request is admitted as a
    /// half-open probe.
    pub fn admit(&self) -> bool {
        let mut s = self.state.lock().expect("breaker lock");
        match *s {
            State::Closed { .. } => true,
            State::HalfOpen => false,
            State::Open { shed } => {
                if shed >= self.config.cooldown {
                    *s = State::HalfOpen;
                    true
                } else {
                    *s = State::Open { shed: shed + 1 };
                    false
                }
            }
        }
    }

    /// Report a successful wire call: closes the breaker.
    pub fn on_success(&self) {
        *self.state.lock().expect("breaker lock") = State::Closed { failures: 0 };
    }

    /// Report a failed wire call (error or timeout): a half-open probe
    /// re-opens; a closed breaker opens at the threshold.
    pub fn on_failure(&self) {
        let mut s = self.state.lock().expect("breaker lock");
        *s = match *s {
            State::HalfOpen | State::Open { .. } => State::Open { shed: 0 },
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.threshold {
                    State::Open { shed: 0 }
                } else {
                    State::Closed { failures }
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            cooldown,
        })
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = breaker(3, 2);
        for _ in 0..2 {
            assert!(b.admit());
            b.on_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.admit());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "open breaker sheds");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = breaker(2, 1);
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_probe_after_cooldown() {
        let b = breaker(1, 2);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Two shed calls, then the probe is admitted.
        assert!(!b.admit());
        assert!(!b.admit());
        assert!(b.admit(), "probe admitted after cooldown");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // While the probe is outstanding, everything else is shed.
        assert!(!b.admit());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let b = breaker(1, 3);
        b.on_failure();
        for _ in 0..3 {
            assert!(!b.admit());
        }
        assert!(b.admit());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..3 {
            assert!(!b.admit(), "cooldown restarts after a failed probe");
        }
        assert!(b.admit());
    }
}
