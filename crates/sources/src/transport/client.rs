//! The fault-aware client wrapping one data source.
//!
//! [`SourceClient`] turns a bare [`DataSource`] into something a
//! production pipeline can call: every search goes through the
//! [`NetworkSim`]'s weather, is bounded by a per-source timeout, retried
//! with exponential backoff and deterministic jitter, and shed outright
//! while the source's circuit breaker is open. The result is a typed
//! [`SourceOutcome`] instead of a bare `Option<SourceMatch>`, so the
//! pipeline can distinguish "the source answered and had nothing"
//! ([`OutcomeKind::NoMatch`]) from "the source was unavailable"
//! ([`SourceOutcome::is_degraded`]) — the distinction §3.5's
//! partial-coverage consensus depends on.
//!
//! All waiting is *virtual*: attempt latencies and backoff delays are
//! summed into [`SourceOutcome::elapsed`] rather than slept, so tests and
//! batch runs execute at memory speed while still observing realistic
//! schedules.

use super::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use super::sim::{Fault, NetworkSim};
use crate::{DataSource, Query, SourceId, SourceMatch};
use asdb_model::WorldSeed;
use std::time::Duration;

/// Transport tuning shared by every source client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Per-attempt deadline.
    pub timeout: Duration,
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for TransportConfig {
    fn default() -> TransportConfig {
        TransportConfig {
            timeout: Duration::from_millis(1000),
            max_retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            breaker: BreakerConfig::default(),
        }
    }
}

/// The backoff delay before retry `attempt` (1-based) of the call that
/// consumed sim index `call_index`: exponential (`base · 2^(attempt-1)`,
/// capped) with deterministic equal-jitter — half fixed, half drawn from
/// `(seed, source, call_index, attempt)`. A pure function: the whole
/// schedule is reproducible per seed.
pub fn backoff_delay(
    config: &TransportConfig,
    seed: WorldSeed,
    id: SourceId,
    call_index: u64,
    attempt: u32,
) -> Duration {
    let exp = attempt.saturating_sub(1).min(20);
    let full = config
        .backoff_base
        .saturating_mul(1u32 << exp)
        .min(config.backoff_cap);
    let half = full / 2;
    let r = seed
        .derive("backoff")
        .derive_index(id.name(), call_index ^ (u64::from(attempt) << 48))
        .value();
    let frac = (r >> 11) as f64 / (1u64 << 53) as f64;
    half + Duration::from_nanos((half.as_nanos() as f64 * frac) as u64)
}

/// How a transport-mediated source call resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomeKind {
    /// The source answered with a candidate match.
    Matched(SourceMatch),
    /// The source answered and had no entry for the query.
    NoMatch,
    /// Every attempt exceeded the per-attempt deadline.
    TimedOut,
    /// Every attempt failed hard.
    Failed,
    /// The circuit breaker was open; no attempt was made.
    BreakerOpen,
}

/// A typed, accounted result of one pipeline-level source call.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceOutcome {
    /// Which source was called.
    pub source: SourceId,
    /// How the call resolved.
    pub kind: OutcomeKind,
    /// Wire attempts actually made (0 when the breaker shed the call).
    pub attempts: u32,
    /// Retries beyond the first attempt.
    pub retries: u32,
    /// Total simulated time: attempt latencies plus backoff waits.
    pub elapsed: Duration,
}

impl SourceOutcome {
    /// Whether the source was unavailable for this call (timed out,
    /// failed, or breaker-shed) — the §3.5 partial-coverage signal.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self.kind,
            OutcomeKind::TimedOut | OutcomeKind::Failed | OutcomeKind::BreakerOpen
        )
    }

    /// The candidate match, if the call produced one.
    pub fn matched(&self) -> Option<&SourceMatch> {
        match &self.kind {
            OutcomeKind::Matched(m) => Some(m),
            _ => None,
        }
    }

    /// Consume the outcome into its candidate match.
    pub fn into_matched(self) -> Option<SourceMatch> {
        match self.kind {
            OutcomeKind::Matched(m) => Some(m),
            _ => None,
        }
    }
}

/// A fault-aware client for one source: timeout + retry/backoff + breaker.
#[derive(Debug)]
pub struct SourceClient {
    id: SourceId,
    breaker: CircuitBreaker,
}

impl SourceClient {
    /// A fresh client (closed breaker) for `id`.
    pub fn new(id: SourceId, config: &TransportConfig) -> SourceClient {
        SourceClient {
            id,
            breaker: CircuitBreaker::new(config.breaker),
        }
    }

    /// Which source this client fronts.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// The breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Run one pipeline-level search through the transport: breaker
    /// admission, then up to `1 + max_retries` simulated wire attempts
    /// with exponential backoff between them.
    pub fn call(
        &self,
        config: &TransportConfig,
        sim: &NetworkSim,
        source: &dyn DataSource,
        query: &Query,
    ) -> SourceOutcome {
        debug_assert_eq!(source.id(), self.id, "client/source pairing");
        if !self.breaker.admit() {
            return SourceOutcome {
                source: self.id,
                kind: OutcomeKind::BreakerOpen,
                attempts: 0,
                retries: 0,
                elapsed: Duration::ZERO,
            };
        }
        let mut elapsed = Duration::ZERO;
        let mut attempts = 0u32;
        loop {
            let obs = sim.observe(self.id);
            attempts += 1;
            // A drawn latency above the deadline is a timeout even without
            // an injected stall (matters when the operator dials the
            // timeout below the source's organic latency).
            let fault = match obs.fault {
                Some(f) => Some(f),
                None if obs.latency > config.timeout => Some(Fault::Timeout),
                None => None,
            };
            match fault {
                None => {
                    elapsed += obs.latency;
                    self.breaker.on_success();
                    let kind = match source.search(query) {
                        Some(m) => OutcomeKind::Matched(m),
                        None => OutcomeKind::NoMatch,
                    };
                    return SourceOutcome {
                        source: self.id,
                        kind,
                        attempts,
                        retries: attempts - 1,
                        elapsed,
                    };
                }
                Some(f) => {
                    elapsed += match f {
                        // A stalled attempt costs the full deadline.
                        Fault::Timeout => config.timeout,
                        Fault::Error => obs.latency.min(config.timeout),
                    };
                    self.breaker.on_failure();
                    if attempts <= config.max_retries {
                        elapsed += backoff_delay(config, sim.seed(), self.id, obs.index, attempts);
                        continue;
                    }
                    let kind = match f {
                        Fault::Timeout => OutcomeKind::TimedOut,
                        Fault::Error => OutcomeKind::Failed,
                    };
                    return SourceOutcome {
                        source: self.id,
                        kind,
                        attempts,
                        retries: attempts - 1,
                        elapsed,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::sim::{FaultPlan, Outage};
    use super::*;
    use asdb_model::{Asn, OrgId};

    /// A scripted source: always matches, never matches, etc.
    struct Scripted {
        id: SourceId,
        matches: bool,
    }

    impl DataSource for Scripted {
        fn id(&self) -> SourceId {
            self.id
        }
        fn lookup_org(&self, _org: OrgId) -> Option<SourceMatch> {
            None
        }
        fn search(&self, _query: &Query) -> Option<SourceMatch> {
            self.matches.then(|| SourceMatch {
                source: self.id,
                entity: None,
                domain: None,
                raw_label: "scripted".into(),
                categories: asdb_taxonomy::CategorySet::new(),
                confidence: None,
            })
        }
    }

    fn fixture(matches: bool) -> (TransportConfig, Scripted) {
        (
            TransportConfig::default(),
            Scripted {
                id: SourceId::Dnb,
                matches,
            },
        )
    }

    #[test]
    fn clean_network_returns_match_and_no_match() {
        let (cfg, src) = fixture(true);
        let sim = NetworkSim::new(WorldSeed::new(1));
        let client = SourceClient::new(SourceId::Dnb, &cfg);
        let out = client.call(&cfg, &sim, &src, &Query::by_asn(Asn::new(1)));
        assert!(matches!(out.kind, OutcomeKind::Matched(_)));
        assert_eq!((out.attempts, out.retries), (1, 0));
        assert!(!out.is_degraded());

        let (_, empty) = fixture(false);
        let out = client.call(&cfg, &sim, &empty, &Query::by_asn(Asn::new(1)));
        assert_eq!(out.kind, OutcomeKind::NoMatch);
        assert!(!out.is_degraded());
    }

    #[test]
    fn outage_exhausts_retries_then_fails() {
        let (cfg, src) = fixture(true);
        let plan = FaultPlan::none().with_outage(Outage {
            source: Some(SourceId::Dnb),
            start: 0,
            len: 1000,
        });
        let sim = NetworkSim::with_faults(WorldSeed::new(2), plan);
        let client = SourceClient::new(SourceId::Dnb, &cfg);
        let out = client.call(&cfg, &sim, &src, &Query::by_asn(Asn::new(1)));
        assert_eq!(out.kind, OutcomeKind::Failed);
        assert_eq!(out.attempts, cfg.max_retries + 1);
        assert_eq!(out.retries, cfg.max_retries);
        assert!(out.is_degraded());
        // Backoff waits are charged into the virtual elapsed time.
        assert!(out.elapsed >= cfg.backoff_base);
    }

    #[test]
    fn breaker_opens_and_sheds_under_sustained_outage() {
        let (cfg, src) = fixture(true);
        let plan = FaultPlan::none().with_outage(Outage {
            source: Some(SourceId::Dnb),
            start: 0,
            len: u64::MAX,
        });
        let sim = NetworkSim::with_faults(WorldSeed::new(3), plan);
        let client = SourceClient::new(SourceId::Dnb, &cfg);
        // Each call makes 3 failing attempts; the default threshold (5)
        // trips during the second call.
        let q = Query::by_asn(Asn::new(1));
        assert_eq!(client.call(&cfg, &sim, &src, &q).kind, OutcomeKind::Failed);
        assert_eq!(client.call(&cfg, &sim, &src, &q).kind, OutcomeKind::Failed);
        assert_eq!(client.breaker_state(), BreakerState::Open);
        let shed = client.call(&cfg, &sim, &src, &q);
        assert_eq!(shed.kind, OutcomeKind::BreakerOpen);
        assert_eq!(shed.attempts, 0);
        assert_eq!(shed.elapsed, Duration::ZERO);
        assert_eq!(sim.calls(SourceId::Dnb), 6, "shed calls never hit the wire");
    }

    #[test]
    fn breaker_recovers_once_the_outage_ends() {
        let cfg = TransportConfig {
            breaker: BreakerConfig {
                threshold: 2,
                cooldown: 1,
            },
            max_retries: 0,
            ..TransportConfig::default()
        };
        let (_, src) = fixture(true);
        let plan = FaultPlan::none().with_outage(Outage {
            source: Some(SourceId::Dnb),
            start: 0,
            len: 2,
        });
        let sim = NetworkSim::with_faults(WorldSeed::new(4), plan);
        let client = SourceClient::new(SourceId::Dnb, &cfg);
        let q = Query::by_asn(Asn::new(1));
        client.call(&cfg, &sim, &src, &q);
        client.call(&cfg, &sim, &src, &q);
        assert_eq!(client.breaker_state(), BreakerState::Open);
        assert_eq!(
            client.call(&cfg, &sim, &src, &q).kind,
            OutcomeKind::BreakerOpen
        );
        // Half-open probe lands after the outage window: success closes.
        let probe = client.call(&cfg, &sim, &src, &q);
        assert!(matches!(probe.kind, OutcomeKind::Matched(_)));
        assert_eq!(client.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn tiny_timeout_produces_organic_timeouts() {
        let cfg = TransportConfig {
            timeout: Duration::from_millis(1),
            max_retries: 1,
            ..TransportConfig::default()
        };
        let (_, src) = fixture(true);
        let sim = NetworkSim::new(WorldSeed::new(5));
        let client = SourceClient::new(SourceId::Dnb, &cfg);
        let out = client.call(&cfg, &sim, &src, &Query::by_asn(Asn::new(1)));
        assert_eq!(out.kind, OutcomeKind::TimedOut);
        assert_eq!(out.attempts, 2);
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let cfg = TransportConfig::default();
        let seed = WorldSeed::new(6);
        let mut prev = Duration::ZERO;
        for attempt in 1..=6u32 {
            let d = backoff_delay(&cfg, seed, SourceId::Zvelo, 0, attempt);
            let full = cfg
                .backoff_base
                .saturating_mul(1 << (attempt - 1))
                .min(cfg.backoff_cap);
            assert!(d >= full / 2, "attempt {attempt}: {d:?} < {:?}", full / 2);
            assert!(d <= full, "attempt {attempt}: {d:?} > {full:?}");
            assert!(d >= prev / 2, "schedule roughly grows");
            prev = d;
        }
        // Deep attempts saturate at the cap, not overflow.
        let deep = backoff_delay(&cfg, seed, SourceId::Zvelo, 0, 40);
        assert!(deep <= cfg.backoff_cap);
    }
}
