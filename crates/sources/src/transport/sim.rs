//! Deterministic network simulation.
//!
//! Real business-data APIs are slow, rate-limited, and flaky; the paper's
//! production deployment is built to tolerate partial source coverage
//! (§3.5). [`NetworkSim`] makes those transport conditions first-class and
//! *reproducible*: every call to a source consumes one tick of that
//! source's logical clock, and the call's latency and fault (if any) are a
//! pure function of `(seed, source, tick)` — SplitMix64-expanded, never a
//! wall clock or a global RNG. Two runs with the same seed and the same
//! per-source call order observe byte-identical network weather.
//!
//! Faults come from an injectable [`FaultPlan`]: independent per-call
//! error and timeout probabilities plus [`Outage`] windows (bursts of
//! consecutive hard failures in a source's call-index space — the shape
//! that trips a circuit breaker, which scattered errors rarely do).

use crate::SourceId;
use asdb_model::{splitmix64, WorldSeed};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-source wire-latency distribution: `base + U[0, jitter)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Minimum round-trip latency.
    pub base: Duration,
    /// Uniform jitter added on top of `base`.
    pub jitter: Duration,
}

impl LatencyProfile {
    /// Calibrated defaults: the commercial bulk APIs (D&B, Crunchbase,
    /// ZoomInfo, Clearbit) are the slow tier, the website classifier sits
    /// in the middle, and the networking databases (PeeringDB, IPinfo)
    /// are fast. All well below [`TransportConfig::default`]'s 1 s
    /// timeout, so a fault-free run never times out organically.
    ///
    /// [`TransportConfig::default`]: super::TransportConfig::default
    pub fn for_source(id: SourceId) -> LatencyProfile {
        let (base_ms, jitter_ms) = match id {
            SourceId::Dnb => (80, 60),
            SourceId::Crunchbase => (60, 50),
            SourceId::ZoomInfo => (50, 40),
            SourceId::Clearbit => (40, 30),
            SourceId::Zvelo => (30, 25),
            SourceId::PeeringDb => (15, 10),
            SourceId::Ipinfo => (10, 8),
        };
        LatencyProfile {
            base: Duration::from_millis(base_ms),
            jitter: Duration::from_millis(jitter_ms),
        }
    }
}

/// A burst outage: calls `start .. start + len` (in one source's logical
/// call-index space) fail hard, consecutively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The affected source; `None` hits every source.
    pub source: Option<SourceId>,
    /// First affected call index.
    pub start: u64,
    /// Number of consecutive affected calls.
    pub len: u64,
}

impl Outage {
    /// Whether this outage covers call `index` of `id`.
    pub fn covers(&self, id: SourceId, index: u64) -> bool {
        self.source.map_or(true, |s| s == id)
            && index >= self.start
            && index < self.start.saturating_add(self.len)
    }
}

/// Injectable fault behaviour for a [`NetworkSim`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-call probability of a hard error (connection refused, 5xx).
    pub error_rate: f64,
    /// Per-call probability of a stall that exceeds any client deadline.
    pub timeout_rate: f64,
    /// Burst outage windows.
    pub outages: Vec<Outage>,
}

impl FaultPlan {
    /// No faults at all: every call succeeds at profile latency.
    pub fn none() -> FaultPlan {
        FaultPlan {
            error_rate: 0.0,
            timeout_rate: 0.0,
            outages: Vec::new(),
        }
    }

    /// Uniform flakiness: each call independently errors with probability
    /// `rate` and stalls past the deadline with probability `rate`.
    pub fn uniform(rate: f64) -> FaultPlan {
        let rate = rate.clamp(0.0, 0.5);
        FaultPlan {
            error_rate: rate,
            timeout_rate: rate,
            outages: Vec::new(),
        }
    }

    /// Builder-style: add a burst outage window.
    pub fn with_outage(mut self, outage: Outage) -> FaultPlan {
        self.outages.push(outage);
        self
    }

    /// Whether the plan can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.error_rate <= 0.0 && self.timeout_rate <= 0.0 && self.outages.is_empty()
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// What went wrong on the wire, when something did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Hard failure: the call returns an error immediately.
    Error,
    /// Stall: the upstream never answers within any client deadline.
    Timeout,
}

/// One simulated wire interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallObservation {
    /// Simulated round-trip latency (for a [`Fault::Timeout`], the time
    /// the upstream *would* have taken; the client charges its own
    /// deadline instead).
    pub latency: Duration,
    /// The injected fault, if any.
    pub fault: Option<Fault>,
    /// The per-source call index this observation consumed.
    pub index: u64,
}

/// Deterministic, seed-driven network weather for the seven sources.
#[derive(Debug)]
pub struct NetworkSim {
    seed: WorldSeed,
    faults: FaultPlan,
    profiles: [LatencyProfile; SourceId::ALL.len()],
    clocks: [AtomicU64; SourceId::ALL.len()],
}

/// Map a derived seed value onto `[0, 1)`.
fn unit(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

fn source_index(id: SourceId) -> usize {
    SourceId::ALL
        .iter()
        .position(|s| *s == id)
        .expect("SourceId::ALL is exhaustive")
}

impl NetworkSim {
    /// A fault-free simulation (profile latency only).
    pub fn new(seed: WorldSeed) -> NetworkSim {
        NetworkSim::with_faults(seed, FaultPlan::none())
    }

    /// A simulation with an explicit fault plan.
    pub fn with_faults(seed: WorldSeed, faults: FaultPlan) -> NetworkSim {
        NetworkSim {
            seed,
            faults,
            profiles: std::array::from_fn(|i| LatencyProfile::for_source(SourceId::ALL[i])),
            clocks: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The seed every observation derives from.
    pub fn seed(&self) -> WorldSeed {
        self.seed
    }

    /// The active fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Calls made to `id` so far.
    pub fn calls(&self, id: SourceId) -> u64 {
        self.clocks[source_index(id)].load(Ordering::Relaxed)
    }

    /// Observe the next call to `id`: consume one clock tick and evaluate
    /// the weather at it.
    pub fn observe(&self, id: SourceId) -> CallObservation {
        let index = self.clocks[source_index(id)].fetch_add(1, Ordering::Relaxed);
        self.observe_at(id, index)
    }

    /// The weather at call `index` of `id` — a pure function, so the same
    /// `(seed, source, index)` always observes the same latency and fault.
    pub fn observe_at(&self, id: SourceId, index: u64) -> CallObservation {
        if self.faults.outages.iter().any(|o| o.covers(id, index)) {
            // Hard outage: fails fast (connection refused).
            let p = self.profiles[source_index(id)];
            return CallObservation {
                latency: p.base / 4,
                fault: Some(Fault::Error),
                index,
            };
        }
        let draw = |salt: &str| {
            unit(splitmix64(
                self.seed
                    .derive(salt)
                    .derive_index(id.name(), index)
                    .value(),
            ))
        };
        let fault = {
            let r = draw("fault");
            if r < self.faults.error_rate {
                Some(Fault::Error)
            } else if r < self.faults.error_rate + self.faults.timeout_rate {
                Some(Fault::Timeout)
            } else {
                None
            }
        };
        let p = self.profiles[source_index(id)];
        let jitter_ns = (p.jitter.as_nanos() as f64 * draw("latency")) as u64;
        CallObservation {
            latency: p.base + Duration::from_nanos(jitter_ns),
            fault,
            index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fault_free_sim_never_faults() {
        let sim = NetworkSim::new(WorldSeed::new(7));
        for id in SourceId::ALL {
            for _ in 0..200 {
                let obs = sim.observe(id);
                assert_eq!(obs.fault, None);
                let p = LatencyProfile::for_source(id);
                assert!(obs.latency >= p.base);
                assert!(obs.latency < p.base + p.jitter);
            }
            assert_eq!(sim.calls(id), 200);
        }
    }

    #[test]
    fn outage_window_fails_hard_and_consecutively() {
        let plan = FaultPlan::none().with_outage(Outage {
            source: Some(SourceId::Dnb),
            start: 5,
            len: 10,
        });
        let sim = NetworkSim::with_faults(WorldSeed::new(9), plan);
        for i in 0..30u64 {
            let obs = sim.observe_at(SourceId::Dnb, i);
            if (5..15).contains(&i) {
                assert_eq!(obs.fault, Some(Fault::Error), "call {i}");
            } else {
                assert_eq!(obs.fault, None, "call {i}");
            }
            // Other sources are unaffected.
            assert_eq!(sim.observe_at(SourceId::Zvelo, i).fault, None);
        }
    }

    #[test]
    fn uniform_rates_are_roughly_honored() {
        let sim = NetworkSim::with_faults(WorldSeed::new(11), FaultPlan::uniform(0.2));
        let (mut errors, mut timeouts) = (0usize, 0usize);
        let n = 4000u64;
        for i in 0..n {
            match sim.observe_at(SourceId::Crunchbase, i).fault {
                Some(Fault::Error) => errors += 1,
                Some(Fault::Timeout) => timeouts += 1,
                None => {}
            }
        }
        let e = errors as f64 / n as f64;
        let t = timeouts as f64 / n as f64;
        assert!((e - 0.2).abs() < 0.03, "error rate {e}");
        assert!((t - 0.2).abs() < 0.03, "timeout rate {t}");
    }

    #[test]
    fn uniform_rate_is_clamped() {
        let plan = FaultPlan::uniform(3.0);
        assert_eq!(plan.error_rate, 0.5);
        assert_eq!(plan.timeout_rate, 0.5);
        assert!(FaultPlan::uniform(-1.0).is_none());
    }

    proptest! {
        #[test]
        fn observations_are_pure(seed in any::<u64>(), index in 0u64..10_000, rate in 0.0f64..0.5) {
            let a = NetworkSim::with_faults(WorldSeed::new(seed), FaultPlan::uniform(rate));
            let b = NetworkSim::with_faults(WorldSeed::new(seed), FaultPlan::uniform(rate));
            for id in SourceId::ALL {
                prop_assert_eq!(a.observe_at(id, index), b.observe_at(id, index));
            }
        }

        #[test]
        fn distinct_seeds_decorrelate(seed in any::<u64>()) {
            let a = NetworkSim::new(WorldSeed::new(seed));
            let b = NetworkSim::new(WorldSeed::new(seed.wrapping_add(1)));
            let diverged = (0..64).any(|i| {
                a.observe_at(SourceId::Dnb, i).latency != b.observe_at(SourceId::Dnb, i).latency
            });
            prop_assert!(diverged);
        }
    }
}
