//! Simulated IPinfo: "a black-box methodology to provide the organization
//! name and domain of many ASes as well as a broad classification into one
//! of 4 categories: ISP, hosting, education, and business" (§2). Coverage
//! ~30%, precision high (96% layer-1) — but 14% of its automated ASN
//! matches describe a stale or wrong entity (Table 5).

use crate::profile::{self, IpinfoProfile};
use crate::{DataSource, Query, SourceId, SourceMatch};
use asdb_model::{Asn, Domain, OrgId, WorldSeed};
use asdb_taxonomy::naicslite::known;
use asdb_taxonomy::schemes::IpinfoType;
use asdb_taxonomy::Layer1;
use asdb_worldgen::{Organization, World};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// One IPinfo record.
#[derive(Debug, Clone)]
struct Record {
    /// The org the record's data actually describes (may be stale).
    entity: OrgId,
    /// The org that truly owns the ASN (for `lookup_org` indexing only).
    owner: OrgId,
    class: IpinfoType,
    domain: Option<Domain>,
}

/// The simulated IPinfo service.
#[derive(Debug, Clone)]
pub struct Ipinfo {
    by_asn: HashMap<Asn, Record>,
    org_example: HashMap<OrgId, Asn>,
}

fn classify(org: &Organization, p: &IpinfoProfile, rng: &mut StdRng) -> IpinfoType {
    let truthful = rng.random_bool(p.type_correct);
    let true_class = if org.truth().layer2s().contains(&known::isp()) {
        IpinfoType::Isp
    } else if org.truth().layer2s().contains(&known::hosting()) {
        IpinfoType::Hosting
    } else if org.category.layer1 == Layer1::Education {
        IpinfoType::Education
    } else {
        IpinfoType::Business
    };
    if truthful {
        true_class
    } else {
        // The black box confuses the two network classes most often.
        match true_class {
            IpinfoType::Isp => IpinfoType::Business,
            IpinfoType::Hosting => IpinfoType::Isp,
            IpinfoType::Education => IpinfoType::Business,
            IpinfoType::Business => {
                if rng.random_bool(0.5) {
                    IpinfoType::Isp
                } else {
                    IpinfoType::Hosting
                }
            }
        }
    }
}

impl Ipinfo {
    /// Build over a world.
    pub fn build(world: &World, seed: WorldSeed) -> Ipinfo {
        let p = profile::IPINFO;
        let mut by_asn = HashMap::new();
        let mut org_example = HashMap::new();
        for (i, rec) in world.ases.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed.derive_index("ipinfo", i as u64).value());
            let org = world.org(rec.org).expect("owner exists");
            let cover_p = if org.is_tech() {
                p.coverage_tech
            } else {
                p.coverage_nontech
            };
            if !rng.random_bool(cover_p) {
                continue;
            }
            // Stale records describe some other organization entirely.
            let entity_org = if rng.random_bool(p.stale_entity) && !world.orgs.is_empty() {
                &world.orgs[rng.random_range(0..world.orgs.len())]
            } else {
                org
            };
            let class = classify(entity_org, &p, &mut rng);
            by_asn.insert(
                rec.asn,
                Record {
                    entity: entity_org.id,
                    owner: org.id,
                    class,
                    domain: entity_org.domain.clone(),
                },
            );
            org_example.entry(org.id).or_insert(rec.asn);
        }
        Ipinfo {
            by_asn,
            org_example,
        }
    }

    /// Number of covered ASes.
    pub fn len(&self) -> usize {
        self.by_asn.len()
    }

    /// Whether the listing is empty.
    pub fn is_empty(&self) -> bool {
        self.by_asn.is_empty()
    }

    /// The raw four-way class for an ASN.
    pub fn class_of(&self, asn: Asn) -> Option<IpinfoType> {
        self.by_asn.get(&asn).map(|r| r.class)
    }

    /// The domain IPinfo reports for an ASN — used by the §5.1 domain
    /// pooling step ("pool domains from RIR metadata and ASN-queryable
    /// data source matches").
    pub fn domain_of(&self, asn: Asn) -> Option<Domain> {
        self.by_asn.get(&asn).and_then(|r| r.domain.clone())
    }

    fn to_match(&self, r: &Record) -> SourceMatch {
        SourceMatch {
            source: SourceId::Ipinfo,
            entity: Some(r.entity),
            domain: r.domain.clone(),
            raw_label: r.class.name().to_owned(),
            categories: r.class.to_naicslite(),
            confidence: None,
        }
    }
}

impl DataSource for Ipinfo {
    fn id(&self) -> SourceId {
        SourceId::Ipinfo
    }

    fn lookup_org(&self, org: OrgId) -> Option<SourceMatch> {
        let asn = self.org_example.get(&org)?;
        let r = self.by_asn.get(asn)?;
        // Manual protocol skips stale records (the researcher notices the
        // mismatch) — only return when the record describes the right org.
        (r.entity == org).then(|| self.to_match(r))
    }

    fn search(&self, query: &Query) -> Option<SourceMatch> {
        let asn = query.asn?;
        let r = self.by_asn.get(&asn)?;
        let _ = r.owner;
        Some(self.to_match(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_worldgen::WorldConfig;

    fn setup() -> (World, Ipinfo) {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(71)));
        let i = Ipinfo::build(&w, WorldSeed::new(72));
        (w, i)
    }

    #[test]
    fn coverage_about_30_percent() {
        let (w, i) = setup();
        let frac = i.len() as f64 / w.ases.len() as f64;
        assert!((frac - 0.30).abs() < 0.07, "coverage = {frac}");
    }

    #[test]
    fn stale_entities_near_14_percent() {
        let (w, i) = setup();
        let (mut stale, mut n) = (0usize, 0usize);
        for rec in &w.ases {
            if let Some(m) = i.search(&Query::by_asn(rec.asn)) {
                stale += usize::from(m.entity != Some(rec.org));
                n += 1;
            }
        }
        let frac = stale as f64 / n.max(1) as f64;
        assert!((frac - 0.14).abs() < 0.05, "stale = {frac}");
    }

    #[test]
    fn class_accuracy_is_high_for_fresh_records(/* Table 4's 96% L1 */) {
        let (w, i) = setup();
        let (mut ok, mut n) = (0usize, 0usize);
        for rec in &w.ases {
            if let Some(m) = i.search(&Query::by_asn(rec.asn)) {
                if m.entity != Some(rec.org) {
                    continue; // stale; scored separately
                }
                let org = w.org_of(rec.asn).unwrap();
                let projected = IpinfoType::project(&org.truth()).unwrap();
                let got = i.class_of(rec.asn).unwrap();
                ok += usize::from(projected == got);
                n += 1;
            }
        }
        let rate = ok as f64 / n.max(1) as f64;
        assert!((rate - 0.81).abs() < 0.06, "class accuracy = {rate}");
    }

    #[test]
    fn domains_feed_domain_pooling() {
        let (w, i) = setup();
        let with_domain = w
            .ases
            .iter()
            .filter(|r| i.domain_of(r.asn).is_some())
            .count();
        assert!(with_domain > 0);
    }

    #[test]
    fn manual_lookup_skips_stale_records() {
        let (w, i) = setup();
        for org in &w.orgs {
            if let Some(m) = i.lookup_org(org.id) {
                assert_eq!(m.entity, Some(org.id));
            }
        }
    }
}
