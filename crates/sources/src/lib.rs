//! # asdb-sources
//!
//! Simulated external data sources — the seven services the paper evaluates
//! (Table 1) behind one [`DataSource`] trait:
//!
//! | source | searchable by | labels | implemented in |
//! |---|---|---|---|
//! | Dun & Bradstreet | name, address, phone, domain | NAICS + confidence code | [`dnb`] |
//! | Crunchbase | name, domain | custom scheme | [`crunchbase`] |
//! | ZoomInfo | name, domain | NAICS | [`zoominfo`] |
//! | Clearbit | domain | 2-digit NAICS + tags | [`clearbit`] |
//! | Zvelo | domain | custom scheme (website classifier) | [`zvelo`] |
//! | PeeringDB | ASN | 6 network types | [`peeringdb`] |
//! | IPinfo | ASN | 4 types | [`ipinfo`] |
//!
//! Each source is *built over the synthetic world*: at construction it
//! decides which organizations it covers and what label its editors /
//! classifiers assigned, using noise profiles calibrated to the paper's
//! §3 measurements ([`profile`]). Queries then run through real search
//! mechanics (name similarity, domain indexes, confidence scoring), so the
//! entity-resolution error the paper measures in Table 5 and Figure 2
//! *emerges* from the machinery rather than being scripted.
//!
//! The trait exposes both access protocols the paper uses:
//! [`DataSource::lookup_org`] models the researchers' *manual, verified*
//! lookups (§3.2: "we ask researchers to manually look up ASes … to ensure
//! that the correct data source entry is found"), while
//! [`DataSource::search`] is the automated bulk protocol (§3.5) with all
//! its mismatch risk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clearbit;
pub mod crunchbase;
pub mod dnb;
pub mod ipinfo;
pub mod peeringdb;
pub mod profile;
pub mod registry;
pub mod transport;
pub mod zoominfo;
pub mod zvelo;

pub use transport::{
    BreakerConfig, BreakerState, FaultPlan, NetworkSim, Outage, OutcomeKind, SourceClient,
    SourceOutcome, TransportConfig,
};

use asdb_model::{Asn, ConfidenceCode, Domain, OrgId};
use asdb_taxonomy::CategorySet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the seven external sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SourceId {
    Dnb,
    Crunchbase,
    ZoomInfo,
    Clearbit,
    Zvelo,
    PeeringDb,
    Ipinfo,
}

impl SourceId {
    /// All seven, in Table 1 order.
    pub const ALL: [SourceId; 7] = [
        SourceId::Dnb,
        SourceId::Crunchbase,
        SourceId::ZoomInfo,
        SourceId::Clearbit,
        SourceId::Zvelo,
        SourceId::PeeringDb,
        SourceId::Ipinfo,
    ];

    /// The five sources ASdb ships with ("ASdb uses D&B, Crunchbase,
    /// PeeringDB, IPinfo, and Zvelo", Table 1 caption).
    pub const ASDB_FIVE: [SourceId; 5] = [
        SourceId::Dnb,
        SourceId::Crunchbase,
        SourceId::Zvelo,
        SourceId::PeeringDb,
        SourceId::Ipinfo,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SourceId::Dnb => "D&B",
            SourceId::Crunchbase => "Crunchbase",
            SourceId::ZoomInfo => "ZoomInfo",
            SourceId::Clearbit => "Clearbit",
            SourceId::Zvelo => "Zvelo",
            SourceId::PeeringDb => "PeeringDB",
            SourceId::Ipinfo => "IPinfo",
        }
    }

    /// The §5.1 auto-choose accuracy rank: "IPinfo (96% accuracy), DnB
    /// (96%), PeeringDB (95%), Zvelo (88%), Crunchbase (83%)". Higher wins.
    pub fn accuracy_rank(self) -> f64 {
        match self {
            SourceId::Ipinfo => 0.96,
            SourceId::Dnb => 0.959, // tie-broken just below IPinfo
            SourceId::PeeringDb => 0.95,
            SourceId::Zvelo => 0.88,
            SourceId::Crunchbase => 0.83,
            SourceId::ZoomInfo => 0.66,
            SourceId::Clearbit => 0.55,
        }
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A query against a data source — assembled by the pipeline from WHOIS
/// extraction plus any domain selected by the §5.1 algorithm.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// The AS being classified (used by ASN-indexed sources).
    pub asn: Option<Asn>,
    /// The extracted organization name.
    pub name: Option<String>,
    /// The selected organization domain.
    pub domain: Option<Domain>,
    /// Street address, if WHOIS had one.
    pub address: Option<String>,
    /// Phone, if WHOIS had one.
    pub phone: Option<String>,
}

impl Query {
    /// Query by ASN only.
    pub fn by_asn(asn: Asn) -> Query {
        Query {
            asn: Some(asn),
            ..Query::default()
        }
    }

    /// Query by domain only.
    pub fn by_domain(domain: Domain) -> Query {
        Query {
            domain: Some(domain),
            ..Query::default()
        }
    }

    /// Query by name only.
    pub fn by_name(name: &str) -> Query {
        Query {
            name: Some(name.to_owned()),
            ..Query::default()
        }
    }
}

/// A match returned by a data source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceMatch {
    /// Which source produced it.
    pub source: SourceId,
    /// The organization the returned record *actually describes* (ground
    /// truth link used by evaluation; a real client never sees this).
    pub entity: Option<OrgId>,
    /// The domain the source believes the entity operates.
    pub domain: Option<Domain>,
    /// The source's own raw label(s), joined for display.
    pub raw_label: String,
    /// The labels translated to NAICSlite.
    pub categories: CategorySet,
    /// D&B-style match confidence, where the source provides one.
    pub confidence: Option<ConfidenceCode>,
}

/// The common interface over all seven sources.
pub trait DataSource {
    /// Which source this is.
    fn id(&self) -> SourceId;

    /// Manual, verified lookup: the entry for this exact organization, if
    /// the source covers it (the §3 evaluation protocol).
    fn lookup_org(&self, org: OrgId) -> Option<SourceMatch>;

    /// Automated search (the §3.5 bulk protocol) — may return the wrong
    /// entity or nothing.
    fn search(&self, query: &Query) -> Option<SourceMatch>;

    /// The operator-reported network type for an ASN, for sources that
    /// publish one (PeeringDB's six categories; the Figure 4 stage-1
    /// shortcut consumes it). Every other source answers `None`, which
    /// keeps callers source-agnostic.
    fn network_type(&self, asn: Asn) -> Option<asdb_taxonomy::schemes::PeeringDbType> {
        let _ = asn;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_choose_rank_order_matches_paper() {
        // IPinfo ≥ DnB > PeeringDB > Zvelo > Crunchbase.
        let r = |s: SourceId| s.accuracy_rank();
        assert!(r(SourceId::Ipinfo) > r(SourceId::Dnb));
        assert!(r(SourceId::Dnb) > r(SourceId::PeeringDb));
        assert!(r(SourceId::PeeringDb) > r(SourceId::Zvelo));
        assert!(r(SourceId::Zvelo) > r(SourceId::Crunchbase));
    }

    #[test]
    fn asdb_five_excludes_dropped_sources() {
        assert!(!SourceId::ASDB_FIVE.contains(&SourceId::ZoomInfo));
        assert!(!SourceId::ASDB_FIVE.contains(&SourceId::Clearbit));
        assert_eq!(SourceId::ASDB_FIVE.len(), 5);
    }

    #[test]
    fn query_constructors() {
        let q = Query::by_asn(Asn::new(42));
        assert_eq!(q.asn, Some(Asn::new(42)));
        assert!(q.domain.is_none());
        let q = Query::by_name("Acme");
        assert_eq!(q.name.as_deref(), Some("Acme"));
    }
}
