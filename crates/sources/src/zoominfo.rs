//! Simulated ZoomInfo: NAICS labels like D&B, but noisier (Table 4: 70%
//! layer-1, 61% layer-2 correctness) — one of the two sources ASdb drops
//! ("neither data source markets full data access to academic
//! researchers", §3.5). Implemented anyway to reproduce the §3 evaluation.

use crate::profile;
use crate::registry::{emit_naics_label, profile_covers, BusinessRegistry};
use crate::{DataSource, Query, SourceId, SourceMatch};
use asdb_model::{OrgId, WorldSeed};
use asdb_worldgen::World;

/// The simulated ZoomInfo service.
#[derive(Debug, Clone)]
pub struct ZoomInfo {
    registry: BusinessRegistry,
}

impl ZoomInfo {
    /// Build over a world.
    pub fn build(world: &World, seed: WorldSeed) -> ZoomInfo {
        let p = profile::ZOOMINFO;
        let registry = BusinessRegistry::build(
            &world.orgs,
            seed.derive("zoominfo"),
            move |o, rng| profile_covers(&p, o, rng),
            move |o, rng| emit_naics_label(&p, o, rng),
        );
        ZoomInfo { registry }
    }

    /// Number of listed organizations.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the listing is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }
}

impl DataSource for ZoomInfo {
    fn id(&self) -> SourceId {
        SourceId::ZoomInfo
    }

    fn lookup_org(&self, org: OrgId) -> Option<SourceMatch> {
        let e = self.registry.by_org(org)?;
        Some(SourceMatch {
            source: SourceId::ZoomInfo,
            entity: Some(e.org),
            domain: e.domain.clone(),
            raw_label: format!("NAICS {}", e.raw_label),
            categories: e.categories.clone(),
            confidence: None,
        })
    }

    fn search(&self, query: &Query) -> Option<SourceMatch> {
        if let Some(d) = &query.domain {
            if let Some(e) = self.registry.by_domain(d) {
                return self.lookup_org(e.org);
            }
        }
        let name = query.name.as_deref()?;
        let (entry, score) = self.registry.best_name_match(name)?;
        (score >= 0.60)
            .then(|| self.lookup_org(entry.org))
            .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::WorldConfig;

    #[test]
    fn coverage_and_accuracy_sit_between_dnb_and_crunchbase() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(31)));
        let z = ZoomInfo::build(&w, WorldSeed::new(32));
        let frac = z.len() as f64 / w.orgs.len() as f64;
        assert!(frac > 0.55 && frac < 0.80, "coverage = {frac}");

        let (mut ok, mut n) = (0usize, 0usize);
        for org in &w.orgs {
            if let Some(m) = z.lookup_org(org.id) {
                ok += usize::from(m.categories.overlaps_l1(&org.truth()));
                n += 1;
            }
        }
        let l1 = ok as f64 / n.max(1) as f64;
        assert!((l1 - 0.74).abs() < 0.12, "L1 accuracy = {l1}");
    }
}
