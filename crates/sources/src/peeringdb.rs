//! Simulated PeeringDB: "a crowd-sourced database where operators can
//! voluntarily register ASes as one of six categories" (§2). Coverage is
//! tiny (15% of ASes) and heavily skewed to networks — but what is there is
//! excellent: "PeeringDB reliably classifies ISPs with a 100% true positive
//! rate" (§3.3).

use crate::profile::{self, PeeringDbProfile};
use crate::{DataSource, Query, SourceId, SourceMatch};
use asdb_model::{Asn, OrgId, WorldSeed};
use asdb_taxonomy::naicslite::known;
use asdb_taxonomy::schemes::PeeringDbType;
use asdb_taxonomy::Layer1;
use asdb_worldgen::{Organization, World};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// The simulated PeeringDB service.
#[derive(Debug, Clone)]
pub struct PeeringDb {
    by_asn: HashMap<Asn, (OrgId, PeeringDbType)>,
    by_org: HashMap<OrgId, PeeringDbType>,
}

/// The type an operator of this org would self-report.
fn self_reported_type(org: &Organization, p: &PeeringDbProfile, rng: &mut StdRng) -> PeeringDbType {
    let truthful = rng.random_bool(p.type_correct);
    if !truthful {
        return *PeeringDbType::ALL.choose(rng).expect("non-empty");
    }
    if org.category == known::isp() || org.category == known::phone() {
        // Operators split between the two network labels.
        if rng.random_bool(0.7) {
            PeeringDbType::CableDslIsp
        } else {
            PeeringDbType::NetworkServiceProvider
        }
    } else if org.category == known::hosting()
        || org.category == known::search_engine()
        || org.category.layer1 == Layer1::Media
    {
        PeeringDbType::Content
    } else if org.category.layer1 == Layer1::Education {
        PeeringDbType::EducationResearch
    } else if org.category.layer1 == Layer1::Nonprofits {
        PeeringDbType::NonProfit
    } else if org.category == known::ixp() {
        PeeringDbType::NetworkServiceProvider
    } else {
        PeeringDbType::Enterprise
    }
}

impl PeeringDb {
    /// Build over a world.
    pub fn build(world: &World, seed: WorldSeed) -> PeeringDb {
        let p = profile::PEERINGDB;
        let mut by_asn = HashMap::new();
        let mut by_org = HashMap::new();
        for (i, org) in world.orgs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed.derive_index("pdb", i as u64).value());
            let network_ish = matches!(
                org.category,
                c if c == known::isp() || c == known::ixp() || c == known::hosting()
            );
            let cover_p = if network_ish {
                p.coverage_network
            } else if org.is_tech() {
                p.coverage_other_tech
            } else {
                p.coverage_nontech
            };
            if !rng.random_bool(cover_p) {
                continue;
            }
            let t = self_reported_type(org, &p, &mut rng);
            by_org.insert(org.id, t);
        }
        for rec in &world.ases {
            if let Some(t) = by_org.get(&rec.org) {
                by_asn.insert(rec.asn, (rec.org, *t));
            }
        }
        PeeringDb { by_asn, by_org }
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.by_asn.len()
    }

    /// Whether the listing is empty.
    pub fn is_empty(&self) -> bool {
        self.by_asn.is_empty()
    }

    /// The raw self-reported type for an ASN.
    pub fn network_type(&self, asn: Asn) -> Option<PeeringDbType> {
        self.by_asn.get(&asn).map(|(_, t)| *t)
    }

    fn to_match(&self, org: OrgId, t: PeeringDbType) -> SourceMatch {
        SourceMatch {
            source: SourceId::PeeringDb,
            entity: Some(org),
            domain: None,
            raw_label: t.name().to_owned(),
            categories: t.to_naicslite(),
            confidence: None,
        }
    }
}

impl DataSource for PeeringDb {
    fn id(&self) -> SourceId {
        SourceId::PeeringDb
    }

    fn lookup_org(&self, org: OrgId) -> Option<SourceMatch> {
        self.by_org.get(&org).map(|t| self.to_match(org, *t))
    }

    fn search(&self, query: &Query) -> Option<SourceMatch> {
        let asn = query.asn?;
        let (org, t) = self.by_asn.get(&asn)?;
        Some(self.to_match(*org, *t))
    }

    fn network_type(&self, asn: Asn) -> Option<PeeringDbType> {
        PeeringDb::network_type(self, asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_worldgen::WorldConfig;

    fn setup() -> (World, PeeringDb) {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(61)));
        let p = PeeringDb::build(&w, WorldSeed::new(62));
        (w, p)
    }

    #[test]
    fn coverage_is_small_and_tech_skewed() {
        let (w, p) = setup();
        let frac = p.len() as f64 / w.ases.len() as f64;
        assert!(frac > 0.08 && frac < 0.25, "coverage = {frac}");
        let (mut tech, mut nontech) = ((0usize, 0usize), (0usize, 0usize));
        for rec in &w.ases {
            let covered = p.network_type(rec.asn).is_some();
            let org = w.org_of(rec.asn).unwrap();
            let slot = if org.is_tech() {
                &mut tech
            } else {
                &mut nontech
            };
            slot.0 += usize::from(covered);
            slot.1 += 1;
        }
        let t = tech.0 as f64 / tech.1 as f64;
        let n = nontech.0 as f64 / nontech.1 as f64;
        assert!(t > n * 4.0, "tech {t} vs nontech {n}");
    }

    #[test]
    fn isp_label_is_reliable() {
        let (w, p) = setup();
        // Of ASes PeeringDB calls ISP-ish, nearly all really are network
        // operators — the Figure 4 high-confidence shortcut's premise.
        let (mut right, mut n) = (0usize, 0usize);
        for rec in &w.ases {
            if let Some(t) = p.network_type(rec.asn) {
                if t.is_isp_signal() {
                    let org = w.org_of(rec.asn).unwrap();
                    let is_net = org.truth().layer2s().iter().any(|l2| {
                        *l2 == known::isp() || *l2 == known::ixp() || *l2 == known::phone()
                    });
                    right += usize::from(is_net);
                    n += 1;
                }
            }
        }
        let rate = right as f64 / n.max(1) as f64;
        assert!(n >= 50, "sample = {n}");
        assert!(rate > 0.90, "ISP signal precision = {rate}");
    }

    #[test]
    fn search_by_asn_only() {
        let (w, p) = setup();
        let covered_asn = w
            .ases
            .iter()
            .find(|r| p.network_type(r.asn).is_some())
            .unwrap()
            .asn;
        assert!(p.search(&Query::by_asn(covered_asn)).is_some());
        assert!(p.search(&Query::by_name("whatever")).is_none());
    }

    #[test]
    fn all_ases_of_registered_org_covered() {
        let (w, p) = setup();
        for rec in &w.ases {
            let org_covered = p.lookup_org(rec.org).is_some();
            let as_covered = p.network_type(rec.asn).is_some();
            assert_eq!(org_covered, as_covered);
        }
    }
}
