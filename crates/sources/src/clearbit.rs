//! Simulated Clearbit.
//!
//! Clearbit "provides 2-digit NAICS prefixes and their own custom system"
//! (Table 1) and is queryable by domain only. The 2-digit granularity is
//! structural poison for technology classification: sector 51
//! ("Information") maps to media/publishing in NAICSlite, so tech
//! organizations essentially never receive a Computer-and-IT label —
//! Table 4 measures 6% tech recall against 76% non-tech.

use crate::profile;
use crate::registry::{profile_covers, BusinessRegistry};
use crate::{DataSource, Query, SourceId, SourceMatch};
use asdb_model::{OrgId, WorldSeed};
use asdb_taxonomy::translate::naics_candidates;
use asdb_taxonomy::{CategorySet, Layer1, NaicsCode};
use asdb_worldgen::{Organization, World};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt;

/// The simulated Clearbit service.
#[derive(Debug, Clone)]
pub struct Clearbit {
    registry: BusinessRegistry,
}

/// Clearbit's label: the true category's NAICS code truncated to its
/// 2-digit sector, then translated — faithfully reproducing how sector-
/// level codes lose the tech signal.
fn emit_sector_label(org: &Organization, rng: &mut StdRng) -> (String, CategorySet) {
    let p = profile::CLEARBIT;
    // Start from a (usually correct) full code…
    let target = org.category;
    let full: NaicsCode = *naics_candidates(target)
        .choose(rng)
        .expect("candidates non-empty");
    // …but a slice of entries carry an editorially wrong code first.
    let correct_code = rng.random_bool(if org.is_tech() {
        0.85 // the code itself is usually fine; the truncation ruins it
    } else {
        p.l1_correct
    });
    let full = if correct_code {
        full
    } else {
        // A code from some other sector.
        let l1: Layer1 = *Layer1::ALL.choose(rng).expect("non-empty");
        l1.layer2_iter()
            .find_map(|l2| naics_candidates(l2).first().copied())
            .unwrap_or(full)
    };
    let sector = full.prefix(2);
    (
        format!("sector {sector}"),
        asdb_taxonomy::naics_to_naicslite(sector),
    )
}

impl Clearbit {
    /// Build over a world.
    pub fn build(world: &World, seed: WorldSeed) -> Clearbit {
        let p = profile::CLEARBIT;
        let registry = BusinessRegistry::build(
            &world.orgs,
            seed.derive("clearbit"),
            move |o, rng| o.domain.is_some() && profile_covers(&p, o, rng),
            emit_sector_label,
        );
        Clearbit { registry }
    }

    /// Number of listed organizations.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the listing is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }
}

impl DataSource for Clearbit {
    fn id(&self) -> SourceId {
        SourceId::Clearbit
    }

    fn lookup_org(&self, org: OrgId) -> Option<SourceMatch> {
        let e = self.registry.by_org(org)?;
        Some(SourceMatch {
            source: SourceId::Clearbit,
            entity: Some(e.org),
            domain: e.domain.clone(),
            raw_label: e.raw_label.clone(),
            categories: e.categories.clone(),
            confidence: None,
        })
    }

    fn search(&self, query: &Query) -> Option<SourceMatch> {
        // Clearbit is domain-keyed only (Table 1: searchable by W).
        let d = query.domain.as_ref()?;
        let e = self.registry.by_domain(d)?;
        self.lookup_org(e.org)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::WorldConfig;

    fn setup() -> (World, Clearbit) {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(41)));
        let c = Clearbit::build(&w, WorldSeed::new(42));
        (w, c)
    }

    #[test]
    fn tech_recall_is_structurally_terrible() {
        let (w, c) = setup();
        let (mut tech_ok, mut tech_n) = (0usize, 0usize);
        let (mut non_ok, mut non_n) = (0usize, 0usize);
        for org in &w.orgs {
            if let Some(m) = c.lookup_org(org.id) {
                let ok = m.categories.overlaps_l1(&org.truth());
                if org.is_tech() {
                    tech_ok += usize::from(ok);
                    tech_n += 1;
                } else {
                    non_ok += usize::from(ok);
                    non_n += 1;
                }
            }
        }
        let tech = tech_ok as f64 / tech_n.max(1) as f64;
        let non = non_ok as f64 / non_n.max(1) as f64;
        assert!(tech < 0.30, "tech recall should collapse, got {tech}");
        assert!(non > 0.55, "non-tech recall = {non}");
        assert!(non > tech * 3.0);
    }

    #[test]
    fn search_requires_domain() {
        let (w, c) = setup();
        assert!(c.search(&Query::by_name("Anything At All")).is_none());
        let covered = w
            .orgs
            .iter()
            .find(|o| o.domain.is_some() && c.lookup_org(o.id).is_some())
            .unwrap();
        let m = c
            .search(&Query::by_domain(covered.domain.clone().unwrap()))
            .unwrap();
        assert_eq!(m.entity, Some(covered.id));
    }
}
