//! Simulated Zvelo: a *real* website classifier over the synthetic web.
//!
//! "Zvelo can only be queried by a working domain; thus, Zvelo's coverage
//! is directly dependent on the identification of the correct domain
//! associated with each AS" (§3.5). Zvelo "operates a real-time website
//! classifier" and "runs an existing production-grade machine learning
//! classifier whose goal is to differentiate between over 100 business
//! categories" (§4.1).
//!
//! The simulation actually scrapes the generated site (root page plus
//! keyword internal pages), machine-translates it, and scores it against
//! per-category vocabulary centroids — so domain-selection mistakes,
//! parked pages, text-in-images, and misleading vocabulary all propagate
//! into Zvelo's output exactly as they do for the real service. On top of
//! the content classifier sits Zvelo's *taxonomy mapping* noise
//! ([`crate::profile::ZVELO`]): hosting sites usually end up under generic
//! internet/technology labels (25% hosting recall vs 81% ISP).

use crate::profile::{self, ZveloProfile};
use crate::{DataSource, Query, SourceId, SourceMatch};
use asdb_model::{Domain, OrgId, WorldSeed};
use asdb_taxonomy::naicslite::known;
use asdb_taxonomy::schemes::ZVELO;
use asdb_taxonomy::{Category, CategorySet, Layer2};
use asdb_websim::scraper::{scrape, ScrapeConfig};
use asdb_websim::vocab::vocabulary;
use asdb_websim::{SimWeb, Translator};
use asdb_worldgen::World;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};

/// The simulated Zvelo service.
#[derive(Debug, Clone)]
pub struct Zvelo {
    web: SimWeb,
    org_domain: HashMap<OrgId, Domain>,
    profile: ZveloProfile,
    translator: Translator,
    seed: WorldSeed,
}

impl Zvelo {
    /// Build over a world.
    pub fn build(world: &World, seed: WorldSeed) -> Zvelo {
        let org_domain = world
            .orgs
            .iter()
            .filter_map(|o| o.domain.clone().map(|d| (o.id, d)))
            .collect();
        Zvelo {
            web: world.web.clone(),
            org_domain,
            profile: profile::ZVELO,
            translator: Translator::new(0.03, seed.derive("zvelo-mt")),
            seed: seed.derive("zvelo"),
        }
    }

    /// Classify a domain's website content. `None` when the site is
    /// unreachable/nonexistent.
    pub fn classify_domain(&self, domain: &Domain) -> Option<(String, CategorySet)> {
        let result = scrape(&self.web, domain, &ScrapeConfig::default()).ok()?;
        let english = self.translator.translate(&result.text);
        let tokens: HashSet<String> = english
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| t.len() >= 2)
            .map(str::to_lowercase)
            .collect();
        if tokens.len() < 8 {
            let cat = ZVELO.category("Parked Domains").expect("scheme has it");
            return Some((cat.name.to_owned(), cat.to_naicslite()));
        }
        // Vocabulary-centroid scoring over all 95 layer-2 categories.
        let mut best: Option<(f64, Layer2)> = None;
        for l2 in Layer2::all() {
            let vocab = vocabulary(l2);
            let hits = vocab.iter().filter(|w| tokens.contains(**w)).count();
            let score = hits as f64 / (vocab.len() as f64).sqrt();
            match best {
                Some((s, _)) if s >= score => {}
                _ => best = Some((score, l2)),
            }
        }
        let (score, top) = best.expect("95 categories scored");
        if score <= 0.0 {
            let cat = ZVELO.category("Parked Domains").expect("scheme has it");
            return Some((cat.name.to_owned(), cat.to_naicslite()));
        }
        Some(self.map_to_scheme(top, domain))
    }

    /// Zvelo's taxonomy mapping with the calibrated ambiguity noise.
    fn map_to_scheme(&self, top: Layer2, domain: &Domain) -> (String, CategorySet) {
        let mut rng =
            StdRng::seed_from_u64(self.seed.derive("map").derive(domain.as_str()).value());
        let kept_prob = if top == known::hosting() {
            self.profile.hosting_kept
        } else if top == known::isp() {
            self.profile.isp_kept
        } else if top.layer1.is_tech() {
            0.62
        } else {
            self.profile.nontech_kept
        };
        if rng.random_bool(kept_prob) {
            if let Some(cat) = ZVELO.covering(Category::l2(top)).first() {
                return (cat.name.to_owned(), cat.to_naicslite());
            }
        }
        // Generic fallback labels: right neighborhood, wrong subcategory.
        let fallback_names: &[&str] = if top.layer1.is_tech() {
            &["Internet Services", "Technology (General)"]
        } else {
            &["Business Services", "News and Media", "Shopping"]
        };
        // Prefer a same-L1 sibling label when one exists.
        let siblings = ZVELO.covering_l1(top.layer1);
        let pick = siblings
            .iter()
            .filter(|c| !c.to_naicslite().layer2s().contains(&top))
            .collect::<Vec<_>>();
        if let Some(cat) = pick.choose(&mut rng) {
            return (cat.name.to_owned(), cat.to_naicslite());
        }
        let name = fallback_names
            .choose(&mut rng)
            .copied()
            .unwrap_or("Business Services");
        let cat = ZVELO.category(name).expect("fallbacks exist in scheme");
        (cat.name.to_owned(), cat.to_naicslite())
    }
}

impl DataSource for Zvelo {
    fn id(&self) -> SourceId {
        SourceId::Zvelo
    }

    fn lookup_org(&self, org: OrgId) -> Option<SourceMatch> {
        // Manual protocol: the researcher supplies the correct domain.
        let domain = self.org_domain.get(&org)?;
        let (raw_label, categories) = self.classify_domain(domain)?;
        Some(SourceMatch {
            source: SourceId::Zvelo,
            entity: Some(org),
            domain: Some(domain.clone()),
            raw_label,
            categories,
            confidence: None,
        })
    }

    fn search(&self, query: &Query) -> Option<SourceMatch> {
        let domain = query.domain.as_ref()?;
        let (raw_label, categories) = self.classify_domain(domain)?;
        Some(SourceMatch {
            source: SourceId::Zvelo,
            entity: None, // Zvelo knows pages, not companies.
            domain: Some(domain.clone()),
            raw_label,
            categories,
            confidence: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::WorldConfig;

    fn setup() -> (World, Zvelo) {
        let w = World::generate(WorldConfig::small(WorldSeed::new(51)));
        let z = Zvelo::build(&w, WorldSeed::new(52));
        (w, z)
    }

    #[test]
    fn classifies_live_sites_only() {
        let (w, z) = setup();
        let live = w
            .orgs
            .iter()
            .find(|o| o.live_site && o.domain.is_some())
            .unwrap();
        assert!(z
            .search(&Query::by_domain(live.domain.clone().unwrap()))
            .is_some());
        let dead = w
            .orgs
            .iter()
            .find(|o| !o.live_site && o.domain.is_some())
            .unwrap();
        assert!(z
            .search(&Query::by_domain(dead.domain.clone().unwrap()))
            .is_none());
    }

    #[test]
    fn isp_sites_usually_classified_as_isp() {
        let (w, z) = setup();
        let (mut ok, mut n) = (0usize, 0usize);
        for org in &w.orgs {
            if org.category != known::isp() || !org.live_site {
                continue;
            }
            if let Some(m) = z.lookup_org(org.id) {
                ok += usize::from(m.categories.layer2s().contains(&known::isp()));
                n += 1;
            }
        }
        let rate = ok as f64 / n.max(1) as f64;
        assert!(n >= 20, "sample too small: {n}");
        assert!(rate > 0.55, "ISP recall = {rate}");
    }

    #[test]
    fn hosting_sites_usually_lose_their_label() {
        let (w, z) = setup();
        let (mut kept, mut tech, mut n) = (0usize, 0usize, 0usize);
        for org in &w.orgs {
            if org.category != known::hosting() || !org.live_site {
                continue;
            }
            if let Some(m) = z.lookup_org(org.id) {
                kept += usize::from(m.categories.layer2s().contains(&known::hosting()));
                tech += usize::from(m.categories.any_tech());
                n += 1;
            }
        }
        if n >= 8 {
            let kept_rate = kept as f64 / n as f64;
            let tech_rate = tech as f64 / n as f64;
            assert!(kept_rate < 0.60, "hosting kept = {kept_rate}");
            assert!(tech_rate > 0.70, "still tech at L1 = {tech_rate}");
        }
    }

    #[test]
    fn parked_sites_get_parked_label() {
        let (w, z) = setup();
        if let Some(org) = w
            .orgs
            .iter()
            .find(|o| o.live_site && o.quirks.parked && o.domain.is_some())
        {
            let m = z.lookup_org(org.id).unwrap();
            assert!(
                m.raw_label.contains("Parked") || m.raw_label.contains("Business"),
                "label = {}",
                m.raw_label
            );
        }
    }

    #[test]
    fn classification_is_deterministic() {
        let (w, z) = setup();
        let org = w
            .orgs
            .iter()
            .find(|o| o.live_site && o.domain.is_some())
            .unwrap();
        let a = z.lookup_org(org.id).unwrap();
        let b = z.lookup_org(org.id).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nontech_sites_get_plausible_l1() {
        let (w, z) = setup();
        let (mut ok, mut n) = (0usize, 0usize);
        for org in &w.orgs {
            if org.is_tech() || !org.live_site || org.quirks.misleading_vocab {
                continue;
            }
            if let Some(m) = z.lookup_org(org.id) {
                ok += usize::from(m.categories.overlaps_l1(&org.truth()));
                n += 1;
            }
        }
        let rate = ok as f64 / n.max(1) as f64;
        assert!(rate > 0.60, "non-tech L1 = {rate} (n = {n})");
    }
}
