//! Simulated Crunchbase.
//!
//! "Crunchbase provides a bulk dataset that can be queried by name and/or
//! domain. For all ASes with an available domain, Crunchbase achieves a
//! 100% matching accuracy and 12% coverage … To query ASes with no
//! available domains, we search Crunchbase using a tokenized version of the
//! AS name; Crunchbase achieves 95% matching accuracy" (§3.5). Coverage
//! skews to startups and US companies; labels use Crunchbase's own category
//! scheme (37% overall coverage, strong non-tech precision, weak tech
//! differentiation — Tables 3/4/11).

use crate::profile;
use crate::registry::{correctness_for, BusinessRegistry};
use crate::{DataSource, Query, SourceId, SourceMatch};
use asdb_model::{OrgId, WorldSeed};
use asdb_taxonomy::schemes::{Scheme, CRUNCHBASE};
use asdb_taxonomy::{Category, CategorySet, Layer2};
use asdb_worldgen::{Organization, World};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt;

/// The simulated Crunchbase service.
#[derive(Debug, Clone)]
pub struct Crunchbase {
    registry: BusinessRegistry,
}

/// Emit a scheme label under a profile: a category covering the truth when
/// correct, a same-L1 or cross-L1 wrong category otherwise.
pub(crate) fn emit_scheme_label(
    scheme: &'static Scheme,
    profile: &profile::SourceProfile,
    org: &Organization,
    rng: &mut StdRng,
) -> (String, CategorySet) {
    let target: Layer2 = match org.secondary {
        Some(s) if rng.random_bool(0.25) => s,
        _ => org.category,
    };
    // Two-stage draw, mirroring `emit_naics_label`: layer-1 first, then
    // layer-2 conditionally.
    let l1_right = rng.random_bool(profile.l1_correct);
    let p_l2_given_l1 = (correctness_for(profile, org) / profile.l1_correct).clamp(0.0, 1.0);
    let correct = l1_right && rng.random_bool(p_l2_given_l1);
    let chosen = if correct {
        let covering = scheme.covering(Category::l2(target));
        covering.choose(rng).copied().cloned()
    } else {
        None
    };
    let cat = match chosen {
        Some(c) => c,
        None => {
            let stay_l1 = l1_right;
            let pool: Vec<_> = scheme
                .categories
                .iter()
                .filter(|c| {
                    let set = c.to_naicslite();
                    let has_l1 = set.layer1s().contains(&target.layer1);
                    let has_l2 = set.layer2s().contains(&target);
                    if correct {
                        // Scheme had no covering category (rare): fall back
                        // to same-L1.
                        has_l1
                    } else if stay_l1 {
                        has_l1 && !has_l2
                    } else {
                        !has_l1
                    }
                })
                .collect();
            pool.choose(rng)
                .copied()
                .or_else(|| scheme.categories.first())
                .expect("scheme non-empty")
                .clone()
        }
    };
    (cat.name.to_owned(), cat.to_naicslite())
}

impl Crunchbase {
    /// Build over a world.
    pub fn build(world: &World, seed: WorldSeed) -> Crunchbase {
        let p = profile::CRUNCHBASE;
        let registry = BusinessRegistry::build(
            &world.orgs,
            seed.derive("crunchbase"),
            move |o, rng| {
                // Startup/US skew: startups are near-certain members;
                // everyone else draws at a reduced rate so the marginal
                // coverage still matches the profile.
                let base = if o.is_tech() {
                    p.coverage_tech
                } else {
                    p.coverage_nontech
                };
                let adjusted = if o.startup {
                    (base * 2.5).min(0.98)
                } else if o.country.as_str() == "US" {
                    base * 1.3
                } else {
                    base * 0.75
                };
                rng.random_bool(adjusted.min(1.0))
            },
            move |o, rng| emit_scheme_label(&CRUNCHBASE, &p, o, rng),
        );
        Crunchbase { registry }
    }

    /// Number of listed organizations.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the listing is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }
}

impl DataSource for Crunchbase {
    fn id(&self) -> SourceId {
        SourceId::Crunchbase
    }

    fn lookup_org(&self, org: OrgId) -> Option<SourceMatch> {
        let e = self.registry.by_org(org)?;
        Some(SourceMatch {
            source: SourceId::Crunchbase,
            entity: Some(e.org),
            domain: e.domain.clone(),
            raw_label: e.raw_label.clone(),
            categories: e.categories.clone(),
            confidence: None,
        })
    }

    fn search(&self, query: &Query) -> Option<SourceMatch> {
        // Domain query: exact, precise.
        if let Some(d) = &query.domain {
            if let Some(e) = self.registry.by_domain(d) {
                return self.lookup_org(e.org);
            }
        }
        // Tokenized-name query: demands near-exact token overlap, which is
        // what makes it 95% precise but low-coverage.
        let name = query.name.as_deref()?;
        let (entry, score) = self.registry.best_name_match(name)?;
        (score >= 0.82)
            .then(|| self.lookup_org(entry.org))
            .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::WorldConfig;

    fn setup() -> (World, Crunchbase) {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(21)));
        let c = Crunchbase::build(&w, WorldSeed::new(22));
        (w, c)
    }

    #[test]
    fn coverage_is_lowest_of_business_sources() {
        let (w, c) = setup();
        let frac = c.len() as f64 / w.orgs.len() as f64;
        assert!(frac > 0.20 && frac < 0.50, "coverage = {frac}");
    }

    #[test]
    fn startups_are_overrepresented() {
        let (w, c) = setup();
        let (mut s_cov, mut s_n, mut o_cov, mut o_n) = (0usize, 0usize, 0usize, 0usize);
        for org in &w.orgs {
            let covered = c.lookup_org(org.id).is_some();
            if org.startup {
                s_cov += usize::from(covered);
                s_n += 1;
            } else {
                o_cov += usize::from(covered);
                o_n += 1;
            }
        }
        let s_rate = s_cov as f64 / s_n.max(1) as f64;
        let o_rate = o_cov as f64 / o_n.max(1) as f64;
        assert!(s_rate > o_rate, "startup {s_rate} vs other {o_rate}");
    }

    #[test]
    fn domain_query_is_exact() {
        let (w, c) = setup();
        let mut n = 0;
        for org in &w.orgs {
            if let (Some(d), Some(_)) = (&org.domain, c.lookup_org(org.id)) {
                let m = c.search(&Query::by_domain(d.clone())).unwrap();
                assert_eq!(
                    m.entity,
                    Some(org.id),
                    "domain matching must be 100% precise"
                );
                n += 1;
                if n > 40 {
                    break;
                }
            }
        }
        assert!(n > 10);
    }

    #[test]
    fn name_query_requires_high_similarity() {
        let (_, c) = setup();
        assert!(c
            .search(&Query::by_name("completely unrelated gibberish"))
            .is_none());
    }

    #[test]
    fn nontech_labels_are_precise() {
        let (w, c) = setup();
        let (mut ok, mut n) = (0usize, 0usize);
        for org in &w.orgs {
            if org.is_tech() {
                continue;
            }
            if let Some(m) = c.lookup_org(org.id) {
                ok += usize::from(m.categories.overlaps_l1(&org.truth()));
                n += 1;
            }
        }
        let rate = ok as f64 / n.max(1) as f64;
        assert!(rate > 0.70, "non-tech L1 accuracy = {rate}");
    }
}
