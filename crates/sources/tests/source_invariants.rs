//! Cross-source invariants: every simulated service must behave like a
//! *service* — deterministic, entity-consistent, and honest about its
//! query model.

use asdb_model::WorldSeed;
use asdb_sources::clearbit::Clearbit;
use asdb_sources::crunchbase::Crunchbase;
use asdb_sources::dnb::Dnb;
use asdb_sources::ipinfo::Ipinfo;
use asdb_sources::peeringdb::PeeringDb;
use asdb_sources::zoominfo::ZoomInfo;
use asdb_sources::zvelo::Zvelo;
use asdb_sources::{DataSource, Query};
use asdb_worldgen::{World, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| World::generate(WorldConfig::small(WorldSeed::new(606))))
}

fn all_sources() -> Vec<Box<dyn DataSource>> {
    let w = world();
    let seed = WorldSeed::new(607);
    vec![
        Box::new(Dnb::build(w, seed)),
        Box::new(Crunchbase::build(w, seed)),
        Box::new(ZoomInfo::build(w, seed)),
        Box::new(Clearbit::build(w, seed)),
        Box::new(Zvelo::build(w, seed)),
        Box::new(PeeringDb::build(w, seed)),
        Box::new(Ipinfo::build(w, seed)),
    ]
}

#[test]
fn searches_are_deterministic() {
    let w = world();
    let sources = all_sources();
    for rec in w.ases.iter().take(40) {
        let q = Query {
            asn: Some(rec.asn),
            name: Some(rec.parsed.name.clone()),
            domain: rec.parsed.candidate_domains().into_iter().next(),
            address: rec.parsed.address.clone(),
            phone: rec.parsed.phone.clone(),
        };
        for s in &sources {
            let a = s.search(&q);
            let b = s.search(&q);
            assert_eq!(a, b, "{} is nondeterministic", s.id());
        }
    }
}

#[test]
fn manual_lookup_never_returns_foreign_entities() {
    let w = world();
    for s in all_sources() {
        for org in w.orgs.iter().take(150) {
            if let Some(m) = s.lookup_org(org.id) {
                if let Some(entity) = m.entity {
                    assert_eq!(
                        entity,
                        org.id,
                        "{}: manual lookup for {} returned {}",
                        s.id(),
                        org.id,
                        entity
                    );
                }
            }
        }
    }
}

#[test]
fn matches_always_carry_categories_or_nothing() {
    let w = world();
    for s in all_sources() {
        for org in w.orgs.iter().take(150) {
            if let Some(m) = s.lookup_org(org.id) {
                assert!(
                    !m.categories.is_empty(),
                    "{}: empty category set in a match",
                    s.id()
                );
                assert!(!m.raw_label.is_empty(), "{}: empty raw label", s.id());
            }
        }
    }
}

#[test]
fn asn_indexed_sources_ignore_name_only_queries() {
    let w = world();
    let pdb = PeeringDb::build(w, WorldSeed::new(607));
    let ipinfo = Ipinfo::build(w, WorldSeed::new(607));
    for org in w.orgs.iter().take(50) {
        let q = Query::by_name(org.legal_name.as_str());
        assert!(pdb.search(&q).is_none());
        assert!(ipinfo.search(&q).is_none());
    }
}

#[test]
fn domain_only_sources_ignore_asn_only_queries() {
    let w = world();
    let zvelo = Zvelo::build(w, WorldSeed::new(607));
    let clearbit = Clearbit::build(w, WorldSeed::new(607));
    for rec in w.ases.iter().take(50) {
        let q = Query::by_asn(rec.asn);
        assert!(zvelo.search(&q).is_none());
        assert!(clearbit.search(&q).is_none());
    }
}

#[test]
fn rebuilding_from_same_seed_is_identical() {
    let w = world();
    let a = Dnb::build(w, WorldSeed::new(99));
    let b = Dnb::build(w, WorldSeed::new(99));
    assert_eq!(a.len(), b.len());
    for org in w.orgs.iter().take(100) {
        assert_eq!(a.lookup_org(org.id), b.lookup_org(org.id));
    }
    // And a different seed covers a different slice of the universe.
    let c = Dnb::build(w, WorldSeed::new(100));
    let differs = w
        .orgs
        .iter()
        .any(|o| a.lookup_org(o.id).is_some() != c.lookup_org(o.id).is_some());
    assert!(differs, "coverage should depend on the seed");
}
