//! Vocabulary building and sparse count vectors.

use crate::tokenize::tokenize;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sparse feature vector: sorted `(feature_index, value)` pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Build from unsorted pairs; duplicate indices are summed.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> SparseVec {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match entries.last_mut() {
                Some((li, lv)) if *li == i => *lv += v,
                _ => entries.push((i, v)),
            }
        }
        entries.retain(|(_, v)| *v != 0.0);
        SparseVec { entries }
    }

    /// The sorted entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dot product against a dense weight vector. Indices beyond the dense
    /// length contribute nothing (allows vocabulary growth tolerance).
    pub fn dot(&self, dense: &[f32]) -> f32 {
        self.entries
            .iter()
            .filter(|(i, _)| (*i as usize) < dense.len())
            .map(|(i, v)| dense[*i as usize] * v)
            .sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|(_, v)| v * v).sum::<f32>().sqrt()
    }

    /// Scale all values in place.
    pub fn scale(&mut self, s: f32) {
        for (_, v) in &mut self.entries {
            *v *= s;
        }
    }

    /// Map values through a function (e.g. IDF weighting).
    pub fn map_values(&self, mut f: impl FnMut(u32, f32) -> f32) -> SparseVec {
        SparseVec {
            entries: self
                .entries
                .iter()
                .map(|(i, v)| (*i, f(*i, *v)))
                .filter(|(_, v)| *v != 0.0)
                .collect(),
        }
    }
}

/// Configuration for [`CountVectorizer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorizerConfig {
    /// Keep at most this many features, by collection frequency.
    pub max_features: usize,
    /// Drop tokens appearing in fewer than this many documents.
    pub min_df: usize,
    /// Drop tokens appearing in more than this fraction of documents.
    pub max_df_ratio: f64,
}

impl Default for VectorizerConfig {
    fn default() -> Self {
        VectorizerConfig {
            max_features: 20_000,
            min_df: 2,
            max_df_ratio: 0.95,
        }
    }
}

/// Converts raw text into sparse word-count vectors over a fitted
/// vocabulary — the "Count Vectorizer" box of Figure 3.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CountVectorizer {
    vocab: HashMap<String, u32>,
    config: VectorizerConfig,
}

impl CountVectorizer {
    /// New, unfitted vectorizer.
    pub fn new(config: VectorizerConfig) -> CountVectorizer {
        CountVectorizer {
            vocab: HashMap::new(),
            config,
        }
    }

    /// Fit the vocabulary on a corpus and return the transformed corpus.
    pub fn fit_transform(&mut self, docs: &[&str]) -> Vec<SparseVec> {
        self.fit(docs);
        docs.iter().map(|d| self.transform(d)).collect()
    }

    /// Fit the vocabulary: tokenize every document, apply document-frequency
    /// filters, keep the `max_features` most frequent tokens, and assign
    /// indices in deterministic (frequency-desc, then lexicographic) order.
    pub fn fit(&mut self, docs: &[&str]) {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        let mut coll_freq: HashMap<String, usize> = HashMap::new();
        for d in docs {
            let toks = tokenize(d);
            let mut seen: Vec<&String> = Vec::new();
            for t in &toks {
                *coll_freq.entry(t.clone()).or_insert(0) += 1;
                if !seen.contains(&t) {
                    seen.push(t);
                }
            }
            for t in seen {
                *doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let n_docs = docs.len().max(1);
        // Proportional max_df truncates like scikit-learn's int(ratio * n).
        let max_df = (self.config.max_df_ratio * n_docs as f64) as usize;
        let mut candidates: Vec<(String, usize)> = coll_freq
            .into_iter()
            .filter(|(t, _)| {
                let df = doc_freq.get(t).copied().unwrap_or(0);
                df >= self.config.min_df && df <= max_df
            })
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        candidates.truncate(self.config.max_features);
        self.vocab = candidates
            .into_iter()
            .enumerate()
            .map(|(i, (t, _))| (t, i as u32))
            .collect();
    }

    /// Transform one document into a count vector over the fitted
    /// vocabulary. Unknown tokens are ignored.
    pub fn transform(&self, doc: &str) -> SparseVec {
        let pairs: Vec<(u32, f32)> = tokenize(doc)
            .into_iter()
            .filter_map(|t| self.vocab.get(&t).map(|&i| (i, 1.0)))
            .collect();
        SparseVec::from_pairs(pairs)
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Index of a token, if in the vocabulary.
    pub fn index_of(&self, token: &str) -> Option<u32> {
        self.vocab.get(token).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sparse_from_pairs_sums_duplicates_and_sorts() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 1.0), (2, 0.0)]);
        let entries: Vec<_> = v.iter().collect();
        assert_eq!(entries, vec![(1, 2.0), (3, 2.0)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_product() {
        let v = SparseVec::from_pairs(vec![(0, 2.0), (2, 3.0), (9, 1.0)]);
        let w = vec![1.0, 10.0, 0.5];
        assert!((v.dot(&w) - 3.5).abs() < 1e-6); // index 9 out of range → 0
    }

    #[test]
    fn norm_and_scale() {
        let mut v = SparseVec::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert!((v.norm() - 5.0).abs() < 1e-6);
        v.scale(2.0);
        assert!((v.norm() - 10.0).abs() < 1e-6);
    }

    fn corpus() -> Vec<&'static str> {
        vec![
            "fast fiber internet service provider network",
            "cloud hosting dedicated server datacenter network",
            "fiber internet provider coverage network",
            "managed hosting server cloud network",
        ]
    }

    #[test]
    fn fit_transform_produces_consistent_vectors() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 1,
            max_df_ratio: 1.0,
        });
        let xs = vz.fit_transform(&docs);
        assert_eq!(xs.len(), 4);
        assert!(vz.vocab_len() >= 8);
        // "network" appears in all docs.
        let net = vz.index_of("network").unwrap();
        for x in &xs {
            assert!(x.iter().any(|(i, _)| i == net));
        }
    }

    #[test]
    fn min_df_filters_rare_tokens() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 2,
            max_df_ratio: 1.0,
        });
        vz.fit(&docs);
        assert!(vz.index_of("coverage").is_none(), "df=1 token kept");
        assert!(vz.index_of("fiber").is_some());
    }

    #[test]
    fn max_df_filters_ubiquitous_tokens() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 1,
            max_df_ratio: 0.8,
        });
        vz.fit(&docs);
        assert!(vz.index_of("network").is_none(), "df=100% token kept");
    }

    #[test]
    fn max_features_caps_vocabulary() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 3,
            min_df: 1,
            max_df_ratio: 1.0,
        });
        vz.fit(&docs);
        assert_eq!(vz.vocab_len(), 3);
    }

    #[test]
    fn unknown_tokens_ignored_on_transform() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig::default());
        vz.fit(&docs);
        let x = vz.transform("completely novel wording here");
        assert!(x.is_empty());
    }

    #[test]
    fn fitting_is_deterministic() {
        let docs = corpus();
        let mut a = CountVectorizer::new(VectorizerConfig::default());
        let mut b = CountVectorizer::new(VectorizerConfig::default());
        a.fit(&docs);
        b.fit(&docs);
        for t in ["fiber", "hosting", "network", "internet"] {
            assert_eq!(a.index_of(t), b.index_of(t));
        }
    }

    proptest! {
        #[test]
        fn from_pairs_entries_sorted_unique(pairs in proptest::collection::vec((0u32..50, -3.0f32..3.0), 0..60)) {
            let v = SparseVec::from_pairs(pairs);
            let e: Vec<_> = v.iter().collect();
            for w in e.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            for (_, val) in e {
                prop_assert!(val != 0.0);
            }
        }
    }
}
