//! Vocabulary building and sparse count vectors.
//!
//! Both the fit and transform paths are allocation-lean: tokens are
//! borrowed via [`crate::tokenize::for_each_token`]/[`crate::tokenize::tokens`]
//! and looked up in the vocabulary by `&str`; a document's own `String` is
//! only cloned the first time a token enters the statistics map during
//! fitting. Count vectors are assembled index-ordered and handed to
//! [`SparseVec::from_sorted_counts`], bypassing the pair sort of
//! [`SparseVec::from_pairs`].

use crate::tokenize::{for_each_token, tokens};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::HashMap;

/// A sparse feature vector: sorted `(feature_index, value)` pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Build from unsorted pairs; duplicate indices are summed and
    /// zero-sum entries dropped. The input allocation is reused (compacted
    /// in place), so no spare capacity is carried by long-lived vectors.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> SparseVec {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut w = 0usize;
        for r in 0..pairs.len() {
            let (i, v) = pairs[r];
            if w > 0 && pairs[w - 1].0 == i {
                pairs[w - 1].1 += v;
            } else {
                pairs[w] = (i, v);
                w += 1;
            }
        }
        pairs.truncate(w);
        pairs.retain(|(_, v)| *v != 0.0);
        SparseVec { entries: pairs }
    }

    /// Build directly from entries that are already strictly
    /// index-ascending with non-zero values — the fast path used by
    /// [`CountVectorizer::transform`], which produces counts index-ordered
    /// from the vocabulary map and therefore needs neither the sort nor
    /// the duplicate merge of [`SparseVec::from_pairs`].
    pub fn from_sorted_counts(entries: Vec<(u32, f32)>) -> SparseVec {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly index-ascending"
        );
        debug_assert!(
            entries.iter().all(|(_, v)| *v != 0.0),
            "entries must be non-zero"
        );
        SparseVec { entries }
    }

    /// The sorted entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dot product against a dense weight vector. Indices beyond the dense
    /// length contribute nothing (allows vocabulary growth tolerance):
    /// entries are sorted, so one binary partition finds the cutoff and the
    /// in-range prefix is summed branch-free.
    pub fn dot(&self, dense: &[f32]) -> f32 {
        let cut = self
            .entries
            .partition_point(|(i, _)| (*i as usize) < dense.len());
        self.entries[..cut]
            .iter()
            .map(|(i, v)| dense[*i as usize] * v)
            .sum()
    }

    /// [`SparseVec::dot`] against an `f64` accumulator vector (the lazy
    /// SGD trainer keeps its weights in double precision).
    pub fn dot64(&self, dense: &[f64]) -> f64 {
        let cut = self
            .entries
            .partition_point(|(i, _)| (*i as usize) < dense.len());
        self.entries[..cut]
            .iter()
            .map(|(i, v)| dense[*i as usize] * *v as f64)
            .sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|(_, v)| v * v).sum::<f32>().sqrt()
    }

    /// Scale all values in place.
    pub fn scale(&mut self, s: f32) {
        for (_, v) in &mut self.entries {
            *v *= s;
        }
    }

    /// Map values through a function (e.g. IDF weighting).
    pub fn map_values(&self, mut f: impl FnMut(u32, f32) -> f32) -> SparseVec {
        SparseVec {
            entries: self
                .entries
                .iter()
                .map(|(i, v)| (*i, f(*i, *v)))
                .filter(|(_, v)| *v != 0.0)
                .collect(),
        }
    }
}

/// Configuration for [`CountVectorizer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorizerConfig {
    /// Keep at most this many features, by collection frequency.
    pub max_features: usize,
    /// Drop tokens appearing in fewer than this many documents.
    pub min_df: usize,
    /// Drop tokens appearing in more than this fraction of documents.
    pub max_df_ratio: f64,
}

impl Default for VectorizerConfig {
    fn default() -> Self {
        VectorizerConfig {
            max_features: 20_000,
            min_df: 2,
            max_df_ratio: 0.95,
        }
    }
}

/// Per-token corpus statistics gathered in a single map during fitting.
/// `last_doc` is a last-seen-doc marker (doc index + 1), which turns
/// document-frequency dedup into one comparison instead of a scan over
/// the document's previously seen tokens.
#[derive(Debug, Clone, Copy)]
struct TokenStats {
    coll: usize,
    df: usize,
    last_doc: usize,
}

/// Converts raw text into sparse word-count vectors over a fitted
/// vocabulary — the "Count Vectorizer" box of Figure 3.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CountVectorizer {
    vocab: HashMap<String, u32>,
    config: VectorizerConfig,
}

impl CountVectorizer {
    /// New, unfitted vectorizer.
    pub fn new(config: VectorizerConfig) -> CountVectorizer {
        CountVectorizer {
            vocab: HashMap::new(),
            config,
        }
    }

    /// Fit the vocabulary on a corpus and return the transformed corpus.
    /// Tokenizes each document exactly once: the token stream is kept
    /// (mostly borrowed) and replayed for the transform pass.
    pub fn fit_transform(&mut self, docs: &[&str]) -> Vec<SparseVec> {
        let tokenized: Vec<Vec<Cow<str>>> = docs.iter().map(|d| tokens(d).collect()).collect();
        let mut stats: HashMap<String, TokenStats> = HashMap::new();
        for (d, toks) in tokenized.iter().enumerate() {
            for t in toks {
                Self::bump(&mut stats, t.as_ref(), d + 1);
            }
        }
        self.select_vocab(stats, docs.len());
        tokenized
            .iter()
            .map(|toks| self.vectorize_tokens(toks.iter().map(|c| c.as_ref())))
            .collect()
    }

    /// Fit the vocabulary: tokenize every document, apply document-frequency
    /// filters, keep the `max_features` most frequent tokens, and assign
    /// indices in deterministic (frequency-desc, then lexicographic) order.
    pub fn fit(&mut self, docs: &[&str]) {
        let mut stats: HashMap<String, TokenStats> = HashMap::new();
        let mut buf = String::new();
        for (d, doc) in docs.iter().enumerate() {
            for_each_token(doc, &mut buf, |t| Self::bump(&mut stats, t, d + 1));
        }
        self.select_vocab(stats, docs.len());
    }

    /// Count one token occurrence in document `marker` (doc index + 1, so
    /// zero never collides). Allocates the key only on first sight.
    fn bump(stats: &mut HashMap<String, TokenStats>, t: &str, marker: usize) {
        if let Some(s) = stats.get_mut(t) {
            s.coll += 1;
            if s.last_doc != marker {
                s.df += 1;
                s.last_doc = marker;
            }
        } else {
            stats.insert(
                t.to_owned(),
                TokenStats {
                    coll: 1,
                    df: 1,
                    last_doc: marker,
                },
            );
        }
    }

    /// Apply the df filters and frequency ranking to the gathered stats.
    fn select_vocab(&mut self, stats: HashMap<String, TokenStats>, n_docs: usize) {
        let n_docs = n_docs.max(1);
        // Proportional max_df truncates like scikit-learn's int(ratio * n).
        let max_df = (self.config.max_df_ratio * n_docs as f64) as usize;
        let mut candidates: Vec<(String, usize)> = stats
            .into_iter()
            .filter(|(_, s)| s.df >= self.config.min_df && s.df <= max_df)
            .map(|(t, s)| (t, s.coll))
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        candidates.truncate(self.config.max_features);
        self.vocab = candidates
            .into_iter()
            .enumerate()
            .map(|(i, (t, _))| (t, i as u32))
            .collect();
    }

    /// Transform one document into a count vector over the fitted
    /// vocabulary. Unknown tokens are ignored. Tokens are borrowed (one
    /// reusable case-fold buffer), looked up by `&str`, and counts are
    /// assembled index-ordered into [`SparseVec::from_sorted_counts`].
    pub fn transform(&self, doc: &str) -> SparseVec {
        let mut buf = String::new();
        let mut idxs: Vec<u32> = Vec::new();
        for_each_token(doc, &mut buf, |t| {
            if let Some(&i) = self.vocab.get(t) {
                idxs.push(i);
            }
        });
        Self::counts_from_indices(idxs)
    }

    /// Transform an already-tokenized document (the replay half of
    /// [`CountVectorizer::fit_transform`]).
    fn vectorize_tokens<'a>(&self, toks: impl Iterator<Item = &'a str>) -> SparseVec {
        let mut idxs: Vec<u32> = Vec::new();
        for t in toks {
            if let Some(&i) = self.vocab.get(t) {
                idxs.push(i);
            }
        }
        Self::counts_from_indices(idxs)
    }

    /// Turn a bag of feature indices into a sorted count vector: sorting
    /// the bare `u32`s is the only ordering work, and the run-length pass
    /// feeds [`SparseVec::from_sorted_counts`] directly.
    fn counts_from_indices(mut idxs: Vec<u32>) -> SparseVec {
        idxs.sort_unstable();
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(idxs.len());
        for i in idxs {
            match entries.last_mut() {
                Some((li, c)) if *li == i => *c += 1.0,
                _ => entries.push((i, 1.0)),
            }
        }
        SparseVec::from_sorted_counts(entries)
    }

    /// The pre-optimization transform (owned token `Vec<String>`, per-token
    /// `String` lookup, pair sort via [`SparseVec::from_pairs`]), retained
    /// as the differential oracle and benchmark "before" arm.
    #[cfg(any(test, feature = "dense-ref"))]
    pub fn transform_naive(&self, doc: &str) -> SparseVec {
        let pairs: Vec<(u32, f32)> = crate::tokenize::tokenize(doc)
            .into_iter()
            .filter_map(|t| self.vocab.get(&t).map(|&i| (i, 1.0)))
            .collect();
        SparseVec::from_pairs(pairs)
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Index of a token, if in the vocabulary.
    pub fn index_of(&self, token: &str) -> Option<u32> {
        self.vocab.get(token).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sparse_from_pairs_sums_duplicates_and_sorts() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 1.0), (2, 0.0)]);
        let entries: Vec<_> = v.iter().collect();
        assert_eq!(entries, vec![(1, 2.0), (3, 2.0)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn from_sorted_counts_is_from_pairs_on_sorted_input() {
        let a = SparseVec::from_sorted_counts(vec![(1, 2.0), (3, 1.0), (9, 4.0)]);
        let b = SparseVec::from_pairs(vec![(1, 2.0), (3, 1.0), (9, 4.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn dot_product() {
        let v = SparseVec::from_pairs(vec![(0, 2.0), (2, 3.0), (9, 1.0)]);
        let w = vec![1.0, 10.0, 0.5];
        assert!((v.dot(&w) - 3.5).abs() < 1e-6); // index 9 out of range → 0
        assert!((v.dot64(&[1.0f64, 10.0, 0.5]) - 3.5).abs() < 1e-9);
        assert_eq!(v.dot(&[]), 0.0);
    }

    #[test]
    fn norm_and_scale() {
        let mut v = SparseVec::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert!((v.norm() - 5.0).abs() < 1e-6);
        v.scale(2.0);
        assert!((v.norm() - 10.0).abs() < 1e-6);
    }

    fn corpus() -> Vec<&'static str> {
        vec![
            "fast fiber internet service provider network",
            "cloud hosting dedicated server datacenter network",
            "fiber internet provider coverage network",
            "managed hosting server cloud network",
        ]
    }

    #[test]
    fn fit_transform_produces_consistent_vectors() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 1,
            max_df_ratio: 1.0,
        });
        let xs = vz.fit_transform(&docs);
        assert_eq!(xs.len(), 4);
        assert!(vz.vocab_len() >= 8);
        // "network" appears in all docs.
        let net = vz.index_of("network").unwrap();
        for x in &xs {
            assert!(x.iter().any(|(i, _)| i == net));
        }
    }

    #[test]
    fn fit_transform_matches_fit_then_transform() {
        let docs = corpus();
        let mut a = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 1,
            max_df_ratio: 1.0,
        });
        let xs = a.fit_transform(&docs);
        let mut b = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 1,
            max_df_ratio: 1.0,
        });
        b.fit(&docs);
        for (doc, x) in docs.iter().zip(&xs) {
            assert_eq!(*x, b.transform(doc), "{doc}");
        }
    }

    #[test]
    fn transform_matches_naive_reference() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 1,
            max_df_ratio: 1.0,
        });
        vz.fit(&docs);
        for doc in docs
            .iter()
            .chain(["UPPER Case fiber Network!", "novel words only", ""].iter())
        {
            assert_eq!(vz.transform(doc), vz.transform_naive(doc), "{doc}");
        }
    }

    #[test]
    fn min_df_filters_rare_tokens() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 2,
            max_df_ratio: 1.0,
        });
        vz.fit(&docs);
        assert!(vz.index_of("coverage").is_none(), "df=1 token kept");
        assert!(vz.index_of("fiber").is_some());
    }

    #[test]
    fn max_df_filters_ubiquitous_tokens() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 1,
            max_df_ratio: 0.8,
        });
        vz.fit(&docs);
        assert!(vz.index_of("network").is_none(), "df=100% token kept");
    }

    #[test]
    fn max_features_caps_vocabulary() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 3,
            min_df: 1,
            max_df_ratio: 1.0,
        });
        vz.fit(&docs);
        assert_eq!(vz.vocab_len(), 3);
    }

    #[test]
    fn repeated_tokens_count_collection_frequency_once_per_occurrence() {
        // "fiber fiber fiber" in one doc: coll = 3, df = 1.
        let docs = vec!["fiber fiber fiber", "fiber cable"];
        let mut vz = CountVectorizer::new(VectorizerConfig {
            max_features: 100,
            min_df: 2,
            max_df_ratio: 1.0,
        });
        vz.fit(&docs);
        assert!(vz.index_of("fiber").is_some());
        assert!(vz.index_of("cable").is_none(), "df=1 token kept");
        let x = vz.transform("fiber fiber");
        assert_eq!(x.iter().next().map(|(_, c)| c), Some(2.0));
    }

    #[test]
    fn unknown_tokens_ignored_on_transform() {
        let docs = corpus();
        let mut vz = CountVectorizer::new(VectorizerConfig::default());
        vz.fit(&docs);
        let x = vz.transform("completely novel wording here");
        assert!(x.is_empty());
    }

    #[test]
    fn fitting_is_deterministic() {
        let docs = corpus();
        let mut a = CountVectorizer::new(VectorizerConfig::default());
        let mut b = CountVectorizer::new(VectorizerConfig::default());
        a.fit(&docs);
        b.fit(&docs);
        for t in ["fiber", "hosting", "network", "internet"] {
            assert_eq!(a.index_of(t), b.index_of(t));
        }
    }

    proptest! {
        #[test]
        fn from_pairs_entries_sorted_unique(pairs in proptest::collection::vec((0u32..50, -3.0f32..3.0), 0..60)) {
            let v = SparseVec::from_pairs(pairs);
            let e: Vec<_> = v.iter().collect();
            for w in e.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            for (_, val) in e {
                prop_assert!(val != 0.0);
            }
        }

        /// The zero-copy transform agrees with the naive reference on
        /// arbitrary text against a fixed vocabulary.
        #[test]
        fn transform_matches_naive_proptest(doc in ".{0,200}") {
            let docs = corpus();
            let mut vz = CountVectorizer::new(VectorizerConfig {
                max_features: 100,
                min_df: 1,
                max_df_ratio: 1.0,
            });
            vz.fit(&docs);
            prop_assert_eq!(vz.transform(&doc), vz.transform_naive(&doc));
        }

        /// dot via partition matches a filtered fold for any dense length.
        #[test]
        fn dot_partition_matches_filter(
            pairs in proptest::collection::vec((0u32..40, -2.0f32..2.0), 0..30),
            dense in proptest::collection::vec(-2.0f32..2.0, 0..32),
        ) {
            let v = SparseVec::from_pairs(pairs);
            let expect: f32 = v
                .iter()
                .filter(|(i, _)| (*i as usize) < dense.len())
                .map(|(i, x)| dense[i as usize] * x)
                .sum();
            prop_assert!((v.dot(&dense) - expect).abs() <= 1e-5);
        }
    }
}
