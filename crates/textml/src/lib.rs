//! # asdb-textml
//!
//! A from-scratch text-classification stack implementing the paper's ML
//! pipeline (Figure 3):
//!
//! > "our pipeline converts the text into a vector of word counts, and uses
//! > a TF IDF (Term Frequency Inverse Document Frequency) transformer to
//! > convert the text into features by computing the relative importance of
//! > each word found in the text. The features are then used as inputs into
//! > two Stochastic Gradient Descent classifiers — often used in text
//! > classification due to their scalability."
//!
//! Components:
//!
//! * [`tokenize`]: lower-casing word tokenizer with an English stopword
//!   list,
//! * [`vectorize`]: vocabulary building and sparse count vectors,
//! * [`tfidf`]: smoothed IDF weighting with L2 normalization
//!   (scikit-learn-compatible formulas, since the original pipeline is
//!   scikit-learn),
//! * [`sgd`]: binary linear classifiers trained by stochastic gradient
//!   descent (log-loss or hinge, L2 regularization, optional averaging),
//!   plus a seeded bagging [`sgd::SgdEnsemble`],
//! * [`metrics`]: accuracy, precision/recall/F1, confusion matrices, and
//!   rank-based ROC AUC,
//! * [`pipeline`]: the end-to-end text → verdict classifier used by ASdb's
//!   ISP and hosting detectors.
//!
//! Everything is implemented directly over `Vec`/sparse pairs — no external
//! ML or linear-algebra dependencies ("thin NLP/ML ecosystem" is exactly
//! the gap this crate fills).
//!
//! The training/inference hot path is O(nnz): the SGD trainer uses lazy
//! weight scaling with lazily-materialized iterate averaging (see
//! [`sgd`]'s module docs for the math), tokenization is zero-copy
//! ([`tokenize::tokens`] / [`tokenize::for_each_token`]), and the
//! ensemble fits its members on parallel threads. The pre-optimization
//! implementations are retained behind the `dense-ref` feature (and in
//! tests) as differential oracles and benchmark baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cv;
pub mod metrics;
pub mod pipeline;
pub mod sgd;
pub mod tfidf;
pub mod tokenize;
pub mod vectorize;

pub use cv::{cross_validate, CvResult};
pub use metrics::{BinaryConfusion, Metrics};
pub use pipeline::TextPipeline;
pub use sgd::{Loss, SgdClassifier, SgdEnsemble};
pub use tfidf::TfidfTransformer;
pub use tokenize::{for_each_token, tokens};
pub use vectorize::{CountVectorizer, SparseVec};
