//! Word tokenization and stopword filtering.

/// English stopwords filtered before vectorization. A compact list tuned
/// for the web-page text the scraper produces; matching scikit-learn's
/// default of *not* stemming.
pub static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "below", "between", "both", "but", "by", "can",
    "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "just", "me", "more", "most", "my", "no", "nor",
    "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "ours", "out", "over",
    "own", "same", "she", "should", "so", "some", "such", "than", "that", "the", "their", "theirs",
    "them", "then", "there", "these", "they", "this", "those", "through", "to", "too", "under",
    "until", "up", "very", "was", "we", "were", "what", "when", "where", "which", "while", "who",
    "whom", "why", "will", "with", "you", "your", "yours",
];

/// Whether a token is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

/// Tokenize text into lower-cased alphanumeric words of length ≥ 2,
/// dropping stopwords and pure numbers. This mirrors scikit-learn's
/// `CountVectorizer` default token pattern (`\w\w+`) plus stopword removal.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.len() < 2 {
            continue;
        }
        let tok = raw.to_lowercase();
        if tok.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        if is_stopword(&tok) {
            continue;
        }
        out.push(tok);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stopwords_are_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("We provide the BEST fiber internet!"),
            vec!["provide", "best", "fiber", "internet"]
        );
    }

    #[test]
    fn numbers_and_short_tokens_dropped() {
        assert_eq!(tokenize("24 7 support at x"), vec!["support"]);
        assert_eq!(tokenize("ipv6 24x7"), vec!["ipv6", "24x7"]);
    }

    #[test]
    fn unicode_safe() {
        let toks = tokenize("Schnelles Internet für Zuhause");
        assert!(toks.contains(&"schnelles".to_owned()));
        assert!(toks.contains(&"für".to_owned()));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t\n ").is_empty());
    }

    proptest! {
        #[test]
        fn never_panics_and_tokens_are_clean(s in ".{0,400}") {
            for t in tokenize(&s) {
                prop_assert!(t.len() >= 2);
                prop_assert!(!is_stopword(&t));
                prop_assert_eq!(t.clone(), t.to_lowercase());
            }
        }
    }
}
