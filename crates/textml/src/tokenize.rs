//! Word tokenization and stopword filtering.
//!
//! Two zero-copy entry points back the hot paths:
//!
//! * [`tokens`] — an iterator of [`Cow<str>`] slices. Tokens that are
//!   already lower-case ASCII (the overwhelmingly common case for the
//!   web-page text the scraper produces) are borrowed straight from the
//!   input; only tokens that actually need case-folding allocate.
//! * [`for_each_token`] — internal iteration with a caller-provided
//!   reusable lowercase buffer, so a tight loop (vocabulary fitting,
//!   count vectorization) performs **no** per-token allocation at all.
//!
//! The legacy [`tokenize`] (`Vec<String>`) remains as a thin wrapper.

use std::borrow::Cow;

/// English stopwords filtered before vectorization. A compact list tuned
/// for the web-page text the scraper produces; matching scikit-learn's
/// default of *not* stemming.
pub static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "below", "between", "both", "but", "by", "can",
    "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "just", "me", "more", "most", "my", "no", "nor",
    "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "ours", "out", "over",
    "own", "same", "she", "should", "so", "some", "such", "than", "that", "the", "their", "theirs",
    "them", "then", "there", "these", "they", "this", "those", "through", "to", "too", "under",
    "until", "up", "very", "was", "we", "were", "what", "when", "where", "which", "while", "who",
    "whom", "why", "will", "with", "you", "your", "yours",
];

/// Whether a token is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

/// Whether a raw word can be passed through without case-folding: pure
/// ASCII with no upper-case letters lowercases to itself. (Non-ASCII text
/// takes the allocating path so locale rules like Σ → ς stay exact.)
#[inline]
fn is_lowercase_ascii(raw: &str) -> bool {
    raw.bytes().all(|b| b.is_ascii() && !b.is_ascii_uppercase())
}

/// Post-casefold filters shared by every entry point: drop pure numbers
/// and stopwords.
#[inline]
fn keep_token(tok: &str) -> bool {
    !tok.bytes().all(|b| b.is_ascii_digit()) && !is_stopword(tok)
}

/// Iterate tokens as borrowed slices where possible. Yields lower-cased
/// alphanumeric words of length ≥ 2, dropping stopwords and pure numbers —
/// scikit-learn's `CountVectorizer` default token pattern (`\w\w+`) plus
/// stopword removal. Already-lowercase ASCII words are `Cow::Borrowed`.
pub fn tokens(text: &str) -> impl Iterator<Item = Cow<'_, str>> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter_map(|raw| {
            if raw.len() < 2 {
                return None;
            }
            let tok: Cow<str> = if is_lowercase_ascii(raw) {
                Cow::Borrowed(raw)
            } else {
                Cow::Owned(raw.to_lowercase())
            };
            keep_token(&tok).then_some(tok)
        })
}

/// Internal-iteration tokenizer with a reusable lowercase scratch buffer:
/// calls `f` once per surviving token with a `&str` that is either a slice
/// of `text` or the contents of `buf`. Performs zero allocations once
/// `buf` has grown to the longest cased token.
pub fn for_each_token(text: &str, buf: &mut String, mut f: impl FnMut(&str)) {
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.len() < 2 {
            continue;
        }
        let tok: &str = if is_lowercase_ascii(raw) {
            raw
        } else {
            buf.clear();
            // `str::to_lowercase` (not per-char folding) so multi-char and
            // context-sensitive lowercasings match the legacy tokenizer
            // exactly; the allocation it makes is the rare cased path.
            buf.push_str(&raw.to_lowercase());
            buf
        };
        if keep_token(tok) {
            f(tok);
        }
    }
}

/// Tokenize text into owned lower-cased words (legacy convenience wrapper
/// around [`tokens`]).
pub fn tokenize(text: &str) -> Vec<String> {
    tokens(text).map(Cow::into_owned).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stopwords_are_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("We provide the BEST fiber internet!"),
            vec!["provide", "best", "fiber", "internet"]
        );
    }

    #[test]
    fn numbers_and_short_tokens_dropped() {
        assert_eq!(tokenize("24 7 support at x"), vec!["support"]);
        assert_eq!(tokenize("ipv6 24x7"), vec!["ipv6", "24x7"]);
    }

    #[test]
    fn unicode_safe() {
        let toks = tokenize("Schnelles Internet für Zuhause");
        assert!(toks.contains(&"schnelles".to_owned()));
        assert!(toks.contains(&"für".to_owned()));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t\n ").is_empty());
    }

    #[test]
    fn lowercase_ascii_tokens_are_borrowed() {
        let text = "fiber Internet provider";
        let kinds: Vec<bool> = tokens(text)
            .map(|t| matches!(t, Cow::Borrowed(_)))
            .collect();
        // "fiber" and "provider" borrow; "Internet" needs folding.
        assert_eq!(kinds, vec![true, false, true]);
    }

    #[test]
    fn for_each_token_matches_tokenize() {
        let samples = [
            "We provide the BEST fiber internet!",
            "Schnelles Internet für Zuhause",
            "24 7 support at x ipv6 24x7",
            "ΣΊΣΥΦΟΣ carries the stone", // final-sigma casefold
            "",
        ];
        let mut buf = String::new();
        for text in samples {
            let mut via_callback = Vec::new();
            for_each_token(text, &mut buf, |t| via_callback.push(t.to_owned()));
            assert_eq!(via_callback, tokenize(text), "{text:?}");
        }
    }

    proptest! {
        #[test]
        fn never_panics_and_tokens_are_clean(s in ".{0,400}") {
            for t in tokenize(&s) {
                prop_assert!(t.len() >= 2);
                prop_assert!(!is_stopword(&t));
                prop_assert_eq!(t.clone(), t.to_lowercase());
            }
        }

        /// All three entry points agree on arbitrary input.
        #[test]
        fn entry_points_agree(s in ".{0,400}") {
            let owned = tokenize(&s);
            let via_iter: Vec<String> = tokens(&s).map(|c| c.into_owned()).collect();
            let mut buf = String::new();
            let mut via_cb = Vec::new();
            for_each_token(&s, &mut buf, |t| via_cb.push(t.to_owned()));
            prop_assert_eq!(&owned, &via_iter);
            prop_assert_eq!(&owned, &via_cb);
        }
    }
}
