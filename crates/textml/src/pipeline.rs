//! The end-to-end text classifier: CountVectorizer → TF-IDF → SGD ensemble
//! (the right half of Figure 3, after scraping and translation).

use crate::sgd::{SgdConfig, SgdEnsemble};
use crate::tfidf::TfidfTransformer;
use crate::vectorize::{CountVectorizer, SparseVec, VectorizerConfig};
use asdb_model::WorldSeed;
use serde::{Deserialize, Serialize};

/// Configuration for [`TextPipeline`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Vectorizer settings.
    pub vectorizer: VectorizerConfig,
    /// SGD settings.
    pub sgd: SgdConfig,
    /// Ensemble size.
    pub n_members: usize,
}

impl PipelineConfig {
    /// The configuration used for ASdb's ISP/hosting detectors: a small
    /// ensemble of averaged logistic SGD models, mirroring the paper's
    /// "model uses 6 CPU cores and 5 seconds to train" scale.
    pub fn asdb_default() -> PipelineConfig {
        PipelineConfig {
            vectorizer: VectorizerConfig {
                max_features: 20_000,
                min_df: 2,
                max_df_ratio: 0.95,
            },
            sgd: SgdConfig::default(),
            n_members: 3,
        }
    }
}

/// A fitted raw-text → binary-verdict classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextPipeline {
    vectorizer: CountVectorizer,
    tfidf: TfidfTransformer,
    ensemble: SgdEnsemble,
}

impl TextPipeline {
    /// Fit the full pipeline on labeled documents.
    ///
    /// The hot path is allocation- and compute-lean end to end: the
    /// vectorizer tokenizes each document once (borrowed tokens) and
    /// replays the stream for the transform pass, and the ensemble trains
    /// its members on parallel threads with the O(nnz) lazy-scaled SGD.
    ///
    /// Panics if `docs` and `labels` have different lengths.
    pub fn fit(
        docs: &[&str],
        labels: &[bool],
        config: PipelineConfig,
        seed: WorldSeed,
    ) -> TextPipeline {
        assert_eq!(docs.len(), labels.len(), "docs and labels must be parallel");
        let mut vectorizer = CountVectorizer::new(config.vectorizer);
        let counts = vectorizer.fit_transform(docs);
        let (tfidf, features) = TfidfTransformer::fit_transform(&counts);
        let n_features = vectorizer.vocab_len();
        let ensemble = SgdEnsemble::fit(
            &features,
            labels,
            n_features,
            config.sgd,
            seed,
            config.n_members.max(1),
        );
        TextPipeline {
            vectorizer,
            tfidf,
            ensemble,
        }
    }

    /// Transform a raw document into the pipeline's feature space.
    pub fn featurize(&self, doc: &str) -> SparseVec {
        self.tfidf.transform(&self.vectorizer.transform(doc))
    }

    /// Featurize through the retained pre-optimization vectorizer and
    /// TF-IDF paths (differential oracle / benchmark "before" arm).
    #[cfg(any(test, feature = "dense-ref"))]
    pub fn featurize_naive(&self, doc: &str) -> SparseVec {
        self.tfidf
            .transform_naive(&self.vectorizer.transform_naive(doc))
    }

    /// The trained ensemble (exposed so benches can time inference on
    /// pre-built feature vectors).
    pub fn ensemble(&self) -> &SgdEnsemble {
        &self.ensemble
    }

    /// Probability that the document belongs to the positive class.
    pub fn predict_proba(&self, doc: &str) -> f32 {
        self.ensemble.predict_proba(&self.featurize(doc))
    }

    /// Hard verdict at the 0.5 threshold.
    pub fn predict(&self, doc: &str) -> bool {
        self.predict_proba(doc) > 0.5
    }

    /// Probabilities for a batch of documents.
    pub fn predict_proba_batch(&self, docs: &[&str]) -> Vec<f32> {
        docs.iter().map(|d| self.predict_proba(d)).collect()
    }

    /// Vocabulary size after fitting.
    pub fn vocab_len(&self) -> usize {
        self.vectorizer.vocab_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn isp_docs() -> Vec<&'static str> {
        vec![
            "fast fiber internet for your home broadband coverage unlimited data plans",
            "regional internet service provider broadband dsl coverage network plans",
            "wireless internet provider rural broadband coverage speeds",
            "broadband internet plans fiber coverage provider residential",
            "internet provider broadband fiber dsl plans coverage network",
            "gigabit fiber broadband plans for residential internet coverage",
        ]
    }

    fn other_docs() -> Vec<&'static str> {
        vec![
            "commercial banking accounts loans mortgages branches financial",
            "university campus students faculty research degrees admissions",
            "hospital patient care clinic medical doctors emergency services",
            "farm fresh produce organic agriculture harvest crops seasonal",
            "law firm attorneys litigation corporate counsel legal services",
            "museum exhibits collections tours art history tickets visit",
        ]
    }

    fn fit_toy(seed: u64) -> TextPipeline {
        let mut docs = isp_docs();
        docs.extend(other_docs());
        let labels: Vec<bool> = (0..docs.len()).map(|i| i < isp_docs().len()).collect();
        let mut cfg = PipelineConfig::asdb_default();
        cfg.vectorizer.min_df = 1;
        cfg.sgd.epochs = 40;
        TextPipeline::fit(&docs, &labels, cfg, WorldSeed::new(seed))
    }

    #[test]
    fn separates_isp_text_from_other_text() {
        let p = fit_toy(11);
        assert!(p.predict("broadband fiber internet provider coverage plans"));
        assert!(!p.predict("hospital medical patient clinic doctors"));
    }

    #[test]
    fn probabilities_rank_correctly() {
        let p = fit_toy(12);
        let docs = [
            "fiber broadband internet provider",
            "banking loans financial branches",
        ];
        let probs = p.predict_proba_batch(&docs);
        assert!(probs[0] > probs[1]);
        let labels = [true, false];
        assert!(Metrics::roc_auc(&probs, &labels) > 0.99);
    }

    #[test]
    fn unknown_text_is_near_prior() {
        let p = fit_toy(13);
        // A document with no vocabulary overlap has an empty feature vector;
        // the decision is then the bias alone.
        let prob = p.predict_proba("zzz qqq xxx www");
        assert!((0.0..=1.0).contains(&prob));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fit_toy(9);
        let b = fit_toy(9);
        assert_eq!(
            a.predict_proba("fiber internet provider"),
            b.predict_proba("fiber internet provider"),
        );
    }

    #[test]
    fn featurize_is_normalized() {
        let p = fit_toy(10);
        let x = p.featurize("fiber broadband internet coverage");
        assert!(x.nnz() > 0);
        assert!((x.norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn featurize_matches_naive_reference() {
        let p = fit_toy(14);
        for doc in [
            "fiber broadband internet coverage",
            "Hospital MEDICAL patient clinic",
            "zzz qqq unknown words",
            "",
        ] {
            assert_eq!(p.featurize(doc), p.featurize_naive(doc), "{doc:?}");
        }
    }
}
