//! K-fold cross-validation for text pipelines.
//!
//! The paper reports single-split test numbers (Table 6); cross-validation
//! quantifies the variance behind them and drives the ensemble-size
//! ablation. Folds are assigned deterministically by a seeded shuffle so CV
//! results are reproducible.

use crate::metrics::Metrics;
use crate::pipeline::{PipelineConfig, TextPipeline};
use asdb_model::WorldSeed;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One fold's held-out metrics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FoldResult {
    /// Fold index.
    pub fold: usize,
    /// Held-out accuracy at the 0.5 threshold.
    pub accuracy: f64,
    /// Held-out ROC AUC.
    pub auc: f64,
}

/// Aggregated cross-validation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvResult {
    /// Per-fold results.
    pub folds: Vec<FoldResult>,
}

impl CvResult {
    /// Mean held-out accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.accuracy))
    }

    /// Mean held-out AUC.
    pub fn mean_auc(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.auc))
    }

    /// Sample standard deviation of fold accuracies.
    pub fn accuracy_std(&self) -> f64 {
        std_dev(self.folds.iter().map(|f| f.accuracy))
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn std_dev(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.len() < 2 {
        return 0.0;
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
}

/// Run k-fold cross-validation of a [`TextPipeline`] over labeled docs.
///
/// Panics if `docs` and `labels` lengths differ or `k < 2`.
pub fn cross_validate(
    docs: &[&str],
    labels: &[bool],
    k: usize,
    config: PipelineConfig,
    seed: WorldSeed,
) -> CvResult {
    assert_eq!(docs.len(), labels.len(), "docs and labels must be parallel");
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut order: Vec<usize> = (0..docs.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed.derive("cv-shuffle").value());
    order.shuffle(&mut rng);

    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let test_idx: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k == fold)
            .map(|(_, &x)| x)
            .collect();
        let train_idx: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != fold)
            .map(|(_, &x)| x)
            .collect();
        if test_idx.is_empty() || train_idx.is_empty() {
            continue;
        }
        let train_docs: Vec<&str> = train_idx.iter().map(|&i| docs[i]).collect();
        let train_labels: Vec<bool> = train_idx.iter().map(|&i| labels[i]).collect();
        let model = TextPipeline::fit(
            &train_docs,
            &train_labels,
            config.clone(),
            seed.derive_index("cv-fold", fold as u64),
        );
        let mut scores = Vec::with_capacity(test_idx.len());
        let mut truth = Vec::with_capacity(test_idx.len());
        let mut pred = Vec::with_capacity(test_idx.len());
        for &i in &test_idx {
            let p = model.predict_proba(docs[i]);
            scores.push(p);
            truth.push(labels[i]);
            pred.push(p > 0.5);
        }
        folds.push(FoldResult {
            fold,
            accuracy: Metrics::accuracy(&truth, &pred),
            auc: Metrics::roc_auc(&scores, &truth),
        });
    }
    CvResult { folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;

    fn corpus() -> (Vec<&'static str>, Vec<bool>) {
        let pos = [
            "fiber broadband internet provider coverage plans residential",
            "internet service provider broadband dsl network plans",
            "wireless broadband rural internet coverage provider",
            "gigabit fiber plans broadband internet residential coverage",
            "broadband provider fiber internet plans dsl coverage",
            "regional internet provider fiber coverage broadband plans",
            "internet provider broadband unlimited plans fiber network",
            "fiber internet coverage plans broadband provider network",
        ];
        let neg = [
            "commercial banking accounts loans mortgages branches",
            "university campus students faculty research degrees",
            "hospital patient care clinic medical doctors emergency",
            "farm fresh produce organic agriculture harvest crops",
            "law firm attorneys litigation corporate counsel legal",
            "museum exhibits collections tours art history tickets",
            "hotel rooms reservations guests suites amenities stay",
            "grocery supermarket fresh food beverages produce aisles",
        ];
        let docs: Vec<&str> = pos.iter().chain(neg.iter()).copied().collect();
        let labels: Vec<bool> = (0..docs.len()).map(|i| i < pos.len()).collect();
        (docs, labels)
    }

    fn cfg() -> PipelineConfig {
        let mut cfg = PipelineConfig::asdb_default();
        cfg.vectorizer.min_df = 1;
        cfg.sgd.epochs = 40;
        cfg.n_members = 1;
        cfg
    }

    #[test]
    fn four_fold_cv_on_separable_data() {
        let (docs, labels) = corpus();
        let cv = cross_validate(&docs, &labels, 4, cfg(), WorldSeed::new(1));
        assert_eq!(cv.folds.len(), 4);
        assert!(
            cv.mean_accuracy() > 0.8,
            "mean acc = {}",
            cv.mean_accuracy()
        );
        assert!(cv.mean_auc() > 0.85, "mean auc = {}", cv.mean_auc());
        assert!(cv.accuracy_std() < 0.35);
    }

    #[test]
    fn cv_is_deterministic() {
        let (docs, labels) = corpus();
        let a = cross_validate(&docs, &labels, 4, cfg(), WorldSeed::new(2));
        let b = cross_validate(&docs, &labels, 4, cfg(), WorldSeed::new(2));
        for (x, y) in a.folds.iter().zip(&b.folds) {
            assert_eq!(x.accuracy, y.accuracy);
            assert_eq!(x.auc, y.auc);
        }
    }

    #[test]
    #[should_panic(expected = "k-fold needs k >= 2")]
    fn rejects_k1() {
        let (docs, labels) = corpus();
        let _ = cross_validate(&docs, &labels, 1, cfg(), WorldSeed::new(3));
    }

    #[test]
    fn empty_stats_are_zero() {
        let cv = CvResult { folds: vec![] };
        assert_eq!(cv.mean_accuracy(), 0.0);
        assert_eq!(cv.accuracy_std(), 0.0);
    }
}
