//! Classification metrics: confusion matrices, accuracy, precision/recall/
//! F1, and rank-based ROC AUC — everything Tables 6 and 7 report.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix (Table 6's layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: usize,
    /// False negatives (positive truth, negative prediction).
    pub fn_: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
}

impl BinaryConfusion {
    /// Tally predictions against truth.
    pub fn from_pairs<I: IntoIterator<Item = (bool, bool)>>(truth_pred: I) -> BinaryConfusion {
        let mut c = BinaryConfusion::default();
        for (t, p) in truth_pred {
            match (t, p) {
                (true, true) => c.tp += 1,
                (true, false) => c.fn_ += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fn_ + self.fp + self.tn
    }

    /// Fraction correct.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False positives as a fraction of all samples — the paper quotes FP
    /// rates this way ("a 1% false positive rate" out of the 123-sample
    /// test set in Table 6).
    pub fn fp_fraction(&self) -> f64 {
        ratio(self.fp, self.total())
    }

    /// False negatives as a fraction of all samples.
    pub fn fn_fraction(&self) -> f64 {
        ratio(self.fn_, self.total())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Free-standing metric helpers over score/label slices.
pub struct Metrics;

impl Metrics {
    /// ROC AUC by the rank statistic (equivalent to the Mann–Whitney U),
    /// with tie handling via midranks. Returns 0.5 when either class is
    /// absent.
    pub fn roc_auc(scores: &[f32], labels: &[bool]) -> f64 {
        assert_eq!(
            scores.len(),
            labels.len(),
            "scores and labels must be parallel"
        );
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return 0.5;
        }
        // Rank scores ascending, midrank for ties.
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut ranks = vec![0.0f64; scores.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
                j += 1;
            }
            let midrank = (i + j) as f64 / 2.0 + 1.0;
            for k in i..=j {
                ranks[idx[k]] = midrank;
            }
            i = j + 1;
        }
        let rank_sum_pos: f64 = labels
            .iter()
            .zip(&ranks)
            .filter(|(l, _)| **l)
            .map(|(_, r)| r)
            .sum();
        let u = rank_sum_pos - (n_pos as f64) * (n_pos as f64 + 1.0) / 2.0;
        u / (n_pos as f64 * n_neg as f64)
    }

    /// Accuracy of hard predictions.
    pub fn accuracy(truth: &[bool], pred: &[bool]) -> f64 {
        assert_eq!(truth.len(), pred.len());
        if truth.is_empty() {
            return 0.0;
        }
        let c = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
        c as f64 / truth.len() as f64
    }

    /// Deterministic stratified train/test split: returns (train, test)
    /// index sets with `test_ratio` of each class in the test set. The
    /// split is a simple modular stride so it is stable across runs.
    pub fn stratified_split(labels: &[bool], test_ratio: f64) -> (Vec<usize>, Vec<usize>) {
        assert!((0.0..=1.0).contains(&test_ratio), "ratio must be in [0,1]");
        let period = if test_ratio <= 0.0 {
            usize::MAX
        } else {
            (1.0 / test_ratio).round().max(1.0) as usize
        };
        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut count = [0usize; 2];
        for (i, &l) in labels.iter().enumerate() {
            let c = usize::from(l);
            count[c] += 1;
            if period != usize::MAX && count[c] % period == 0 {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn confusion_tallies() {
        let c = BinaryConfusion::from_pairs([
            (true, true),
            (true, true),
            (true, false),
            (false, true),
            (false, false),
        ]);
        assert_eq!((c.tp, c.fn_, c.fp, c.tn), (2, 1, 1, 1));
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.fp_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_is_zero() {
        let c = BinaryConfusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((Metrics::roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inverted = [false, false, true, true];
        assert!((Metrics::roc_auc(&scores, &inverted) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn auc_with_ties_is_half() {
        let scores = [0.5f32, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((Metrics::roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(Metrics::roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(Metrics::roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn stratified_split_respects_ratio() {
        let labels: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect(); // 25 pos
        let (train, test) = Metrics::stratified_split(&labels, 0.2);
        assert_eq!(train.len() + test.len(), 100);
        let test_pos = test.iter().filter(|&&i| labels[i]).count();
        // ~20% of 25 positives.
        assert!((4..=6).contains(&test_pos), "test_pos = {test_pos}");
        let (_, empty_test) = Metrics::stratified_split(&labels, 0.0);
        assert!(empty_test.is_empty());
    }

    proptest! {
        #[test]
        fn auc_is_bounded(
            scores in proptest::collection::vec(0.0f32..1.0, 2..50),
            flip in proptest::collection::vec(any::<bool>(), 2..50),
        ) {
            let n = scores.len().min(flip.len());
            let auc = Metrics::roc_auc(&scores[..n], &flip[..n]);
            prop_assert!((0.0..=1.0).contains(&auc));
        }

        #[test]
        fn split_partitions_indices(labels in proptest::collection::vec(any::<bool>(), 0..80)) {
            let (train, test) = Metrics::stratified_split(&labels, 0.25);
            let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
            all.sort_unstable();
            let expect: Vec<usize> = (0..labels.len()).collect();
            prop_assert_eq!(all, expect);
        }
    }
}
