//! Binary linear classifiers trained by stochastic gradient descent, and a
//! seeded bagging ensemble — the "SGD Classifier Ensemble" box of Figure 3.
//!
//! Supports the two scikit-learn `SGDClassifier` losses relevant here:
//! logistic loss (gives calibrated probabilities for AUC) and hinge loss
//! (linear SVM). Training uses the `optimal`-style decaying learning rate
//! `eta_t = 1 / (alpha * (t0 + t))` with L2 regularization and optional
//! iterate averaging, and shuffles samples each epoch with a caller-seeded
//! RNG so runs are reproducible.

use crate::vectorize::SparseVec;
use asdb_model::WorldSeed;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Loss function for [`SgdClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Logistic regression loss; `predict_proba` is calibrated.
    Log,
    /// Hinge loss (linear SVM); probabilities are sigmoid-squashed margins.
    Hinge,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Loss function.
    pub loss: Loss,
    /// L2 regularization strength (scikit-learn's `alpha`).
    pub alpha: f32,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Whether to average iterates (ASGD), which stabilizes sparse text
    /// problems.
    pub average: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            loss: Loss::Log,
            alpha: 1e-4,
            epochs: 20,
            average: true,
        }
    }
}

/// A trained binary linear classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdClassifier {
    weights: Vec<f32>,
    bias: f32,
    config: SgdConfig,
}

impl SgdClassifier {
    /// The hyperparameters this classifier was trained with.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Train on `(x, y)` pairs, `y ∈ {false, true}`. `n_features` bounds the
    /// weight vector; features at or beyond it are ignored.
    ///
    /// Panics if `xs` and `ys` have different lengths (programmer error).
    pub fn fit(
        xs: &[SparseVec],
        ys: &[bool],
        n_features: usize,
        config: SgdConfig,
        seed: WorldSeed,
    ) -> SgdClassifier {
        assert_eq!(xs.len(), ys.len(), "xs and ys must be parallel");
        let mut w = vec![0.0f32; n_features];
        let mut b = 0.0f32;
        let mut w_avg = vec![0.0f32; n_features];
        let mut b_avg = 0.0f32;
        let mut n_avg = 0u64;

        let mut rng = StdRng::seed_from_u64(seed.value());
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut t: u64 = 1;
        // "optimal" schedule t0, approximating scikit-learn's heuristic.
        let t0 = 1.0 / (config.alpha.max(1e-8) as f64);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let x = &xs[i];
                let y = if ys[i] { 1.0f32 } else { -1.0 };
                let eta = (1.0 / (config.alpha as f64 * (t0 + t as f64))) as f32;
                let margin = x.dot(&w) + b;
                // L2 shrink (applied multiplicatively, leaving bias alone).
                let shrink = 1.0 - eta * config.alpha;
                if shrink > 0.0 {
                    for wi in &mut w {
                        *wi *= shrink;
                    }
                }
                let dloss = match config.loss {
                    Loss::Log => {
                        // d/dmargin of log(1 + exp(-y*m)) = -y * sigma(-y*m)
                        let z = (-y * margin) as f64;
                        let s = 1.0 / (1.0 + (-z).exp());
                        (-y as f64 * s) as f32
                    }
                    Loss::Hinge => {
                        if y * margin < 1.0 {
                            -y
                        } else {
                            0.0
                        }
                    }
                };
                if dloss != 0.0 {
                    for (j, v) in x.iter() {
                        if (j as usize) < w.len() {
                            w[j as usize] -= eta * dloss * v;
                        }
                    }
                    b -= eta * dloss;
                }
                if config.average {
                    n_avg += 1;
                    let k = 1.0 / n_avg as f32;
                    for (wa, wi) in w_avg.iter_mut().zip(&w) {
                        *wa += k * (*wi - *wa);
                    }
                    b_avg += k * (b - b_avg);
                }
                t += 1;
            }
        }
        let (weights, bias) = if config.average && n_avg > 0 {
            (w_avg, b_avg)
        } else {
            (w, b)
        };
        SgdClassifier {
            weights,
            bias,
            config,
        }
    }

    /// The raw decision margin (distance from the separating hyperplane).
    pub fn decision(&self, x: &SparseVec) -> f32 {
        x.dot(&self.weights) + self.bias
    }

    /// Hard classification.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.decision(x) > 0.0
    }

    /// Probability of the positive class (sigmoid of the margin; calibrated
    /// only for [`Loss::Log`]).
    pub fn predict_proba(&self, x: &SparseVec) -> f32 {
        let m = self.decision(x) as f64;
        (1.0 / (1.0 + (-m).exp())) as f32
    }

    /// Number of features the model was trained with.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }

    /// Largest-magnitude positive-class features, for interpretability.
    pub fn top_features(&self, k: usize) -> Vec<(u32, f32)> {
        let mut idx: Vec<(u32, f32)> = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i as u32, *w))
            .collect();
        idx.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        idx
    }
}

/// A bagging ensemble of [`SgdClassifier`]s trained with different shuffle
/// seeds; prediction averages member probabilities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdEnsemble {
    members: Vec<SgdClassifier>,
}

impl SgdEnsemble {
    /// Train `n_members` classifiers with derived seeds.
    pub fn fit(
        xs: &[SparseVec],
        ys: &[bool],
        n_features: usize,
        config: SgdConfig,
        seed: WorldSeed,
        n_members: usize,
    ) -> SgdEnsemble {
        let members = (0..n_members)
            .map(|i| {
                SgdClassifier::fit(
                    xs,
                    ys,
                    n_features,
                    config.clone(),
                    seed.derive_index("sgd-member", i as u64),
                )
            })
            .collect();
        SgdEnsemble { members }
    }

    /// Mean member probability.
    pub fn predict_proba(&self, x: &SparseVec) -> f32 {
        if self.members.is_empty() {
            return 0.5;
        }
        self.members.iter().map(|m| m.predict_proba(x)).sum::<f32>() / self.members.len() as f32
    }

    /// Hard classification at the 0.5 threshold.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.predict_proba(x) > 0.5
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: positive docs use features {0,1},
    /// negative docs use features {2,3}.
    fn toy() -> (Vec<SparseVec>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let pos = i % 2 == 0;
            let f = if pos {
                [(0u32, 1.0f32), (1, 1.0)]
            } else {
                [(2, 1.0), (3, 1.0)]
            };
            // add slight per-sample variation
            let mut pairs = f.to_vec();
            pairs.push((4 + (i % 3) as u32, 0.5));
            xs.push(SparseVec::from_pairs(pairs));
            ys.push(pos);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data_log() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(1));
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| clf.predict(x) == **y)
            .count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn learns_separable_data_hinge() {
        let (xs, ys) = toy();
        let cfg = SgdConfig {
            loss: Loss::Hinge,
            ..SgdConfig::default()
        };
        let clf = SgdClassifier::fit(&xs, &ys, 8, cfg, WorldSeed::new(2));
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| clf.predict(x) == **y)
            .count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn probabilities_ordered_by_margin() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(3));
        let pos = SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0)]);
        let neg = SparseVec::from_pairs(vec![(2, 1.0), (3, 1.0)]);
        assert!(clf.predict_proba(&pos) > 0.5);
        assert!(clf.predict_proba(&neg) < 0.5);
        assert!(clf.predict_proba(&pos) > clf.predict_proba(&neg));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (xs, ys) = toy();
        let a = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(7));
        let b = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(7));
        let x = SparseVec::from_pairs(vec![(0, 1.0)]);
        assert_eq!(a.decision(&x), b.decision(&x));
    }

    #[test]
    fn top_features_point_positive() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(4));
        let top: Vec<u32> = clf.top_features(2).into_iter().map(|(i, _)| i).collect();
        assert!(top.contains(&0) || top.contains(&1), "top features {top:?}");
    }

    #[test]
    fn ensemble_agrees_with_members_on_easy_data() {
        let (xs, ys) = toy();
        let ens = SgdEnsemble::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(5), 5);
        assert_eq!(ens.len(), 5);
        let pos = SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0)]);
        assert!(ens.predict(&pos));
        let neg = SparseVec::from_pairs(vec![(2, 1.0), (3, 1.0)]);
        assert!(!ens.predict(&neg));
    }

    #[test]
    fn empty_ensemble_is_uninformative() {
        let ens = SgdEnsemble { members: vec![] };
        assert!(ens.is_empty());
        let x = SparseVec::from_pairs(vec![(0, 1.0)]);
        assert_eq!(ens.predict_proba(&x), 0.5);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        let (xs, _) = toy();
        let _ = SgdClassifier::fit(&xs, &[true], 8, SgdConfig::default(), WorldSeed::new(1));
    }

    #[test]
    fn empty_training_set_gives_zero_model() {
        let clf = SgdClassifier::fit(&[], &[], 4, SgdConfig::default(), WorldSeed::new(1));
        let x = SparseVec::from_pairs(vec![(0, 1.0)]);
        assert_eq!(clf.decision(&x), 0.0);
        assert!(!clf.predict(&x));
    }
}
