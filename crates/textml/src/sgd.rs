//! Binary linear classifiers trained by stochastic gradient descent, and a
//! seeded bagging ensemble — the "SGD Classifier Ensemble" box of Figure 3.
//!
//! Supports the two scikit-learn `SGDClassifier` losses relevant here:
//! logistic loss (gives calibrated probabilities for AUC) and hinge loss
//! (linear SVM). Training uses the `optimal`-style decaying learning rate
//! `eta_t = 1 / (alpha * (t0 + t))` with L2 regularization and optional
//! iterate averaging, and shuffles samples each epoch with a caller-seeded
//! RNG so runs are reproducible.
//!
//! # The O(nnz) hot path
//!
//! The training loop is the compute-heavy core of the whole reproduction,
//! so it is written to cost O(nnz(x)) per sample instead of O(n_features):
//!
//! * **Lazy scaling** — the weight vector is represented as `scale · v`.
//!   The multiplicative L2 shrink `w ← (1 − ηα)·w` touches only the
//!   `scale` scalar; gradient updates divide by `scale` so the invariant
//!   `w = scale · v` holds. When `scale` decays below a threshold it is
//!   folded back into `v` (a rare O(n_features) event).
//! * **Lazily-materialized averaging** — ASGD needs the running mean
//!   `ŵ_T = (1/T) Σ_t w_t`. Between two touches of feature `j`, `v[j]`
//!   is constant and `w_t[j] = scale_t · v[j]`, so the partial sum is
//!   `v[j] · (Q_t − Q_τ)` where `Q_t = Σ_{s≤t} scale_s` is a running
//!   scalar. Each feature keeps the `Q` value at its last sync
//!   (a per-feature timestamp); sums are settled only when the feature
//!   is touched and once at the end — scikit-learn's averaged-SGD trick.
//!
//! The pre-optimization dense implementation is retained verbatim in
//! [`dense_ref`] (tests and the `dense-ref` feature) as a differential
//! oracle and as the "before" arm of the `textml` benchmark.

use crate::vectorize::SparseVec;
use asdb_model::WorldSeed;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Loss function for [`SgdClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Logistic regression loss; `predict_proba` is calibrated.
    Log,
    /// Hinge loss (linear SVM); probabilities are sigmoid-squashed margins.
    Hinge,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Loss function.
    pub loss: Loss,
    /// L2 regularization strength (scikit-learn's `alpha`).
    pub alpha: f32,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Whether to average iterates (ASGD), which stabilizes sparse text
    /// problems.
    pub average: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            loss: Loss::Log,
            alpha: 1e-4,
            epochs: 20,
            average: true,
        }
    }
}

/// Derivative of the loss with respect to the margin.
#[inline]
fn dloss(loss: Loss, y: f64, margin: f64) -> f64 {
    match loss {
        Loss::Log => {
            // d/dmargin of log(1 + exp(-y*m)) = -y * sigma(-y*m)
            let z = -y * margin;
            let s = 1.0 / (1.0 + (-z).exp());
            -y * s
        }
        Loss::Hinge => {
            if y * margin < 1.0 {
                -y
            } else {
                0.0
            }
        }
    }
}

/// When `scale` decays below this, fold it back into `v` so neither the
/// scale underflows nor `v` overflows. With the `optimal` schedule the
/// scale only decays polynomially (`t0 / (t0 + T)`), so this is a
/// robustness guard for extreme `alpha`/epoch settings, not a hot branch.
const SCALE_FLOOR: f64 = 1e-30;

/// A trained binary linear classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdClassifier {
    weights: Vec<f32>,
    bias: f32,
    config: SgdConfig,
}

impl SgdClassifier {
    /// The hyperparameters this classifier was trained with.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Train on `(x, y)` pairs, `y ∈ {false, true}`. `n_features` bounds the
    /// weight vector; features at or beyond it are ignored.
    ///
    /// Cost is O(nnz(x)) per sample: the L2 shrink is a scalar multiply on
    /// the lazy scale and the ASGD average is materialized per feature on
    /// touch (see the module docs for the math).
    ///
    /// Panics if `xs` and `ys` have different lengths (programmer error).
    pub fn fit(
        xs: &[SparseVec],
        ys: &[bool],
        n_features: usize,
        config: SgdConfig,
        seed: WorldSeed,
    ) -> SgdClassifier {
        assert_eq!(xs.len(), ys.len(), "xs and ys must be parallel");
        // w = scale * v, in f64 so the lazy algebra does not lose the
        // f32 precision the dense reference delivers.
        let mut v = vec![0.0f64; n_features];
        let mut scale = 1.0f64;
        let mut b = 0.0f64;
        // Averaging state: acc[j] holds Σ_t w_t[j] settled up to the
        // feature's last sync; q_sync[j] is the value of q at that sync;
        // q = Σ_t scale_t over all completed steps.
        let average = config.average;
        let mut acc = vec![0.0f64; if average { n_features } else { 0 }];
        let mut q_sync = vec![0.0f64; if average { n_features } else { 0 }];
        let mut q = 0.0f64;
        let mut b_avg = 0.0f64;
        let mut n_avg = 0u64;

        let mut rng = StdRng::seed_from_u64(seed.value());
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut t: u64 = 1;
        // "optimal" schedule t0, approximating scikit-learn's heuristic.
        let t0 = 1.0 / (config.alpha.max(1e-8) as f64);
        let alpha = config.alpha as f64;

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let x = &xs[i];
                let y = if ys[i] { 1.0f64 } else { -1.0 };
                let eta = 1.0 / (alpha * (t0 + t as f64));
                let margin = scale * x.dot64(&v) + b;
                // L2 shrink (applied multiplicatively, leaving bias alone)
                // is one scalar multiply on the lazy scale.
                let shrink = 1.0 - eta * alpha;
                if shrink > 0.0 {
                    scale *= shrink;
                    if scale < SCALE_FLOOR {
                        fold_scale(&mut v, &mut scale, average, &mut acc, &mut q_sync, q);
                    }
                }
                let g = dloss(config.loss, y, margin);
                if g != 0.0 {
                    let step = eta * g / scale;
                    for (j, xv) in x.iter() {
                        let j = j as usize;
                        if j < n_features {
                            if average {
                                // Settle this feature's averaged sum for the
                                // steps since its last touch, while v[j] was
                                // constant.
                                acc[j] += v[j] * (q - q_sync[j]);
                                q_sync[j] = q;
                            }
                            v[j] -= step * xv as f64;
                        }
                    }
                    b -= eta * g;
                }
                if average {
                    n_avg += 1;
                    q += scale;
                    b_avg += (b - b_avg) / n_avg as f64;
                }
                t += 1;
            }
        }

        let (weights, bias) = if average && n_avg > 0 {
            let inv = 1.0 / n_avg as f64;
            let weights = v
                .iter()
                .zip(acc.iter())
                .zip(q_sync.iter())
                .map(|((vj, aj), qj)| ((aj + vj * (q - qj)) * inv) as f32)
                .collect();
            (weights, b_avg as f32)
        } else {
            (v.iter().map(|vj| (scale * vj) as f32).collect(), b as f32)
        };
        SgdClassifier {
            weights,
            bias,
            config,
        }
    }

    /// The raw decision margin (distance from the separating hyperplane).
    pub fn decision(&self, x: &SparseVec) -> f32 {
        x.dot(&self.weights) + self.bias
    }

    /// Hard classification.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.decision(x) > 0.0
    }

    /// Probability of the positive class (sigmoid of the margin; calibrated
    /// only for [`Loss::Log`]).
    pub fn predict_proba(&self, x: &SparseVec) -> f32 {
        let m = self.decision(x) as f64;
        (1.0 / (1.0 + (-m).exp())) as f32
    }

    /// Number of features the model was trained with.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }

    /// The trained weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The trained intercept.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Largest-magnitude positive-class features, for interpretability.
    pub fn top_features(&self, k: usize) -> Vec<(u32, f32)> {
        let mut idx: Vec<(u32, f32)> = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i as u32, *w))
            .collect();
        idx.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        idx
    }
}

/// Fold the lazy scale back into `v`, keeping the averaging bookkeeping
/// consistent (every feature is synced first so pending sums use the old
/// `v`, then the representation is renormalized to `scale = 1`).
fn fold_scale(
    v: &mut [f64],
    scale: &mut f64,
    average: bool,
    acc: &mut [f64],
    q_sync: &mut [f64],
    q: f64,
) {
    if average {
        for ((aj, qj), vj) in acc.iter_mut().zip(q_sync.iter_mut()).zip(v.iter()) {
            *aj += *vj * (q - *qj);
            *qj = q;
        }
    }
    for vj in v.iter_mut() {
        *vj *= *scale;
    }
    *scale = 1.0;
}

/// A bagging ensemble of [`SgdClassifier`]s trained with different shuffle
/// seeds; prediction averages member probabilities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdEnsemble {
    members: Vec<SgdClassifier>,
}

impl SgdEnsemble {
    /// Train `n_members` classifiers with derived seeds, one std thread per
    /// member. Each member's seed is derived from its index alone, so the
    /// result is bit-identical to [`SgdEnsemble::fit_serial`].
    pub fn fit(
        xs: &[SparseVec],
        ys: &[bool],
        n_features: usize,
        config: SgdConfig,
        seed: WorldSeed,
        n_members: usize,
    ) -> SgdEnsemble {
        if n_members <= 1 {
            return Self::fit_serial(xs, ys, n_features, config, seed, n_members);
        }
        let members = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_members)
                .map(|i| {
                    let config = config.clone();
                    let member_seed = seed.derive_index("sgd-member", i as u64);
                    s.spawn(move || SgdClassifier::fit(xs, ys, n_features, config, member_seed))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sgd member training panicked"))
                .collect()
        });
        SgdEnsemble { members }
    }

    /// Train `n_members` classifiers with derived seeds on the calling
    /// thread (the pre-parallel code path, still used for single members
    /// and as the determinism oracle for [`SgdEnsemble::fit`]).
    pub fn fit_serial(
        xs: &[SparseVec],
        ys: &[bool],
        n_features: usize,
        config: SgdConfig,
        seed: WorldSeed,
        n_members: usize,
    ) -> SgdEnsemble {
        let members = (0..n_members)
            .map(|i| {
                SgdClassifier::fit(
                    xs,
                    ys,
                    n_features,
                    config.clone(),
                    seed.derive_index("sgd-member", i as u64),
                )
            })
            .collect();
        SgdEnsemble { members }
    }

    /// Mean member probability.
    pub fn predict_proba(&self, x: &SparseVec) -> f32 {
        if self.members.is_empty() {
            return 0.5;
        }
        self.members.iter().map(|m| m.predict_proba(x)).sum::<f32>() / self.members.len() as f32
    }

    /// Hard classification at the 0.5 threshold.
    pub fn predict(&self, x: &SparseVec) -> bool {
        self.predict_proba(x) > 0.5
    }

    /// The trained members.
    pub fn members(&self) -> &[SgdClassifier] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The pre-optimization dense SGD trainer, retained verbatim as a
/// differential oracle for the lazy-scaled implementation and as the
/// "before" arm of the `textml` benchmark. Per-sample cost is
/// O(n_features): the L2 shrink and the averaging update both walk the
/// whole weight vector.
#[cfg(any(test, feature = "dense-ref"))]
pub mod dense_ref {
    use super::{Loss, SgdClassifier, SgdConfig};
    use crate::vectorize::SparseVec;
    use asdb_model::WorldSeed;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Train with dense per-sample shrink and averaging (the original
    /// implementation of [`SgdClassifier::fit`]).
    pub fn fit_dense(
        xs: &[SparseVec],
        ys: &[bool],
        n_features: usize,
        config: SgdConfig,
        seed: WorldSeed,
    ) -> SgdClassifier {
        assert_eq!(xs.len(), ys.len(), "xs and ys must be parallel");
        let mut w = vec![0.0f32; n_features];
        let mut b = 0.0f32;
        let mut w_avg = vec![0.0f32; n_features];
        let mut b_avg = 0.0f32;
        let mut n_avg = 0u64;

        let mut rng = StdRng::seed_from_u64(seed.value());
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut t: u64 = 1;
        let t0 = 1.0 / (config.alpha.max(1e-8) as f64);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let x = &xs[i];
                let y = if ys[i] { 1.0f32 } else { -1.0 };
                let eta = (1.0 / (config.alpha as f64 * (t0 + t as f64))) as f32;
                let margin = x.dot(&w) + b;
                let shrink = 1.0 - eta * config.alpha;
                if shrink > 0.0 {
                    for wi in &mut w {
                        *wi *= shrink;
                    }
                }
                let dloss = match config.loss {
                    Loss::Log => {
                        let z = (-y * margin) as f64;
                        let s = 1.0 / (1.0 + (-z).exp());
                        (-y as f64 * s) as f32
                    }
                    Loss::Hinge => {
                        if y * margin < 1.0 {
                            -y
                        } else {
                            0.0
                        }
                    }
                };
                if dloss != 0.0 {
                    for (j, v) in x.iter() {
                        if (j as usize) < w.len() {
                            w[j as usize] -= eta * dloss * v;
                        }
                    }
                    b -= eta * dloss;
                }
                if config.average {
                    n_avg += 1;
                    let k = 1.0 / n_avg as f32;
                    for (wa, wi) in w_avg.iter_mut().zip(&w) {
                        *wa += k * (*wi - *wa);
                    }
                    b_avg += k * (b - b_avg);
                }
                t += 1;
            }
        }
        let (weights, bias) = if config.average && n_avg > 0 {
            (w_avg, b_avg)
        } else {
            (w, b)
        };
        SgdClassifier {
            weights,
            bias,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Linearly separable toy data: positive docs use features {0,1},
    /// negative docs use features {2,3}.
    fn toy() -> (Vec<SparseVec>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let pos = i % 2 == 0;
            let f = if pos {
                [(0u32, 1.0f32), (1, 1.0)]
            } else {
                [(2, 1.0), (3, 1.0)]
            };
            // add slight per-sample variation
            let mut pairs = f.to_vec();
            pairs.push((4 + (i % 3) as u32, 0.5));
            xs.push(SparseVec::from_pairs(pairs));
            ys.push(pos);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data_log() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(1));
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| clf.predict(x) == **y)
            .count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn learns_separable_data_hinge() {
        let (xs, ys) = toy();
        let cfg = SgdConfig {
            loss: Loss::Hinge,
            ..SgdConfig::default()
        };
        let clf = SgdClassifier::fit(&xs, &ys, 8, cfg, WorldSeed::new(2));
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| clf.predict(x) == **y)
            .count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn probabilities_ordered_by_margin() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(3));
        let pos = SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0)]);
        let neg = SparseVec::from_pairs(vec![(2, 1.0), (3, 1.0)]);
        assert!(clf.predict_proba(&pos) > 0.5);
        assert!(clf.predict_proba(&neg) < 0.5);
        assert!(clf.predict_proba(&pos) > clf.predict_proba(&neg));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (xs, ys) = toy();
        let a = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(7));
        let b = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(7));
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn top_features_point_positive() {
        let (xs, ys) = toy();
        let clf = SgdClassifier::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(4));
        let top: Vec<u32> = clf.top_features(2).into_iter().map(|(i, _)| i).collect();
        assert!(top.contains(&0) || top.contains(&1), "top features {top:?}");
    }

    #[test]
    fn ensemble_agrees_with_members_on_easy_data() {
        let (xs, ys) = toy();
        let ens = SgdEnsemble::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(5), 5);
        assert_eq!(ens.len(), 5);
        let pos = SparseVec::from_pairs(vec![(0, 1.0), (1, 1.0)]);
        assert!(ens.predict(&pos));
        let neg = SparseVec::from_pairs(vec![(2, 1.0), (3, 1.0)]);
        assert!(!ens.predict(&neg));
    }

    #[test]
    fn empty_ensemble_is_uninformative() {
        let ens = SgdEnsemble { members: vec![] };
        assert!(ens.is_empty());
        let x = SparseVec::from_pairs(vec![(0, 1.0)]);
        assert_eq!(ens.predict_proba(&x), 0.5);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        let (xs, _) = toy();
        let _ = SgdClassifier::fit(&xs, &[true], 8, SgdConfig::default(), WorldSeed::new(1));
    }

    #[test]
    fn empty_training_set_gives_zero_model() {
        let clf = SgdClassifier::fit(&[], &[], 4, SgdConfig::default(), WorldSeed::new(1));
        let x = SparseVec::from_pairs(vec![(0, 1.0)]);
        assert_eq!(clf.decision(&x), 0.0);
        assert!(!clf.predict(&x));
    }

    // ---- differential tests against the retained dense reference ----

    fn assert_matches_dense(cfg: SgdConfig, seed: u64, tol: f32) {
        let (xs, ys) = toy();
        let fast = SgdClassifier::fit(&xs, &ys, 8, cfg.clone(), WorldSeed::new(seed));
        let slow = dense_ref::fit_dense(&xs, &ys, 8, cfg.clone(), WorldSeed::new(seed));
        for (j, (a, b)) in fast.weights().iter().zip(slow.weights()).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "weight {j}: lazy {a} vs dense {b} ({cfg:?}, seed {seed})"
            );
        }
        assert!(
            (fast.bias() - slow.bias()).abs() <= tol,
            "bias: lazy {} vs dense {} ({cfg:?}, seed {seed})",
            fast.bias(),
            slow.bias()
        );
    }

    #[test]
    fn lazy_matches_dense_over_config_grid() {
        for loss in [Loss::Log, Loss::Hinge] {
            for alpha in [1e-4f32, 1e-2, 1e-1] {
                for epochs in [1usize, 3, 7] {
                    for average in [false, true] {
                        let cfg = SgdConfig {
                            loss,
                            alpha,
                            epochs,
                            average,
                        };
                        assert_matches_dense(cfg, 11, 1e-4);
                    }
                }
            }
        }
    }

    #[test]
    fn lazy_matches_dense_at_default_config() {
        assert_matches_dense(SgdConfig::default(), 42, 1e-4);
    }

    #[test]
    fn scale_fold_is_transparent() {
        // Large alpha makes the shrink aggressive enough that the lazy
        // scale decays fast; the fold must not perturb the result.
        let cfg = SgdConfig {
            loss: Loss::Log,
            alpha: 0.5,
            epochs: 10,
            average: true,
        };
        assert_matches_dense(cfg, 3, 1e-4);
    }

    #[test]
    fn parallel_ensemble_is_bit_identical_to_serial() {
        let (xs, ys) = toy();
        let par = SgdEnsemble::fit(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(9), 5);
        let ser = SgdEnsemble::fit_serial(&xs, &ys, 8, SgdConfig::default(), WorldSeed::new(9), 5);
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.members().iter().zip(ser.members()) {
            assert_eq!(a.weights(), b.weights());
            assert_eq!(a.bias(), b.bias());
        }
    }

    proptest! {
        /// The lazy-scaled trainer matches the dense reference to 1e-4 per
        /// weight across a random grid of (loss, alpha, epochs, average)
        /// configs, seeds, and sparse data.
        #[test]
        fn lazy_matches_dense_proptest(
            hinge in any::<bool>(),
            alpha_exp in 1u32..5,
            epochs in 1usize..7,
            average in any::<bool>(),
            seed in 0u64..64,
            raw in proptest::collection::vec(
                (proptest::collection::vec((0u32..12, 1u32..5), 1..6), any::<bool>()),
                2..24,
            ),
        ) {
            let cfg = SgdConfig {
                loss: if hinge { Loss::Hinge } else { Loss::Log },
                alpha: 10f32.powi(-(alpha_exp as i32)),
                epochs,
                average,
            };
            // Coarse quarter-integer values keep margins far from the
            // hinge's y·m = 1 boundary, so f32-vs-f64 rounding cannot flip
            // the subgradient branch.
            let xs: Vec<SparseVec> = raw
                .iter()
                .map(|(pairs, _)| {
                    SparseVec::from_pairs(
                        pairs.iter().map(|(i, q)| (*i, *q as f32 * 0.25)).collect(),
                    )
                })
                .collect();
            let ys: Vec<bool> = raw.iter().map(|(_, y)| *y).collect();
            let fast = SgdClassifier::fit(&xs, &ys, 12, cfg.clone(), WorldSeed::new(seed));
            let slow = dense_ref::fit_dense(&xs, &ys, 12, cfg, WorldSeed::new(seed));
            for (a, b) in fast.weights().iter().zip(slow.weights()) {
                prop_assert!((a - b).abs() <= 1e-4, "lazy {a} vs dense {b}");
            }
            prop_assert!((fast.bias() - slow.bias()).abs() <= 1e-4);
        }

        /// Refitting with the same seed is exactly reproducible.
        #[test]
        fn fit_is_exactly_deterministic(seed in 0u64..256, average in any::<bool>()) {
            let (xs, ys) = toy();
            let cfg = SgdConfig { average, epochs: 3, ..SgdConfig::default() };
            let a = SgdClassifier::fit(&xs, &ys, 8, cfg.clone(), WorldSeed::new(seed));
            let b = SgdClassifier::fit(&xs, &ys, 8, cfg, WorldSeed::new(seed));
            prop_assert_eq!(a.weights(), b.weights());
            prop_assert_eq!(a.bias(), b.bias());
        }
    }
}
