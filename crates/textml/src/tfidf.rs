//! TF-IDF weighting — the "TF ID Transformer" box of Figure 3.
//!
//! Formulas match scikit-learn's `TfidfTransformer` defaults (the paper's
//! pipeline is scikit-learn based): smoothed IDF
//! `idf(t) = ln((1 + n) / (1 + df(t))) + 1`, followed by L2 normalization
//! of each document vector.

use crate::vectorize::SparseVec;
use serde::{Deserialize, Serialize};

/// Fitted IDF weights.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TfidfTransformer {
    idf: Vec<f32>,
}

impl TfidfTransformer {
    /// Fit IDF weights from count vectors.
    pub fn fit(vectors: &[SparseVec]) -> TfidfTransformer {
        let n_features = vectors
            .iter()
            .flat_map(|v| v.iter().map(|(i, _)| i as usize + 1))
            .max()
            .unwrap_or(0);
        let mut df = vec![0usize; n_features];
        for v in vectors {
            for (i, _) in v.iter() {
                df[i as usize] += 1;
            }
        }
        let n = vectors.len() as f64;
        let idf = df
            .into_iter()
            .map(|d| (((1.0 + n) / (1.0 + d as f64)).ln() + 1.0) as f32)
            .collect();
        TfidfTransformer { idf }
    }

    /// Transform a count vector into an L2-normalized TF-IDF vector.
    /// Features unseen at fit time get the maximum IDF (df = 0 smoothing).
    pub fn transform(&self, v: &SparseVec) -> SparseVec {
        let default_idf = if self.idf.is_empty() {
            1.0
        } else {
            // df=0 smoothed idf for the fitted corpus size is the max.
            self.idf.iter().copied().fold(1.0f32, f32::max)
        };
        let mut weighted = v.map_values(|i, tf| {
            let idf = self.idf.get(i as usize).copied().unwrap_or(default_idf);
            tf * idf
        });
        let norm = weighted.norm();
        if norm > 0.0 {
            weighted.scale(1.0 / norm);
        }
        weighted
    }

    /// Fit on a corpus and return the transformed corpus.
    pub fn fit_transform(vectors: &[SparseVec]) -> (TfidfTransformer, Vec<SparseVec>) {
        let t = TfidfTransformer::fit(vectors);
        let out = vectors.iter().map(|v| t.transform(v)).collect();
        (t, out)
    }

    /// Number of fitted features.
    pub fn n_features(&self) -> usize {
        self.idf.len()
    }

    /// The fitted IDF for a feature, if in range.
    pub fn idf(&self, feature: u32) -> Option<f32> {
        self.idf.get(feature as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn counts(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn idf_downweights_common_terms() {
        // Feature 0 appears in all 4 docs, feature 1 in one doc.
        let docs = vec![
            counts(&[(0, 1.0), (1, 1.0)]),
            counts(&[(0, 1.0)]),
            counts(&[(0, 1.0)]),
            counts(&[(0, 1.0)]),
        ];
        let t = TfidfTransformer::fit(&docs);
        assert!(t.idf(0).unwrap() < t.idf(1).unwrap());
        // Smoothed formula: common term idf = ln(5/5)+1 = 1.
        assert!((t.idf(0).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transform_is_l2_normalized() {
        let docs = vec![counts(&[(0, 3.0), (1, 1.0)]), counts(&[(1, 2.0)])];
        let (t, xs) = TfidfTransformer::fit_transform(&docs);
        for x in &xs {
            assert!((x.norm() - 1.0).abs() < 1e-5);
        }
        assert_eq!(t.n_features(), 2);
    }

    #[test]
    fn zero_vector_stays_zero() {
        let docs = vec![counts(&[(0, 1.0)])];
        let t = TfidfTransformer::fit(&docs);
        let z = t.transform(&SparseVec::default());
        assert!(z.is_empty());
    }

    #[test]
    fn unseen_feature_gets_max_idf() {
        let docs = vec![counts(&[(0, 1.0)]), counts(&[(0, 1.0), (1, 1.0)])];
        let t = TfidfTransformer::fit(&docs);
        let x = t.transform(&counts(&[(7, 1.0)]));
        // Still produces a normalized non-empty vector.
        assert_eq!(x.nnz(), 1);
        assert!((x.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_fit_is_harmless() {
        let t = TfidfTransformer::fit(&[]);
        assert_eq!(t.n_features(), 0);
        let x = t.transform(&counts(&[(0, 2.0)]));
        assert_eq!(x.nnz(), 1);
    }

    proptest! {
        #[test]
        fn transform_norm_is_unit_or_zero(
            pairs in proptest::collection::vec((0u32..30, 1.0f32..5.0), 0..20)
        ) {
            let docs = vec![counts(&[(0, 1.0)]), counts(&[(1, 1.0), (2, 1.0)])];
            let t = TfidfTransformer::fit(&docs);
            let x = t.transform(&SparseVec::from_pairs(pairs));
            let n = x.norm();
            prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4);
        }
    }
}
