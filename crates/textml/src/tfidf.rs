//! TF-IDF weighting — the "TF ID Transformer" box of Figure 3.
//!
//! Formulas match scikit-learn's `TfidfTransformer` defaults (the paper's
//! pipeline is scikit-learn based): smoothed IDF
//! `idf(t) = ln((1 + n) / (1 + df(t))) + 1`, followed by L2 normalization
//! of each document vector.

use crate::vectorize::SparseVec;
use serde::{Deserialize, Serialize};

/// Fitted IDF weights.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TfidfTransformer {
    idf: Vec<f32>,
    /// The maximum fitted IDF (== the df-0 smoothed IDF), cached at fit
    /// time so `transform` does not fold over every IDF per document.
    max_idf: f32,
}

impl TfidfTransformer {
    /// Fit IDF weights from count vectors.
    pub fn fit(vectors: &[SparseVec]) -> TfidfTransformer {
        let mut df: Vec<usize> = Vec::new();
        for v in vectors {
            for (i, _) in v.iter() {
                let i = i as usize;
                if i >= df.len() {
                    df.resize(i + 1, 0);
                }
                df[i] += 1;
            }
        }
        let n = vectors.len() as f64;
        let idf: Vec<f32> = df
            .into_iter()
            .map(|d| (((1.0 + n) / (1.0 + d as f64)).ln() + 1.0) as f32)
            .collect();
        let max_idf = idf.iter().copied().fold(1.0f32, f32::max);
        TfidfTransformer { idf, max_idf }
    }

    /// Transform a count vector into an L2-normalized TF-IDF vector.
    /// Features unseen at fit time get the maximum IDF (df = 0 smoothing).
    /// Single pass over the entries plus the normalization scale.
    pub fn transform(&self, v: &SparseVec) -> SparseVec {
        let default_idf = if self.idf.is_empty() {
            1.0
        } else {
            self.max_idf
        };
        let mut sumsq = 0.0f32;
        let entries: Vec<(u32, f32)> = v
            .iter()
            .filter_map(|(i, tf)| {
                let idf = self.idf.get(i as usize).copied().unwrap_or(default_idf);
                let w = tf * idf;
                if w == 0.0 {
                    return None;
                }
                sumsq += w * w;
                Some((i, w))
            })
            .collect();
        let mut out = SparseVec::from_sorted_counts(entries);
        let norm = sumsq.sqrt();
        if norm > 0.0 {
            out.scale(1.0 / norm);
        }
        out
    }

    /// The pre-optimization transform (per-document max-IDF fold, three
    /// passes over the entries), retained as the differential oracle and
    /// benchmark "before" arm.
    #[cfg(any(test, feature = "dense-ref"))]
    pub fn transform_naive(&self, v: &SparseVec) -> SparseVec {
        let default_idf = if self.idf.is_empty() {
            1.0
        } else {
            // df=0 smoothed idf for the fitted corpus size is the max.
            self.idf.iter().copied().fold(1.0f32, f32::max)
        };
        let mut weighted = v.map_values(|i, tf| {
            let idf = self.idf.get(i as usize).copied().unwrap_or(default_idf);
            tf * idf
        });
        let norm = weighted.norm();
        if norm > 0.0 {
            weighted.scale(1.0 / norm);
        }
        weighted
    }

    /// Fit on a corpus and return the transformed corpus.
    pub fn fit_transform(vectors: &[SparseVec]) -> (TfidfTransformer, Vec<SparseVec>) {
        let t = TfidfTransformer::fit(vectors);
        let out = vectors.iter().map(|v| t.transform(v)).collect();
        (t, out)
    }

    /// Number of fitted features.
    pub fn n_features(&self) -> usize {
        self.idf.len()
    }

    /// The fitted IDF for a feature, if in range.
    pub fn idf(&self, feature: u32) -> Option<f32> {
        self.idf.get(feature as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn counts(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn idf_downweights_common_terms() {
        // Feature 0 appears in all 4 docs, feature 1 in one doc.
        let docs = vec![
            counts(&[(0, 1.0), (1, 1.0)]),
            counts(&[(0, 1.0)]),
            counts(&[(0, 1.0)]),
            counts(&[(0, 1.0)]),
        ];
        let t = TfidfTransformer::fit(&docs);
        assert!(t.idf(0).unwrap() < t.idf(1).unwrap());
        // Smoothed formula: common term idf = ln(5/5)+1 = 1.
        assert!((t.idf(0).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transform_is_l2_normalized() {
        let docs = vec![counts(&[(0, 3.0), (1, 1.0)]), counts(&[(1, 2.0)])];
        let (t, xs) = TfidfTransformer::fit_transform(&docs);
        for x in &xs {
            assert!((x.norm() - 1.0).abs() < 1e-5);
        }
        assert_eq!(t.n_features(), 2);
    }

    #[test]
    fn zero_vector_stays_zero() {
        let docs = vec![counts(&[(0, 1.0)])];
        let t = TfidfTransformer::fit(&docs);
        let z = t.transform(&SparseVec::default());
        assert!(z.is_empty());
    }

    #[test]
    fn unseen_feature_gets_max_idf() {
        let docs = vec![counts(&[(0, 1.0)]), counts(&[(0, 1.0), (1, 1.0)])];
        let t = TfidfTransformer::fit(&docs);
        let x = t.transform(&counts(&[(7, 1.0)]));
        // Still produces a normalized non-empty vector.
        assert_eq!(x.nnz(), 1);
        assert!((x.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_fit_is_harmless() {
        let t = TfidfTransformer::fit(&[]);
        assert_eq!(t.n_features(), 0);
        let x = t.transform(&counts(&[(0, 2.0)]));
        assert_eq!(x.nnz(), 1);
    }

    #[test]
    fn cached_max_idf_matches_fold() {
        let docs = vec![
            counts(&[(0, 1.0), (3, 1.0)]),
            counts(&[(0, 1.0)]),
            counts(&[(2, 2.0)]),
        ];
        let t = TfidfTransformer::fit(&docs);
        let folded = (0..t.n_features() as u32)
            .filter_map(|i| t.idf(i))
            .fold(1.0f32, f32::max);
        // The cached value feeds unseen features: transform of an unseen
        // feature must weight it exactly like the naive fold would.
        let x = t.transform(&counts(&[(9, 1.0)]));
        let y = t.transform_naive(&counts(&[(9, 1.0)]));
        assert_eq!(x, y);
        assert!(folded > 1.0);
    }

    proptest! {
        #[test]
        fn transform_norm_is_unit_or_zero(
            pairs in proptest::collection::vec((0u32..30, 1.0f32..5.0), 0..20)
        ) {
            let docs = vec![counts(&[(0, 1.0)]), counts(&[(1, 1.0), (2, 1.0)])];
            let t = TfidfTransformer::fit(&docs);
            let x = t.transform(&SparseVec::from_pairs(pairs));
            let n = x.norm();
            prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4);
        }

        /// The single-pass transform agrees with the naive reference.
        #[test]
        fn transform_matches_naive(
            pairs in proptest::collection::vec((0u32..30, -4.0f32..4.0), 0..20)
        ) {
            let docs = vec![
                counts(&[(0, 1.0), (5, 1.0)]),
                counts(&[(1, 1.0), (2, 1.0)]),
                counts(&[(2, 3.0)]),
            ];
            let t = TfidfTransformer::fit(&docs);
            let x = SparseVec::from_pairs(pairs);
            prop_assert_eq!(t.transform(&x), t.transform_naive(&x));
        }
    }
}
