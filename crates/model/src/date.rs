//! A minimal calendar date for registration/churn modeling.
//!
//! The maintenance analysis (§5.3) needs day arithmetic ("an average 21 ASes
//! were registered every day … 140 ASes will need to be updated every week")
//! but nothing about time zones or clocks, so `Date` is simply a day count
//! since 1970-01-01 with proleptic-Gregorian conversion helpers.

use crate::error::{clip, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Days since the Unix epoch (1970-01-01), date-only.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Date(i32);

impl Date {
    /// Construct from a raw day count since 1970-01-01.
    pub const fn from_days(days: i32) -> Self {
        Date(days)
    }

    /// The raw day count.
    pub const fn days(self) -> i32 {
        self.0
    }

    /// Build from a calendar date. Errors if the combination is invalid.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self, ModelError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(ModelError::InvalidDate {
                input: format!("{year:04}-{month:02}-{day:02}"),
            });
        }
        // Days from civil algorithm (Howard Hinnant's date algorithms).
        let y = if month <= 2 { year - 1 } else { year };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64;
        let mp = i64::from((month + 9) % 12);
        let doy = (153 * mp + 2) / 5 + i64::from(day) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Ok(Date((i64::from(era) * 146_097 + doe - 719_468) as i32))
    }

    /// Decompose into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        // Inverse of the civil algorithm.
        let z = i64::from(self.0) + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = if m <= 2 { y + 1 } else { y } as i32;
        (year, m, d)
    }

    /// Add (or subtract, for negative `n`) days.
    pub fn plus_days(self, n: i32) -> Self {
        Date(self.0 + n)
    }

    /// Signed number of days from `earlier` to `self`.
    pub fn days_since(self, earlier: Date) -> i32 {
        self.0 - earlier.0
    }
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl FromStr for Date {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let mut parts = t.split('-');
        let bad = || ModelError::InvalidDate { input: clip(s) };
        let y: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        Date::from_ymd(y, m, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
    }

    #[test]
    fn known_dates() {
        // The paper's maintenance window: Oct 2020 – Feb 2021.
        let start = Date::from_ymd(2020, 10, 1).unwrap();
        let end = Date::from_ymd(2021, 2, 28).unwrap();
        assert_eq!(end.days_since(start), 150);
        assert_eq!(start.to_string(), "2020-10-01");
    }

    #[test]
    fn leap_years() {
        assert!(Date::from_ymd(2020, 2, 29).is_ok());
        assert!(Date::from_ymd(2021, 2, 29).is_err());
        assert!(Date::from_ymd(2000, 2, 29).is_ok());
        assert!(Date::from_ymd(1900, 2, 29).is_err());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "2020",
            "2020-13-01",
            "2020-00-10",
            "2020-01-32",
            "2020-1-1-1",
            "x-y-z",
        ] {
            assert!(bad.parse::<Date>().is_err(), "{bad:?}");
        }
    }

    proptest! {
        #[test]
        fn ymd_roundtrip(days in -200_000i32..200_000) {
            let d = Date::from_days(days);
            let (y, m, dd) = d.ymd();
            prop_assert_eq!(Date::from_ymd(y, m, dd).unwrap(), d);
        }

        #[test]
        fn display_parse_roundtrip(days in -100_000i32..100_000) {
            let d = Date::from_days(days);
            let back: Date = d.to_string().parse().unwrap();
            prop_assert_eq!(d, back);
        }

        #[test]
        fn plus_days_is_additive(days in -10_000i32..10_000, a in -500i32..500, b in -500i32..500) {
            let d = Date::from_days(days);
            prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
        }
    }
}
