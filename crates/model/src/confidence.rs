//! Match confidence codes.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Dun & Bradstreet style match confidence code, in `1..=10`.
///
/// The paper's Figure 2 shows that real D&B matches with a confidence code
/// below 6 are correct less than half the time, while codes ≥ 6 are at least
/// 80% accurate; ASdb's Table 5 rows are parameterized by a threshold over
/// this code. The type is a validated newtype so the thresholding logic can
/// never see an out-of-range value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "u8", into = "u8")]
pub struct ConfidenceCode(u8);

impl ConfidenceCode {
    /// The minimum code.
    pub const MIN: ConfidenceCode = ConfidenceCode(1);
    /// The maximum code.
    pub const MAX: ConfidenceCode = ConfidenceCode(10);
    /// The threshold the paper finds separates "usually wrong" from
    /// "usually right" (Figure 2 / Table 5 "Conf. ≥ 6").
    pub const RELIABLE_THRESHOLD: ConfidenceCode = ConfidenceCode(6);

    /// Validate a raw code.
    pub fn new(value: u8) -> Result<Self, ModelError> {
        if (1..=10).contains(&value) {
            Ok(ConfidenceCode(value))
        } else {
            Err(ModelError::InvalidConfidence {
                value: i64::from(value),
            })
        }
    }

    /// The raw value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Whether the code meets the paper's reliability threshold (≥ 6).
    pub fn is_reliable(self) -> bool {
        self >= Self::RELIABLE_THRESHOLD
    }
}

impl fmt::Display for ConfidenceCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u8> for ConfidenceCode {
    type Error = ModelError;
    fn try_from(value: u8) -> Result<Self, Self::Error> {
        ConfidenceCode::new(value)
    }
}

impl From<ConfidenceCode> for u8 {
    fn from(value: ConfidenceCode) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_range() {
        assert!(ConfidenceCode::new(0).is_err());
        assert!(ConfidenceCode::new(11).is_err());
        for v in 1..=10 {
            assert_eq!(ConfidenceCode::new(v).unwrap().value(), v);
        }
    }

    #[test]
    fn reliability_threshold() {
        assert!(!ConfidenceCode::new(5).unwrap().is_reliable());
        assert!(ConfidenceCode::new(6).unwrap().is_reliable());
        assert!(ConfidenceCode::MAX.is_reliable());
    }

    #[test]
    fn ordering() {
        assert!(ConfidenceCode::MIN < ConfidenceCode::MAX);
    }

    #[test]
    fn serde_rejects_out_of_range() {
        assert!(serde_json::from_str::<ConfidenceCode>("0").is_err());
        assert!(serde_json::from_str::<ConfidenceCode>("7").is_ok());
    }
}
