//! Deterministic seed derivation.
//!
//! Everything random in the workspace — the synthetic universe, data source
//! noise, labeler behaviour, crowdworker behaviour, ML initialization —
//! flows from a single [`WorldSeed`]. Sub-seeds are derived by hashing a
//! component label into the root seed with SplitMix64, so adding a new
//! consumer never perturbs the streams of existing consumers (no shared
//! global RNG, no ordering sensitivity).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Root seed for a reproducible experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct WorldSeed(pub u64);

impl WorldSeed {
    /// The seed used by the repository's canonical experiment runs.
    pub const DEFAULT: WorldSeed = WorldSeed(0x5eed_a5db_2021_1102);

    /// Wrap a raw seed.
    pub const fn new(value: u64) -> Self {
        WorldSeed(value)
    }

    /// Derive a named sub-seed. The same `(seed, label)` pair always yields
    /// the same sub-seed; distinct labels yield statistically independent
    /// streams.
    pub fn derive(self, label: &str) -> WorldSeed {
        let mut h = self.0 ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        WorldSeed(splitmix64(h))
    }

    /// Derive a numbered sub-seed (e.g. per-AS, per-worker streams).
    pub fn derive_index(self, label: &str, index: u64) -> WorldSeed {
        WorldSeed(splitmix64(self.derive(label).0 ^ splitmix64(index)))
    }

    /// The raw value, for seeding `rand::rngs::StdRng` via `seed_from_u64`.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl Default for WorldSeed {
    /// The canonical experiment seed, [`WorldSeed::DEFAULT`].
    fn default() -> Self {
        WorldSeed::DEFAULT
    }
}

impl fmt::Display for WorldSeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// SplitMix64 finalizer — the standard 64-bit mixing function used to expand
/// seeds (Steele et al., "Fast Splittable Pseudorandom Number Generators").
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        let s = WorldSeed::new(42);
        assert_eq!(s.derive("worldgen"), s.derive("worldgen"));
        assert_ne!(s.derive("worldgen"), s.derive("websim"));
    }

    #[test]
    fn indexed_streams_differ() {
        let s = WorldSeed::DEFAULT;
        let a = s.derive_index("as", 1);
        let b = s.derive_index("as", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn labels_spread_well() {
        let s = WorldSeed::new(7);
        let seeds: HashSet<u64> = (0..1000)
            .map(|i| s.derive_index("spread", i).value())
            .collect();
        assert_eq!(seeds.len(), 1000, "derived seeds must not collide");
    }

    #[test]
    fn splitmix_known_vector() {
        // First output of SplitMix64 seeded with 0 (reference value).
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }

    proptest! {
        #[test]
        fn different_roots_give_different_derivations(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(
                WorldSeed::new(a).derive("x"),
                WorldSeed::new(b).derive("x")
            );
        }
    }
}
