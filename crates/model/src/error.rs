//! Error type shared by the model-layer parsers.

use std::fmt;

/// Errors produced when constructing or parsing model-layer types.
///
/// Every variant carries enough context to render a human-readable message;
/// the offending input is truncated to keep errors bounded even when fed
/// hostile WHOIS blobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An ASN was outside the 32-bit range or syntactically malformed.
    InvalidAsn {
        /// The rejected input, truncated to 64 bytes.
        input: String,
    },
    /// A domain name failed validation (empty label, bad character, length).
    InvalidDomain {
        /// The rejected input, truncated to 64 bytes.
        input: String,
        /// Why the domain was rejected.
        reason: &'static str,
    },
    /// A URL failed validation.
    InvalidUrl {
        /// The rejected input, truncated to 64 bytes.
        input: String,
        /// Why the URL was rejected.
        reason: &'static str,
    },
    /// An email address failed validation.
    InvalidEmail {
        /// The rejected input, truncated to 64 bytes.
        input: String,
    },
    /// A country code was not two ASCII letters.
    InvalidCountry {
        /// The rejected input, truncated to 64 bytes.
        input: String,
    },
    /// A confidence code was outside `1..=10`.
    InvalidConfidence {
        /// The rejected numeric value.
        value: i64,
    },
    /// A date was outside the supported range or malformed.
    InvalidDate {
        /// The rejected input, truncated to 64 bytes.
        input: String,
    },
    /// An RIR name did not match any of the five registries.
    UnknownRegistry {
        /// The rejected input, truncated to 64 bytes.
        input: String,
    },
}

/// Truncate hostile input before embedding it in an error message.
pub(crate) fn clip(s: &str) -> String {
    const MAX: usize = 64;
    if s.len() <= MAX {
        s.to_owned()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidAsn { input } => write!(f, "invalid ASN: {input:?}"),
            ModelError::InvalidDomain { input, reason } => {
                write!(f, "invalid domain {input:?}: {reason}")
            }
            ModelError::InvalidUrl { input, reason } => {
                write!(f, "invalid URL {input:?}: {reason}")
            }
            ModelError::InvalidEmail { input } => write!(f, "invalid email: {input:?}"),
            ModelError::InvalidCountry { input } => write!(f, "invalid country code: {input:?}"),
            ModelError::InvalidConfidence { value } => {
                write!(f, "confidence code {value} outside 1..=10")
            }
            ModelError::InvalidDate { input } => write!(f, "invalid date: {input:?}"),
            ModelError::UnknownRegistry { input } => write!(f, "unknown registry: {input:?}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_short_input_unchanged() {
        assert_eq!(clip("hello"), "hello");
    }

    #[test]
    fn clip_long_input_truncated() {
        let long = "x".repeat(200);
        let clipped = clip(&long);
        assert!(clipped.len() < 80);
        assert!(clipped.ends_with('…'));
    }

    #[test]
    fn clip_respects_char_boundaries() {
        // A multi-byte char straddling the 64-byte boundary must not panic.
        let s = format!("{}é{}", "a".repeat(63), "b".repeat(50));
        let _ = clip(&s);
    }

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidAsn {
            input: "ASX".into(),
        };
        assert!(e.to_string().contains("ASX"));
    }
}
