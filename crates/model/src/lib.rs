//! # asdb-model
//!
//! Shared domain types for the ASdb reproduction.
//!
//! This crate holds the vocabulary every other crate speaks: autonomous
//! system numbers ([`Asn`]), organization identities ([`OrgId`]), DNS
//! [`Domain`]s and [`Url`]s, [`Email`] addresses, ISO-style country codes,
//! the five Regional Internet Registries ([`Rir`]), Dun & Bradstreet style
//! match [`ConfidenceCode`]s, simple calendar [`Date`]s for churn modeling,
//! and the deterministic [`WorldSeed`] from which all randomness in the
//! workspace is derived.
//!
//! Design notes (following the networking-Rust guides this repo is built
//! against): types are small, `Copy` where possible, validate on
//! construction, and implement `Display`/`FromStr` round-trips so they can
//! be used directly in wire formats such as the WHOIS dumps produced by
//! `asdb-rir`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod confidence;
pub mod country;
pub mod date;
pub mod domain;
pub mod error;
pub mod org;
pub mod registry;
pub mod seed;

pub use asn::Asn;
pub use confidence::ConfidenceCode;
pub use country::CountryCode;
pub use date::Date;
pub use domain::{Domain, Email, Url};
pub use error::ModelError;
pub use org::{OrgId, OrgName};
pub use registry::Rir;
pub use seed::{splitmix64, WorldSeed};
