//! The five Regional Internet Registries.

use crate::country::Region;
use crate::error::{clip, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A Regional Internet Registry.
///
/// Each RIR publishes WHOIS data in its own dialect; `asdb-rir` implements
/// the per-registry field conventions documented in the paper's Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rir {
    /// American Registry for Internet Numbers.
    Arin,
    /// RIPE Network Coordination Centre.
    Ripe,
    /// Asia-Pacific Network Information Centre.
    Apnic,
    /// African Network Information Centre.
    Afrinic,
    /// Latin America and Caribbean Network Information Centre.
    Lacnic,
}

impl Rir {
    /// All five registries in a fixed order.
    pub const ALL: [Rir; 5] = [Rir::Arin, Rir::Ripe, Rir::Apnic, Rir::Afrinic, Rir::Lacnic];

    /// Canonical lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Rir::Arin => "arin",
            Rir::Ripe => "ripe",
            Rir::Apnic => "apnic",
            Rir::Afrinic => "afrinic",
            Rir::Lacnic => "lacnic",
        }
    }

    /// The service [`Region`] this registry covers.
    pub fn region(&self) -> Region {
        match self {
            Rir::Arin => Region::NorthAmerica,
            Rir::Ripe => Region::Europe,
            Rir::Apnic => Region::AsiaPacific,
            Rir::Afrinic => Region::Africa,
            Rir::Lacnic => Region::LatinAmerica,
        }
    }

    /// The registry serving a given region.
    pub fn for_region(region: Region) -> Rir {
        match region {
            Region::NorthAmerica => Rir::Arin,
            Region::Europe => Rir::Ripe,
            Region::AsiaPacific => Rir::Apnic,
            Region::Africa => Rir::Afrinic,
            Region::LatinAmerica => Rir::Lacnic,
        }
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Rir {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "arin" => Ok(Rir::Arin),
            "ripe" | "ripencc" | "ripe-ncc" => Ok(Rir::Ripe),
            "apnic" => Ok(Rir::Apnic),
            "afrinic" => Ok(Rir::Afrinic),
            "lacnic" => Ok(Rir::Lacnic),
            _ => Err(ModelError::UnknownRegistry { input: clip(s) }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all() {
        for rir in Rir::ALL {
            let parsed: Rir = rir.to_string().parse().unwrap();
            assert_eq!(parsed, rir);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("RIPE-NCC".parse::<Rir>().unwrap(), Rir::Ripe);
        assert_eq!("ripencc".parse::<Rir>().unwrap(), Rir::Ripe);
    }

    #[test]
    fn unknown_rejected() {
        assert!("iana".parse::<Rir>().is_err());
    }

    #[test]
    fn region_bijection() {
        for rir in Rir::ALL {
            assert_eq!(Rir::for_region(rir.region()), rir);
        }
    }
}
