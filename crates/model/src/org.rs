//! Organization identity types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque, stable identifier for an organization in the synthetic universe.
///
/// Analogous to a DUNS number or a CAIDA AS2Org org handle: two ASes with the
/// same `OrgId` are owned by the same legal entity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct OrgId(pub u64);

impl OrgId {
    /// Wrap a raw identifier.
    pub const fn new(value: u64) -> Self {
        OrgId(value)
    }

    /// The raw value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORG-{:08}", self.0)
    }
}

/// An organization's legal/registered name.
///
/// Carries normalization helpers used throughout entity resolution: legal
/// suffixes (`Inc`, `GmbH`, `SRL`, …) are noise for matching, and the paper's
/// Crunchbase lookup "search\[es\] using a tokenized version of the AS name".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OrgName(String);

/// Legal-entity suffixes stripped during name normalization. Sourced from
/// common RIR registration suffixes across the five regions.
pub const LEGAL_SUFFIXES: [&str; 22] = [
    "inc",
    "llc",
    "ltd",
    "limited",
    "corp",
    "corporation",
    "co",
    "company",
    "gmbh",
    "ag",
    "sa",
    "srl",
    "sarl",
    "bv",
    "nv",
    "oy",
    "ab",
    "as",
    "pty",
    "plc",
    "kk",
    "sro",
];

impl OrgName {
    /// Wrap a raw name (whitespace-trimmed, internal runs collapsed).
    pub fn new(input: &str) -> Self {
        let collapsed = input.split_whitespace().collect::<Vec<_>>().join(" ");
        OrgName(collapsed)
    }

    /// The name as stored.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether the raw name is empty after trimming.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Lower-cased alphanumeric tokens with legal suffixes and punctuation
    /// removed — the canonical matching form.
    ///
    /// ```
    /// use asdb_model::OrgName;
    /// let n = OrgName::new("SUMIDA Romania S.R.L.");
    /// assert_eq!(n.tokens(), vec!["sumida", "romania"]);
    /// ```
    pub fn tokens(&self) -> Vec<String> {
        // Collapse dotted abbreviations ("S.R.L." -> "SRL") before splitting
        // so legal suffixes written with periods are still recognized.
        let undotted = self.0.replace('.', "");
        undotted
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_lowercase())
            .filter(|t| !LEGAL_SUFFIXES.contains(&t.as_str()))
            .collect()
    }

    /// Tokens joined with single spaces: a normalized comparable string.
    pub fn normalized(&self) -> String {
        self.tokens().join(" ")
    }
}

impl fmt::Display for OrgName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for OrgName {
    fn from(s: &str) -> Self {
        OrgName::new(s)
    }
}

impl From<String> for OrgName {
    fn from(s: String) -> Self {
        OrgName::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn org_id_display() {
        assert_eq!(OrgId::new(42).to_string(), "ORG-00000042");
    }

    #[test]
    fn name_collapses_whitespace() {
        assert_eq!(OrgName::new("  Acme   Corp \t ").as_str(), "Acme Corp");
    }

    #[test]
    fn tokens_strip_legal_suffixes_and_punctuation() {
        let n = OrgName::new("Deutsche Telekom AG");
        assert_eq!(n.tokens(), vec!["deutsche", "telekom"]);
        let n = OrgName::new("O'Brien & Sons, Ltd.");
        assert_eq!(n.tokens(), vec!["o", "brien", "sons"]);
    }

    #[test]
    fn normalized_is_token_join() {
        let n = OrgName::new("Panama Canal Authority");
        assert_eq!(n.normalized(), "panama canal authority");
    }

    #[test]
    fn empty_name() {
        assert!(OrgName::new("   ").is_empty());
        assert!(OrgName::new("").tokens().is_empty());
    }

    proptest! {
        #[test]
        fn tokens_never_panic_and_are_lowercase(s in ".{0,200}") {
            for t in OrgName::new(&s).tokens() {
                prop_assert!(!t.is_empty());
                prop_assert_eq!(t.clone(), t.to_lowercase());
            }
        }
    }
}
