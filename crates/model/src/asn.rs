//! Autonomous System Numbers.

use crate::error::{clip, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 32-bit Autonomous System Number (RFC 6793).
///
/// `Asn` is an ordered, hashable, copyable newtype. It parses both the bare
/// decimal form (`"3356"`) and the canonical `AS`-prefixed form (`"AS3356"`,
/// case-insensitive, optional whitespace), which is what appears in RIR
/// WHOIS `aut-num:` attributes.
///
/// ```
/// use asdb_model::Asn;
/// let a: Asn = "AS3356".parse().unwrap();
/// assert_eq!(a, Asn::new(3356));
/// assert_eq!(a.to_string(), "AS3356");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Asn(u32);

impl Asn {
    /// Wrap a raw 32-bit AS number.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// The raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this ASN falls in a private-use range
    /// (64512–65534 for 16-bit, 4200000000–4294967294 for 32-bit; RFC 6996).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64512 && self.0 <= 65534) || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// Whether this ASN is reserved for documentation (64496–64511 and
    /// 65536–65551; RFC 5398).
    pub const fn is_documentation(self) -> bool {
        (self.0 >= 64496 && self.0 <= 64511) || (self.0 >= 65536 && self.0 <= 65551)
    }

    /// Whether the ASN fits in the original 16-bit space.
    pub const fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl FromStr for Asn {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let digits = t
            .strip_prefix("AS")
            .or_else(|| t.strip_prefix("as"))
            .or_else(|| t.strip_prefix("As"))
            .or_else(|| t.strip_prefix("aS"))
            .unwrap_or(t)
            .trim();
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ModelError::InvalidAsn { input: clip(s) });
        }
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ModelError::InvalidAsn { input: clip(s) })
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

/// A contiguous, inclusive range of ASNs, as allocated to RIRs by IANA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsnRange {
    /// First ASN in the range (inclusive).
    pub start: Asn,
    /// Last ASN in the range (inclusive).
    pub end: Asn,
}

impl AsnRange {
    /// Build a range; panics if `start > end` (programmer error).
    pub fn new(start: Asn, end: Asn) -> Self {
        assert!(start <= end, "AsnRange start must be <= end");
        AsnRange { start, end }
    }

    /// Whether the range contains `asn`.
    pub fn contains(&self, asn: Asn) -> bool {
        self.start <= asn && asn <= self.end
    }

    /// Number of ASNs in the range.
    pub fn len(&self) -> u64 {
        u64::from(self.end.value()) - u64::from(self.start.value()) + 1
    }

    /// Whether the range is empty (never true by construction, kept for
    /// API symmetry with std ranges).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate the ASNs in the range.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        (self.start.value()..=self.end.value()).map(Asn::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_bare_and_prefixed() {
        assert_eq!("3356".parse::<Asn>().unwrap(), Asn::new(3356));
        assert_eq!("AS3356".parse::<Asn>().unwrap(), Asn::new(3356));
        assert_eq!("as3356".parse::<Asn>().unwrap(), Asn::new(3356));
        assert_eq!(" AS 3356 ".parse::<Asn>().unwrap(), Asn::new(3356));
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("AS".parse::<Asn>().is_err());
        assert!("AS-1".parse::<Asn>().is_err());
        assert!("ASdeadbeef".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err()); // > u32::MAX
    }

    #[test]
    fn private_and_documentation_ranges() {
        assert!(Asn::new(64512).is_private());
        assert!(Asn::new(65534).is_private());
        assert!(!Asn::new(65535).is_private());
        assert!(Asn::new(4_200_000_000).is_private());
        assert!(Asn::new(64500).is_documentation());
        assert!(Asn::new(65540).is_documentation());
        assert!(!Asn::new(3356).is_documentation());
    }

    #[test]
    fn range_contains_and_len() {
        let r = AsnRange::new(Asn::new(10), Asn::new(20));
        assert!(r.contains(Asn::new(10)));
        assert!(r.contains(Asn::new(20)));
        assert!(!r.contains(Asn::new(21)));
        assert_eq!(r.len(), 11);
        assert_eq!(r.iter().count(), 11);
    }

    #[test]
    #[should_panic(expected = "start must be <= end")]
    fn range_rejects_inverted() {
        let _ = AsnRange::new(Asn::new(2), Asn::new(1));
    }

    proptest! {
        #[test]
        fn display_parse_roundtrip(v in any::<u32>()) {
            let a = Asn::new(v);
            let parsed: Asn = a.to_string().parse().unwrap();
            prop_assert_eq!(a, parsed);
        }

        #[test]
        fn serde_roundtrip(v in any::<u32>()) {
            let a = Asn::new(v);
            let json = serde_json::to_string(&a).unwrap();
            // Transparent serialization: just the number.
            prop_assert_eq!(&json, &v.to_string());
            let back: Asn = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(a, back);
        }
    }
}
