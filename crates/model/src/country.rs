//! ISO-3166-style country codes and world regions.

use crate::error::{clip, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A two-letter, upper-case country code (e.g. `US`, `DE`, `BR`).
///
/// Stored as two bytes, so `CountryCode` is `Copy` and hashable for free.
/// The type does not enforce the ISO-3166 assignment table — WHOIS data
/// contains user-entered codes — only the syntactic shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Parse a two-ASCII-letter code, normalizing to upper case.
    pub fn new(input: &str) -> Result<Self, ModelError> {
        let t = input.trim();
        let bytes = t.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(u8::is_ascii_alphabetic) {
            return Err(ModelError::InvalidCountry { input: clip(input) });
        }
        Ok(CountryCode([
            bytes[0].to_ascii_uppercase(),
            bytes[1].to_ascii_uppercase(),
        ]))
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("two ASCII letters")
    }

    /// The RIR service [`Region`] this country falls in (approximate
    /// continental mapping used by the universe generator).
    pub fn region(&self) -> Region {
        Region::of(self.as_str())
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = ModelError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CountryCode::new(s)
    }
}

impl TryFrom<String> for CountryCode {
    type Error = ModelError;
    fn try_from(value: String) -> Result<Self, Self::Error> {
        CountryCode::new(&value)
    }
}

impl From<CountryCode> for String {
    fn from(value: CountryCode) -> Self {
        value.as_str().to_owned()
    }
}

/// The five RIR service regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North America + parts of the Caribbean (ARIN).
    NorthAmerica,
    /// Europe, Middle East, Central Asia (RIPE NCC).
    Europe,
    /// Asia-Pacific (APNIC).
    AsiaPacific,
    /// Africa (AFRINIC).
    Africa,
    /// Latin America and the Caribbean (LACNIC).
    LatinAmerica,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 5] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::AsiaPacific,
        Region::Africa,
        Region::LatinAmerica,
    ];

    /// Map a country code string to its region. Unknown codes map to
    /// `Europe`, the region with the most RIPE-style long-tail registrations.
    pub fn of(code: &str) -> Region {
        match code {
            "US" | "CA" | "PR" | "VI" | "BM" | "BS" | "JM" | "BB" => Region::NorthAmerica,
            "MX" | "BR" | "AR" | "CL" | "CO" | "PE" | "VE" | "EC" | "BO" | "PY" | "UY" | "PA"
            | "CR" | "GT" | "HN" | "NI" | "SV" | "DO" | "CU" | "HT" | "TT" => Region::LatinAmerica,
            "CN" | "JP" | "KR" | "IN" | "ID" | "TH" | "VN" | "PH" | "MY" | "SG" | "AU" | "NZ"
            | "TW" | "HK" | "BD" | "PK" | "LK" | "NP" | "KH" | "MM" | "FJ" | "PG" => {
                Region::AsiaPacific
            }
            "ZA" | "NG" | "EG" | "KE" | "GH" | "TZ" | "UG" | "DZ" | "MA" | "TN" | "ET" | "CM"
            | "CI" | "SN" | "ZM" | "ZW" | "MU" | "RW" | "AO" | "MZ" => Region::Africa,
            _ => Region::Europe,
        }
    }

    /// Human-readable region name.
    pub fn name(&self) -> &'static str {
        match self {
            Region::NorthAmerica => "North America",
            Region::Europe => "Europe/Middle East/Central Asia",
            Region::AsiaPacific => "Asia-Pacific",
            Region::Africa => "Africa",
            Region::LatinAmerica => "Latin America",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_and_normalizes() {
        let c = CountryCode::new(" us ").unwrap();
        assert_eq!(c.as_str(), "US");
        assert_eq!(c.to_string(), "US");
    }

    #[test]
    fn rejects_invalid() {
        for bad in ["", "U", "USA", "U1", "??"] {
            assert!(CountryCode::new(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn regions_are_plausible() {
        assert_eq!(
            CountryCode::new("US").unwrap().region(),
            Region::NorthAmerica
        );
        assert_eq!(CountryCode::new("DE").unwrap().region(), Region::Europe);
        assert_eq!(
            CountryCode::new("JP").unwrap().region(),
            Region::AsiaPacific
        );
        assert_eq!(CountryCode::new("NG").unwrap().region(), Region::Africa);
        assert_eq!(
            CountryCode::new("BR").unwrap().region(),
            Region::LatinAmerica
        );
        // Unknown codes fall back to the RIPE region.
        assert_eq!(Region::of("XX"), Region::Europe);
    }

    #[test]
    fn serde_roundtrip() {
        let c = CountryCode::new("br").unwrap();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(json, "\"BR\"");
        let back: CountryCode = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        assert!(serde_json::from_str::<CountryCode>("\"B1\"").is_err());
    }

    proptest! {
        #[test]
        fn parse_never_panics(s in ".{0,10}") {
            let _ = CountryCode::new(&s);
        }

        #[test]
        fn valid_codes_roundtrip(a in "[a-zA-Z]", b in "[a-zA-Z]") {
            let s = format!("{a}{b}");
            let c = CountryCode::new(&s).unwrap();
            prop_assert_eq!(c.as_str(), s.to_ascii_uppercase());
        }
    }
}
