//! DNS domains, URLs, and email addresses.
//!
//! These are deliberately *lenient-but-validated* types: WHOIS data is messy,
//! so the parsers accept anything structurally plausible (what the paper's
//! regex-based extraction would accept) while normalizing case and trimming
//! decoration like trailing dots and `mailto:` prefixes.

use crate::error::{clip, ModelError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Well-known public email/hosting suffixes that never identify an
/// organization. The paper's §5.1 domain-extraction algorithm strips "a
/// hand-curated list of the top 10 email domains (e.g., Gmail)".
pub const PUBLIC_EMAIL_DOMAINS: [&str; 10] = [
    "gmail.com",
    "yahoo.com",
    "hotmail.com",
    "outlook.com",
    "aol.com",
    "icloud.com",
    "mail.ru",
    "qq.com",
    "163.com",
    "protonmail.com",
];

/// A validated, lower-cased DNS domain name (e.g. `example.com`).
///
/// Validation rules (a practical subset of RFC 1035 as applied to the
/// registrable names found in WHOIS records):
/// * 1–253 bytes total, at least two labels,
/// * labels are 1–63 bytes of `[a-z0-9-]`, not starting/ending with `-`,
/// * the final label (TLD) is alphabetic and ≥ 2 bytes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Domain(String);

impl Domain {
    /// Parse and normalize a domain.
    pub fn new(input: &str) -> Result<Self, ModelError> {
        let lowered = input.trim().trim_end_matches('.').to_ascii_lowercase();
        let err = |reason: &'static str| ModelError::InvalidDomain {
            input: clip(input),
            reason,
        };
        if lowered.is_empty() {
            return Err(err("empty"));
        }
        if lowered.len() > 253 {
            return Err(err("longer than 253 bytes"));
        }
        let labels: Vec<&str> = lowered.split('.').collect();
        if labels.len() < 2 {
            return Err(err("needs at least two labels"));
        }
        for label in &labels {
            if label.is_empty() || label.len() > 63 {
                return Err(err("label length out of range"));
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            {
                return Err(err("label has invalid character"));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(err("label starts or ends with hyphen"));
            }
        }
        let tld = labels.last().expect("checked non-empty");
        if tld.len() < 2 || !tld.bytes().all(|b| b.is_ascii_lowercase()) {
            return Err(err("TLD must be alphabetic and >= 2 chars"));
        }
        Ok(Domain(lowered))
    }

    /// The normalized name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The registrable (eTLD+1-ish) suffix: the last two labels. Real
    /// public-suffix handling needs the PSL; two labels is the approximation
    /// the paper's matching heuristics effectively use.
    pub fn registrable(&self) -> Domain {
        let labels: Vec<&str> = self.0.split('.').collect();
        if labels.len() <= 2 {
            self.clone()
        } else {
            Domain(labels[labels.len() - 2..].join("."))
        }
    }

    /// Whether this is one of the hand-curated public email domains the
    /// ASdb domain-extraction algorithm strips (§5.1 step 2).
    pub fn is_public_email_domain(&self) -> bool {
        PUBLIC_EMAIL_DOMAINS.contains(&self.registrable().as_str())
    }

    /// The top-level domain (final label).
    pub fn tld(&self) -> &str {
        self.0.rsplit('.').next().expect("validated")
    }

    /// The leftmost label (e.g. the `www` of `www.example.com`).
    pub fn leftmost_label(&self) -> &str {
        self.0.split('.').next().expect("validated")
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for Domain {
    type Err = ModelError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Domain::new(s)
    }
}

/// A validated email address, split into local part and [`Domain`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Email {
    /// Local part, lower-cased.
    pub local: String,
    /// Mail domain.
    pub domain: Domain,
}

impl Email {
    /// Parse an email, tolerating a `mailto:` prefix and surrounding angle
    /// brackets as found in WHOIS contact attributes.
    pub fn new(input: &str) -> Result<Self, ModelError> {
        let trimmed = input
            .trim()
            .trim_start_matches("mailto:")
            .trim_start_matches('<')
            .trim_end_matches('>')
            .trim();
        let (local, dom) = trimmed
            .split_once('@')
            .ok_or_else(|| ModelError::InvalidEmail { input: clip(input) })?;
        let local = local.trim().to_ascii_lowercase();
        if local.is_empty()
            || local.len() > 64
            || !local
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'-' | b'_' | b'+'))
        {
            return Err(ModelError::InvalidEmail { input: clip(input) });
        }
        let domain =
            Domain::new(dom).map_err(|_| ModelError::InvalidEmail { input: clip(input) })?;
        Ok(Email { local, domain })
    }
}

impl fmt::Display for Email {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.local, self.domain)
    }
}

impl FromStr for Email {
    type Err = ModelError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Email::new(s)
    }
}

/// URL scheme supported by the simulated web.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        })
    }
}

/// A minimal absolute URL: scheme, host domain, and path.
///
/// Query strings and fragments are dropped on parse — the scraper never
/// needs them and WHOIS remark URLs rarely carry meaningful ones.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Url {
    /// Scheme (`Ord` on Url sorts https after http; irrelevant in practice).
    pub scheme: UrlScheme,
    /// Host domain.
    pub host: Domain,
    /// Path, always starting with `/`.
    pub path: String,
}

/// Serde/ord-friendly alias kept separate from [`Scheme`] so `Url` derives
/// `Ord` without a manual impl.
pub type UrlScheme = Scheme;

impl Ord for Scheme {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as u8).cmp(&(*other as u8))
    }
}

impl PartialOrd for Scheme {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Url {
    /// Build a URL for a host's root page.
    pub fn root(host: Domain) -> Self {
        Url {
            scheme: Scheme::Https,
            host,
            path: "/".to_owned(),
        }
    }

    /// Build a URL with an explicit path; a leading `/` is added if missing.
    pub fn with_path(host: Domain, path: &str) -> Self {
        let path = if path.starts_with('/') {
            path.to_owned()
        } else {
            format!("/{path}")
        };
        Url {
            scheme: Scheme::Https,
            host,
            path,
        }
    }

    /// Parse an absolute URL.
    pub fn parse(input: &str) -> Result<Self, ModelError> {
        let t = input.trim();
        let err = |reason: &'static str| ModelError::InvalidUrl {
            input: clip(input),
            reason,
        };
        let (scheme, rest) = if let Some(r) = t.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = t.strip_prefix("http://") {
            (Scheme::Http, r)
        } else {
            return Err(err("missing http(s) scheme"));
        };
        let (host_part, path_part) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        // Strip port and userinfo decoration, drop query/fragment.
        let host_part = host_part.rsplit('@').next().unwrap_or(host_part);
        let host_part = host_part.split(':').next().unwrap_or(host_part);
        let host = Domain::new(host_part).map_err(|_| err("invalid host"))?;
        let path = path_part.split(['?', '#']).next().unwrap_or("/").to_owned();
        Ok(Url { scheme, host, path })
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)
    }
}

impl FromStr for Url {
    type Err = ModelError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn domain_normalizes() {
        let d = Domain::new(" WWW.Example.COM. ").unwrap();
        assert_eq!(d.as_str(), "www.example.com");
        assert_eq!(d.registrable().as_str(), "example.com");
        assert_eq!(d.tld(), "com");
        assert_eq!(d.leftmost_label(), "www");
    }

    #[test]
    fn domain_rejects_invalid() {
        for bad in [
            "",
            "com",
            ".",
            "a..b",
            "-a.com",
            "a-.com",
            "a.c",
            "exa mple.com",
            "a.123",
        ] {
            assert!(Domain::new(bad).is_err(), "{bad:?} should be rejected");
        }
        let long_label = format!("{}.com", "a".repeat(64));
        assert!(Domain::new(&long_label).is_err());
        let too_long = format!("{}.com", "a.".repeat(130));
        assert!(Domain::new(&too_long).is_err());
    }

    #[test]
    fn public_email_domains_detected() {
        assert!(Domain::new("gmail.com").unwrap().is_public_email_domain());
        assert!(Domain::new("mail.gmail.com")
            .unwrap()
            .is_public_email_domain());
        assert!(!Domain::new("example.com").unwrap().is_public_email_domain());
    }

    #[test]
    fn email_parses_decorated_forms() {
        let e = Email::new("mailto:<NOC@Example.COM>").unwrap();
        assert_eq!(e.local, "noc");
        assert_eq!(e.domain.as_str(), "example.com");
        assert_eq!(e.to_string(), "noc@example.com");
    }

    #[test]
    fn email_rejects_invalid() {
        for bad in ["", "noat", "@x.com", "a@", "a b@x.com", "a@bad_domain"] {
            assert!(Email::new(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn url_parses_and_normalizes() {
        let u = Url::parse("HTTP is not a prefix").unwrap_err();
        assert!(matches!(u, ModelError::InvalidUrl { .. }));
        let u = Url::parse("https://Example.com:8443/a/b?q=1#frag").unwrap();
        assert_eq!(u.host.as_str(), "example.com");
        assert_eq!(u.path, "/a/b");
        assert_eq!(u.scheme, Scheme::Https);
        let bare = Url::parse("http://example.com").unwrap();
        assert_eq!(bare.path, "/");
        assert_eq!(bare.to_string(), "http://example.com/");
    }

    #[test]
    fn url_root_and_with_path() {
        let d = Domain::new("example.com").unwrap();
        assert_eq!(Url::root(d.clone()).to_string(), "https://example.com/");
        assert_eq!(
            Url::with_path(d, "about").to_string(),
            "https://example.com/about"
        );
    }

    proptest! {
        #[test]
        fn valid_domains_roundtrip(
            l1 in "[a-z][a-z0-9]{0,20}",
            l2 in "[a-z][a-z0-9]{0,20}",
            tld in "[a-z]{2,6}",
        ) {
            let s = format!("{l1}.{l2}.{tld}");
            let d = Domain::new(&s).unwrap();
            prop_assert_eq!(d.as_str(), s.as_str());
            let d2: Domain = d.to_string().parse().unwrap();
            prop_assert_eq!(d, d2);
        }

        #[test]
        fn domain_parse_never_panics(s in ".{0,300}") {
            let _ = Domain::new(&s);
        }

        #[test]
        fn url_parse_never_panics(s in ".{0,300}") {
            let _ = Url::parse(&s);
        }

        #[test]
        fn email_parse_never_panics(s in ".{0,300}") {
            let _ = Email::new(&s);
        }
    }
}
