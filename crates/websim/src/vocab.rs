//! Per-category website vocabulary.
//!
//! The generator writes each organization's website using the vocabulary of
//! its true NAICSlite layer-2 category. The two technology categories ASdb's
//! ML classifiers target — ISPs and hosting providers — "use common language
//! and have common descriptors in their websites, which allows humans to
//! quickly identify them" (§4.1); their word lists are therefore the most
//! distinctive. A handful of *trap* vocabularies reproduce the documented
//! false-positive cases (a meteorology institute whose homepage "discusses
//! using high performance computing and data analytics to study (nature's)
//! clouds").

use asdb_taxonomy::{Layer1, Layer2};

/// Generic business boilerplate present on almost every site.
pub static BOILERPLATE: &[&str] = &[
    "welcome", "contact", "team", "careers", "news", "partners", "customers", "quality",
    "experience", "trusted", "leading", "professional", "mission", "values", "support",
];

/// Words ISP websites use heavily — the positive signal for the ISP
/// classifier.
pub static ISP_CORE: &[&str] = &[
    "internet", "broadband", "fiber", "dsl", "wireless", "speeds", "coverage", "unlimited",
    "router", "modem", "plans", "gigabit", "residential", "provider", "bandwidth", "wifi",
    "installation", "subscriber",
];

/// Words hosting/cloud websites use heavily — the positive signal for the
/// hosting classifier.
pub static HOSTING_CORE: &[&str] = &[
    "hosting", "cloud", "server", "servers", "datacenter", "colocation", "vps", "dedicated",
    "uptime", "virtual", "storage", "backup", "managed", "infrastructure", "deploy", "rack",
    "ssd", "provisioning",
];

/// Trap vocabulary: scientific-computing organizations that talk about
/// clouds and performance without being cloud providers (the ASN 133002
/// failure case).
pub static SCIENCE_CLOUD_TRAP: &[&str] = &[
    "cloud", "clouds", "computing", "performance", "data", "analytics", "research", "climate",
    "monsoon", "atmospheric", "simulation", "modeling", "institute", "tropical", "weather",
];

/// Trap vocabulary: electronics retailers whose catalogs mention routers and
/// fiber without being ISPs.
pub static ELECTRONICS_RETAIL_TRAP: &[&str] = &[
    "router", "modem", "wifi", "shop", "cart", "checkout", "deals", "shipping", "warranty",
    "electronics", "accessories", "brands", "returns", "prices",
];

/// Category-specific vocabulary for every NAICSlite layer-2 category.
pub fn vocabulary(l2: Layer2) -> &'static [&'static str] {
    use Layer1::*;
    match (l2.layer1, l2.index()) {
        (ComputerAndIT, 0) => ISP_CORE,
        (ComputerAndIT, 1) => &[
            "phone", "mobile", "calls", "voip", "telephony", "minutes", "roaming", "sim",
            "carrier", "landline", "messaging", "prepaid",
        ],
        (ComputerAndIT, 2) => HOSTING_CORE,
        (ComputerAndIT, 3) => &[
            "security", "firewall", "threat", "malware", "encryption", "penetration",
            "vulnerability", "compliance", "detection", "incident", "forensics", "soc",
        ],
        (ComputerAndIT, 4) => &[
            "software", "development", "applications", "api", "platform", "release", "agile",
            "developers", "sdk", "integration", "product", "features",
        ],
        (ComputerAndIT, 5) => &[
            "consulting", "digital", "transformation", "strategy", "implementation",
            "integration", "advisory", "enterprise", "clients", "solutions", "projects",
        ],
        (ComputerAndIT, 6) => &[
            "satellite", "orbit", "ground", "station", "transponder", "vsat", "uplink",
            "downlink", "constellation", "spacecraft", "teleport",
        ],
        (ComputerAndIT, 7) => &[
            "search", "results", "index", "ranking", "queries", "crawler", "engine",
            "relevance", "answers", "discovery",
        ],
        (ComputerAndIT, 8) => &[
            "peering", "exchange", "ixp", "fabric", "ports", "route", "members", "traffic",
            "interconnection", "latency", "bgp", "aspath",
        ],
        (ComputerAndIT, 9) => &[
            "technology", "digital", "innovation", "systems", "devices", "electronics",
            "automation", "smart", "solutions",
        ],
        (Media, 0) => &[
            "streaming", "watch", "listen", "episodes", "playlists", "subscription", "catalog",
            "originals", "movies", "music", "series",
        ],
        (Media, 1) => &[
            "articles", "stories", "editorial", "coverage", "breaking", "headlines", "opinion",
            "journalism", "reporting", "newsletter",
        ],
        (Media, 2) => &[
            "magazine", "print", "books", "publishing", "editions", "subscriptions",
            "newspaper", "authors", "titles", "imprint",
        ],
        (Media, 3) => &[
            "records", "label", "studio", "artists", "albums", "production", "film", "video",
            "cinema", "releases",
        ],
        (Media, 4) => &[
            "radio", "television", "broadcast", "channel", "station", "programming", "viewers",
            "listeners", "schedule", "transmission",
        ],
        (Media, 5) => &[
            "media", "content", "publishing", "broadcast", "audience", "creative",
        ],
        (Finance, 0) => &[
            "banking", "accounts", "loans", "mortgage", "deposits", "checking", "savings",
            "credit", "branches", "atm", "rates", "lending",
        ],
        (Finance, 1) => &[
            "insurance", "policy", "claims", "coverage", "premiums", "underwriting", "agents",
            "liability", "auto", "life", "property",
        ],
        (Finance, 2) => &[
            "accounting", "tax", "payroll", "bookkeeping", "audit", "returns", "filings",
            "cpa", "compliance", "statements",
        ],
        (Finance, 3) => &[
            "investment", "portfolio", "funds", "pension", "wealth", "asset", "equity",
            "returns", "advisors", "markets", "securities",
        ],
        (Finance, 4) => &[
            "financial", "payments", "transactions", "finance", "fintech", "clearing",
        ],
        (Education, 0) => &[
            "school", "students", "teachers", "classroom", "elementary", "curriculum",
            "parents", "grades", "enrollment", "learning",
        ],
        (Education, 1) => &[
            "university", "campus", "faculty", "students", "degrees", "admissions", "research",
            "academics", "undergraduate", "graduate", "college", "alumni",
        ],
        (Education, 2) => &[
            "training", "courses", "certification", "instruction", "exam", "preparation",
            "lessons", "tuition", "driving", "trade", "skills",
        ],
        (Education, 3) => &[
            "research", "laboratory", "science", "institute", "publications", "grants",
            "scientists", "experiments", "innovation", "studies",
        ],
        (Education, 4) => &[
            "learning", "platform", "courses", "online", "education", "students", "lessons",
            "software", "interactive", "curriculum",
        ],
        (Education, 5) => &["education", "academic", "learning", "knowledge", "teaching"],
        (Service, 0) => &[
            "law", "legal", "attorneys", "consulting", "counsel", "litigation", "advisory",
            "clients", "practice", "firm", "expertise",
        ],
        (Service, 1) => &[
            "repair", "maintenance", "cleaning", "landscaping", "plumbing", "locksmith",
            "pest", "installation", "contractors", "estimates",
        ],
        (Service, 2) => &[
            "salon", "barber", "spa", "beauty", "wellness", "laundry", "stylists",
            "appointments", "grooming", "fitness",
        ],
        (Service, 3) => &[
            "shelter", "assistance", "childcare", "relief", "community", "families",
            "volunteers", "donations", "outreach", "daycare",
        ],
        (Service, 4) => &["services", "clients", "solutions", "local", "reliable"],
        (Agriculture, 0) => &[
            "farm", "crops", "harvest", "organic", "produce", "fields", "seeds", "irrigation",
            "grain", "ranch", "agriculture",
        ],
        (Agriculture, 1) => &[
            "greenhouse", "nursery", "plants", "flowers", "seedlings", "horticulture",
            "garden", "soil", "blooms",
        ],
        (Agriculture, 2) => &[
            "mining", "minerals", "quarry", "extraction", "drilling", "refinery", "petroleum",
            "ore", "coal", "exploration", "wells",
        ],
        (Agriculture, 3) => &[
            "forestry", "timber", "logging", "lumber", "sawmill", "forests", "harvesting",
            "woodland", "sustainable",
        ],
        (Agriculture, 4) => &[
            "livestock", "cattle", "poultry", "dairy", "aquaculture", "fisheries", "herd",
            "feed", "breeding", "hatchery",
        ],
        (Agriculture, 5) => &["agriculture", "land", "rural", "seasonal", "growers"],
        (Nonprofits, 0) => &[
            "church", "faith", "worship", "congregation", "ministry", "parish", "prayer",
            "sermons", "fellowship", "mission",
        ],
        (Nonprofits, 1) => &[
            "rights", "advocacy", "justice", "equality", "campaign", "community", "awareness",
            "petition", "activism", "coalition",
        ],
        (Nonprofits, 2) => &[
            "environment", "wildlife", "conservation", "habitat", "species", "sustainability",
            "ecosystem", "preservation", "nature",
        ],
        (Nonprofits, 3) => &[
            "nonprofit", "charity", "donate", "volunteers", "foundation", "giving",
            "community", "impact", "programs",
        ],
        (Construction, 0) => &[
            "construction", "building", "residential", "commercial", "contractor", "projects",
            "renovation", "architecture", "builders",
        ],
        (Construction, 1) => &[
            "engineering", "infrastructure", "roads", "bridges", "utilities", "excavation",
            "civil", "paving", "highways", "pipelines",
        ],
        (Construction, 2) => &[
            "realestate", "properties", "listings", "homes", "apartments", "leasing", "agents",
            "brokerage", "rentals", "commercial",
        ],
        (Construction, 3) => &["construction", "development", "property", "sites"],
        (Entertainment, 0) => &[
            "library", "archives", "collections", "catalog", "books", "manuscripts",
            "reading", "borrowing", "librarians",
        ],
        (Entertainment, 1) => &[
            "sports", "team", "athletes", "performance", "theater", "concerts", "tickets",
            "season", "arts", "stadium", "matches",
        ],
        (Entertainment, 2) => &[
            "amusement", "park", "rides", "arcade", "fitness", "gym", "attractions", "fun",
            "membership", "family",
        ],
        (Entertainment, 3) => &[
            "museum", "exhibits", "gallery", "history", "zoo", "heritage", "tours",
            "collections", "visitors", "admission",
        ],
        (Entertainment, 4) => &[
            "casino", "gaming", "poker", "slots", "betting", "jackpot", "wagering", "odds",
            "players", "tables",
        ],
        (Entertainment, 5) => &[
            "tours", "sightseeing", "excursions", "guides", "itinerary", "landmarks",
            "cruises", "attractions", "booking",
        ],
        (Entertainment, 6) => &["entertainment", "events", "leisure", "recreation"],
        (Utilities, 0) => &[
            "electric", "power", "grid", "energy", "transmission", "distribution", "outage",
            "meters", "kilowatt", "substations", "utility",
        ],
        (Utilities, 1) => &[
            "gas", "natural", "pipeline", "distribution", "meters", "heating", "supply",
            "utility", "delivery",
        ],
        (Utilities, 2) => &[
            "water", "supply", "irrigation", "reservoir", "pipelines", "drinking",
            "treatment", "wells", "utility",
        ],
        (Utilities, 3) => &[
            "sewage", "wastewater", "treatment", "sanitation", "drainage", "sewer",
            "effluent", "plants",
        ],
        (Utilities, 4) => &[
            "steam", "cooling", "heating", "district", "chilled", "thermal", "supply",
        ],
        (Utilities, 5) => &["utility", "infrastructure", "service", "municipal"],
        (HealthCare, 0) => &[
            "hospital", "patients", "medical", "clinic", "doctors", "emergency", "surgery",
            "care", "physicians", "appointments", "treatment",
        ],
        (HealthCare, 1) => &[
            "laboratory", "diagnostics", "testing", "samples", "results", "imaging",
            "pathology", "screening", "specimens",
        ],
        (HealthCare, 2) => &[
            "nursing", "care", "residents", "assisted", "living", "seniors", "home",
            "facility", "caregivers", "rehabilitation",
        ],
        (HealthCare, 3) => &["health", "wellness", "medical", "clinic", "providers"],
        (Travel, 0) => &[
            "flights", "airline", "destinations", "booking", "airports", "passengers",
            "fares", "boarding", "miles", "checkin",
        ],
        (Travel, 1) => &[
            "rail", "trains", "tickets", "stations", "routes", "passengers", "schedules",
            "platforms", "journeys",
        ],
        (Travel, 2) => &[
            "cruise", "ferry", "sailing", "voyage", "ports", "cabins", "maritime",
            "passengers", "boats",
        ],
        (Travel, 3) => &[
            "hotel", "rooms", "reservations", "guests", "suites", "amenities", "stay",
            "lodging", "hospitality", "booking",
        ],
        (Travel, 4) => &[
            "campground", "rv", "camping", "sites", "outdoor", "hookups", "tents",
            "reservations", "parks",
        ],
        (Travel, 5) => &[
            "dormitory", "boarding", "housing", "residents", "lodging", "rooms",
        ],
        (Travel, 6) => &[
            "restaurant", "menu", "dining", "cuisine", "chef", "reservations", "dishes",
            "bar", "catering", "takeout",
        ],
        (Travel, 7) => &["travel", "trips", "vacation", "destinations", "explore"],
        (Freight, 0) => &[
            "courier", "parcel", "delivery", "postal", "mail", "packages", "express",
            "tracking", "shipment",
        ],
        (Freight, 1) => &[
            "cargo", "airfreight", "charter", "freight", "logistics", "shipments", "customs",
            "handling",
        ],
        (Freight, 2) => &[
            "railroad", "freight", "locomotives", "railcars", "intermodal", "terminals",
            "shipping", "tracks",
        ],
        (Freight, 3) => &[
            "shipping", "vessels", "containers", "maritime", "ports", "cargo", "freight",
            "tonnage", "fleet", "canal", "transit",
        ],
        (Freight, 4) => &[
            "trucking", "fleet", "carriers", "freight", "loads", "drivers", "hauling",
            "logistics", "trailers", "dispatch",
        ],
        (Freight, 5) => &[
            "satellites", "launch", "space", "payload", "orbital", "rockets", "missions",
            "aerospace",
        ],
        (Freight, 6) => &[
            "transit", "bus", "taxi", "subway", "routes", "fares", "passengers", "commute",
            "schedules",
        ],
        (Freight, 7) => &["logistics", "shipping", "freight", "supply", "distribution"],
        (Government, 0) => &[
            "defense", "military", "security", "armed", "forces", "national", "veterans",
            "operations", "strategic",
        ],
        (Government, 1) => &[
            "police", "enforcement", "safety", "justice", "courts", "emergency", "officers",
            "crime", "public",
        ],
        (Government, 2) => &[
            "government", "ministry", "agency", "department", "public", "citizens",
            "regulations", "administration", "municipal", "federal", "services",
        ],
        (Government, 3) => &["government", "official", "public", "national"],
        (Retail, 0) => &[
            "grocery", "supermarket", "fresh", "food", "beverages", "produce", "aisles",
            "savings", "weekly", "deals",
        ],
        (Retail, 1) => &[
            "clothing", "fashion", "apparel", "shoes", "accessories", "collection", "styles",
            "luggage", "brands", "outfits",
        ],
        (Retail, 2) => ELECTRONICS_RETAIL_TRAP,
        (Manufacturing, 0) => &[
            "automotive", "vehicles", "assembly", "parts", "manufacturing", "models",
            "dealers", "engineering", "production",
        ],
        (Manufacturing, 1) => &[
            "food", "beverage", "processing", "production", "brands", "ingredients",
            "packaging", "bottling", "factory",
        ],
        (Manufacturing, 2) => &[
            "textiles", "fabric", "garments", "apparel", "weaving", "manufacturing", "mills",
            "yarn",
        ],
        (Manufacturing, 3) => &[
            "machinery", "equipment", "industrial", "manufacturing", "precision", "tooling",
            "fabrication", "machines",
        ],
        (Manufacturing, 4) => &[
            "pharmaceutical", "chemicals", "compounds", "manufacturing", "formulations",
            "laboratories", "production", "medicines",
        ],
        (Manufacturing, 5) => &[
            "electronics", "semiconductors", "components", "circuits", "manufacturing",
            "capacitors", "sensors", "batteries", "assembly", "pcb",
        ],
        (Manufacturing, 6) => &["manufacturing", "industrial", "factory", "production"],
        (Other, 0) => &["personal", "homepage", "portfolio", "blog", "hobby"],
        (Other, 1) => &["page", "site", "index", "default"],
        _ => &["organization", "information"],
    }
}

/// Internal page names the generator uses, matching the anchor-title
/// keywords the paper's scraper follows (Figure 3).
pub static INTERNAL_PAGES: &[(&str, &str)] = &[
    ("/services", "Our services and solutions"),
    ("/about", "About us - who we are"),
    ("/company", "Company history"),
    ("/network", "Our network coverage"),
    ("/connect", "Connect with us online"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer2_has_vocabulary() {
        for l2 in Layer2::all() {
            let v = vocabulary(l2);
            assert!(v.len() >= 4, "{l2} vocabulary too small ({})", v.len());
        }
    }

    #[test]
    fn isp_and_hosting_vocabularies_are_distinctive() {
        let isp: std::collections::HashSet<_> = ISP_CORE.iter().collect();
        let hosting: std::collections::HashSet<_> = HOSTING_CORE.iter().collect();
        let shared: Vec<_> = isp.intersection(&hosting).collect();
        assert!(shared.is_empty(), "ISP/hosting vocab overlap: {shared:?}");
    }

    #[test]
    fn trap_vocab_shares_hosting_keywords() {
        // The science trap must contain hosting-adjacent words to generate
        // false positives — "cloud", "computing", "performance".
        assert!(SCIENCE_CLOUD_TRAP.contains(&"cloud"));
        assert!(SCIENCE_CLOUD_TRAP.contains(&"computing"));
        // But must not literally contain the strongest hosting markers.
        assert!(!SCIENCE_CLOUD_TRAP.contains(&"hosting"));
        assert!(!SCIENCE_CLOUD_TRAP.contains(&"colocation"));
    }

    #[test]
    fn electronics_trap_shares_isp_keywords() {
        assert!(ELECTRONICS_RETAIL_TRAP.contains(&"router"));
        assert!(ELECTRONICS_RETAIL_TRAP.contains(&"modem"));
        assert!(!ELECTRONICS_RETAIL_TRAP.contains(&"broadband"));
    }

    #[test]
    fn internal_page_titles_contain_scraper_keywords() {
        // Figure 3's keyword list includes "service", "about", "who",
        // "company", "network", "online", "connect", "coverage", "history".
        for (path, title) in INTERNAL_PAGES {
            assert!(path.starts_with('/'));
            assert!(!title.is_empty());
        }
        let all_titles: String = INTERNAL_PAGES
            .iter()
            .map(|(_, t)| t.to_lowercase())
            .collect::<Vec<_>>()
            .join(" ");
        for kw in ["service", "about", "company", "network", "coverage"] {
            assert!(all_titles.contains(kw), "missing scraper keyword {kw}");
        }
    }

    #[test]
    fn vocabularies_are_lowercase_single_words() {
        for l2 in Layer2::all() {
            for w in vocabulary(l2) {
                assert!(!w.contains(' '), "{l2}: {w:?} has a space");
                assert_eq!(*w, w.to_lowercase(), "{l2}: {w:?} not lowercase");
            }
        }
    }
}
