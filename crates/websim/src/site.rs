//! Website generation.
//!
//! Produces a complete [`Website`] — homepage plus internal pages — from a
//! [`SiteSpec`] describing the owning organization. Quirk flags reproduce
//! the failure modes the paper documents:
//!
//! * `text_in_images`: "much of the text is contained in images" — the
//!   descriptive vocabulary is baked into image banners the scraper cannot
//!   read;
//! * `unlinked_internal`: informative internal pages exist but "are often
//!   either not linked from the home page";
//! * `parked` / `placeholder`: "31% do not have a working website, 11% have
//!   an uninformative website (e.g., an Apache test page)" (Appendix B);
//! * `misleading_vocab`: the ASN 133002 trap — a non-tech site written with
//!   cloud/performance vocabulary.

use crate::html::{Link, Page};
use crate::lang::Language;
use crate::vocab::{self, BOILERPLATE, INTERNAL_PAGES};
use asdb_model::{Domain, WorldSeed};
use asdb_taxonomy::Layer2;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Quirks of a generated website.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SiteQuirks {
    /// Descriptive text baked into images instead of markup.
    pub text_in_images: bool,
    /// Informative internal pages exist but are not linked from home.
    pub unlinked_internal: bool,
    /// The site is a parked-domain page with no real content.
    pub parked: bool,
    /// The site is a default web-server test page.
    pub placeholder: bool,
    /// The site uses a trap vocabulary that mimics another category.
    pub misleading_vocab: bool,
}

/// Everything the generator needs to know about a site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSpec {
    /// The site's domain.
    pub domain: Domain,
    /// The owning organization's display name (appears in the homepage
    /// title — the signal "most similar domain" matching relies on).
    pub org_name: String,
    /// The organization's true NAICSlite layer-2 category.
    pub category: Layer2,
    /// The site language.
    pub language: Language,
    /// Quirk flags.
    pub quirks: SiteQuirks,
}

/// A generated website: rendered markup per path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Website {
    /// The domain this site is served on.
    pub domain: Domain,
    /// Markup per site-relative path (`/`, `/about`, …).
    pub pages: BTreeMap<String, String>,
}

impl Website {
    /// Generate the website for a spec. Deterministic per (spec, seed).
    pub fn generate(spec: &SiteSpec, seed: WorldSeed) -> Website {
        let mut rng = StdRng::seed_from_u64(
            seed.derive("website")
                .derive_index(spec.domain.as_str(), 0)
                .value(),
        );
        let mut pages = BTreeMap::new();

        if spec.quirks.parked {
            let page = Page {
                title: format!("{} - domain parked", spec.domain),
                paragraphs: vec![
                    "This domain is parked free, courtesy of the registrar.".into(),
                    "Buy this domain today.".into(),
                ],
                ..Page::default()
            };
            pages.insert("/".to_owned(), page.render());
            return Website {
                domain: spec.domain.clone(),
                pages,
            };
        }
        if spec.quirks.placeholder {
            let page = Page {
                title: "Apache2 Default Page: It works".into(),
                headings: vec!["It works!".into()],
                paragraphs: vec!["This is the default welcome page used to test the correct \
                     operation of the Apache2 server."
                    .into()],
                ..Page::default()
            };
            pages.insert("/".to_owned(), page.render());
            return Website {
                domain: spec.domain.clone(),
                pages,
            };
        }

        let words: Vec<&'static str> = if spec.quirks.misleading_vocab {
            trap_vocabulary(spec.category)
        } else {
            vocab::vocabulary(spec.category)
        }
        .to_vec();

        // Homepage: title carries the org name (domain matching signal),
        // body carries a *light* sample of category vocabulary — the meat
        // is on internal pages ("many pages include service descriptions on
        // inner pages rather than the homepage").
        let home_sentences = compose_sentences(&mut rng, &words, 3, 6);
        let deep_sentences = compose_sentences(&mut rng, &words, 10, 9);

        let mut home = Page {
            title: format!("{} — {}", spec.org_name, tagline(&mut rng, &words)),
            headings: vec![format!("Welcome to {}", spec.org_name)],
            ..Page::default()
        };
        if spec.quirks.text_in_images {
            // Vocabulary hides in banner images; only boilerplate is text.
            home.image_text = home_sentences;
            home.paragraphs = compose_sentences(&mut rng, BOILERPLATE, 2, 6);
        } else {
            home.paragraphs = home_sentences;
        }

        // Internal pages with keyword-bearing anchor titles.
        let n_internal = rng.random_range(2..=INTERNAL_PAGES.len());
        let chosen: Vec<&(&str, &str)> = INTERNAL_PAGES.iter().take(n_internal).collect();
        for (path, anchor) in &chosen {
            if !spec.quirks.unlinked_internal {
                home.links.push(Link {
                    href: (*path).to_owned(),
                    text: (*anchor).to_owned(),
                });
            }
            let body = if spec.quirks.text_in_images {
                Page {
                    title: format!("{} | {}", anchor, spec.org_name),
                    image_text: deep_sentences.clone(),
                    paragraphs: compose_sentences(&mut rng, BOILERPLATE, 1, 5),
                    ..Page::default()
                }
            } else {
                Page {
                    title: format!("{} | {}", anchor, spec.org_name),
                    headings: vec![(*anchor).to_owned()],
                    paragraphs: deep_sentences.clone(),
                    ..Page::default()
                }
            };
            pages.insert((*path).to_owned(), render_in_language(&body, spec.language));
        }
        // An uninformative decoy link (privacy policy) is always present.
        home.links.push(Link {
            href: "/privacy".to_owned(),
            text: "Privacy policy".to_owned(),
        });
        pages.insert(
            "/privacy".to_owned(),
            render_in_language(
                &Page {
                    title: format!("Privacy policy | {}", spec.org_name),
                    paragraphs: vec!["We respect your privacy and protect your data.".into()],
                    ..Page::default()
                },
                spec.language,
            ),
        );
        pages.insert("/".to_owned(), render_in_language(&home, spec.language));
        Website {
            domain: spec.domain.clone(),
            pages,
        }
    }

    /// The homepage markup.
    pub fn homepage(&self) -> Option<&str> {
        self.pages.get("/").map(String::as_str)
    }

    /// The homepage `<title>`, parsed back out of the markup.
    pub fn homepage_title(&self) -> String {
        self.homepage()
            .map(|m| Page::parse(m).title)
            .unwrap_or_default()
    }
}

/// Translate page text into the site language. The org name (title) is kept
/// as-is — brand names don't translate — so domain matching still works on
/// foreign sites.
fn render_in_language(page: &Page, language: Language) -> String {
    if language == Language::English {
        return page.render();
    }
    let mut p = page.clone();
    p.headings = p.headings.iter().map(|h| language.mangle_text(h)).collect();
    p.paragraphs = p
        .paragraphs
        .iter()
        .map(|t| language.mangle_text(t))
        .collect();
    p.image_text = p
        .image_text
        .iter()
        .map(|t| language.mangle_text(t))
        .collect();
    // Anchor texts stay in English-ish navigation (common on real sites,
    // and what keeps cross-language scraping plausible).
    p.render()
}

fn tagline(rng: &mut StdRng, words: &[&str]) -> String {
    let a = words.choose(rng).copied().unwrap_or("services");
    let b = words.choose(rng).copied().unwrap_or("solutions");
    format!("{a} and {b}")
}

fn compose_sentences(rng: &mut StdRng, words: &[&str], n: usize, len: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let mut sentence: Vec<&str> = Vec::with_capacity(len + 2);
            for _ in 0..len {
                sentence.push(words.choose(rng).copied().unwrap_or("services"));
            }
            // Mix in light boilerplate so documents aren't pure topic words.
            if rng.random_bool(0.5) {
                sentence.push(BOILERPLATE.choose(rng).copied().unwrap_or("quality"));
            }
            let mut s = sentence.join(" ");
            s.push('.');
            s
        })
        .collect()
}

/// The trap vocabulary for a misleading site of the given true category.
fn trap_vocabulary(category: Layer2) -> &'static [&'static str] {
    use asdb_taxonomy::Layer1;
    match category.layer1 {
        // Research orgs that talk like cloud providers.
        Layer1::Education => vocab::SCIENCE_CLOUD_TRAP,
        // Retailers that talk like ISPs.
        Layer1::Retail => vocab::ELECTRONICS_RETAIL_TRAP,
        // Anything else leans science-cloud (the documented FP family).
        _ => vocab::SCIENCE_CLOUD_TRAP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;

    fn spec(quirks: SiteQuirks, language: Language) -> SiteSpec {
        SiteSpec {
            domain: Domain::new("acme-hosting.example").unwrap(),
            org_name: "Acme Hosting".into(),
            category: known::hosting(),
            language,
            quirks,
        }
    }

    #[test]
    fn generates_homepage_and_internal_pages() {
        let site = Website::generate(
            &spec(SiteQuirks::default(), Language::English),
            WorldSeed::new(1),
        );
        assert!(site.homepage().is_some());
        assert!(site.pages.len() >= 3);
        assert!(site.homepage_title().contains("Acme Hosting"));
    }

    #[test]
    fn hosting_site_contains_hosting_vocab() {
        let site = Website::generate(
            &spec(SiteQuirks::default(), Language::English),
            WorldSeed::new(2),
        );
        let all_text: String = site
            .pages
            .values()
            .map(|m| Page::parse(m).visible_text().to_lowercase())
            .collect::<Vec<_>>()
            .join(" ");
        let hits = vocab::HOSTING_CORE
            .iter()
            .filter(|w| all_text.contains(*w))
            .count();
        assert!(hits >= 5, "only {hits} hosting words present");
    }

    #[test]
    fn text_in_images_hides_vocab_from_visible_text() {
        let q = SiteQuirks {
            text_in_images: true,
            ..SiteQuirks::default()
        };
        let site = Website::generate(&spec(q, Language::English), WorldSeed::new(3));
        let home = Page::parse(site.homepage().unwrap());
        let visible = home.visible_text().to_lowercase();
        // Strong hosting markers only in image_text.
        let visible_hits = ["colocation", "vps", "datacenter"]
            .iter()
            .filter(|w| visible.contains(*w))
            .count();
        assert_eq!(visible_hits, 0, "vocab leaked into visible text");
        assert!(!home.image_text.is_empty());
    }

    #[test]
    fn unlinked_internal_pages_exist_but_not_linked() {
        let q = SiteQuirks {
            unlinked_internal: true,
            ..SiteQuirks::default()
        };
        let site = Website::generate(&spec(q, Language::English), WorldSeed::new(4));
        let home = Page::parse(site.homepage().unwrap());
        let non_privacy_links = home.links.iter().filter(|l| l.href != "/privacy").count();
        assert_eq!(non_privacy_links, 0);
        assert!(site.pages.len() > 2, "internal pages must still exist");
    }

    #[test]
    fn parked_and_placeholder_sites_are_uninformative() {
        for q in [
            SiteQuirks {
                parked: true,
                ..SiteQuirks::default()
            },
            SiteQuirks {
                placeholder: true,
                ..SiteQuirks::default()
            },
        ] {
            let site = Website::generate(&spec(q, Language::English), WorldSeed::new(5));
            assert_eq!(site.pages.len(), 1);
            let text = Page::parse(site.homepage().unwrap())
                .visible_text()
                .to_lowercase();
            // No category vocabulary may leak (the domain name itself can
            // legitimately contain words like "hosting").
            for w in ["colocation", "datacenter", "vps", "dedicated"] {
                assert!(!text.contains(w), "{w} leaked into {text}");
            }
        }
    }

    #[test]
    fn foreign_sites_keep_org_name_in_title() {
        let site = Website::generate(
            &spec(SiteQuirks::default(), Language::Zonal),
            WorldSeed::new(6),
        );
        assert!(site.homepage_title().contains("Acme Hosting"));
        // But body text is mangled.
        let home = Page::parse(site.homepage().unwrap());
        let body = home.paragraphs.join(" ");
        assert!(body.contains("xzo"), "body should be in Zonal: {body}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Website::generate(
            &spec(SiteQuirks::default(), Language::English),
            WorldSeed::new(7),
        );
        let b = Website::generate(
            &spec(SiteQuirks::default(), Language::English),
            WorldSeed::new(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn misleading_vocab_site_talks_like_the_trap() {
        let mut s = spec(
            SiteQuirks {
                misleading_vocab: true,
                ..SiteQuirks::default()
            },
            Language::English,
        );
        s.category = known::research_orgs();
        let site = Website::generate(&s, WorldSeed::new(8));
        let all: String = site
            .pages
            .values()
            .map(|m| Page::parse(m).visible_text().to_lowercase())
            .collect::<Vec<_>>()
            .join(" ");
        assert!(all.contains("cloud") || all.contains("computing"));
        assert!(!all.contains("colocation"));
    }
}
