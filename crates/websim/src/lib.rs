//! # asdb-websim
//!
//! The synthetic web substrate.
//!
//! The paper's ML pipeline (Figure 3) classifies ASes by scraping the
//! organization's website, translating it to English, and featurizing the
//! text. We cannot scrape the real web, so this crate builds the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! * [`html`]: a small HTML-subset document model with a renderer and a
//!   robust parser — pages really are serialized to markup and re-parsed by
//!   the scraper, so extraction bugs are observable;
//! * [`vocab`]: per-NAICSlite-category vocabulary the generator writes
//!   websites with (including the misleading-keyword traps behind the
//!   paper's false positives, like the meteorology institute whose homepage
//!   "is dominated by keywords like 'cloud', 'computing', and
//!   'performance'");
//! * [`lang`]: 8 synthetic non-English languages implemented as invertible
//!   word transforms, plus the translator that undoes them ("49% of Gold
//!   Standard AS websites are not in English");
//! * [`site`]: the website generator — homepage plus keyword-titled internal
//!   pages, with quirk flags reproducing documented failure modes
//!   (text-in-images, unlinked internal pages, parked domains, Apache test
//!   pages);
//! * [`fetch`]: a simulated HTTP fetcher with deterministic latency and
//!   failure modes behind a [`fetch::Fetcher`] trait;
//! * [`scraper`]: the paper's scraper — root page plus up to five internal
//!   pages whose link titles contain the Figure 3 keyword list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fetch;
pub mod html;
pub mod lang;
pub mod scraper;
pub mod site;
pub mod vocab;

pub use fetch::{FetchError, Fetcher, SimWeb};
pub use html::Page;
pub use lang::{Language, Translator};
pub use scraper::{scrape, ScrapeConfig, ScrapeResult};
pub use site::{SiteQuirks, SiteSpec, Website};
