//! A small HTML-subset document model.
//!
//! Generated sites are rendered to real markup and the scraper re-parses
//! that markup, so the generator and scraper are decoupled exactly like a
//! real crawler and the sites it visits. The subset covers what the
//! pipeline needs: title, headings, paragraphs, anchors, and images with
//! `alt`-less embedded text (which a text scraper cannot see — one of the
//! paper's documented failure modes).

use serde::{Deserialize, Serialize};

/// A hyperlink on a page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Target path (site-relative, e.g. `/about`).
    pub href: String,
    /// The anchor text ("link title" in the paper's scraper description).
    pub text: String,
}

/// A parsed (or generated) web page.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Page {
    /// `<title>` content.
    pub title: String,
    /// `<h1>`/`<h2>` contents in order.
    pub headings: Vec<String>,
    /// `<p>` contents in order.
    pub paragraphs: Vec<String>,
    /// `<a>` elements in order.
    pub links: Vec<Link>,
    /// Text embedded inside images — *invisible* to text extraction.
    pub image_text: Vec<String>,
}

impl Page {
    /// All text a text-scraper can extract: title, headings, paragraphs,
    /// link anchors. Image-embedded text is deliberately excluded.
    pub fn visible_text(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if !self.title.is_empty() {
            parts.push(&self.title);
        }
        parts.extend(self.headings.iter().map(String::as_str));
        parts.extend(self.paragraphs.iter().map(String::as_str));
        parts.extend(self.links.iter().map(|l| l.text.as_str()));
        parts.join("\n")
    }

    /// Render to markup.
    pub fn render(&self) -> String {
        let mut out = String::from("<html><head>");
        out.push_str(&format!("<title>{}</title>", escape(&self.title)));
        out.push_str("</head><body>");
        for h in &self.headings {
            out.push_str(&format!("<h1>{}</h1>", escape(h)));
        }
        for p in &self.paragraphs {
            out.push_str(&format!("<p>{}</p>", escape(p)));
        }
        for l in &self.links {
            out.push_str(&format!(
                "<a href=\"{}\">{}</a>",
                escape(&l.href),
                escape(&l.text)
            ));
        }
        for t in &self.image_text {
            // Text baked into a bitmap: modeled as a data-image whose
            // content never appears as element text.
            out.push_str(&format!("<img data-baked=\"{}\"/>", escape(t)));
        }
        out.push_str("</body></html>");
        out
    }

    /// Parse markup produced by [`Page::render`] (or anything structurally
    /// similar). Unknown tags are skipped; the parser never panics.
    pub fn parse(markup: &str) -> Page {
        let mut page = Page::default();
        let mut rest = markup;
        while let Some(start) = rest.find('<') {
            rest = &rest[start + 1..];
            let Some(end) = rest.find('>') else { break };
            let tag = &rest[..end];
            rest = &rest[end + 1..];
            let (name, attrs) = tag.split_once(char::is_whitespace).unwrap_or((tag, ""));
            match name.to_ascii_lowercase().as_str() {
                "title" => {
                    if let Some((text, r)) = read_text_until(rest, "</title>") {
                        page.title = unescape(&text);
                        rest = r;
                    }
                }
                "h1" | "h2" => {
                    let close = if name.eq_ignore_ascii_case("h1") {
                        "</h1>"
                    } else {
                        "</h2>"
                    };
                    if let Some((text, r)) = read_text_until(rest, close) {
                        page.headings.push(unescape(&text));
                        rest = r;
                    }
                }
                "p" => {
                    if let Some((text, r)) = read_text_until(rest, "</p>") {
                        page.paragraphs.push(unescape(&text));
                        rest = r;
                    }
                }
                "a" => {
                    let href = attr_value(attrs, "href").unwrap_or_default();
                    if let Some((text, r)) = read_text_until(rest, "</a>") {
                        page.links.push(Link {
                            href: unescape(&href),
                            text: unescape(&text),
                        });
                        rest = r;
                    }
                }
                "img" => {
                    if let Some(baked) = attr_value(attrs, "data-baked") {
                        page.image_text.push(unescape(&baked));
                    }
                }
                _ => {}
            }
        }
        page
    }
}

fn read_text_until<'a>(input: &'a str, close: &str) -> Option<(String, &'a str)> {
    let pos = input.to_ascii_lowercase().find(close)?;
    // If another tag opens before the close tag, this element was never
    // properly closed — treat it as malformed and let the outer loop
    // re-scan from the intervening tag instead of swallowing it.
    if input[..pos].contains('<') {
        return None;
    }
    Some((input[..pos].to_owned(), &input[pos + close.len()..]))
}

fn attr_value(attrs: &str, name: &str) -> Option<String> {
    let lower = attrs.to_ascii_lowercase();
    let at = lower.find(&format!("{name}=\""))?;
    let after = &attrs[at + name.len() + 2..];
    let end = after.find('"')?;
    Some(after[..end].to_owned())
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Page {
        Page {
            title: "Acme Hosting — Cloud & Dedicated Servers".into(),
            headings: vec!["Managed hosting".into()],
            paragraphs: vec![
                "We operate datacenters with 24/7 support.".into(),
                "Dedicated servers, VPS, and colocation.".into(),
            ],
            links: vec![
                Link {
                    href: "/services".into(),
                    text: "Our services".into(),
                },
                Link {
                    href: "/about".into(),
                    text: "About us".into(),
                },
            ],
            image_text: vec!["hidden slogan in a banner image".into()],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let p = sample();
        let back = Page::parse(&p.render());
        assert_eq!(p, back);
    }

    #[test]
    fn visible_text_excludes_image_text() {
        let text = sample().visible_text();
        assert!(text.contains("Managed hosting"));
        assert!(text.contains("Our services"));
        assert!(!text.contains("hidden slogan"));
    }

    #[test]
    fn escaping_special_chars() {
        let p = Page {
            title: "a < b & \"c\" > d".into(),
            ..Page::default()
        };
        let back = Page::parse(&p.render());
        assert_eq!(back.title, p.title);
    }

    #[test]
    fn parser_tolerates_garbage() {
        let p = Page::parse("<<<>>><p>ok</p><a href=>broken<a href=\"/x\">fine</a>");
        assert_eq!(p.paragraphs, vec!["ok"]);
        assert!(p.links.iter().any(|l| l.href == "/x"));
    }

    #[test]
    fn parser_handles_unclosed_tags() {
        let p = Page::parse("<title>no close tag at all");
        assert_eq!(p.title, "");
        let p = Page::parse("<p>fine</p><h1>unclosed heading");
        assert_eq!(p.paragraphs, vec!["fine"]);
    }

    #[test]
    fn empty_page() {
        let p = Page::parse("");
        assert_eq!(p, Page::default());
        assert_eq!(p.visible_text(), "");
    }

    proptest! {
        #[test]
        fn parse_never_panics(s in ".{0,800}") {
            let _ = Page::parse(&s);
        }

        #[test]
        fn roundtrip_for_simple_content(
            title in "[a-zA-Z0-9 ]{0,40}",
            paras in proptest::collection::vec("[a-zA-Z0-9 .,]{0,60}", 0..5),
        ) {
            let p = Page {
                title: title.trim().to_owned(),
                paragraphs: paras.iter().map(|s| s.trim().to_owned()).collect(),
                ..Page::default()
            };
            let back = Page::parse(&p.render());
            prop_assert_eq!(back.title, p.title);
            prop_assert_eq!(back.paragraphs, p.paragraphs);
        }
    }
}
