//! Simulated web fetching.
//!
//! The scraper talks to the web through the [`Fetcher`] trait, so it can be
//! pointed at the [`SimWeb`] registry in experiments or at custom stubs in
//! tests. Fetches have a deterministic latency model — "Each AS takes 5–30
//! seconds to scrape, depending on load time and number of internal pages"
//! (§4.1) — and the documented failure modes (unreachable hosts, missing
//! pages).

use crate::site::Website;
use asdb_model::{Domain, Url, WorldSeed};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Why a fetch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchError {
    /// DNS resolution failed / host does not exist.
    NoSuchHost,
    /// Host exists but never answers ("31% do not have a working website").
    Unreachable,
    /// Host answered but the path is missing.
    NotFound,
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FetchError::NoSuchHost => "no such host",
            FetchError::Unreachable => "host unreachable",
            FetchError::NotFound => "page not found",
        })
    }
}

impl std::error::Error for FetchError {}

/// A successful fetch: the markup and how long the request took in
/// simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fetched {
    /// Raw page markup.
    pub markup: String,
    /// Simulated request latency.
    pub latency: Duration,
}

/// Anything the scraper can fetch pages from.
pub trait Fetcher {
    /// Fetch a URL.
    fn fetch(&self, url: &Url) -> Result<Fetched, FetchError>;
}

/// The simulated web: a registry of generated websites plus a set of
/// registered-but-unreachable hosts.
#[derive(Debug, Clone, Default)]
pub struct SimWeb {
    sites: BTreeMap<Domain, Website>,
    unreachable: BTreeMap<Domain, ()>,
    seed: WorldSeed,
}

impl SimWeb {
    /// Empty web.
    pub fn new(seed: WorldSeed) -> SimWeb {
        SimWeb {
            sites: BTreeMap::new(),
            unreachable: BTreeMap::new(),
            seed,
        }
    }

    /// Host a website.
    pub fn host(&mut self, site: Website) {
        self.sites.insert(site.domain.clone(), site);
    }

    /// Register a domain that resolves but never answers.
    pub fn register_unreachable(&mut self, domain: Domain) {
        self.unreachable.insert(domain, ());
    }

    /// Whether a domain hosts a working site.
    pub fn is_live(&self, domain: &Domain) -> bool {
        self.sites.contains_key(domain)
    }

    /// The site at a domain, if any.
    pub fn site(&self, domain: &Domain) -> Option<&Website> {
        self.sites.get(domain)
    }

    /// Number of hosted sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no sites are hosted.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Deterministic per-(domain, path) latency in 200ms–6s, so a 1+5-page
    /// scrape lands in the paper's 5–30s window.
    fn latency(&self, url: &Url) -> Duration {
        let h = self
            .seed
            .derive(url.host.as_str())
            .derive(&url.path)
            .value();
        Duration::from_millis(200 + (h % 5_800))
    }
}

impl Fetcher for SimWeb {
    fn fetch(&self, url: &Url) -> Result<Fetched, FetchError> {
        if self.unreachable.contains_key(&url.host) {
            return Err(FetchError::Unreachable);
        }
        let site = self.sites.get(&url.host).ok_or(FetchError::NoSuchHost)?;
        let markup = site.pages.get(&url.path).ok_or(FetchError::NotFound)?;
        Ok(Fetched {
            markup: markup.clone(),
            latency: self.latency(url),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Language;
    use crate::site::{SiteQuirks, SiteSpec};
    use asdb_taxonomy::naicslite::known;

    fn web() -> SimWeb {
        let mut w = SimWeb::new(WorldSeed::new(1));
        let spec = SiteSpec {
            domain: Domain::new("live.example").unwrap(),
            org_name: "Live Org".into(),
            category: known::isp(),
            language: Language::English,
            quirks: SiteQuirks::default(),
        };
        w.host(Website::generate(&spec, WorldSeed::new(1)));
        w.register_unreachable(Domain::new("dead.example").unwrap());
        w
    }

    #[test]
    fn fetch_existing_page() {
        let w = web();
        let url = Url::root(Domain::new("live.example").unwrap());
        let f = w.fetch(&url).unwrap();
        assert!(f.markup.contains("Live Org"));
        assert!(f.latency >= Duration::from_millis(200));
        assert!(f.latency <= Duration::from_secs(6));
    }

    #[test]
    fn fetch_error_modes() {
        let w = web();
        let missing = Url::with_path(Domain::new("live.example").unwrap(), "/nope");
        assert_eq!(w.fetch(&missing).unwrap_err(), FetchError::NotFound);
        let dead = Url::root(Domain::new("dead.example").unwrap());
        assert_eq!(w.fetch(&dead).unwrap_err(), FetchError::Unreachable);
        let unknown = Url::root(Domain::new("ghost.example").unwrap());
        assert_eq!(w.fetch(&unknown).unwrap_err(), FetchError::NoSuchHost);
    }

    #[test]
    fn latency_is_deterministic() {
        let w = web();
        let url = Url::root(Domain::new("live.example").unwrap());
        assert_eq!(
            w.fetch(&url).unwrap().latency,
            w.fetch(&url).unwrap().latency
        );
    }

    #[test]
    fn is_live_reflects_hosting() {
        let w = web();
        assert!(w.is_live(&Domain::new("live.example").unwrap()));
        assert!(!w.is_live(&Domain::new("dead.example").unwrap()));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }
}
