//! Synthetic languages and the translator that undoes them.
//!
//! "Since 49% of Gold Standard AS websites are not in English, we translate
//! scraped text to English using Chrome's Google Translate" (§4.1). The
//! real web's language diversity is replaced by eight synthetic languages,
//! each an *invertible word transform* of English: a language-specific
//! prefix/suffix mangling that the [`Translator`] strips. Translation is
//! deliberately lossy at a small configurable rate — real MT also garbles
//! words — so the ML pipeline sees realistic post-translation text.

use asdb_model::WorldSeed;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A website language. `English` passes text through unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // Names are evocative of the transform, not of real locales.
pub enum Language {
    English,
    Zonal,
    Vexic,
    Quorin,
    Navese,
    Kirish,
    Ostal,
    Melodian,
    Tarvic,
}

impl Language {
    /// All non-English languages.
    pub const NON_ENGLISH: [Language; 8] = [
        Language::Zonal,
        Language::Vexic,
        Language::Quorin,
        Language::Navese,
        Language::Kirish,
        Language::Ostal,
        Language::Melodian,
        Language::Tarvic,
    ];

    /// The word-level suffix marker this language appends.
    fn suffix(self) -> &'static str {
        match self {
            Language::English => "",
            Language::Zonal => "zo",
            Language::Vexic => "vex",
            Language::Quorin => "qu",
            Language::Navese => "nav",
            Language::Kirish => "ki",
            Language::Ostal => "ost",
            Language::Melodian => "mel",
            Language::Tarvic => "tar",
        }
    }

    /// Transform an English word into this language.
    pub fn mangle_word(self, word: &str) -> String {
        if self == Language::English || word.is_empty() {
            return word.to_owned();
        }
        format!("{}x{}", word, self.suffix())
    }

    /// Transform whole text (word-by-word, preserving whitespace shape).
    pub fn mangle_text(self, text: &str) -> String {
        if self == Language::English {
            return text.to_owned();
        }
        text.split('\n')
            .map(|line| {
                line.split(' ')
                    .map(|w| self.mangle_word(w))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Detect the language of a text by its dominant suffix marker.
    pub fn detect(text: &str) -> Language {
        let mut counts = [0usize; 8];
        let mut words = 0usize;
        for w in text.split_whitespace() {
            words += 1;
            for (i, lang) in Language::NON_ENGLISH.iter().enumerate() {
                let marker = format!("x{}", lang.suffix());
                if w.to_lowercase().ends_with(&marker) {
                    counts[i] += 1;
                }
            }
        }
        if words == 0 {
            return Language::English;
        }
        let (best, &n) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("fixed-size array");
        if n * 2 >= words {
            Language::NON_ENGLISH[best]
        } else {
            Language::English
        }
    }
}

/// A simulated machine translator: detects the language, strips its marker,
/// and loses a small fraction of words (as real MT does with proper nouns
/// and OCR-ish noise).
#[derive(Debug, Clone)]
pub struct Translator {
    /// Fraction of words dropped/garbled during translation.
    pub loss_rate: f64,
    seed: WorldSeed,
}

impl Translator {
    /// A translator with a given word-loss rate.
    pub fn new(loss_rate: f64, seed: WorldSeed) -> Translator {
        assert!((0.0..=1.0).contains(&loss_rate), "loss_rate in [0,1]");
        Translator { loss_rate, seed }
    }

    /// A lossless translator, for tests.
    pub fn perfect(seed: WorldSeed) -> Translator {
        Translator::new(0.0, seed)
    }

    /// Translate text to English. English input passes through unchanged
    /// (and without loss — the translator is only invoked on foreign text
    /// in the pipeline, but being idempotent on English is safer).
    pub fn translate(&self, text: &str) -> String {
        let lang = Language::detect(text);
        if lang == Language::English {
            return text.to_owned();
        }
        let marker = format!("x{}", lang.suffix());
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .derive_index("translate", text.len() as u64)
                .value(),
        );
        text.split('\n')
            .map(|line| {
                line.split(' ')
                    .filter_map(|w| {
                        let restored = strip_marker(w, &marker);
                        if self.loss_rate > 0.0 && rng.random_bool(self.loss_rate) {
                            None
                        } else {
                            Some(restored)
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Strip a language marker from a word, preserving trailing punctuation.
fn strip_marker(word: &str, marker: &str) -> String {
    let trailing: String = word
        .chars()
        .rev()
        .take_while(|c| !c.is_alphanumeric())
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let core = &word[..word.len() - trailing.len()];
    let stripped = core
        .strip_suffix(marker)
        .or_else(|| {
            // Case-tolerant strip.
            if core.to_lowercase().ends_with(marker) {
                Some(&core[..core.len() - marker.len()])
            } else {
                None
            }
        })
        .unwrap_or(core);
    format!("{stripped}{trailing}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn english_passes_through() {
        let t = "fast fiber internet for your home";
        assert_eq!(Language::English.mangle_text(t), t);
        assert_eq!(Language::detect(t), Language::English);
        let tr = Translator::perfect(WorldSeed::new(1));
        assert_eq!(tr.translate(t), t);
    }

    #[test]
    fn mangle_detect_translate_roundtrip() {
        let original = "cloud hosting dedicated servers with managed support";
        for lang in Language::NON_ENGLISH {
            let foreign = lang.mangle_text(original);
            assert_ne!(foreign, original);
            assert_eq!(Language::detect(&foreign), lang, "{lang:?}");
            let back = Translator::perfect(WorldSeed::new(2)).translate(&foreign);
            assert_eq!(back, original, "{lang:?}");
        }
    }

    #[test]
    fn punctuation_survives_roundtrip() {
        let original = "welcome to acme, the best provider!";
        let foreign = Language::Zonal.mangle_text(original);
        let back = Translator::perfect(WorldSeed::new(3)).translate(&foreign);
        assert_eq!(back, original);
    }

    #[test]
    fn lossy_translation_drops_words() {
        let original: String = (0..200)
            .map(|i| format!("word{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        let foreign = Language::Vexic.mangle_text(&original);
        let tr = Translator::new(0.3, WorldSeed::new(4));
        let back = tr.translate(&foreign);
        let kept = back.split_whitespace().count();
        assert!(kept < 190, "expected losses, kept {kept}");
        assert!(kept > 100, "too much loss, kept {kept}");
    }

    #[test]
    fn detection_threshold() {
        // Mostly-English text with one foreign word stays English.
        let mixed = "plain english text with one wordxzo marker";
        assert_eq!(Language::detect(mixed), Language::English);
        assert_eq!(Language::detect(""), Language::English);
    }

    #[test]
    fn suffixes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for l in Language::NON_ENGLISH {
            assert!(seen.insert(l.suffix()), "duplicate suffix {}", l.suffix());
        }
    }

    proptest! {
        #[test]
        fn translate_never_panics(s in ".{0,300}") {
            let tr = Translator::new(0.1, WorldSeed::new(5));
            let _ = tr.translate(&s);
        }

        #[test]
        fn roundtrip_on_clean_words(
            words in proptest::collection::vec("[a-z]{2,10}", 1..20)
        ) {
            let original = words.join(" ");
            for lang in [Language::Quorin, Language::Tarvic] {
                let foreign = lang.mangle_text(&original);
                let back = Translator::perfect(WorldSeed::new(6)).translate(&foreign);
                prop_assert_eq!(&back, &original);
            }
        }
    }
}
