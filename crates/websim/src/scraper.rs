//! The website scraper (left half of Figure 3).
//!
//! "Our ML pipeline accepts a single domain as input and scrapes the text
//! from the root page of the website hosted at the domain. … We configure
//! our scraper to visit up to five internal pages whose link titles contain
//! a list of these keywords" (§4.1). The keyword list is printed in
//! Figure 3 and reproduced as [`SCRAPER_KEYWORDS`].

use crate::fetch::{FetchError, Fetcher};
use crate::html::Page;
use asdb_model::{Domain, Url};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The Figure 3 keyword list: words that "most frequently appear in the
/// page titles of internal pages containing organization information".
pub static SCRAPER_KEYWORDS: &[&str] = &[
    "service", "solution", "about", "who", "do", "it", "us", "our", "company", "network", "online",
    "connect", "coverage", "history",
];

/// Scraper configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrapeConfig {
    /// Maximum internal pages to follow (the paper uses 5).
    pub max_internal_pages: usize,
    /// Keywords an anchor title must contain to be followed.
    pub keywords: Vec<String>,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            max_internal_pages: 5,
            keywords: SCRAPER_KEYWORDS.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

/// The outcome of scraping one domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrapeResult {
    /// Concatenated visible text of all visited pages.
    pub text: String,
    /// Paths visited, root first.
    pub visited: Vec<String>,
    /// Total simulated wall-clock time.
    pub duration: Duration,
}

impl ScrapeResult {
    /// Whether any meaningful text came back.
    pub fn is_substantive(&self) -> bool {
        self.text.split_whitespace().count() >= 10
    }
}

/// Scrape a domain: fetch the root page, then up to
/// `config.max_internal_pages` same-site links whose anchor text contains a
/// configured keyword (case-insensitive). Returns the fetch error only if
/// the *root* page is unavailable; internal-page failures are skipped.
pub fn scrape<F: Fetcher>(
    fetcher: &F,
    domain: &Domain,
    config: &ScrapeConfig,
) -> Result<ScrapeResult, FetchError> {
    let root_url = Url::root(domain.clone());
    let root = fetcher.fetch(&root_url)?;
    let mut duration = root.latency;
    let root_page = Page::parse(&root.markup);
    let mut text = root_page.visible_text();
    let mut visited = vec!["/".to_owned()];

    let mut followed = 0usize;
    for link in &root_page.links {
        if followed >= config.max_internal_pages {
            break;
        }
        if !is_internal(&link.href) {
            continue;
        }
        let anchor = link.text.to_lowercase();
        let matches = config
            .keywords
            .iter()
            .any(|k| anchor.split(|c: char| !c.is_alphanumeric()).any(|w| w == k));
        if !matches {
            continue;
        }
        let url = Url::with_path(domain.clone(), &link.href);
        match fetcher.fetch(&url) {
            Ok(f) => {
                duration += f.latency;
                let page = Page::parse(&f.markup);
                text.push('\n');
                text.push_str(&page.visible_text());
                visited.push(link.href.clone());
                followed += 1;
            }
            Err(_) => continue,
        }
    }
    Ok(ScrapeResult {
        text,
        visited,
        duration,
    })
}

fn is_internal(href: &str) -> bool {
    href.starts_with('/') && !href.starts_with("//")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::{Fetched, SimWeb};
    use crate::lang::Language;
    use crate::site::{SiteQuirks, SiteSpec, Website};
    use asdb_model::WorldSeed;
    use asdb_taxonomy::naicslite::known;

    fn hosted(quirks: SiteQuirks) -> (SimWeb, Domain) {
        let domain = Domain::new("scrapeme.example").unwrap();
        let spec = SiteSpec {
            domain: domain.clone(),
            org_name: "Scrape Me Hosting".into(),
            category: known::hosting(),
            language: Language::English,
            quirks,
        };
        let mut web = SimWeb::new(WorldSeed::new(42));
        web.host(Website::generate(&spec, WorldSeed::new(42)));
        (web, domain)
    }

    #[test]
    fn scrapes_root_and_keyword_internal_pages() {
        let (web, domain) = hosted(SiteQuirks::default());
        let r = scrape(&web, &domain, &ScrapeConfig::default()).unwrap();
        assert!(r.visited.len() >= 2, "visited: {:?}", r.visited);
        assert!(r.visited[0] == "/");
        assert!(r.is_substantive());
        assert!(r.text.to_lowercase().contains("hosting"));
        // The privacy decoy must NOT be followed (no keyword in anchor).
        assert!(!r.visited.contains(&"/privacy".to_owned()));
    }

    #[test]
    fn respects_max_internal_pages() {
        let (web, domain) = hosted(SiteQuirks::default());
        let cfg = ScrapeConfig {
            max_internal_pages: 1,
            ..ScrapeConfig::default()
        };
        let r = scrape(&web, &domain, &cfg).unwrap();
        assert!(r.visited.len() <= 2);
    }

    #[test]
    fn unlinked_internal_pages_are_missed() {
        // The paper's 67%-of-false-negatives case: informative pages exist
        // but the scraper can't find them.
        let (web, domain) = hosted(SiteQuirks {
            unlinked_internal: true,
            ..SiteQuirks::default()
        });
        let r = scrape(&web, &domain, &ScrapeConfig::default()).unwrap();
        assert_eq!(r.visited, vec!["/"]);
    }

    #[test]
    fn text_in_images_starves_the_scraper() {
        let (web, domain) = hosted(SiteQuirks {
            text_in_images: true,
            ..SiteQuirks::default()
        });
        let r = scrape(&web, &domain, &ScrapeConfig::default()).unwrap();
        let lower = r.text.to_lowercase();
        assert!(!lower.contains("colocation"));
        assert!(!lower.contains("vps"));
    }

    #[test]
    fn root_failure_propagates() {
        let web = SimWeb::new(WorldSeed::new(1));
        let err = scrape(
            &web,
            &Domain::new("missing.example").unwrap(),
            &ScrapeConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, FetchError::NoSuchHost);
    }

    #[test]
    fn internal_fetch_failures_are_skipped() {
        struct Flaky;
        impl Fetcher for Flaky {
            fn fetch(&self, url: &Url) -> Result<Fetched, FetchError> {
                if url.path == "/" {
                    let page = Page {
                        title: "Root".into(),
                        links: vec![
                            crate::html::Link {
                                href: "/about".into(),
                                text: "About us".into(),
                            },
                            crate::html::Link {
                                href: "/services".into(),
                                text: "Our services".into(),
                            },
                        ],
                        paragraphs: vec!["root text".into()],
                        ..Page::default()
                    };
                    Ok(Fetched {
                        markup: page.render(),
                        latency: Duration::from_millis(10),
                    })
                } else if url.path == "/services" {
                    Ok(Fetched {
                        markup: Page {
                            title: "Services".into(),
                            paragraphs: vec!["service text".into()],
                            ..Page::default()
                        }
                        .render(),
                        latency: Duration::from_millis(10),
                    })
                } else {
                    Err(FetchError::NotFound)
                }
            }
        }
        let r = scrape(
            &Flaky,
            &Domain::new("flaky.example").unwrap(),
            &ScrapeConfig::default(),
        )
        .unwrap();
        assert_eq!(r.visited, vec!["/", "/services"]);
        assert!(r.text.contains("service text"));
    }

    #[test]
    fn external_links_not_followed() {
        struct External;
        impl Fetcher for External {
            fn fetch(&self, url: &Url) -> Result<Fetched, FetchError> {
                assert_eq!(url.host.as_str(), "self.example", "left the site!");
                let page = Page {
                    title: "Root".into(),
                    links: vec![crate::html::Link {
                        href: "//evil.example/about".into(),
                        text: "About us".into(),
                    }],
                    ..Page::default()
                };
                Ok(Fetched {
                    markup: page.render(),
                    latency: Duration::from_millis(1),
                })
            }
        }
        let r = scrape(
            &External,
            &Domain::new("self.example").unwrap(),
            &ScrapeConfig::default(),
        )
        .unwrap();
        assert_eq!(r.visited, vec!["/"]);
    }

    #[test]
    fn durations_accumulate() {
        let (web, domain) = hosted(SiteQuirks::default());
        let r = scrape(&web, &domain, &ScrapeConfig::default()).unwrap();
        assert!(r.duration >= Duration::from_millis(200 * r.visited.len() as u64));
    }
}
