//! The Dhamdhere & Dovrolis-style topological baseline (§2).
//!
//! "Dhamdhere and Dovrolis use topological properties of ASes to infer
//! broad AS types (enterprise customers, small and large transit providers,
//! access/hosting providers, and content providers) with an accuracy of
//! 76–82%." The inference here uses the same class of features — customer
//! cone, customer/peer/provider counts — over the synthetic AS graph, and
//! never sees WHOIS or ground truth.

use asdb_model::Asn;
use asdb_taxonomy::naicslite::known;
use asdb_taxonomy::{CategorySet, Layer1};
use asdb_worldgen::topology::AsGraph;
use serde::{Deserialize, Serialize};

/// The broad AS types of the topological lineage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopoClass {
    /// Large transit provider.
    LargeTransit,
    /// Small/regional transit provider.
    SmallTransit,
    /// Access/hosting provider.
    AccessHosting,
    /// Content provider.
    Content,
    /// Enterprise customer (the default leaf).
    Enterprise,
}

impl TopoClass {
    /// All five classes.
    pub const ALL: [TopoClass; 5] = [
        TopoClass::LargeTransit,
        TopoClass::SmallTransit,
        TopoClass::AccessHosting,
        TopoClass::Content,
        TopoClass::Enterprise,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TopoClass::LargeTransit => "large transit",
            TopoClass::SmallTransit => "small transit",
            TopoClass::AccessHosting => "access/hosting",
            TopoClass::Content => "content",
            TopoClass::Enterprise => "enterprise",
        }
    }

    /// Project gold NAICSlite labels onto the five-way scheme for scoring.
    /// Network operators are transit/access, hosting and media are
    /// content-side, everything else is an enterprise customer.
    pub fn project(labels: &CategorySet) -> TopoClass {
        let l2s = labels.layer2s();
        if l2s.contains(&known::isp())
            || l2s.contains(&known::ixp())
            || l2s.contains(&known::phone())
        {
            // Gold labels can't distinguish large from small transit; the
            // comparison collapses the two (as the original evaluation
            // effectively did when validating against registries).
            TopoClass::SmallTransit
        } else if l2s.contains(&known::hosting()) {
            TopoClass::AccessHosting
        } else if l2s.contains(&known::search_engine()) || labels.layer1s().contains(&Layer1::Media)
        {
            TopoClass::Content
        } else {
            TopoClass::Enterprise
        }
    }

    /// Whether a prediction counts as correct for a gold projection,
    /// collapsing the transit-size split the labels cannot express.
    pub fn matches(self, truth: TopoClass) -> bool {
        let collapse = |c: TopoClass| match c {
            TopoClass::LargeTransit | TopoClass::SmallTransit => 0u8,
            TopoClass::AccessHosting => 1,
            TopoClass::Content => 2,
            TopoClass::Enterprise => 3,
        };
        collapse(self) == collapse(truth)
    }
}

impl std::fmt::Display for TopoClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Degree/cone-threshold classifier over an [`AsGraph`].
#[derive(Debug, Clone, Copy)]
pub struct TopoClassifier {
    /// Customer-cone size above which an AS is "large transit".
    pub large_cone: usize,
    /// Customer count above which an AS sells transit at all.
    pub min_customers: usize,
    /// Peer count above which a customer-free AS reads as content.
    pub content_peers: usize,
}

impl Default for TopoClassifier {
    fn default() -> Self {
        TopoClassifier {
            large_cone: 50,
            min_customers: 1,
            content_peers: 3,
        }
    }
}

impl TopoClassifier {
    /// Classify one AS from topology alone.
    pub fn classify(&self, graph: &AsGraph, asn: Asn) -> TopoClass {
        let customers = graph.customers(asn).len();
        let peers = graph.peers(asn).len();
        if customers >= self.min_customers {
            let cone = graph.customer_cone(asn);
            if cone >= self.large_cone {
                TopoClass::LargeTransit
            } else {
                TopoClass::SmallTransit
            }
        } else if peers >= self.content_peers {
            TopoClass::Content
        } else if peers > 0 {
            TopoClass::AccessHosting
        } else {
            TopoClass::Enterprise
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::{World, WorldConfig};

    fn setup() -> (World, AsGraph) {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(205)));
        let g = AsGraph::generate(&w, WorldSeed::new(206));
        (w, g)
    }

    #[test]
    fn accuracy_in_the_prior_work_band() {
        let (w, g) = setup();
        let clf = TopoClassifier::default();
        let (mut ok, mut n) = (0usize, 0usize);
        for rec in &w.ases {
            let org = w.org(rec.org).unwrap();
            let truth = TopoClass::project(&org.truth());
            let pred = clf.classify(&g, rec.asn);
            n += 1;
            ok += usize::from(pred.matches(truth));
        }
        let acc = ok as f64 / n as f64;
        // Prior work: 76–82%. Generous band — the claim is "useful but
        // clearly below ASdb".
        assert!(acc > 0.55 && acc < 0.93, "topological accuracy = {acc}");
    }

    #[test]
    fn transit_detection_is_strong() {
        let (w, g) = setup();
        let clf = TopoClassifier::default();
        let (mut ok, mut n) = (0usize, 0usize);
        for rec in &w.ases {
            let org = w.org(rec.org).unwrap();
            if TopoClass::project(&org.truth()) == TopoClass::SmallTransit {
                n += 1;
                let pred = clf.classify(&g, rec.asn);
                ok += usize::from(matches!(
                    pred,
                    TopoClass::SmallTransit | TopoClass::LargeTransit
                ));
            }
        }
        // Only transit *sellers* are detectable: access ISPs with no
        // customers of their own look like leaves, which is exactly the
        // known weakness of topological inference.
        let recall = ok as f64 / n.max(1) as f64;
        assert!(recall > 0.15, "transit recall = {recall}");
    }

    #[test]
    fn thresholds_change_the_split() {
        let (w, g) = setup();
        let loose = TopoClassifier {
            large_cone: 5,
            ..TopoClassifier::default()
        };
        let strict = TopoClassifier {
            large_cone: 500,
            ..TopoClassifier::default()
        };
        let count_large = |clf: &TopoClassifier| {
            w.ases
                .iter()
                .filter(|r| clf.classify(&g, r.asn) == TopoClass::LargeTransit)
                .count()
        };
        assert!(count_large(&loose) > count_large(&strict));
    }
}
