//! The Dimitropoulos et al. / CAIDA baseline (§2).
//!
//! "Dimitropolous et al. employed text classification on AS WHOIS data to
//! categorize ASes into six categories (large and small ISP, IXP, customer,
//! university, network information centers) with a reported 95% coverage
//! and 78% accuracy. Until January 2021, CAIDA provided a dataset based on
//! \[this\] methodology … which coarsely categorized ASes as
//! 'transit/access', 'enterprise', or 'content'."
//!
//! The classifier here is the same species: keyword scoring over the WHOIS
//! name/description text, with abstention when no keyword family fires.

use asdb_rir::ParsedWhois;
use asdb_taxonomy::naicslite::known;
use asdb_taxonomy::{CategorySet, Layer1};
use serde::{Deserialize, Serialize};

/// The coarse three-way CAIDA classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaidaClass {
    /// "transit/access" — network operators.
    TransitAccess,
    /// "enterprise" — everyone else with an AS.
    Enterprise,
    /// "content" — hosting/content delivery.
    Content,
}

impl CaidaClass {
    /// All three classes.
    pub const ALL: [CaidaClass; 3] = [
        CaidaClass::TransitAccess,
        CaidaClass::Enterprise,
        CaidaClass::Content,
    ];

    /// Display name as the dataset printed it.
    pub fn name(self) -> &'static str {
        match self {
            CaidaClass::TransitAccess => "transit/access",
            CaidaClass::Enterprise => "enterprise",
            CaidaClass::Content => "content",
        }
    }

    /// Project NAICSlite gold labels onto the three-way scheme, for
    /// scoring.
    pub fn project(labels: &CategorySet) -> CaidaClass {
        let l2s = labels.layer2s();
        if l2s.contains(&known::isp())
            || l2s.contains(&known::phone())
            || l2s.contains(&known::ixp())
            || l2s.contains(&known::satellite())
        {
            CaidaClass::TransitAccess
        } else if l2s.contains(&known::hosting())
            || l2s.contains(&known::search_engine())
            || labels.layer1s().contains(&Layer1::Media)
        {
            CaidaClass::Content
        } else {
            CaidaClass::Enterprise
        }
    }
}

impl std::fmt::Display for CaidaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Keyword families for the six fine classes, applied to lower-cased WHOIS
/// text. Deliberately of-its-era: these are the kinds of token lists the
/// 2006 work used, which is also why its accuracy decays on modern WHOIS.
static TRANSIT_KEYWORDS: &[&str] = &[
    "telecom",
    "communications",
    "network",
    "networks",
    "net",
    "isp",
    "internet",
    "broadband",
    "telekom",
    "telecommunications",
    "carrier",
    "backbone",
    "exchange",
];
static UNIVERSITY_KEYWORDS: &[&str] = &[
    "university",
    "college",
    "institute",
    "academy",
    "school",
    "education",
    "research",
];
static CONTENT_KEYWORDS: &[&str] = &[
    "hosting",
    "host",
    "datacenter",
    "cloud",
    "server",
    "colocation",
    "media",
    "broadcasting",
    "publishing",
    "online",
    "digital",
    "web",
];
static IXP_KEYWORDS: &[&str] = &["ixp", "exchange point", "peering"];

/// The keyword classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaidaClassifier;

impl CaidaClassifier {
    /// Classify a WHOIS record into the coarse three-way scheme. `None`
    /// means the classifier abstains (no keyword family fired) — the
    /// coverage loss the paper measured at 28%.
    pub fn classify(&self, whois: &ParsedWhois) -> Option<CaidaClass> {
        let mut text = whois.name.to_lowercase();
        text.push(' ');
        text.push_str(&whois.as_name.to_lowercase());
        let score = |keys: &[&str]| -> usize {
            keys.iter()
                .filter(|k| text.split(|c: char| !c.is_alphanumeric()).any(|t| t == **k))
                .count()
        };
        let transit = score(TRANSIT_KEYWORDS) + score(IXP_KEYWORDS);
        let university = score(UNIVERSITY_KEYWORDS);
        let content = score(CONTENT_KEYWORDS);
        // "Enterprise" was effectively the residual class for records with
        // *some* recognizable business token; full abstention otherwise.
        let business_tokens = [
            "bank",
            "insurance",
            "hospital",
            "government",
            "ministry",
            "industries",
            "manufacturing",
            "logistics",
            "energy",
            "power",
            "farms",
            "stores",
            "group",
            "consulting",
            "services",
            "corp",
            "inc",
            "llc",
            "gmbh",
            "ltd",
        ];
        let enterprise = score(&business_tokens);

        let best = transit.max(university).max(content).max(enterprise);
        if best == 0 {
            return None;
        }
        Some(if transit == best {
            CaidaClass::TransitAccess
        } else if content == best {
            CaidaClass::Content
        } else {
            // Universities were "customer" in the six-way scheme, folded
            // into enterprise in the three-way dataset.
            CaidaClass::Enterprise
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::{World, WorldConfig};

    #[test]
    fn projection_covers_gold_space() {
        let mut isp = CategorySet::new();
        isp.insert(asdb_taxonomy::Category::l2(known::isp()));
        assert_eq!(CaidaClass::project(&isp), CaidaClass::TransitAccess);
        let mut host = CategorySet::new();
        host.insert(asdb_taxonomy::Category::l2(known::hosting()));
        assert_eq!(CaidaClass::project(&host), CaidaClass::Content);
        let mut bank = CategorySet::new();
        bank.insert(asdb_taxonomy::Category::l2(known::banks()));
        assert_eq!(CaidaClass::project(&bank), CaidaClass::Enterprise);
    }

    #[test]
    fn keyword_classification_is_plausible_but_imperfect() {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(201)));
        let clf = CaidaClassifier;
        let (mut covered, mut correct) = (0usize, 0usize);
        let mut per_class_n = [0usize; 3];
        let mut per_class_ok = [0usize; 3];
        for rec in &w.ases {
            let org = w.org(rec.org).unwrap();
            let truth = CaidaClass::project(&org.truth());
            let Some(pred) = clf.classify(&rec.parsed) else {
                continue;
            };
            covered += 1;
            let idx = CaidaClass::ALL.iter().position(|c| *c == truth).unwrap();
            per_class_n[idx] += 1;
            if pred == truth {
                correct += 1;
                per_class_ok[idx] += 1;
            }
        }
        let coverage = covered as f64 / w.ases.len() as f64;
        let accuracy = correct as f64 / covered.max(1) as f64;
        // Paper's measurement of the aged dataset: 72% coverage, mixed
        // accuracy (58/75/0 per class). We assert the same *texture*:
        // partial coverage, middling accuracy, content much worse than
        // transit.
        assert!(coverage > 0.5 && coverage < 0.98, "coverage = {coverage}");
        assert!(accuracy > 0.45 && accuracy < 0.92, "accuracy = {accuracy}");
        let content_acc = per_class_ok[2] as f64 / per_class_n[2].max(1) as f64;
        let transit_acc = per_class_ok[0] as f64 / per_class_n[0].max(1) as f64;
        assert!(
            content_acc < transit_acc,
            "content {content_acc} should trail transit {transit_acc}"
        );
    }

    #[test]
    fn abstains_on_empty_text() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(202)));
        let mut whois = w.ases[0].parsed.clone();
        whois.name = "zzqx".into();
        whois.as_name = "zzqx".into();
        assert!(CaidaClassifier.classify(&whois).is_none());
    }
}
