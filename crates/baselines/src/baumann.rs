//! The Baumann & Fabian baseline (§2).
//!
//! "Baumann and Fabian performed a keyword analysis of WHOIS data to
//! classify ASes into 10 categories (communication, construction,
//! consulting, education, entertainment, finance, healthcare, transport,
//! travel, and utilities) with 57% coverage." Technology beyond
//! "communication" is unrepresentable, which is the structural limit ASdb's
//! 95-category system removes ("tenfold more categories than in prior AS
//! classification work").

use asdb_rir::ParsedWhois;
use asdb_taxonomy::{CategorySet, Layer1};
use serde::{Deserialize, Serialize};

/// Baumann & Fabian's ten industries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BaumannClass {
    Communication,
    Construction,
    Consulting,
    Education,
    Entertainment,
    Finance,
    Healthcare,
    Transport,
    Travel,
    Utilities,
}

impl BaumannClass {
    /// All ten classes.
    pub const ALL: [BaumannClass; 10] = [
        BaumannClass::Communication,
        BaumannClass::Construction,
        BaumannClass::Consulting,
        BaumannClass::Education,
        BaumannClass::Entertainment,
        BaumannClass::Finance,
        BaumannClass::Healthcare,
        BaumannClass::Transport,
        BaumannClass::Travel,
        BaumannClass::Utilities,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaumannClass::Communication => "communication",
            BaumannClass::Construction => "construction",
            BaumannClass::Consulting => "consulting",
            BaumannClass::Education => "education",
            BaumannClass::Entertainment => "entertainment",
            BaumannClass::Finance => "finance",
            BaumannClass::Healthcare => "healthcare",
            BaumannClass::Transport => "transport",
            BaumannClass::Travel => "travel",
            BaumannClass::Utilities => "utilities",
        }
    }

    /// Keyword family.
    fn keywords(self) -> &'static [&'static str] {
        match self {
            BaumannClass::Communication => &[
                "telecom",
                "communications",
                "network",
                "networks",
                "internet",
                "broadband",
                "media",
                "broadcasting",
                "telekom",
                "online",
                "digital",
                "net",
                "hosting",
            ],
            BaumannClass::Construction => &[
                "construction",
                "builders",
                "building",
                "properties",
                "realty",
                "estate",
            ],
            BaumannClass::Consulting => &["consulting", "partners", "associates", "advisory"],
            BaumannClass::Education => &[
                "university",
                "college",
                "school",
                "institute",
                "academy",
                "education",
            ],
            BaumannClass::Entertainment => &[
                "entertainment",
                "museum",
                "gaming",
                "casino",
                "sports",
                "arena",
            ],
            BaumannClass::Finance => &[
                "bank",
                "financial",
                "finance",
                "capital",
                "insurance",
                "invest",
            ],
            BaumannClass::Healthcare => &["hospital", "health", "medical", "clinic", "care"],
            BaumannClass::Transport => &[
                "logistics",
                "shipping",
                "freight",
                "express",
                "transport",
                "railways",
            ],
            BaumannClass::Travel => &["hotel", "hotels", "travel", "airways", "resorts", "tourism"],
            BaumannClass::Utilities => {
                &["energy", "power", "water", "gas", "utilities", "electric"]
            }
        }
    }

    /// Map the class onto NAICSlite layer-1 categories for scoring against
    /// gold labels.
    pub fn to_layer1(self) -> &'static [Layer1] {
        match self {
            BaumannClass::Communication => &[Layer1::ComputerAndIT, Layer1::Media],
            BaumannClass::Construction => &[Layer1::Construction],
            BaumannClass::Consulting => &[Layer1::Service],
            BaumannClass::Education => &[Layer1::Education],
            BaumannClass::Entertainment => &[Layer1::Entertainment],
            BaumannClass::Finance => &[Layer1::Finance],
            BaumannClass::Healthcare => &[Layer1::HealthCare],
            BaumannClass::Transport => &[Layer1::Freight],
            BaumannClass::Travel => &[Layer1::Travel],
            BaumannClass::Utilities => &[Layer1::Utilities],
        }
    }

    /// Whether the class is consistent with a gold label set.
    pub fn matches(self, labels: &CategorySet) -> bool {
        self.to_layer1()
            .iter()
            .any(|l1| labels.layer1s().contains(l1))
    }
}

impl std::fmt::Display for BaumannClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The keyword classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaumannClassifier;

impl BaumannClassifier {
    /// Classify a WHOIS record. `None` = abstention (the 43% the original
    /// could not cover).
    pub fn classify(&self, whois: &ParsedWhois) -> Option<BaumannClass> {
        let text = whois.name.to_lowercase();
        let tokens: Vec<&str> = text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .collect();
        let mut best: Option<(usize, BaumannClass)> = None;
        for class in BaumannClass::ALL {
            let hits = class
                .keywords()
                .iter()
                .filter(|k| tokens.contains(*k))
                .count();
            if hits > 0 {
                match best {
                    Some((b, _)) if b >= hits => {}
                    _ => best = Some((hits, class)),
                }
            }
        }
        best.map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::{World, WorldConfig};

    #[test]
    fn ten_classes_and_mappings() {
        assert_eq!(BaumannClass::ALL.len(), 10);
        for c in BaumannClass::ALL {
            assert!(!c.keywords().is_empty());
            assert!(!c.to_layer1().is_empty());
        }
    }

    #[test]
    fn partial_coverage_like_the_original() {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(203)));
        let clf = BaumannClassifier;
        let (mut covered, mut correct) = (0usize, 0usize);
        for rec in &w.ases {
            let org = w.org(rec.org).unwrap();
            if let Some(pred) = clf.classify(&rec.parsed) {
                covered += 1;
                correct += usize::from(pred.matches(&org.truth()));
            }
        }
        let coverage = covered as f64 / w.ases.len() as f64;
        // Original: 57% coverage. Our WHOIS names carry industry words at a
        // similar-but-not-identical rate.
        assert!(coverage > 0.35 && coverage < 0.85, "coverage = {coverage}");
        let accuracy = correct as f64 / covered.max(1) as f64;
        assert!(accuracy > 0.5, "accuracy = {accuracy}");
    }

    #[test]
    fn cannot_distinguish_technology_subtypes() {
        // Structural property: ISPs and hosting providers both land on
        // "communication" — the exact gap ASdb closes.
        use asdb_taxonomy::naicslite::known;
        let mut isp = CategorySet::new();
        isp.insert(asdb_taxonomy::Category::l2(known::isp()));
        let mut hosting = CategorySet::new();
        hosting.insert(asdb_taxonomy::Category::l2(known::hosting()));
        assert!(BaumannClass::Communication.matches(&isp));
        assert!(BaumannClass::Communication.matches(&hosting));
    }
}
