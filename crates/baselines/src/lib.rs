//! # asdb-baselines
//!
//! The prior-work AS classification systems the paper positions itself
//! against (§2), implemented so the comparison can be run rather than
//! quoted:
//!
//! * [`caida`] — Dimitropoulos et al.'s WHOIS text classification into six
//!   classes, and the coarse three-way CAIDA AS Classification dataset
//!   derived from it ("transit/access", "enterprise", "content"). The
//!   paper measured the December 2020 CAIDA dataset at 72% coverage and
//!   58% / 75% / 0% per-class accuracy.
//! * [`baumann`] — Baumann & Fabian's keyword analysis of WHOIS data into
//!   ten industries, with 57% coverage.
//! * [`topo`] — Dhamdhere & Dovrolis-style inference of broad AS types
//!   (enterprise, small/large transit, access/hosting, content) from
//!   topological properties, reported at 76–82% accuracy.
//!
//! Each baseline consumes exactly the inputs its original had: the keyword
//! systems see only WHOIS text, the topological system sees only the AS
//! graph. None of them touch the ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baumann;
pub mod caida;
pub mod topo;

pub use baumann::BaumannClassifier;
pub use caida::{CaidaClass, CaidaClassifier};
pub use topo::{TopoClass, TopoClassifier};
