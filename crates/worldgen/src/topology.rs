//! Synthetic AS-level routing topology.
//!
//! The paper's related work includes a whole lineage of *topology-based* AS
//! classification (Dhamdhere & Dovrolis infer "enterprise customers, small
//! and large transit providers, access/hosting providers, and content
//! providers" from topological properties with 76–82% accuracy, §2). To
//! reproduce that comparison we need a routing substrate: a
//! customer-provider / peering graph with the Internet's familiar
//! three-tier shape.
//!
//! Generation follows the standard hierarchy: a handful of fully-meshed
//! tier-1 transit ASes at the top (the largest ISP organizations), regional
//! tier-2 transits buying from several tier-1s and peering laterally,
//! content/hosting ASes peering widely but selling no transit, and a long
//! tail of stub/enterprise ASes buying from one or two providers.

use crate::org::AsRecord;
use crate::world::World;
use asdb_model::{Asn, WorldSeed};
use asdb_taxonomy::naicslite::known;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Business relationship on an inter-AS link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkType {
    /// `a` is the provider of `b` (customer-provider edge, stored as
    /// provider → customer).
    ProviderCustomer,
    /// Settlement-free peering.
    Peer,
}

/// The role the generator assigned an AS (hidden from the inference
/// baseline; used only for evaluation of the generator itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyRole {
    /// Global transit (tier 1).
    Tier1,
    /// Regional transit (tier 2).
    Tier2,
    /// Access/eyeball network: buys transit, has customers only of the
    /// stub kind.
    Access,
    /// Content/hosting: peers widely, no customers.
    Content,
    /// Stub/enterprise leaf.
    Stub,
}

/// An AS-level graph with relationship-typed edges.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    providers: HashMap<Asn, Vec<Asn>>,
    customers: HashMap<Asn, Vec<Asn>>,
    peers: HashMap<Asn, Vec<Asn>>,
    roles: HashMap<Asn, TopologyRole>,
}

impl AsGraph {
    /// Generate a topology over a world's ASes.
    pub fn generate(world: &World, seed: WorldSeed) -> AsGraph {
        let mut rng = StdRng::seed_from_u64(seed.derive("topology").value());
        let mut g = AsGraph::default();

        // Partition the ASes by role, driven by the owning organization.
        let mut tier1: Vec<Asn> = Vec::new();
        let mut tier2: Vec<Asn> = Vec::new();
        let mut access: Vec<Asn> = Vec::new();
        let mut content: Vec<Asn> = Vec::new();
        let mut stubs: Vec<Asn> = Vec::new();

        // Rank ISP ASes by the owner's size; the biggest become transit.
        let mut isp_ases: Vec<(&AsRecord, u32)> = world
            .ases
            .iter()
            .filter_map(|rec| {
                let org = world.org(rec.org)?;
                let is_net =
                    org.truth().layer2s().contains(&known::isp()) || org.category == known::ixp();
                is_net.then_some((rec, org.employees))
            })
            .collect();
        isp_ases.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.asn.cmp(&b.0.asn)));
        let n_tier1 = (isp_ases.len() / 40).clamp(3, 12);
        let n_tier2 = (isp_ases.len() / 6).max(8);
        for (i, (rec, _)) in isp_ases.iter().enumerate() {
            if i < n_tier1 {
                tier1.push(rec.asn);
            } else if i < n_tier1 + n_tier2 {
                tier2.push(rec.asn);
            } else {
                access.push(rec.asn);
            }
        }
        for rec in &world.ases {
            let Some(org) = world.org(rec.org) else {
                continue;
            };
            let truth = org.truth();
            if truth.layer2s().contains(&known::isp()) || org.category == known::ixp() {
                continue; // already placed
            }
            if truth.layer2s().contains(&known::hosting())
                || org.category == known::search_engine()
                || org.category.layer1 == asdb_taxonomy::Layer1::Media
            {
                content.push(rec.asn);
            } else {
                stubs.push(rec.asn);
            }
        }

        for &a in &tier1 {
            g.roles.insert(a, TopologyRole::Tier1);
        }
        for &a in &tier2 {
            g.roles.insert(a, TopologyRole::Tier2);
        }
        for &a in &access {
            g.roles.insert(a, TopologyRole::Access);
        }
        for &a in &content {
            g.roles.insert(a, TopologyRole::Content);
        }
        for &a in &stubs {
            g.roles.insert(a, TopologyRole::Stub);
        }

        // Tier-1 clique.
        for i in 0..tier1.len() {
            for j in (i + 1)..tier1.len() {
                g.add_peer(tier1[i], tier1[j]);
            }
        }
        // Tier-2: 2–3 tier-1 providers, a few lateral peers.
        for &a in &tier2 {
            for p in pick(
                &tier1,
                rng.random_range(2..=3.min(tier1.len().max(1))),
                &mut rng,
            ) {
                g.add_provider(p, a);
            }
            for p in pick(&tier2, 2, &mut rng) {
                if p != a {
                    g.add_peer(a, p);
                }
            }
        }
        // Access networks: 1–3 tier-2 providers.
        for &a in &access {
            for p in pick(&tier2, rng.random_range(1..=3usize), &mut rng) {
                g.add_provider(p, a);
            }
        }
        // Content/hosting: 1–2 transit providers plus wide peering.
        for &a in &content {
            for p in pick(&tier2, rng.random_range(1..=2usize), &mut rng) {
                g.add_provider(p, a);
            }
            let n_peers = rng.random_range(3..=10usize);
            for p in pick(&tier2, n_peers / 2, &mut rng) {
                g.add_peer(a, p);
            }
            for p in pick(&access, n_peers - n_peers / 2, &mut rng) {
                g.add_peer(a, p);
            }
        }
        // Stubs: 1–2 providers drawn from tier-2 and access networks.
        let upstream_pool: Vec<Asn> = tier2.iter().chain(access.iter()).copied().collect();
        for &a in &stubs {
            let n = if rng.random_bool(0.25) { 2 } else { 1 };
            for p in pick(&upstream_pool, n, &mut rng) {
                g.add_provider(p, a);
            }
        }
        g
    }

    fn add_provider(&mut self, provider: Asn, customer: Asn) {
        if provider == customer {
            return;
        }
        self.customers.entry(provider).or_default().push(customer);
        self.providers.entry(customer).or_default().push(provider);
    }

    fn add_peer(&mut self, a: Asn, b: Asn) {
        if a == b {
            return;
        }
        self.peers.entry(a).or_default().push(b);
        self.peers.entry(b).or_default().push(a);
    }

    /// Providers of an AS.
    pub fn providers(&self, asn: Asn) -> &[Asn] {
        self.providers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Customers of an AS.
    pub fn customers(&self, asn: Asn) -> &[Asn] {
        self.customers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Peers of an AS.
    pub fn peers(&self, asn: Asn) -> &[Asn] {
        self.peers.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total degree (providers + customers + peers).
    pub fn degree(&self, asn: Asn) -> usize {
        self.providers(asn).len() + self.customers(asn).len() + self.peers(asn).len()
    }

    /// Size of the customer cone (the AS plus everything reachable through
    /// customer edges) — the classic transit-size statistic.
    pub fn customer_cone(&self, asn: Asn) -> usize {
        let mut seen: HashSet<Asn> = HashSet::new();
        let mut queue: VecDeque<Asn> = VecDeque::new();
        seen.insert(asn);
        queue.push_back(asn);
        while let Some(a) = queue.pop_front() {
            for &c in self.customers(a) {
                if seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
        seen.len()
    }

    /// The generator-assigned role (evaluation only).
    pub fn role(&self, asn: Asn) -> Option<TopologyRole> {
        self.roles.get(&asn).copied()
    }

    /// Number of ASes in the graph.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }
}

fn pick(pool: &[Asn], n: usize, rng: &mut StdRng) -> Vec<Asn> {
    if pool.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if let Some(a) = pool.choose(rng) {
            if !out.contains(a) {
                out.push(*a);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn graph() -> (World, AsGraph) {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(55)));
        let g = AsGraph::generate(&w, WorldSeed::new(56));
        (w, g)
    }

    #[test]
    fn covers_every_as() {
        let (w, g) = graph();
        assert_eq!(g.len(), w.ases.len());
    }

    #[test]
    fn tier1s_have_the_largest_cones() {
        let (_, g) = graph();
        let t1_cones: Vec<usize> = g
            .roles
            .iter()
            .filter(|(_, r)| **r == TopologyRole::Tier1)
            .map(|(a, _)| g.customer_cone(*a))
            .collect();
        let stub_cones: Vec<usize> = g
            .roles
            .iter()
            .filter(|(_, r)| **r == TopologyRole::Stub)
            .take(200)
            .map(|(a, _)| g.customer_cone(*a))
            .collect();
        let t1_avg = t1_cones.iter().sum::<usize>() as f64 / t1_cones.len().max(1) as f64;
        let stub_avg = stub_cones.iter().sum::<usize>() as f64 / stub_cones.len().max(1) as f64;
        assert!(t1_avg > 50.0, "tier1 avg cone = {t1_avg}");
        assert!(stub_avg < 2.5, "stub avg cone = {stub_avg}");
    }

    #[test]
    fn stubs_have_providers_and_no_customers() {
        let (_, g) = graph();
        for (a, r) in g.roles.iter().take(2000) {
            if *r == TopologyRole::Stub {
                assert!(!g.providers(*a).is_empty(), "{a} has no provider");
                assert!(g.customers(*a).is_empty(), "{a} sells transit");
            }
        }
    }

    #[test]
    fn content_networks_peer_widely() {
        let (_, g) = graph();
        let content_peer_avg: f64 = {
            let xs: Vec<usize> = g
                .roles
                .iter()
                .filter(|(_, r)| **r == TopologyRole::Content)
                .map(|(a, _)| g.peers(*a).len())
                .collect();
            xs.iter().sum::<usize>() as f64 / xs.len().max(1) as f64
        };
        let stub_peer_avg: f64 = {
            let xs: Vec<usize> = g
                .roles
                .iter()
                .filter(|(_, r)| **r == TopologyRole::Stub)
                .map(|(a, _)| g.peers(*a).len())
                .collect();
            xs.iter().sum::<usize>() as f64 / xs.len().max(1) as f64
        };
        assert!(
            content_peer_avg > stub_peer_avg + 1.0,
            "content {content_peer_avg} vs stub {stub_peer_avg}"
        );
    }

    #[test]
    fn edges_are_symmetric() {
        let (_, g) = graph();
        for (a, peers) in g.peers.iter().take(300) {
            for p in peers {
                assert!(g.peers(*p).contains(a), "peer edge {a}-{p} asymmetric");
            }
        }
        for (p, customers) in g.customers.iter().take(300) {
            for cst in customers {
                assert!(
                    g.providers(*cst).contains(p),
                    "provider edge {p}->{cst} asymmetric"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(57)));
        let a = AsGraph::generate(&w, WorldSeed::new(58));
        let b = AsGraph::generate(&w, WorldSeed::new(58));
        for rec in &w.ases {
            assert_eq!(a.degree(rec.asn), b.degree(rec.asn));
            assert_eq!(a.role(rec.asn), b.role(rec.asn));
        }
    }
}
