//! Registration churn (§5.3).
//!
//! "Between October 2020 and February 2021, an average 21 ASes were
//! registered every day, belonging to an average 19 new organizations.
//! Furthermore, 4% of all registered ASes changed their ownership metadata
//! at least once during that period. … we estimate an average of 140 ASes
//! will need to be updated every week."

use asdb_model::{Asn, Date, OrgId, WorldSeed};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Churn model parameters, defaulting to the paper's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean new AS registrations per day.
    pub new_ases_per_day: f64,
    /// Mean new organizations per day (≤ new ASes; the remainder are
    /// additional ASes of already-known organizations, which ASdb serves
    /// from cache).
    pub new_orgs_per_day: f64,
    /// Fraction of the existing AS population whose ownership metadata
    /// changes at least once over the observation window.
    pub metadata_change_rate: f64,
    /// Observation window length in days (Oct 2020 – Feb 2021 ≈ 150).
    pub window_days: u32,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            new_ases_per_day: 21.0,
            new_orgs_per_day: 19.0,
            metadata_change_rate: 0.04,
            window_days: 150,
        }
    }
}

/// One day's churn events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DailyChurn {
    /// The day.
    pub date: Date,
    /// Newly registered ASes, with their (possibly new) owner: `true` means
    /// the owner is a brand-new organization, `false` an existing one.
    pub new_ases: Vec<(Asn, OrgId, bool)>,
    /// ASes whose ownership metadata changed.
    pub metadata_changes: Vec<Asn>,
}

/// Deterministic churn stream over a window.
pub struct ChurnStream {
    config: ChurnConfig,
    rng: StdRng,
    next_asn: u32,
    next_org: u64,
    existing: Vec<Asn>,
    existing_orgs: Vec<OrgId>,
    day: Date,
    days_emitted: u32,
}

impl ChurnStream {
    /// Start a stream over an existing population.
    pub fn new(
        config: ChurnConfig,
        existing: Vec<Asn>,
        existing_orgs: Vec<OrgId>,
        start: Date,
        seed: WorldSeed,
    ) -> ChurnStream {
        let next_asn = existing.iter().map(|a| a.value()).max().unwrap_or(1_000) + 1;
        let next_org = existing_orgs.iter().map(|o| o.value()).max().unwrap_or(0) + 1;
        ChurnStream {
            config,
            rng: StdRng::seed_from_u64(seed.derive("churn").value()),
            next_asn,
            next_org,
            existing,
            existing_orgs,
            day: start,
            days_emitted: 0,
        }
    }

    /// Expected updates per week: new ASes plus metadata changes,
    /// normalized to 7 days — the paper's "average of 140 ASes … updated
    /// every week" estimate.
    pub fn expected_weekly_updates(&self, population: usize) -> f64 {
        let new = self.config.new_ases_per_day * 7.0;
        let changed = population as f64 * self.config.metadata_change_rate
            / f64::from(self.config.window_days)
            * 7.0;
        new + changed
    }

    fn poisson(&mut self, mean: f64) -> usize {
        // Knuth's algorithm — means here are small (≈ 20).
        let l = (-mean).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= self.rng.random_range(0.0..1.0);
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // defensive bound; unreachable for sane means
            }
        }
    }
}

impl Iterator for ChurnStream {
    type Item = DailyChurn;

    fn next(&mut self) -> Option<DailyChurn> {
        if self.days_emitted >= self.config.window_days {
            return None;
        }
        let date = self.day;
        let n_new = self.poisson(self.config.new_ases_per_day);
        let new_org_prob =
            (self.config.new_orgs_per_day / self.config.new_ases_per_day).clamp(0.0, 1.0);
        let mut new_ases = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            let asn = Asn::new(self.next_asn);
            self.next_asn += self.rng.random_range(1..30u32);
            let is_new_org = self.existing_orgs.is_empty() || self.rng.random_bool(new_org_prob);
            let org = if is_new_org {
                let id = OrgId::new(self.next_org);
                self.next_org += 1;
                self.existing_orgs.push(id);
                id
            } else {
                self.existing_orgs[self.rng.random_range(0..self.existing_orgs.len())]
            };
            self.existing.push(asn);
            new_ases.push((asn, org, is_new_org));
        }
        // Daily metadata-change hazard so that the windowed total ≈ rate.
        let daily_rate = self.config.metadata_change_rate / f64::from(self.config.window_days);
        let mut metadata_changes = Vec::new();
        // Sample a Poisson count over the population rather than a Bernoulli
        // per AS (population is large, rate tiny).
        let n_changes = self.poisson(daily_rate * self.existing.len() as f64);
        for _ in 0..n_changes {
            let idx = self.rng.random_range(0..self.existing.len());
            metadata_changes.push(self.existing[idx]);
        }
        self.day = self.day.plus_days(1);
        self.days_emitted += 1;
        Some(DailyChurn {
            date,
            new_ases,
            metadata_changes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> (Vec<Asn>, Vec<OrgId>) {
        let ases: Vec<Asn> = (1000..1_000 + 100_000u32)
            .step_by(10)
            .map(Asn::new)
            .collect();
        let orgs: Vec<OrgId> = (0..9_000u64).map(OrgId::new).collect();
        (ases, orgs)
    }

    #[test]
    fn stream_length_matches_window() {
        let (ases, orgs) = population();
        let stream = ChurnStream::new(
            ChurnConfig::default(),
            ases,
            orgs,
            Date::from_ymd(2020, 10, 1).unwrap(),
            WorldSeed::new(1),
        );
        assert_eq!(stream.count(), 150);
    }

    #[test]
    fn daily_new_ases_average_21() {
        let (ases, orgs) = population();
        let stream = ChurnStream::new(
            ChurnConfig::default(),
            ases,
            orgs,
            Date::from_ymd(2020, 10, 1).unwrap(),
            WorldSeed::new(2),
        );
        let days: Vec<DailyChurn> = stream.collect();
        let total: usize = days.iter().map(|d| d.new_ases.len()).sum();
        let mean = total as f64 / days.len() as f64;
        assert!((mean - 21.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn new_org_fraction_matches_19_of_21() {
        let (ases, orgs) = population();
        let stream = ChurnStream::new(
            ChurnConfig::default(),
            ases,
            orgs,
            Date::from_ymd(2020, 10, 1).unwrap(),
            WorldSeed::new(3),
        );
        let mut new_orgs = 0usize;
        let mut total = 0usize;
        for day in stream {
            for (_, _, is_new) in &day.new_ases {
                total += 1;
                new_orgs += usize::from(*is_new);
            }
        }
        let frac = new_orgs as f64 / total as f64;
        assert!((frac - 19.0 / 21.0).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn metadata_changes_hit_4_percent_over_window() {
        let (ases, orgs) = population();
        let n = ases.len();
        let stream = ChurnStream::new(
            ChurnConfig::default(),
            ases,
            orgs,
            Date::from_ymd(2020, 10, 1).unwrap(),
            WorldSeed::new(4),
        );
        let changed: usize = stream.map(|d| d.metadata_changes.len()).sum();
        let frac = changed as f64 / n as f64;
        assert!((frac - 0.04).abs() < 0.01, "changed fraction = {frac}");
    }

    #[test]
    fn expected_weekly_updates_near_paper_estimate() {
        let (ases, orgs) = population();
        let n = ases.len();
        let stream = ChurnStream::new(
            ChurnConfig::default(),
            ases,
            orgs,
            Date::from_ymd(2020, 10, 1).unwrap(),
            WorldSeed::new(5),
        );
        // 21*7 new + 10k*0.04/150*7 changes ≈ 147 + 18.7 — the paper calls
        // this "an average of 140 ASes … every week".
        let weekly = stream.expected_weekly_updates(n);
        assert!(weekly > 120.0 && weekly < 180.0, "weekly = {weekly}");
    }

    #[test]
    fn stream_is_deterministic() {
        let (ases, orgs) = population();
        let mk = || {
            ChurnStream::new(
                ChurnConfig::default(),
                ases.clone(),
                orgs.clone(),
                Date::from_ymd(2020, 10, 1).unwrap(),
                WorldSeed::new(6),
            )
        };
        let a: Vec<DailyChurn> = mk().collect();
        let b: Vec<DailyChurn> = mk().collect();
        assert_eq!(a, b);
    }
}
