//! Organization name, domain, and address fabrication.
//!
//! Names are composed from region-flavored syllables plus an industry word
//! and a legal suffix, so entity resolution has realistic material to chew
//! on: token overlap between the name and the website title, legal-suffix
//! noise, and WHOIS name variants ("stale or abbreviated spellings").

use asdb_model::country::Region;
use asdb_model::{CountryCode, Domain, WorldSeed};
use asdb_taxonomy::{Layer1, Layer2};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// Name-stem syllables per region (loosely flavored, enough for variety).
fn syllables(region: Region) -> &'static [&'static str] {
    match region {
        Region::NorthAmerica => &[
            "nor", "tel", "ridge", "sum", "mid", "west", "lake", "front", "blue", "cedar", "stone",
            "path", "clear", "gran", "pine",
        ],
        Region::Europe => &[
            "euro", "nord", "alpen", "rhein", "balt", "iber", "gallo", "brit", "hansa", "vola",
            "dan", "terra", "luma", "ost", "sud",
        ],
        Region::AsiaPacific => &[
            "asia", "paci", "sun", "east", "lotus", "han", "mei", "koa", "sakura", "indo", "mala",
            "kiwi", "orient", "taka", "ming",
        ],
        Region::Africa => &[
            "afri", "sahel", "kili", "zam", "nile", "atlas", "savan", "cape", "lagos", "accra",
            "mara", "benu", "kala", "tana", "zulu",
        ],
        Region::LatinAmerica => &[
            "ande", "rio", "sol", "plata", "azte", "maya", "pampa", "selva", "luna", "brasil",
            "quito", "inca", "tico", "austral", "cari",
        ],
    }
}

/// Industry words appended to names, by layer-1 category.
fn industry_word(l1: Layer1, rng: &mut StdRng) -> &'static str {
    let options: &[&str] = match l1 {
        Layer1::ComputerAndIT => &[
            "Telecom",
            "Networks",
            "Net",
            "Online",
            "Digital",
            "Communications",
        ],
        Layer1::Media => &["Media", "Broadcasting", "Press", "Publishing"],
        Layer1::Finance => &["Bank", "Financial", "Capital", "Insurance"],
        Layer1::Education => &["University", "Institute", "College", "Academy"],
        Layer1::Service => &["Consulting", "Partners", "Associates", "Services"],
        Layer1::Agriculture => &["Farms", "Mining", "Resources", "Agro"],
        Layer1::Nonprofits => &["Foundation", "Society", "Alliance", "Trust"],
        Layer1::Construction => &["Construction", "Builders", "Properties", "Realty"],
        Layer1::Entertainment => &["Entertainment", "Museum", "Arena", "Gaming"],
        Layer1::Utilities => &["Energy", "Power", "Water", "Utilities"],
        Layer1::HealthCare => &["Health", "Medical", "Hospital", "Clinic"],
        Layer1::Travel => &["Travel", "Hotels", "Airways", "Resorts"],
        Layer1::Freight => &["Logistics", "Shipping", "Freight", "Express"],
        Layer1::Government => &["Ministry", "Authority", "Agency", "Administration"],
        Layer1::Retail => &["Retail", "Stores", "Market", "Trading"],
        Layer1::Manufacturing => &["Industries", "Manufacturing", "Works", "Motors"],
        Layer1::Other => &["Holdings", "Group", "Ventures", "Enterprises"],
    };
    options.choose(rng).copied().unwrap_or("Group")
}

/// Legal suffixes by region.
fn legal_suffix(region: Region, rng: &mut StdRng) -> &'static str {
    let options: &[&str] = match region {
        Region::NorthAmerica => &["Inc", "LLC", "Corp", "Co"],
        Region::Europe => &["GmbH", "AG", "Ltd", "BV", "SA", "SRL"],
        Region::AsiaPacific => &["Pty Ltd", "KK", "Pte Ltd", "Ltd"],
        Region::Africa => &["Ltd", "PLC", "Pty"],
        Region::LatinAmerica => &["SA", "SRL", "Ltda"],
    };
    options.choose(rng).copied().unwrap_or("Ltd")
}

/// Country pool per region used when assigning registration countries.
pub fn countries(region: Region) -> &'static [&'static str] {
    match region {
        Region::NorthAmerica => &["US", "US", "US", "CA"],
        Region::Europe => &[
            "DE", "GB", "FR", "NL", "RU", "IT", "ES", "PL", "SE", "UA", "CH", "RO",
        ],
        Region::AsiaPacific => &["CN", "JP", "IN", "AU", "KR", "ID", "SG", "HK", "TW", "VN"],
        Region::Africa => &["ZA", "NG", "KE", "EG", "GH", "TZ", "MA"],
        Region::LatinAmerica => &["BR", "AR", "MX", "CL", "CO", "PE", "EC"],
    }
}

/// A fabricated identity: legal name, WHOIS variant, domain, address parts.
#[derive(Debug, Clone)]
pub struct Identity {
    /// Full legal name ("Nortel Ridge Telecom LLC").
    pub legal_name: String,
    /// The stem without industry word or suffix ("Nortelridge").
    pub stem: String,
    /// Primary domain derived from the stem.
    pub domain: Domain,
    /// Registration country.
    pub country: CountryCode,
    /// Street address pieces.
    pub street: String,
    /// City name.
    pub city: String,
}

/// Fabricate an identity for organization `index`.
pub fn fabricate(index: u64, category: Layer2, region: Region, seed: WorldSeed) -> Identity {
    let mut rng = StdRng::seed_from_u64(seed.derive_index("identity", index).value());
    let syl = syllables(region);
    let n_syl = rng.random_range(2..=3usize);
    let stem: String = (0..n_syl)
        .map(|_| *syl.choose(&mut rng).expect("non-empty syllable list"))
        .collect();
    let stem_cap = capitalize(&stem);
    let industry = industry_word(category.layer1, &mut rng);
    let suffix = legal_suffix(region, &mut rng);
    let legal_name = format!("{stem_cap} {industry} {suffix}");
    let tld = match region {
        Region::NorthAmerica => "com",
        Region::Europe => *["com", "net", "de", "eu", "uk"]
            .choose(&mut rng)
            .expect("non-empty"),
        Region::AsiaPacific => *["com", "net", "cn", "jp", "in"]
            .choose(&mut rng)
            .expect("non-empty"),
        Region::Africa => *["com", "za", "ng", "net"]
            .choose(&mut rng)
            .expect("non-empty"),
        Region::LatinAmerica => *["com", "br", "ar", "mx", "net"]
            .choose(&mut rng)
            .expect("non-empty"),
    };
    let domain_label = format!(
        "{}{}",
        stem.to_lowercase(),
        industry.to_lowercase().replace(' ', "")
    );
    let domain = Domain::new(&format!("{domain_label}.{tld}"))
        .unwrap_or_else(|_| Domain::new("fallback.example").expect("static domain valid"));
    let country_code = countries(region)
        .choose(&mut rng)
        .expect("non-empty country pool");
    let country = CountryCode::new(country_code).expect("pool codes valid");
    let street = format!(
        "{} {} St",
        rng.random_range(1..9999u32),
        capitalize(syl.choose(&mut rng).expect("non-empty"))
    );
    let city = capitalize(&format!(
        "{}{}",
        syl.choose(&mut rng).expect("non-empty"),
        ["ville", "burg", "ton", " City", "port"]
            .choose(&mut rng)
            .expect("non-empty")
    ));
    Identity {
        legal_name,
        stem: stem_cap,
        domain,
        country,
        street,
        city,
    }
}

/// A WHOIS name variant: abbreviations and dropped suffixes, the stale
/// spellings that make exact-match entity resolution fail.
pub fn whois_variant(legal_name: &str, index: u64, seed: WorldSeed) -> String {
    let mut rng = StdRng::seed_from_u64(seed.derive_index("variant", index).value());
    let tokens: Vec<&str> = legal_name.split_whitespace().collect();
    match rng.random_range(0..3u8) {
        // Drop the legal suffix.
        0 if tokens.len() > 1 => tokens[..tokens.len() - 1].join(" "),
        // Upper-case handle style: "NORTELRIDGE-NET".
        1 => format!(
            "{}-NET",
            tokens.first().copied().unwrap_or("ORG").to_uppercase()
        ),
        // Abbreviate the industry word.
        _ if tokens.len() >= 2 => {
            let mut t: Vec<String> = tokens.iter().map(|s| (*s).to_owned()).collect();
            let mid = t.len() - 2;
            t[mid] = t[mid].chars().take(3).collect::<String>() + ".";
            t.join(" ")
        }
        _ => legal_name.to_owned(),
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;

    #[test]
    fn fabricate_is_deterministic() {
        let a = fabricate(7, known::isp(), Region::Europe, WorldSeed::new(1));
        let b = fabricate(7, known::isp(), Region::Europe, WorldSeed::new(1));
        assert_eq!(a.legal_name, b.legal_name);
        assert_eq!(a.domain, b.domain);
    }

    #[test]
    fn different_indices_differ() {
        let a = fabricate(1, known::isp(), Region::Europe, WorldSeed::new(1));
        let b = fabricate(2, known::isp(), Region::Europe, WorldSeed::new(1));
        assert_ne!(a.legal_name, b.legal_name);
    }

    #[test]
    fn names_have_industry_flavor() {
        let id = fabricate(3, known::banks(), Region::NorthAmerica, WorldSeed::new(2));
        let lower = id.legal_name.to_lowercase();
        assert!(
            ["bank", "financial", "capital", "insurance"]
                .iter()
                .any(|w| lower.contains(w)),
            "{}",
            id.legal_name
        );
    }

    #[test]
    fn domains_are_valid_and_related_to_name() {
        for i in 0..50 {
            let id = fabricate(i, known::hosting(), Region::AsiaPacific, WorldSeed::new(3));
            // Domain label shares the stem.
            let stem_lower = id.stem.to_lowercase();
            assert!(
                id.domain.as_str().contains(&stem_lower),
                "{} vs {}",
                id.domain,
                id.stem
            );
        }
    }

    #[test]
    fn country_matches_region_pool() {
        for region in Region::ALL {
            let id = fabricate(9, known::isp(), region, WorldSeed::new(4));
            assert!(countries(region).contains(&id.country.as_str()));
        }
    }

    #[test]
    fn variants_differ_but_share_tokens() {
        let legal = "Nortel Ridge Telecom LLC";
        let mut distinct = std::collections::HashSet::new();
        for i in 0..20 {
            let v = whois_variant(legal, i, WorldSeed::new(5));
            distinct.insert(v.clone());
            // Every variant shares at least the first stem token (case-
            // insensitively).
            assert!(v.to_lowercase().contains("nortel"), "{v}");
        }
        assert!(distinct.len() >= 2, "variants should vary");
    }
}
