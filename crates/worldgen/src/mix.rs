//! The category mix: the distribution of true NAICSlite categories across
//! AS-owning organizations, calibrated to the paper's samples.
//!
//! Calibration targets:
//! * "64% of ASes \[are\] owned by technology-related entities" (§3.3);
//! * "the two largest categories of ASes in our Gold Standard dataset —
//!   ISPs and hosting providers" (§4.1);
//! * Table 7's class sizes on the 150-AS gold standard: ISP N=66,
//!   Business N=55, Education N=14, Hosting N=13.

use asdb_model::WorldSeed;
use asdb_taxonomy::{Layer1, Layer2};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Weight of a layer-1 category in the organization population. Sums to 1.
pub fn layer1_weight(l1: Layer1) -> f64 {
    match l1 {
        // Tech ≈ 64% of ASes, dominated by ISPs then hosting.
        Layer1::ComputerAndIT => 0.64,
        Layer1::Education => 0.09,
        Layer1::Finance => 0.045,
        Layer1::Service => 0.04,
        Layer1::Media => 0.025,
        Layer1::Government => 0.022,
        Layer1::HealthCare => 0.02,
        Layer1::Manufacturing => 0.02,
        Layer1::Retail => 0.018,
        Layer1::Utilities => 0.014,
        Layer1::Construction => 0.013,
        Layer1::Freight => 0.012,
        Layer1::Nonprofits => 0.011,
        Layer1::Travel => 0.010,
        Layer1::Entertainment => 0.009,
        Layer1::Agriculture => 0.006,
        Layer1::Other => 0.005,
    }
}

/// Weight of a layer-2 category *within* its layer-1 parent. Within
/// Computer & IT the split matches the gold-standard proportions (ISP ≈
/// 66/96 of tech, hosting the next block); elsewhere the first (most
/// common) subcategories dominate and "Other" gets the remainder.
pub fn layer2_weight(l2: Layer2) -> f64 {
    use Layer1::*;
    match (l2.layer1, l2.index()) {
        (ComputerAndIT, 0) => 0.64,  // ISP
        (ComputerAndIT, 1) => 0.04,  // phone
        (ComputerAndIT, 2) => 0.14,  // hosting
        (ComputerAndIT, 3) => 0.02,  // security
        (ComputerAndIT, 4) => 0.06,  // software
        (ComputerAndIT, 5) => 0.04,  // consulting
        (ComputerAndIT, 6) => 0.01,  // satellite
        (ComputerAndIT, 7) => 0.005, // search
        (ComputerAndIT, 8) => 0.015, // IXP
        (ComputerAndIT, 9) => 0.03,  // other
        (Education, 1) => 0.55,      // universities dominate AS-owning edu
        (Education, 3) => 0.25,      // research orgs
        _ => {
            // Uniform-ish within parent with a heavier first subcategory,
            // lighter "Other".
            let n = l2.layer1.layer2_count() as f64;
            if l2.is_other() {
                0.5 / n
            } else if l2.index() == 0 {
                2.0 / n
            } else {
                1.0 / n
            }
        }
    }
}

/// A sampler over all 95 layer-2 categories with the joint weights
/// `layer1_weight × normalized layer2_weight`.
#[derive(Debug, Clone)]
pub struct CategoryMix {
    categories: Vec<Layer2>,
    cumulative: Vec<f64>,
}

impl CategoryMix {
    /// Build the calibrated mix.
    pub fn calibrated() -> CategoryMix {
        let mut categories = Vec::new();
        let mut weights = Vec::new();
        for l1 in Layer1::ALL {
            let subtotal: f64 = l1.layer2_iter().map(layer2_weight).sum();
            for l2 in l1.layer2_iter() {
                categories.push(l2);
                weights.push(layer1_weight(l1) * layer2_weight(l2) / subtotal);
            }
        }
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        CategoryMix {
            categories,
            cumulative,
        }
    }

    /// Sample a category.
    pub fn sample(&self, rng: &mut StdRng) -> Layer2 {
        let u: f64 = rng.random_range(0.0..1.0);
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.categories.len() - 1);
        self.categories[idx]
    }

    /// Sample uniformly from one layer-1 category's subcategories (used by
    /// the Uniform Gold Standard builder).
    pub fn sample_within(&self, l1: Layer1, rng: &mut StdRng) -> Layer2 {
        let subs: Vec<Layer2> = l1.layer2_iter().collect();
        subs[rng.random_range(0..subs.len())]
    }

    /// Exact probability assigned to a category.
    pub fn probability(&self, l2: Layer2) -> f64 {
        let idx = self
            .categories
            .iter()
            .position(|c| *c == l2)
            .expect("all 95 categories present");
        let prev = if idx == 0 {
            0.0
        } else {
            self.cumulative[idx - 1]
        };
        self.cumulative[idx] - prev
    }

    /// Deterministic RNG for mix sampling.
    pub fn rng(seed: WorldSeed) -> StdRng {
        StdRng::seed_from_u64(seed.derive("category-mix").value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;

    #[test]
    fn layer1_weights_sum_to_one() {
        let total: f64 = Layer1::ALL.iter().map(|l| layer1_weight(*l)).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }

    #[test]
    fn mix_probabilities_sum_to_one() {
        let mix = CategoryMix::calibrated();
        let total: f64 = Layer2::all().map(|l2| mix.probability(l2)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tech_is_about_64_percent() {
        let mix = CategoryMix::calibrated();
        let tech: f64 = Layer1::ComputerAndIT
            .layer2_iter()
            .map(|l2| mix.probability(l2))
            .sum();
        assert!((tech - 0.64).abs() < 1e-6, "tech = {tech}");
    }

    #[test]
    fn isp_and_hosting_are_the_largest_categories() {
        let mix = CategoryMix::calibrated();
        let p_isp = mix.probability(known::isp());
        let p_hosting = mix.probability(known::hosting());
        for l2 in Layer2::all() {
            if l2 != known::isp() {
                assert!(p_isp > mix.probability(l2), "{l2} outweighs ISP");
            }
            if l2 != known::isp() && l2 != known::hosting() {
                assert!(p_hosting >= mix.probability(l2), "{l2} outweighs hosting");
            }
        }
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let mix = CategoryMix::calibrated();
        let mut rng = CategoryMix::rng(WorldSeed::new(7));
        let n = 20_000;
        let mut isp = 0usize;
        let mut tech = 0usize;
        for _ in 0..n {
            let c = mix.sample(&mut rng);
            if c == known::isp() {
                isp += 1;
            }
            if c.layer1 == Layer1::ComputerAndIT {
                tech += 1;
            }
        }
        let isp_frac = isp as f64 / n as f64;
        let tech_frac = tech as f64 / n as f64;
        assert!((isp_frac - 0.64 * 0.64).abs() < 0.02, "isp = {isp_frac}");
        assert!((tech_frac - 0.64).abs() < 0.02, "tech = {tech_frac}");
    }

    #[test]
    fn sample_within_stays_in_layer1() {
        let mix = CategoryMix::calibrated();
        let mut rng = CategoryMix::rng(WorldSeed::new(8));
        for l1 in Layer1::ALL {
            for _ in 0..20 {
                assert_eq!(mix.sample_within(l1, &mut rng).layer1, l1);
            }
        }
    }
}
