//! # asdb-worldgen
//!
//! The synthetic AS/organization universe — the substitute for the
//! proprietary data behind the paper (bulk RIR WHOIS, the live web, and the
//! ground truth only expert labelers could establish).
//!
//! A [`World`] is generated deterministically from a [`WorldConfig`]:
//!
//! * **Organizations** with a true NAICSlite category, drawn from a mix
//!   calibrated to the paper's Gold Standard ("64% of ASes being owned by
//!   technology-related entities"; ISPs and hosting providers the two
//!   largest classes — Table 7's N=66 ISP / 13 hosting / 14 education /
//!   55 business out of 148);
//! * **AS registrations** across the five RIRs, serialized through
//!   `asdb-rir`'s per-registry dialects with the §3.1 field-availability
//!   rates (100% name, 99.7% country, 61.7% address, 45% phone, 87.1% some
//!   domain signal);
//! * **Websites** generated through `asdb-websim` (49% non-English, plus
//!   the documented quirk population: unreachable sites, parked pages,
//!   text-in-images, unlinked internal pages, misleading vocabulary);
//! * a **churn model** (§5.3: ~21 new ASes/day from ~19 organizations, 4%
//!   of ASes changing ownership metadata over five months);
//! * a **service-exposure model** for the conclusion's Telnet case study.
//!
//! Every consumer — simulated data sources, the ML pipeline, the gold
//! standard labelers, ASdb itself — reads from the same `World`, so
//! end-to-end coverage/accuracy numbers *emerge* from the mechanisms rather
//! than being scripted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod config;
pub mod mix;
pub mod names;
pub mod org;
pub mod scan;
pub mod topology;
pub mod world;

pub use config::{WebNoise, WhoisNoise, WorldConfig};
pub use org::{AsRecord, Organization};
pub use world::World;
