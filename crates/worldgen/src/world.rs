//! World generation: organizations → AS registrations → WHOIS → websites.

use crate::config::WorldConfig;
use crate::mix::CategoryMix;
use crate::names;
use crate::org::{AsRecord, Organization};
use asdb_model::country::Region;
use asdb_model::{Asn, Date, Domain, Email, OrgId, OrgName, Rir, Url, WorldSeed};
use asdb_rir::dialect::{self, Address, Registration};
use asdb_rir::extract;
use asdb_taxonomy::{Layer1, Layer2};
use asdb_websim::{Language, SimWeb, SiteQuirks, SiteSpec, Website};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Shared NOC/contact-service domains that appear in the WHOIS of *many*
/// unrelated ASes — the reason §5.1's step 3 filters out "domains that
/// appear in ≥ 100 ASes".
pub static SHARED_NOC_DOMAINS: [&str; 4] = [
    "noc-services.net",
    "ip-admin.org",
    "managed-whois.com",
    "asn-contact.net",
];

/// The fully generated universe.
#[derive(Debug, Clone)]
pub struct World {
    /// The configuration it was generated from.
    pub config: WorldConfig,
    /// All organizations.
    pub orgs: Vec<Organization>,
    /// All AS registrations.
    pub ases: Vec<AsRecord>,
    /// The simulated web hosting every live site.
    pub web: SimWeb,
    asn_index: HashMap<Asn, usize>,
    org_index: HashMap<OrgId, usize>,
    domain_as_count: HashMap<Domain, usize>,
}

impl World {
    /// Generate a world. Deterministic per config (including its seed).
    pub fn generate(config: WorldConfig) -> World {
        let seed = config.seed;
        let mix = CategoryMix::calibrated();
        let mut mix_rng = CategoryMix::rng(seed);
        let mut rng = StdRng::seed_from_u64(seed.derive("world").value());

        let mut orgs = Vec::with_capacity(config.n_orgs);
        let mut ases = Vec::new();
        let mut web = SimWeb::new(seed.derive("web"));
        let mut next_asn: u32 = 1_000;
        let base_date = Date::from_ymd(2020, 10, 1).expect("static date");

        let mut used_domains: std::collections::HashSet<Domain> = std::collections::HashSet::new();
        let mut used_names: std::collections::HashSet<String> = std::collections::HashSet::new();
        for i in 0..config.n_orgs {
            let category = mix.sample(&mut mix_rng);
            let mut org = build_org(i as u64, category, &config, &mut rng, seed);
            // Distinct legal entities carry distinct legal names; the
            // syllable fabricator can collide, so disambiguate with the
            // city (and, in the limit, the org index) — exactly how real
            // homonym companies differ ("Acme Corp" vs "Acme Corp of
            // Springfield").
            if !used_names.insert(org.legal_name.normalized()) {
                let was_legal = org.whois_name == org.legal_name;
                let mut renamed =
                    OrgName::new(&format!("{} {}", org.legal_name.as_str(), org.city));
                if !used_names.insert(renamed.normalized()) {
                    renamed = OrgName::new(&format!("{} {}", org.legal_name.as_str(), i));
                    used_names.insert(renamed.normalized());
                }
                org.legal_name = renamed.clone();
                if was_legal {
                    org.whois_name = renamed;
                }
            }
            // Two organizations must never share a primary domain; on a
            // fabrication collision, disambiguate with the org index.
            if let Some(d) = &org.domain {
                if !used_domains.insert(d.clone()) {
                    let label = d.leftmost_label();
                    let tld = d.tld();
                    let unique = Domain::new(&format!("{label}{i}.{tld}"))
                        .expect("disambiguated domain stays valid");
                    used_domains.insert(unique.clone());
                    org.domain = Some(unique);
                }
            }
            // Host the website.
            if let (Some(domain), true) = (&org.domain, org.live_site) {
                let spec = SiteSpec {
                    domain: domain.clone(),
                    org_name: org.legal_name.as_str().to_owned(),
                    category: org.category,
                    language: org.language,
                    quirks: org.quirks,
                };
                web.host(Website::generate(&spec, seed));
            } else if let Some(domain) = &org.domain {
                web.register_unreachable(domain.clone());
            }
            // Register 1 + geometric extra ASes.
            let mut n_ases = 1usize;
            while rng.random_bool(config.extra_as_rate) && n_ases < 12 {
                n_ases += 1;
            }
            for k in 0..n_ases {
                let asn = Asn::new(next_asn);
                next_asn += rng.random_range(1..40u32);
                let registered = base_date.plus_days(-(rng.random_range(0..7000i32)));
                let rec = build_as_record(&org, asn, registered, k, &config, &mut rng, seed, &orgs);
                ases.push(rec);
            }
            orgs.push(org);
        }

        let asn_index = ases.iter().enumerate().map(|(i, a)| (a.asn, i)).collect();
        let org_index = orgs.iter().enumerate().map(|(i, o)| (o.id, i)).collect();
        let mut domain_as_count: HashMap<Domain, usize> = HashMap::new();
        for a in &ases {
            for d in a.parsed.candidate_domains() {
                *domain_as_count.entry(d).or_insert(0) += 1;
            }
        }
        World {
            config,
            orgs,
            ases,
            web,
            asn_index,
            org_index,
            domain_as_count,
        }
    }

    /// The AS record for an ASN.
    pub fn as_record(&self, asn: Asn) -> Option<&AsRecord> {
        self.asn_index.get(&asn).map(|&i| &self.ases[i])
    }

    /// The organization owning an ASN.
    pub fn org_of(&self, asn: Asn) -> Option<&Organization> {
        let rec = self.as_record(asn)?;
        self.org(rec.org)
    }

    /// An organization by id.
    pub fn org(&self, id: OrgId) -> Option<&Organization> {
        self.org_index.get(&id).map(|&i| &self.orgs[i])
    }

    /// How many ASes a candidate domain appears in (WHOIS-wide) — the §5.1
    /// step-3 statistic.
    pub fn domain_as_count(&self, domain: &Domain) -> usize {
        self.domain_as_count
            .get(&domain.registrable())
            .copied()
            .unwrap_or(0)
    }

    /// All ASNs in registration order.
    pub fn asns(&self) -> Vec<Asn> {
        self.ases.iter().map(|a| a.asn).collect()
    }

    /// Draw `n` distinct ASNs uniformly at random (a "random sample of
    /// registered ASes", the Gold Standard sampling process).
    pub fn sample_asns(&self, n: usize, label: &str) -> Vec<Asn> {
        let mut rng =
            StdRng::seed_from_u64(self.config.seed.derive("sample").derive(label).value());
        let mut pool = self.asns();
        let n = n.min(pool.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let i = rng.random_range(0..pool.len());
            out.push(pool.swap_remove(i));
        }
        out
    }

    /// ASNs whose owner's primary layer-1 category matches, for stratified
    /// sampling (the Uniform Gold Standard).
    pub fn asns_in_layer1(&self, l1: Layer1) -> Vec<Asn> {
        self.ases
            .iter()
            .filter(|a| {
                self.org(a.org)
                    .map(|o| o.category.layer1 == l1)
                    .unwrap_or(false)
            })
            .map(|a| a.asn)
            .collect()
    }
}

fn region_for(category: Layer2, rng: &mut StdRng) -> Region {
    // Slight regional skew: tech everywhere, with Europe/APNIC heavy for
    // ISPs (RIPE is the largest registry).
    let _ = category;
    let weights: [(Region, f64); 5] = [
        (Region::Europe, 0.38),
        (Region::NorthAmerica, 0.25),
        (Region::AsiaPacific, 0.20),
        (Region::LatinAmerica, 0.10),
        (Region::Africa, 0.07),
    ];
    let u: f64 = rng.random_range(0.0..1.0);
    let mut acc = 0.0;
    for (r, w) in weights {
        acc += w;
        if u < acc {
            return r;
        }
    }
    Region::Europe
}

fn build_org(
    index: u64,
    category: Layer2,
    config: &WorldConfig,
    rng: &mut StdRng,
    seed: WorldSeed,
) -> Organization {
    let region = region_for(category, rng);
    let identity = names::fabricate(index, category, region, seed);
    let whois_name = if rng.random_bool(config.whois.name_variant_rate) {
        OrgName::new(&names::whois_variant(&identity.legal_name, index, seed))
    } else {
        OrgName::new(&identity.legal_name)
    };

    // Secondary category: multi-service tech orgs and the occasional
    // cross-sector org (the online-learning-service kind of case).
    let secondary = if category.layer1 == Layer1::ComputerAndIT && rng.random_bool(0.18) {
        let options = [
            Layer2::new(Layer1::ComputerAndIT, 0),
            Layer2::new(Layer1::ComputerAndIT, 1),
            Layer2::new(Layer1::ComputerAndIT, 2),
        ];
        options
            .into_iter()
            .flatten()
            .filter(|l2| *l2 != category)
            .collect::<Vec<_>>()
            .choose(rng)
            .copied()
    } else if rng.random_bool(0.05) {
        // Cross-L1 nuance: an org that genuinely straddles sectors.
        match category.layer1 {
            Layer1::Education => Layer2::new(Layer1::Media, 1),
            Layer1::Media => Layer2::new(Layer1::ComputerAndIT, 9),
            Layer1::Finance => Layer2::new(Layer1::ComputerAndIT, 4),
            _ => None,
        }
    } else {
        None
    };

    // Domain presence: hosting providers are the most likely to lack one
    // ("17% of all hosting providers do not have domains").
    let domainless_rate =
        if category == Layer2::new(Layer1::ComputerAndIT, 2).expect("hosting index valid") {
            0.17
        } else {
            0.08
        };
    let domain = (!rng.random_bool(domainless_rate)).then(|| identity.domain.clone());
    let live_site = domain.is_some() && rng.random_bool(config.web.live_site_rate);

    let language = if rng.random_bool(config.web.non_english_rate) && region != Region::NorthAmerica
    {
        *Language::NON_ENGLISH
            .choose(rng)
            .expect("non-empty language list")
    } else {
        Language::English
    };
    let quirks = SiteQuirks {
        text_in_images: rng.random_bool(config.web.text_in_images_rate),
        unlinked_internal: rng.random_bool(config.web.unlinked_internal_rate),
        parked: rng.random_bool(config.web.parked_rate),
        placeholder: rng.random_bool(config.web.placeholder_rate),
        misleading_vocab: !category.layer1.is_tech()
            && rng.random_bool(config.web.misleading_vocab_rate),
    };

    let u: f64 = rng.random_range(0.0..0.999);
    let employees = (10.0 * (1.0 / (1.0 - u)).powf(0.9)) as u32 + 1;
    let founded_year = 1960 + rng.random_range(0..62i32);
    let startup = identity.country.as_str() == "US" && founded_year >= 2005 && employees < 500;

    Organization {
        id: OrgId::new(index),
        legal_name: OrgName::new(&identity.legal_name),
        whois_name,
        category,
        secondary,
        country: identity.country,
        domain,
        live_site,
        language,
        quirks,
        street: identity.street,
        city: identity.city,
        phone: format!("+{}-555-{:04}", rng.random_range(1..99u32), index % 10_000),
        founded: Date::from_ymd(founded_year, 1 + (index % 12) as u32, 1).expect("valid month"),
        employees,
        startup,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_as_record(
    org: &Organization,
    asn: Asn,
    registered: Date,
    as_index: usize,
    config: &WorldConfig,
    rng: &mut StdRng,
    seed: WorldSeed,
    prior_orgs: &[Organization],
) -> AsRecord {
    let rir = Rir::for_region(org.country.region());
    let as_name = format!(
        "{}-AS{}",
        org.legal_name
            .tokens()
            .first()
            .cloned()
            .unwrap_or_else(|| "net".into())
            .to_uppercase(),
        if as_index == 0 {
            String::new()
        } else {
            format!("-{as_index}")
        }
    );

    let mut reg = Registration::bare(asn, &as_name);
    if rng.random_bool(config.whois.org_name_rate) {
        reg.org_name = Some(org.whois_name.as_str().to_owned());
    }
    if rng.random_bool(config.whois.descr_rate) {
        reg.descr = Some(format!("{} backbone", org.legal_name));
    }
    if rng.random_bool(config.whois.address_rate) {
        reg.address = Some(Address {
            street: org.street.clone(),
            city: org.city.clone(),
            state: String::new(),
            postal: format!("{:05}", asn.value() % 100_000),
        });
        reg.obfuscate_address =
            rir == Rir::Afrinic && rng.random_bool(config.whois.afrinic_obfuscate_rate);
    }
    // Phone is registry-driven: APNIC and ARIN publish for 100% of ASes.
    if matches!(rir, Rir::Apnic | Rir::Arin) {
        reg.phone = Some(org.phone.clone());
    }
    if rng.random_bool(config.whois.country_rate) {
        reg.country = Some(org.country);
    }

    // Domain signal: abuse/tech emails + occasional remark URLs.
    let has_signal = rng.random_bool(config.whois.domain_signal_rate);
    if has_signal {
        // Possibly point at the *wrong* org's domain (entity disagreement).
        let contact_domain: Option<Domain> =
            if rng.random_bool(config.wrong_domain_rate) && !prior_orgs.is_empty() {
                let other = &prior_orgs[rng.random_range(0..prior_orgs.len())];
                other.domain.clone()
            } else {
                org.domain.clone()
            };
        if let Some(d) = contact_domain {
            if let Ok(e) = Email::new(&format!("abuse@{d}")) {
                reg.abuse_emails.push(e);
            }
            if let Ok(e) = Email::new(&format!("noc@{d}")) {
                reg.tech_emails.push(e);
            }
            if rng.random_bool(config.whois.remark_url_rate) {
                reg.remark_urls
                    .push(Url::root(Domain::new(&format!("www.{d}")).unwrap_or(d)));
            }
        }
        // Upstream-provider contacts: many ASes list their transit
        // provider's NOC alongside their own ("the correct organization
        // domain is often present within multiple abuse contact emails",
        // §3.3) — the reason the paper needs the three domain-selection
        // heuristics of Table 5 at all. Upstream domains appear in dozens
        // of customer ASes, below the 100-AS filter threshold.
        let upstream_pool: Vec<&Domain> = prior_orgs
            .iter()
            .filter(|o| o.category.layer1 == Layer1::ComputerAndIT)
            .take(30)
            .filter_map(|o| o.domain.as_ref())
            .collect();
        if !upstream_pool.is_empty() && rng.random_bool(0.35) {
            let up = upstream_pool[rng.random_range(0..upstream_pool.len())];
            if let Ok(e) = Email::new(&format!("noc@{up}")) {
                reg.tech_emails.push(e);
            }
        }
        // Shared NOC-service contacts (appear across hundreds of ASes).
        if rng.random_bool(0.15) {
            let shared = SHARED_NOC_DOMAINS
                .choose(rng)
                .expect("non-empty shared list");
            if let Ok(e) = Email::new(&format!("support@{shared}")) {
                reg.abuse_emails.push(e);
            }
        }
        // Public email contacts (Gmail et al.), filtered by §5.1 step 2.
        if rng.random_bool(config.whois.public_email_contact_rate) {
            if let Ok(e) = Email::new(&format!(
                "admin.{}@gmail.com",
                org.legal_name
                    .tokens()
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "noc".into())
            )) {
                reg.abuse_emails.push(e);
            }
        }
    }

    let rendered = dialect::serialize(rir, &reg);
    let parsed = extract(&rendered);
    let _ = seed;
    AsRecord {
        asn,
        org: org.id,
        rir,
        registered,
        registration: reg,
        parsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;

    fn small_world() -> World {
        World::generate(WorldConfig::small(WorldSeed::new(1234)))
    }

    #[test]
    fn generates_configured_org_count() {
        let w = small_world();
        assert_eq!(w.orgs.len(), 300);
        assert!(w.ases.len() >= 300, "every org has at least one AS");
        assert!(w.ases.len() < 450, "geometric extras stay modest");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.ases.len(), b.ases.len());
        assert_eq!(a.orgs[17].legal_name, b.orgs[17].legal_name);
        assert_eq!(a.ases[42].asn, b.ases[42].asn);
    }

    #[test]
    fn tech_fraction_near_calibration() {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(7)));
        let tech = w.orgs.iter().filter(|o| o.is_tech()).count();
        let frac = tech as f64 / w.orgs.len() as f64;
        assert!((frac - 0.64).abs() < 0.04, "tech fraction = {frac}");
    }

    #[test]
    fn isp_is_largest_category() {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(8)));
        let mut counts: HashMap<Layer2, usize> = HashMap::new();
        for o in &w.orgs {
            *counts.entry(o.category).or_insert(0) += 1;
        }
        let isp = counts.get(&known::isp()).copied().unwrap_or(0);
        for (l2, c) in &counts {
            if *l2 != known::isp() {
                assert!(isp >= *c, "{l2} ({c}) outweighs ISP ({isp})");
            }
        }
    }

    #[test]
    fn whois_field_rates_close_to_paper() {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(9)));
        let n = w.ases.len() as f64;
        let with_org = w
            .ases
            .iter()
            .filter(|a| a.registration.org_name.is_some())
            .count() as f64;
        let with_addr = w
            .ases
            .iter()
            .filter(|a| a.registration.address.is_some())
            .count() as f64;
        let with_signal = w
            .ases
            .iter()
            .filter(|a| a.parsed.has_domain_signal())
            .count() as f64;
        assert!(
            (with_org / n - 0.80).abs() < 0.03,
            "org rate {}",
            with_org / n
        );
        assert!(
            (with_addr / n - 0.617).abs() < 0.04,
            "addr rate {}",
            with_addr / n
        );
        // LACNIC drops all contacts, so the parsed signal rate is slightly
        // below the raw 87.1% registration rate.
        assert!(
            with_signal / n > 0.70 && with_signal / n < 0.90,
            "domain signal rate {}",
            with_signal / n
        );
    }

    #[test]
    fn lookups_are_consistent() {
        let w = small_world();
        for rec in w.ases.iter().take(50) {
            let org = w.org_of(rec.asn).expect("owner resolves");
            assert_eq!(org.id, rec.org);
            assert_eq!(w.as_record(rec.asn).unwrap().asn, rec.asn);
        }
        assert!(w.as_record(Asn::new(999_999_999)).is_none());
    }

    #[test]
    fn shared_noc_domains_have_high_as_counts() {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(10)));
        let mut any_high = false;
        for d in SHARED_NOC_DOMAINS {
            let count = w.domain_as_count(&Domain::new(d).unwrap());
            if count >= 100 {
                any_high = true;
            }
        }
        assert!(
            any_high,
            "at least one shared domain must exceed the 100-AS threshold"
        );
        // Ordinary org domains stay far below it.
        let sample_org = w.orgs.iter().find(|o| o.domain.is_some()).unwrap();
        assert!(w.domain_as_count(sample_org.domain.as_ref().unwrap()) < 100);
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let w = small_world();
        let a = w.sample_asns(150, "gold");
        let b = w.sample_asns(150, "gold");
        assert_eq!(a, b);
        let uniq: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(uniq.len(), a.len());
        let c = w.sample_asns(150, "test");
        assert_ne!(a, c);
    }

    #[test]
    fn live_sites_are_hosted() {
        let w = small_world();
        let live_orgs = w
            .orgs
            .iter()
            .filter(|o| o.live_site && o.domain.is_some())
            .count();
        assert!(live_orgs > 0);
        assert_eq!(w.web.len(), live_orgs);
    }

    #[test]
    fn rir_matches_country_region() {
        let w = small_world();
        for rec in w.ases.iter().take(100) {
            let org = w.org_of(rec.asn).unwrap();
            assert_eq!(rec.rir, Rir::for_region(org.country.region()));
        }
    }

    #[test]
    fn asns_in_layer1_filters_correctly() {
        let w = small_world();
        for asn in w.asns_in_layer1(Layer1::Finance) {
            assert_eq!(w.org_of(asn).unwrap().category.layer1, Layer1::Finance);
        }
    }

    #[test]
    fn non_english_rate_close_to_half() {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(11)));
        let with_site: Vec<_> = w.orgs.iter().filter(|o| o.live_site).collect();
        let foreign = with_site
            .iter()
            .filter(|o| o.language != Language::English)
            .count();
        let frac = foreign as f64 / with_site.len() as f64;
        // Config says 49% but NorthAmerica is forced English, so the
        // effective rate is a bit lower.
        assert!(frac > 0.30 && frac < 0.55, "non-english = {frac}");
    }
}
