//! World-generation configuration.
//!
//! Every noise constant defaults to a value the paper *measured* about the
//! real ecosystem, with the section cited next to it. Tests pin these
//! defaults so accidental recalibration is caught.

use asdb_model::WorldSeed;
use serde::{Deserialize, Serialize};

/// WHOIS field-availability and quirk rates (§3.1, Appendix A).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhoisNoise {
    /// P(record carries an organization name) — "organization name
    /// (provided for 80.19% ASes)".
    pub org_name_rate: f64,
    /// P(record carries a description) — "description (provided for 24.81%
    /// ASes)".
    pub descr_rate: f64,
    /// P(record carries a physical address) — "61.7% have a physical
    /// address".
    pub address_rate: f64,
    /// P(record carries a phone number) — "45% have a phone number".
    /// Applied by giving phone numbers to all APNIC/ARIN records (which
    /// publish them 100%) and none elsewhere; the marginal rate then falls
    /// out of the registry mix.
    pub phone_rate: f64,
    /// P(record carries a country) — "99.7% have a country".
    pub country_rate: f64,
    /// P(record exposes some domain signal) — "87.1% contain some kind of
    /// domain".
    pub domain_signal_rate: f64,
    /// P(an AFRINIC address is `*`-obfuscated) — "92% of entries obfuscate
    /// their address".
    pub afrinic_obfuscate_rate: f64,
    /// P(an abuse contact uses a public email domain like Gmail) — drives
    /// §5.1's step-2 filtering.
    pub public_email_contact_rate: f64,
    /// P(record with a domain signal also has a remarks URL).
    pub remark_url_rate: f64,
    /// P(the org name in WHOIS is a stale/variant spelling of the legal
    /// name) — feeds entity-resolution errors.
    pub name_variant_rate: f64,
}

impl Default for WhoisNoise {
    fn default() -> Self {
        WhoisNoise {
            org_name_rate: 0.8019,
            descr_rate: 0.2481,
            address_rate: 0.617,
            phone_rate: 0.45,
            country_rate: 0.997,
            domain_signal_rate: 0.871,
            afrinic_obfuscate_rate: 0.92,
            public_email_contact_rate: 0.12,
            remark_url_rate: 0.35,
            name_variant_rate: 0.15,
        }
    }
}

/// Website-population noise (§4.1, Appendix B).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebNoise {
    /// P(an organization with a domain hosts a working website) — "nearly
    /// 90% of ASes have associated domains that host websites".
    pub live_site_rate: f64,
    /// P(a live site is non-English) — "49% of Gold Standard AS websites
    /// are not in English".
    pub non_english_rate: f64,
    /// P(a live site bakes its text into images) — part of the 67% of ML
    /// false negatives blamed on scraping gaps.
    pub text_in_images_rate: f64,
    /// P(internal pages exist but aren't linked from home).
    pub unlinked_internal_rate: f64,
    /// P(the domain is parked).
    pub parked_rate: f64,
    /// P(the site is a default test page) — "11% have an uninformative
    /// website (e.g., an Apache test page)" among hard cases.
    pub placeholder_rate: f64,
    /// P(a non-tech site uses trap vocabulary) — the meteorology-institute
    /// false-positive family.
    pub misleading_vocab_rate: f64,
    /// Word-loss rate of the simulated translator.
    pub translation_loss: f64,
}

impl Default for WebNoise {
    fn default() -> Self {
        WebNoise {
            live_site_rate: 0.90,
            non_english_rate: 0.49,
            text_in_images_rate: 0.06,
            unlinked_internal_rate: 0.10,
            parked_rate: 0.03,
            placeholder_rate: 0.03,
            misleading_vocab_rate: 0.04,
            translation_loss: 0.05,
        }
    }
}

/// Top-level world configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of organizations to generate.
    pub n_orgs: usize,
    /// Root seed.
    pub seed: WorldSeed,
    /// WHOIS noise rates.
    pub whois: WhoisNoise,
    /// Web noise rates.
    pub web: WebNoise,
    /// P(an organization owns one extra AS), applied geometrically — §5.3
    /// measures ~21 new ASes/day from ~19 organizations (≈1.1 ASes/org).
    pub extra_as_rate: f64,
    /// Fraction of orgs whose WHOIS domain differs from their real one
    /// (entity-disagreement seed).
    pub wrong_domain_rate: f64,
}

impl WorldConfig {
    /// A small world for unit tests (fast to generate).
    pub fn small(seed: WorldSeed) -> WorldConfig {
        WorldConfig {
            n_orgs: 300,
            seed,
            whois: WhoisNoise::default(),
            web: WebNoise::default(),
            extra_as_rate: 0.12,
            wrong_domain_rate: 0.03,
        }
    }

    /// The canonical experiment world: large enough that 150-AS samples are
    /// a small fraction, matching the paper's sampling regime.
    pub fn standard(seed: WorldSeed) -> WorldConfig {
        WorldConfig {
            n_orgs: 4_000,
            seed,
            ..WorldConfig::small(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_measurements() {
        let w = WhoisNoise::default();
        assert!((w.org_name_rate - 0.8019).abs() < 1e-9);
        assert!((w.descr_rate - 0.2481).abs() < 1e-9);
        assert!((w.address_rate - 0.617).abs() < 1e-9);
        assert!((w.phone_rate - 0.45).abs() < 1e-9);
        assert!((w.country_rate - 0.997).abs() < 1e-9);
        assert!((w.domain_signal_rate - 0.871).abs() < 1e-9);
        assert!((w.afrinic_obfuscate_rate - 0.92).abs() < 1e-9);
        let web = WebNoise::default();
        assert!((web.non_english_rate - 0.49).abs() < 1e-9);
        assert!((web.live_site_rate - 0.90).abs() < 1e-9);
    }

    #[test]
    fn standard_is_larger_than_small() {
        let s = WorldConfig::small(WorldSeed::new(1));
        let l = WorldConfig::standard(WorldSeed::new(1));
        assert!(l.n_orgs > s.n_orgs);
    }
}
