//! Service-exposure model for the conclusion's Telnet case study.
//!
//! "We join ASdb's dataset with an Internet Telnet scan … and alarmingly
//! find that critical-infrastructure organizations like electric utility
//! companies, government organizations, and financial institutions are
//! more likely to host Telnet than technology companies" (§6).
//!
//! The model assigns each AS a probability of exposing Telnet based on its
//! owner's industry — high for legacy-heavy critical infrastructure, low
//! for technology companies that deploy modern remote administration.

use crate::world::World;
use asdb_model::{Asn, WorldSeed};
use asdb_taxonomy::Layer1;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Probability that an AS in the given industry exposes at least one
/// Telnet service to a 1%-sample scan.
pub fn telnet_exposure_rate(l1: Layer1) -> f64 {
    match l1 {
        // Critical infrastructure: legacy serial-console gear abounds.
        Layer1::Utilities => 0.32,
        Layer1::Government => 0.26,
        Layer1::Finance => 0.22,
        Layer1::Manufacturing => 0.20,
        Layer1::HealthCare => 0.17,
        Layer1::Freight => 0.16,
        Layer1::Agriculture => 0.15,
        Layer1::Construction => 0.13,
        Layer1::Travel => 0.12,
        Layer1::Retail => 0.12,
        Layer1::Education => 0.11,
        Layer1::Service => 0.10,
        Layer1::Entertainment => 0.10,
        Layer1::Media => 0.09,
        Layer1::Nonprofits => 0.09,
        // Technology companies run the *least* Telnet.
        Layer1::ComputerAndIT => 0.06,
        Layer1::Other => 0.08,
    }
}

/// One AS's scan observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanObservation {
    /// The AS scanned.
    pub asn: Asn,
    /// Whether any Telnet banner was observed.
    pub telnet: bool,
}

/// Run the simulated LZR-style scan over a world.
pub fn scan_world(world: &World, seed: WorldSeed) -> Vec<ScanObservation> {
    let mut rng = StdRng::seed_from_u64(seed.derive("telnet-scan").value());
    world
        .ases
        .iter()
        .map(|rec| {
            let rate = world
                .org(rec.org)
                .map(|o| telnet_exposure_rate(o.category.layer1))
                .unwrap_or(0.1);
            ScanObservation {
                asn: rec.asn,
                telnet: rng.random_bool(rate),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    #[test]
    fn critical_infrastructure_exceeds_tech() {
        assert!(
            telnet_exposure_rate(Layer1::Utilities) > telnet_exposure_rate(Layer1::ComputerAndIT)
        );
        assert!(
            telnet_exposure_rate(Layer1::Government) > telnet_exposure_rate(Layer1::ComputerAndIT)
        );
        assert!(
            telnet_exposure_rate(Layer1::Finance) > telnet_exposure_rate(Layer1::ComputerAndIT)
        );
    }

    #[test]
    fn scan_covers_all_ases_and_is_deterministic() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(3)));
        let a = scan_world(&w, WorldSeed::new(9));
        let b = scan_world(&w, WorldSeed::new(9));
        assert_eq!(a.len(), w.ases.len());
        assert_eq!(a, b);
    }

    #[test]
    fn observed_rates_follow_model() {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(4)));
        let scan = scan_world(&w, WorldSeed::new(10));
        let mut tech = (0usize, 0usize);
        let mut nontech = (0usize, 0usize);
        for obs in &scan {
            let is_tech = w.org_of(obs.asn).map(|o| o.is_tech()).unwrap_or(false);
            let slot = if is_tech { &mut tech } else { &mut nontech };
            slot.0 += usize::from(obs.telnet);
            slot.1 += 1;
        }
        let tech_rate = tech.0 as f64 / tech.1 as f64;
        let nontech_rate = nontech.0 as f64 / nontech.1 as f64;
        assert!(
            nontech_rate > tech_rate * 1.5,
            "nontech {nontech_rate} vs tech {tech_rate}"
        );
    }
}
