//! Organization and AS-registration records.

use asdb_model::{Asn, CountryCode, Date, Domain, OrgId, OrgName, Rir};
use asdb_rir::dialect::Registration;
use asdb_rir::ParsedWhois;
use asdb_taxonomy::{Category, CategorySet, Layer2};
use asdb_websim::{Language, SiteQuirks};
use serde::{Deserialize, Serialize};

/// An AS-owning organization — the ground truth the whole evaluation is
/// scored against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Organization {
    /// Stable identifier.
    pub id: OrgId,
    /// Full legal name.
    pub legal_name: OrgName,
    /// The (possibly stale/abbreviated) name that appears in WHOIS.
    pub whois_name: OrgName,
    /// Primary true category.
    pub category: Layer2,
    /// Secondary category for multi-service organizations — the source of
    /// "nuanced disagreement … when technology companies offer multiple
    /// services (e.g., ISP, Hosting, Cell)" (§3.4).
    pub secondary: Option<Layer2>,
    /// Registration country.
    pub country: CountryCode,
    /// The organization's real domain, if it has one ("17% of all hosting
    /// providers do not have domains", §5.2).
    pub domain: Option<Domain>,
    /// Whether the domain hosts a working website.
    pub live_site: bool,
    /// Site language.
    pub language: Language,
    /// Site quirks.
    pub quirks: SiteQuirks,
    /// Street address.
    pub street: String,
    /// City.
    pub city: String,
    /// Contact phone.
    pub phone: String,
    /// Founding date (drives Crunchbase's startup skew).
    pub founded: Date,
    /// Headcount (drives D&B coverage, which skews to established firms).
    pub employees: u32,
    /// Whether the org is a US-style venture-backed startup (Crunchbase's
    /// sweet spot: it "focuses more on startups and specifically US
    /// companies").
    pub startup: bool,
}

impl Organization {
    /// The organization's true label set: primary plus any secondary.
    pub fn truth(&self) -> CategorySet {
        let mut set = CategorySet::single(Category::l2(self.category));
        if let Some(s) = self.secondary {
            set.insert(Category::l2(s));
        }
        set
    }

    /// Whether the org is (primarily) a technology company.
    pub fn is_tech(&self) -> bool {
        self.category.layer1.is_tech()
    }
}

/// One AS registration: the link between an ASN and its owner, plus the
/// WHOIS that registration produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsRecord {
    /// The AS number.
    pub asn: Asn,
    /// Owning organization.
    pub org: OrgId,
    /// The registry it was registered at.
    pub rir: Rir,
    /// Registration date.
    pub registered: Date,
    /// The registry-neutral registration data (before dialect rendering).
    pub registration: Registration,
    /// The Appendix-A extraction of the rendered WHOIS record — what the
    /// ASdb pipeline actually consumes.
    pub parsed: ParsedWhois,
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;
    use asdb_taxonomy::Layer1;

    fn org() -> Organization {
        Organization {
            id: OrgId::new(1),
            legal_name: OrgName::new("Test Networks LLC"),
            whois_name: OrgName::new("Test Networks"),
            category: known::isp(),
            secondary: Some(known::hosting()),
            country: CountryCode::new("US").unwrap(),
            domain: Some(Domain::new("testnetworks.com").unwrap()),
            live_site: true,
            language: Language::English,
            quirks: SiteQuirks::default(),
            street: "1 Main St".into(),
            city: "Springfield".into(),
            phone: "+1-555-0000".into(),
            founded: Date::from_ymd(2001, 6, 1).unwrap(),
            employees: 250,
            startup: false,
        }
    }

    #[test]
    fn truth_includes_secondary() {
        let o = org();
        let t = o.truth();
        assert_eq!(t.layer2s().len(), 2);
        assert!(t.layer2s().contains(&known::isp()));
        assert!(t.layer2s().contains(&known::hosting()));
        assert!(o.is_tech());
    }

    #[test]
    fn truth_single_when_no_secondary() {
        let mut o = org();
        o.secondary = None;
        o.category = Layer2::new(Layer1::Finance, 0).unwrap();
        assert_eq!(o.truth().len(), 1);
        assert!(!o.is_tech());
    }
}
