//! The crowdworker behavioral model.

use asdb_model::WorldSeed;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A Master MTurk ("we hire only Master MTurks for the duration of our
/// experiments" — they "consistently submit a lot of high quality work").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Worker {
    /// Worker index within its cohort.
    pub id: u64,
    /// Intrinsic labeling skill in `[0.6, 0.98]`.
    pub skill: f64,
    /// Work-pace multiplier: seconds-per-task scale (log-normal-ish).
    pub pace: f64,
}

impl Worker {
    /// Sample a cohort of distinct workers. Cohorts never overlap between
    /// experiments ("ensure that no MTurks overlap between assignments"):
    /// the label keys the cohort.
    pub fn cohort(n: usize, label: &str, seed: WorldSeed) -> Vec<Worker> {
        let mut rng = StdRng::seed_from_u64(seed.derive("cohort").derive(label).value());
        (0..n)
            .map(|id| {
                let skill = 0.6 + 0.38 * rng.random_range(0.0..1.0f64);
                // Log-normal pace: most workers near 1×, a few 3–4× slower.
                let z: f64 = rng.random_range(-1.0..1.0f64) + rng.random_range(-1.0..1.0f64);
                let pace = (0.45 * z).exp();
                Worker {
                    id: id as u64,
                    skill,
                    pace,
                }
            })
            .collect()
    }

    /// Probability this worker labels a task correctly, given the offered
    /// reward (cents) and the task's intrinsic ease in `[0,1]`.
    ///
    /// Reward buys *diligence* (whether the worker actually researches the
    /// AS instead of clicking through) — a modest effect, saturating
    /// quickly, which is why Figure 5b finds accuracy and reward "not
    /// directly correlated" while Figure 5a's consensus rate still rises.
    pub fn p_correct(&self, reward_cents: u32, ease: f64) -> f64 {
        let diligence = 0.78 + 0.18 * ((reward_cents as f64 - 10.0) / 50.0).clamp(0.0, 1.0);
        (self.skill * diligence * (0.55 + 0.45 * ease)).clamp(0.02, 0.99)
    }

    /// Seconds this worker spends on a task. Dominated by the worker's own
    /// pace and the task's ease, *not* by the reward (the ±8% term), which
    /// is what decouples wages from rewards (Figure 6).
    pub fn seconds(&self, reward_cents: u32, ease: f64, task_idx: u64, seed: WorldSeed) -> f64 {
        let mut rng = StdRng::seed_from_u64(
            seed.derive_index("seconds", self.id ^ (task_idx << 20))
                .value(),
        );
        let base = 18.0 + 60.0 * (1.0 - ease);
        let reward_drag = 1.0 + 0.08 * ((reward_cents as f64 - 30.0) / 30.0);
        let noise = rng.random_range(0.6..1.8f64);
        (base * self.pace * reward_drag * noise).max(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohorts_are_deterministic_and_disjoint_by_label() {
        let a = Worker::cohort(5, "exp-10c", WorldSeed::new(1));
        let b = Worker::cohort(5, "exp-10c", WorldSeed::new(1));
        let c = Worker::cohort(5, "exp-20c", WorldSeed::new(1));
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.skill, y.skill);
        }
        assert!(a.iter().zip(&c).any(|(x, y)| x.skill != y.skill));
    }

    #[test]
    fn accuracy_rises_mildly_with_reward() {
        let w = Worker {
            id: 0,
            skill: 0.85,
            pace: 1.0,
        };
        let low = w.p_correct(10, 0.7);
        let high = w.p_correct(60, 0.7);
        assert!(high > low);
        assert!(high - low < 0.20, "effect must stay modest: {low} → {high}");
    }

    #[test]
    fn easy_tasks_are_easier() {
        let w = Worker {
            id: 0,
            skill: 0.85,
            pace: 1.0,
        };
        assert!(w.p_correct(30, 0.9) > w.p_correct(30, 0.3));
    }

    #[test]
    fn time_mostly_independent_of_reward() {
        let w = Worker {
            id: 3,
            skill: 0.8,
            pace: 1.0,
        };
        let t10 = w.seconds(10, 0.5, 1, WorldSeed::new(2));
        let t60 = w.seconds(60, 0.5, 1, WorldSeed::new(2));
        // Same noise seed, so the only delta is the small reward drag.
        assert!((t60 / t10 - 1.0).abs() < 0.25);
    }

    #[test]
    fn probabilities_bounded() {
        for skill in [0.0, 0.5, 1.0] {
            let w = Worker {
                id: 0,
                skill,
                pace: 1.0,
            };
            for r in [0u32, 10, 60, 200] {
                for e in [0.0, 0.5, 1.0] {
                    let p = w.p_correct(r, e);
                    assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }
}
