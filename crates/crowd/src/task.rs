//! Crowd task definitions.

use asdb_model::Asn;
use asdb_taxonomy::{Category, CategorySet};
use serde::{Deserialize, Serialize};

/// What kind of question the workers are being asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// "Choose one or more NAICSlite layer 2 Technology category" — the
    /// wage/consensus experiments over tech and finance ASes.
    OpenClassification,
    /// "Select all applicable layer 2 NAICSlite categories (or 'none of
    /// the above') from the union of all NAICSlite categories provided by
    /// the matched data sources" — disagreement resolution.
    ChooseAmongSources,
}

/// One AS-labeling task given to a worker cohort.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdTask {
    /// The AS in question.
    pub asn: Asn,
    /// What is being asked.
    pub kind: TaskKind,
    /// The answer options shown (for [`TaskKind::ChooseAmongSources`], the
    /// union of data-source labels; for open classification, the candidate
    /// layer-2 categories of the relevant layer-1 family).
    pub options: Vec<Category>,
    /// Ground-truth labels (for scoring; workers see the website, not
    /// this).
    pub truth: CategorySet,
    /// Intrinsic ease in `[0,1]`: finance ASes are easy, technology ASes
    /// hard ("MTurks perform consistently worse at accurately labeling
    /// technology categories"), broken websites harder still.
    pub ease: f64,
}

impl CrowdTask {
    /// Which options are correct (appear in the truth set).
    pub fn correct_options(&self) -> Vec<Category> {
        self.options
            .iter()
            .copied()
            .filter(|o| match o.layer2 {
                Some(l2) => self.truth.layer2s().contains(&l2),
                None => self.truth.layer1s().contains(&o.layer1),
            })
            .collect()
    }

    /// Whether the task is answerable at all (some option is correct).
    pub fn is_answerable(&self) -> bool {
        !self.correct_options().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;

    #[test]
    fn correct_options_filter() {
        let truth = CategorySet::single(known::isp());
        let task = CrowdTask {
            asn: Asn::new(1),
            kind: TaskKind::ChooseAmongSources,
            options: vec![Category::l2(known::isp()), Category::l2(known::hosting())],
            truth,
            ease: 0.5,
        };
        let correct = task.correct_options();
        assert_eq!(correct.len(), 1);
        assert_eq!(correct[0].layer2, Some(known::isp()));
        assert!(task.is_answerable());
    }

    #[test]
    fn unanswerable_task() {
        let task = CrowdTask {
            asn: Asn::new(2),
            kind: TaskKind::ChooseAmongSources,
            options: vec![Category::l2(known::hosting())],
            truth: CategorySet::single(known::banks()),
            ease: 0.5,
        };
        assert!(!task.is_answerable());
    }
}
