//! Cost estimation for applying crowdwork to ASdb at scale (Appendix B /
//! §4.2).

use serde::{Deserialize, Serialize};

/// The AS population the paper scales its estimates to (≈90k registered
/// ASes; "23% of Gold Standard ASes fall into this category (i.e., roughly
/// 20.7K of all registered ASes)" ⇒ 20.7k/0.23 ≈ 90k).
pub const REGISTERED_ASES: usize = 90_000;

/// One crowdwork application's cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Fraction of all registered ASes needing review.
    pub fraction_of_ases: f64,
    /// Workers per task.
    pub workers_per_task: usize,
    /// Reward per worker-task in cents.
    pub reward_cents: u32,
    /// AMT's Master-qualification surcharge (5%).
    pub master_surcharge: f64,
}

impl CostModel {
    /// "we pay 5 MTurks 30 cents" to catch ML false negatives over the 23%
    /// of ASes flagged as potential false negatives → ≥ $31,000.
    pub fn ml_failure_review() -> CostModel {
        CostModel {
            fraction_of_ases: 0.23,
            workers_per_task: 5,
            reward_cents: 30,
            master_surcharge: 0.05,
        }
    }

    /// "we pay 3 MTurks 10 cents" to resolve source disagreements over the
    /// ~22% of ASes with conflicting/incomplete sources → ≈ $6,000.
    pub fn disagreement_resolution() -> CostModel {
        CostModel {
            fraction_of_ases: 0.22,
            workers_per_task: 3,
            reward_cents: 10,
            master_surcharge: 0.05,
        }
    }

    /// Number of ASes sent to workers.
    pub fn tasks(&self) -> usize {
        (REGISTERED_ASES as f64 * self.fraction_of_ases).round() as usize
    }

    /// Total cost in dollars, including the surcharge.
    pub fn total_dollars(&self) -> f64 {
        self.tasks() as f64
            * self.workers_per_task as f64
            * (self.reward_cents as f64 / 100.0)
            * (1.0 + self.master_surcharge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_review_is_untenable() {
        let m = CostModel::ml_failure_review();
        assert!((m.tasks() as f64 - 20_700.0).abs() < 100.0);
        let cost = m.total_dollars();
        // "costing at least $31,000. This is untenable for our research
        // budget."
        assert!((31_000.0..36_000.0).contains(&cost), "cost = {cost}");
    }

    #[test]
    fn disagreement_resolution_is_cheaper() {
        let m = CostModel::disagreement_resolution();
        let cost = m.total_dollars();
        // "applying crowdwork to these cases would cost an estimated
        // $6,000."
        assert!(cost > 5_000.0 && cost < 7_500.0, "cost = {cost}");
        assert!(cost < CostModel::ml_failure_review().total_dollars() / 4.0);
    }
}
