//! Running crowd assignments and aggregating the Appendix B metrics.

use crate::consensus::{consensus_labels, loose_match, strict_match, ConsensusRule};
use crate::task::CrowdTask;
use crate::worker::Worker;
use asdb_model::WorldSeed;
use asdb_taxonomy::{Category, CategorySet};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of one crowd assignment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CrowdConfig {
    /// Reward offered per task, in cents.
    pub reward_cents: u32,
    /// Consensus rule (also fixes the cohort size).
    pub rule: ConsensusRule,
}

/// Aggregated outcome of running a task set through a cohort.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssignmentOutcome {
    /// Tasks given.
    pub n_tasks: usize,
    /// Tasks reaching consensus on ≥1 category — the coverage metric.
    pub consensus_reached: usize,
    /// Of consensus tasks, how many loose-matched the truth.
    pub loose_correct: usize,
    /// Of consensus tasks, how many strict-matched the truth.
    pub strict_correct: usize,
    /// Per-(task, worker) hourly wages in dollars.
    pub wages_per_hour: Vec<f64>,
    /// Total paid out, in dollars.
    pub total_cost_dollars: f64,
    /// Per-task consensus labels (empty set = none).
    pub consensus: Vec<CategorySet>,
}

impl AssignmentOutcome {
    /// Coverage: fraction of tasks with consensus.
    pub fn coverage(&self) -> f64 {
        frac(self.consensus_reached, self.n_tasks)
    }

    /// Loose accuracy over consensus tasks.
    pub fn loose_accuracy(&self) -> f64 {
        frac(self.loose_correct, self.consensus_reached)
    }

    /// Strict accuracy over consensus tasks.
    pub fn strict_accuracy(&self) -> f64 {
        frac(self.strict_correct, self.consensus_reached)
    }

    /// Median hourly wage in dollars.
    pub fn median_wage(&self) -> f64 {
        if self.wages_per_hour.is_empty() {
            return 0.0;
        }
        let mut w = self.wages_per_hour.clone();
        w.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        w[w.len() / 2]
    }

    /// Mean hourly wage in dollars.
    pub fn mean_wage(&self) -> f64 {
        if self.wages_per_hour.is_empty() {
            return 0.0;
        }
        self.wages_per_hour.iter().sum::<f64>() / self.wages_per_hour.len() as f64
    }
}

fn frac(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// One worker's answer to one task.
fn worker_answer(
    worker: &Worker,
    task: &CrowdTask,
    config: &CrowdConfig,
    rng: &mut StdRng,
) -> CategorySet {
    let p = worker.p_correct(config.reward_cents, task.ease);
    let correct_opts = task.correct_options();
    if !correct_opts.is_empty() && rng.random_bool(p) {
        // Diligent and right: pick one (sometimes two) correct options.
        let mut out = CategorySet::new();
        out.insert(*correct_opts.choose(rng).expect("non-empty"));
        if correct_opts.len() > 1 && rng.random_bool(0.3) {
            out.insert(*correct_opts.choose(rng).expect("non-empty"));
        }
        out
    } else {
        // Wrong or unanswerable: a distractor option (or nothing at all —
        // "none of the above" — for a sliver of workers).
        if rng.random_bool(0.08) {
            return CategorySet::new();
        }
        let wrong: Vec<Category> = task
            .options
            .iter()
            .copied()
            .filter(|o| !correct_opts.contains(o))
            .collect();
        match wrong.choose(rng) {
            Some(c) => CategorySet::single(*c),
            None => match task.options.choose(rng) {
                Some(c) => CategorySet::single(*c),
                None => CategorySet::new(),
            },
        }
    }
}

/// Run a full assignment: every task goes to a fresh slice of the cohort.
pub fn run_assignment(
    tasks: &[CrowdTask],
    config: CrowdConfig,
    cohort_label: &str,
    seed: WorldSeed,
) -> AssignmentOutcome {
    let workers = Worker::cohort(config.rule.n, cohort_label, seed);
    let mut rng = StdRng::seed_from_u64(seed.derive("assignment").derive(cohort_label).value());
    let mut outcome = AssignmentOutcome {
        n_tasks: tasks.len(),
        consensus_reached: 0,
        loose_correct: 0,
        strict_correct: 0,
        wages_per_hour: Vec::new(),
        total_cost_dollars: 0.0,
        consensus: Vec::with_capacity(tasks.len()),
    };
    for (ti, task) in tasks.iter().enumerate() {
        let mut labels = Vec::with_capacity(workers.len());
        for w in &workers {
            labels.push(worker_answer(w, task, &config, &mut rng));
            let secs = w.seconds(config.reward_cents, task.ease, ti as u64, seed);
            let dollars = config.reward_cents as f64 / 100.0;
            outcome.wages_per_hour.push(dollars * 3600.0 / secs);
            outcome.total_cost_dollars += dollars;
        }
        let cons = consensus_labels(&labels, config.rule);
        if !cons.is_empty() {
            outcome.consensus_reached += 1;
            outcome.loose_correct += usize::from(loose_match(&cons, &task.truth));
            outcome.strict_correct += usize::from(strict_match(&cons, &task.truth));
        }
        outcome.consensus.push(cons);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;
    use asdb_model::Asn;
    use asdb_taxonomy::naicslite::known;
    use asdb_taxonomy::Layer1;

    fn tech_tasks(n: usize, ease: f64) -> Vec<CrowdTask> {
        (0..n)
            .map(|i| CrowdTask {
                asn: Asn::new(i as u32 + 1),
                kind: TaskKind::OpenClassification,
                options: Layer1::ComputerAndIT
                    .layer2_iter()
                    .map(Category::l2)
                    .collect(),
                truth: CategorySet::single(if i % 2 == 0 {
                    known::isp()
                } else {
                    known::hosting()
                }),
                ease,
            })
            .collect()
    }

    fn run(reward: u32, rule: ConsensusRule, ease: f64) -> AssignmentOutcome {
        run_assignment(
            &tech_tasks(120, ease),
            CrowdConfig {
                reward_cents: reward,
                rule,
            },
            &format!("test-{reward}-{}-{}", rule.k, rule.n),
            WorldSeed::new(99),
        )
    }

    #[test]
    fn coverage_rises_with_reward() {
        let low = run(10, ConsensusRule::TWO_OF_THREE, 0.45);
        let high = run(60, ConsensusRule::TWO_OF_THREE, 0.45);
        assert!(
            high.coverage() > low.coverage(),
            "coverage {:.2} → {:.2}",
            low.coverage(),
            high.coverage()
        );
    }

    #[test]
    fn accuracy_is_roughly_flat_in_reward() {
        let low = run(10, ConsensusRule::TWO_OF_THREE, 0.45);
        let high = run(60, ConsensusRule::TWO_OF_THREE, 0.45);
        let delta = (high.loose_accuracy() - low.loose_accuracy()).abs();
        assert!(delta < 0.15, "accuracy moved {delta:.2} with reward");
    }

    #[test]
    fn stricter_consensus_trades_coverage_for_accuracy() {
        let loose_rule = run(30, ConsensusRule::TWO_OF_THREE, 0.45);
        let strict_rule = run(30, ConsensusRule::FOUR_OF_FIVE, 0.45);
        assert!(strict_rule.coverage() < loose_rule.coverage());
        assert!(strict_rule.loose_accuracy() >= loose_rule.loose_accuracy() - 0.02);
    }

    #[test]
    fn easy_tasks_reach_more_consensus() {
        let hard = run(30, ConsensusRule::TWO_OF_THREE, 0.3);
        let easy = run(30, ConsensusRule::TWO_OF_THREE, 0.9);
        assert!(easy.coverage() > hard.coverage());
        assert!(easy.loose_accuracy() > hard.loose_accuracy());
    }

    #[test]
    fn wages_are_plausible_and_not_proportional_to_reward() {
        let r10 = run(10, ConsensusRule::TWO_OF_THREE, 0.5);
        let r60 = run(60, ConsensusRule::TWO_OF_THREE, 0.5);
        // Mean wage across all assignments lands in a human range.
        assert!(r10.mean_wage() > 2.0 && r10.mean_wage() < 80.0);
        assert!(r60.mean_wage() > 2.0 && r60.mean_wage() < 200.0);
        // A 6× reward must NOT produce a 6× median wage (time dominates).
        let ratio = r60.median_wage() / r10.median_wage();
        assert!(ratio < 6.0, "ratio = {ratio}");
    }

    #[test]
    fn cost_accounting() {
        let o = run(30, ConsensusRule::TWO_OF_THREE, 0.5);
        // 120 tasks × 3 workers × $0.30.
        assert!((o.total_cost_dollars - 108.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let a = run(30, ConsensusRule::TWO_OF_THREE, 0.5);
        let b = run(30, ConsensusRule::TWO_OF_THREE, 0.5);
        assert_eq!(a.consensus_reached, b.consensus_reached);
        assert_eq!(a.loose_correct, b.loose_correct);
    }
}
