//! Consensus over worker labels.
//!
//! "We set the consensus requirement to be at least two out of three MTurks
//! assigning an AS the same category label" — Figure 7 varies this to 3/5
//! and 4/5.

use asdb_taxonomy::{Category, CategorySet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A k-of-n consensus requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsensusRule {
    /// Workers that must agree on a category.
    pub k: usize,
    /// Workers assigned to the task.
    pub n: usize,
}

impl ConsensusRule {
    /// 2-of-3, the paper's default.
    pub const TWO_OF_THREE: ConsensusRule = ConsensusRule { k: 2, n: 3 };
    /// 3-of-5.
    pub const THREE_OF_FIVE: ConsensusRule = ConsensusRule { k: 3, n: 5 };
    /// 4-of-5, the strictest evaluated.
    pub const FOUR_OF_FIVE: ConsensusRule = ConsensusRule { k: 4, n: 5 };
}

/// The categories at least `k` of the workers applied. Empty means no
/// consensus ("If no consensus among the MTurks is reached … we exclude it
/// from our accuracy count because there is no reliable label").
pub fn consensus_labels(labels: &[CategorySet], rule: ConsensusRule) -> CategorySet {
    let mut counts: BTreeMap<Category, usize> = BTreeMap::new();
    for set in labels {
        for c in set.iter() {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|(_, n)| *n >= rule.k)
        .map(|(c, _)| c)
        .collect()
}

/// Loose-match: "at least one consensus-backed crowdworker category is
/// contained in the set of Gold Standard categories."
pub fn loose_match(consensus: &CategorySet, truth: &CategorySet) -> bool {
    consensus.overlaps_l2(truth)
        || consensus
            .iter()
            .any(|c| c.layer2.is_none() && truth.layer1s().contains(&c.layer1))
}

/// Strict-match: "all consensus-backed crowdworker categories match all
/// Gold Standard categories."
pub fn strict_match(consensus: &CategorySet, truth: &CategorySet) -> bool {
    !consensus.is_empty() && consensus.complete_overlap(truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_taxonomy::naicslite::known;

    fn set(cats: &[Category]) -> CategorySet {
        cats.iter().copied().collect()
    }

    #[test]
    fn two_of_three_consensus() {
        let isp = Category::l2(known::isp());
        let hosting = Category::l2(known::hosting());
        let labels = vec![set(&[isp]), set(&[isp, hosting]), set(&[hosting])];
        let c = consensus_labels(&labels, ConsensusRule::TWO_OF_THREE);
        // Both isp and hosting appear twice.
        assert_eq!(c.len(), 2);
        let labels = vec![
            set(&[isp]),
            set(&[hosting]),
            set(&[Category::l2(known::banks())]),
        ];
        let c = consensus_labels(&labels, ConsensusRule::TWO_OF_THREE);
        assert!(c.is_empty(), "three-way split has no consensus");
    }

    #[test]
    fn stricter_rules_need_more_votes() {
        let isp = Category::l2(known::isp());
        let labels = vec![
            set(&[isp]),
            set(&[isp]),
            set(&[isp]),
            set(&[Category::l2(known::hosting())]),
            set(&[Category::l2(known::banks())]),
        ];
        assert!(!consensus_labels(&labels, ConsensusRule::THREE_OF_FIVE).is_empty());
        assert!(consensus_labels(&labels, ConsensusRule::FOUR_OF_FIVE).is_empty());
    }

    #[test]
    fn loose_and_strict_matching() {
        let truth = set(&[Category::l2(known::isp()), Category::l2(known::hosting())]);
        let partial = set(&[Category::l2(known::isp())]);
        assert!(loose_match(&partial, &truth));
        assert!(!strict_match(&partial, &truth));
        assert!(strict_match(&truth.clone(), &truth));
        let wrong = set(&[Category::l2(known::banks())]);
        assert!(!loose_match(&wrong, &truth));
        let empty = CategorySet::new();
        assert!(!strict_match(&empty, &truth));
        assert!(!loose_match(&empty, &truth));
    }
}
