//! # asdb-crowd
//!
//! The crowdwork (Amazon Mechanical Turk) simulator behind Appendix B.
//!
//! The paper explores paying "Master MTurks" to classify ASes and measures
//! how the offered reward and the consensus requirement drive coverage,
//! accuracy, hourly wages, and total cost — ultimately concluding that
//! "the accuracy gain from crowdwork is not worth the cost" (§4.2).
//!
//! The simulator models the *worker*, not the result: each worker has a
//! skill, a diligence that rises with the offered reward, and a
//! heavy-tailed time-per-task distribution that barely depends on reward.
//! From those mechanisms the paper's findings emerge:
//!
//! * coverage (consensus rate) rises with reward (Figure 5a),
//! * accuracy-given-consensus is roughly flat in reward, with a slight
//!   *decrease* in loose accuracy as coverage grows — low rewards only
//!   reach consensus on the easy cases (Figure 5b),
//! * reward-per-task and hourly wage are not directly correlated
//!   (Figure 6),
//! * stricter consensus (4/5 vs 2/3) trades coverage for accuracy
//!   (Figure 7).
//!
//! [`cost`] prices the two candidate uses of crowdwork in ASdb (catching ML
//! false negatives: ≈ $31k; resolving source disagreements: ≈ $6k).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consensus;
pub mod cost;
pub mod experiment;
pub mod task;
pub mod worker;

pub use consensus::{consensus_labels, ConsensusRule};
pub use experiment::{run_assignment, AssignmentOutcome, CrowdConfig};
pub use task::{CrowdTask, TaskKind};
pub use worker::Worker;
