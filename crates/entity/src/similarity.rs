//! String-similarity primitives.
//!
//! All scores are in `[0, 1]`, higher = more similar. `name_similarity` is
//! the workhorse: a blend of character-level Jaro–Winkler and token-set
//! Jaccard over normalized organization names, tolerant of the legal-suffix
//! and word-order noise typical of WHOIS.

/// Jaro similarity between two strings (by Unicode scalar values).
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    let mut match_positions_b: Vec<usize> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                matches_a.push(ca);
                match_positions_b.push(j);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare matched sequences in order.
    let mut b_matches: Vec<(usize, char)> = match_positions_b.iter().map(|&j| (j, b[j])).collect();
    b_matches.sort_by_key(|(j, _)| *j);
    let t = matches_a
        .iter()
        .zip(b_matches.iter().map(|(_, c)| c))
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler: Jaro boosted for a shared prefix (up to 4 chars, standard
/// scaling 0.1).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity of lowercase alphanumeric token sets.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

fn tokens(s: &str) -> std::collections::BTreeSet<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(str::to_lowercase)
        // Legal suffixes carry no identity: "Acme Corp" vs "Zenith Corp"
        // share nothing that matters.
        .filter(|t| !asdb_model::org::LEGAL_SUFFIXES.contains(&t.as_str()))
        .collect()
}

/// Combined organization-name similarity: the max of token-set Jaccard and
/// whole-string Jaro–Winkler over lowercased input, with a partial-credit
/// boost when one name's tokens are a subset of the other's (abbreviations,
/// dropped suffixes).
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    let jw = jaro_winkler(&la, &lb);
    let jac = token_jaccard(&la, &lb);
    let ta = tokens(&la);
    let tb = tokens(&lb);
    let subset_bonus =
        if !ta.is_empty() && !tb.is_empty() && (ta.is_subset(&tb) || tb.is_subset(&ta)) {
            0.85
        } else {
            0.0
        };
    // Character-level similarity alone is unreliable for unrelated names
    // (Jaro–Winkler sits near 0.5 for random English phrases), so discount
    // it when the names share no tokens at all.
    let jw_weighted = if jac > 0.0 { jw } else { jw * 0.75 };
    jw_weighted.max(jac).max(subset_bonus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jaro_known_values() {
        // Classic reference pair.
        let v = jaro("martha", "marhta");
        assert!((v - 0.944444).abs() < 1e-4, "{v}");
        let v = jaro("dixon", "dicksonx");
        assert!((v - 0.766667).abs() < 1e-4, "{v}");
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        let v = jaro_winkler("martha", "marhta");
        assert!((v - 0.961111).abs() < 1e-4, "{v}");
        // Prefix boost makes it ≥ jaro.
        assert!(jaro_winkler("prefixed", "prefixes") >= jaro("prefixed", "prefixes"));
    }

    #[test]
    fn token_jaccard_basics() {
        assert_eq!(token_jaccard("alpha beta", "beta alpha"), 1.0);
        assert_eq!(token_jaccard("alpha beta", "gamma delta"), 0.0);
        let half = token_jaccard("alpha beta", "alpha gamma");
        assert!((half - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(token_jaccard("", ""), 1.0);
        assert_eq!(token_jaccard("abc", ""), 0.0);
    }

    #[test]
    fn name_similarity_handles_whois_noise() {
        // Dropped legal suffix.
        assert!(name_similarity("Level 3 Parent, LLC", "Level 3 Parent") > 0.8);
        // Word-order shuffle.
        assert!(name_similarity("Telekom Deutsche", "Deutsche Telekom") > 0.8);
        // Unrelated names score low.
        assert!(name_similarity("Panama Canal Authority", "Acme Hosting") < 0.5);
        // Abbreviation subset.
        assert!(name_similarity("SUMIDA Romania", "SUMIDA Romania SRL Factory Division") > 0.8);
    }

    #[test]
    fn similar_beats_dissimilar_for_title_matching() {
        // The Table 5 scenario: pick the domain whose homepage title best
        // matches the AS name.
        let as_name = "ACMENET";
        let right = name_similarity(as_name, "Acmenet Communications — fiber and broadband");
        let wrong = name_similarity(as_name, "Gmail — email from Google");
        assert!(right > wrong);
    }

    proptest! {
        #[test]
        fn scores_bounded(a in ".{0,40}", b in ".{0,40}") {
            for f in [jaro, jaro_winkler, token_jaccard, name_similarity] {
                let v = f(&a, &b);
                prop_assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }

        #[test]
        fn identity_scores_one(a in "[a-z]{1,20}") {
            prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((name_similarity(&a, &a) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn symmetry(a in "[a-z ]{0,25}", b in "[a-z ]{0,25}") {
            prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
            prop_assert!((token_jaccard(&a, &b) - token_jaccard(&b, &a)).abs() < 1e-12);
        }
    }
}
