//! The §5.1 domain-extraction algorithm.
//!
//! > "(1) pool domains from RIR metadata and ASN-queryable data source
//! > matches; (2) remove all domains that belong to a hand-curated list of
//! > the top 10 email domains (e.g., Gmail); (3) if at least one provided
//! > domain appears in < 100 ASes, filter out domains that appear in ≥ 100
//! > ASes; (4) choose from the remaining pool of domains using 'most
//! > similar' domain matching (91% accuracy, 85% coverage)."
//!
//! Table 5 also evaluates the *random* and *least common* strategies; all
//! three are implemented so the entity-resolution experiment can reproduce
//! the comparison.

use crate::similarity::name_similarity;
use asdb_model::{Domain, Url, WorldSeed};
use asdb_websim::html::Page as HtmlPage;
use asdb_websim::Fetcher;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The domain-count threshold of step 3: domains appearing in ≥ 100 ASes
/// are shared contact services, not organization domains.
pub const COMMON_DOMAIN_THRESHOLD: usize = 100;

/// How to pick from the filtered candidate pool (Table 5's three rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainStrategy {
    /// Uniformly random choice (70% accuracy in the paper).
    Random,
    /// "least common domain" — fewest WHOIS appearances (90%).
    LeastCommon,
    /// "most similar domain" — homepage title (or domain string, when the
    /// site is unreachable) most similar to the AS name (91%).
    MostSimilar,
}

/// A candidate pool, carrying each domain's WHOIS-wide AS count.
#[derive(Debug, Clone, Default)]
pub struct DomainCandidates {
    entries: Vec<(Domain, usize)>,
}

impl DomainCandidates {
    /// Build a pool; duplicates are collapsed (keeping the first count).
    pub fn new(domains: impl IntoIterator<Item = (Domain, usize)>) -> DomainCandidates {
        let mut entries: Vec<(Domain, usize)> = Vec::new();
        for (d, c) in domains {
            let d = d.registrable();
            if !entries.iter().any(|(e, _)| *e == d) {
                entries.push((d, c));
            }
        }
        DomainCandidates { entries }
    }

    /// Number of candidates before filtering.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Steps 2–3: drop public email domains; then, if any sub-threshold
    /// domain remains, drop the ≥-threshold ones.
    pub fn filtered(&self) -> Vec<(Domain, usize)> {
        let no_email: Vec<(Domain, usize)> = self
            .entries
            .iter()
            .filter(|(d, _)| !d.is_public_email_domain())
            .cloned()
            .collect();
        let any_rare = no_email.iter().any(|(_, c)| *c < COMMON_DOMAIN_THRESHOLD);
        if any_rare {
            no_email
                .into_iter()
                .filter(|(_, c)| *c < COMMON_DOMAIN_THRESHOLD)
                .collect()
        } else {
            no_email
        }
    }
}

/// Run the full §5.1 algorithm: filter the pool and pick per strategy.
///
/// `reference_name` is the AS/organization name to compare homepage titles
/// against; `fetcher` is consulted only for [`DomainStrategy::MostSimilar`].
pub fn select_domain<F: Fetcher>(
    candidates: &DomainCandidates,
    reference_name: &str,
    strategy: DomainStrategy,
    fetcher: &F,
    seed: WorldSeed,
) -> Option<Domain> {
    let pool = candidates.filtered();
    if pool.is_empty() {
        return None;
    }
    if pool.len() == 1 {
        return Some(pool[0].0.clone());
    }
    match strategy {
        DomainStrategy::Random => {
            let mut rng =
                StdRng::seed_from_u64(seed.derive("domain-random").derive(reference_name).value());
            Some(pool[rng.random_range(0..pool.len())].0.clone())
        }
        DomainStrategy::LeastCommon => pool
            .iter()
            .min_by_key(|(d, c)| (*c, d.as_str().to_owned()))
            .map(|(d, _)| d.clone()),
        DomainStrategy::MostSimilar => {
            let mut best: Option<(f64, Domain)> = None;
            for (d, _) in &pool {
                let title = homepage_title(fetcher, d)
                    .unwrap_or_else(|| d.as_str().replace(['.', '-'], " "));
                let score = name_similarity(reference_name, &title)
                    // Tie-break toward name/domain affinity as well.
                    .max(name_similarity(reference_name, d.leftmost_label()) * 0.98);
                match &best {
                    Some((s, _)) if *s >= score => {}
                    _ => best = Some((score, d.clone())),
                }
            }
            best.map(|(_, d)| d)
        }
    }
}

/// Fetch a domain's homepage title ("or, for unreachable sites, the domain
/// itself is used" — the caller handles the fallback).
pub fn homepage_title<F: Fetcher>(fetcher: &F, domain: &Domain) -> Option<String> {
    let fetched = fetcher.fetch(&Url::root(domain.clone())).ok()?;
    let title = HtmlPage::parse(&fetched.markup).title;
    (!title.is_empty()).then_some(title)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_taxonomy::naicslite::known;
    use asdb_websim::{Language, SimWeb, SiteQuirks, SiteSpec, Website};

    fn dom(s: &str) -> Domain {
        Domain::new(s).unwrap()
    }

    fn web_with(org: &str, domain: &str) -> SimWeb {
        let mut web = SimWeb::new(WorldSeed::new(5));
        web.host(Website::generate(
            &SiteSpec {
                domain: dom(domain),
                org_name: org.into(),
                category: known::isp(),
                language: Language::English,
                quirks: SiteQuirks::default(),
            },
            WorldSeed::new(5),
        ));
        web
    }

    #[test]
    fn public_email_domains_removed() {
        let c = DomainCandidates::new([(dom("gmail.com"), 5000), (dom("acmenet.com"), 2)]);
        let f = c.filtered();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].0.as_str(), "acmenet.com");
    }

    #[test]
    fn common_domains_filtered_only_when_rare_exists() {
        // Rare + common → common dropped.
        let c = DomainCandidates::new([(dom("noc-services.net"), 800), (dom("acmenet.com"), 2)]);
        assert_eq!(c.filtered().len(), 1);
        // Only common → kept (better than nothing).
        let c = DomainCandidates::new([(dom("noc-services.net"), 800)]);
        assert_eq!(c.filtered().len(), 1);
    }

    #[test]
    fn registrable_normalization_dedupes() {
        let c = DomainCandidates::new([
            (dom("www.acmenet.com"), 2),
            (dom("acmenet.com"), 2),
            (dom("mail.acmenet.com"), 3),
        ]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn most_similar_picks_title_match() {
        // Two plausible candidates; only the right one's homepage title
        // matches the org name.
        let web = web_with("Acmenet Communications", "acmenet.com");
        let c = DomainCandidates::new([(dom("unrelated-host.org"), 3), (dom("acmenet.com"), 2)]);
        let picked = select_domain(
            &c,
            "Acmenet Communications",
            DomainStrategy::MostSimilar,
            &web,
            WorldSeed::new(1),
        )
        .unwrap();
        assert_eq!(picked.as_str(), "acmenet.com");
    }

    #[test]
    fn most_similar_falls_back_to_domain_string() {
        // No sites hosted at all: the domain string itself is compared.
        let web = SimWeb::new(WorldSeed::new(2));
        let c = DomainCandidates::new([(dom("zzz-unrelated.org"), 3), (dom("acmenet.com"), 3)]);
        let picked = select_domain(
            &c,
            "ACMENET",
            DomainStrategy::MostSimilar,
            &web,
            WorldSeed::new(1),
        )
        .unwrap();
        assert_eq!(picked.as_str(), "acmenet.com");
    }

    #[test]
    fn least_common_picks_rarest() {
        let web = SimWeb::new(WorldSeed::new(3));
        let c = DomainCandidates::new([
            (dom("shared-noc.net"), 90),
            (dom("acmenet.com"), 2),
            (dom("other.org"), 10),
        ]);
        let picked = select_domain(
            &c,
            "whatever",
            DomainStrategy::LeastCommon,
            &web,
            WorldSeed::new(1),
        )
        .unwrap();
        assert_eq!(picked.as_str(), "acmenet.com");
    }

    #[test]
    fn random_is_deterministic_per_seed_and_name() {
        let web = SimWeb::new(WorldSeed::new(4));
        let c = DomainCandidates::new([(dom("a.com"), 1), (dom("b.com"), 1), (dom("c.com"), 1)]);
        let p1 = select_domain(
            &c,
            "X Corp",
            DomainStrategy::Random,
            &web,
            WorldSeed::new(9),
        );
        let p2 = select_domain(
            &c,
            "X Corp",
            DomainStrategy::Random,
            &web,
            WorldSeed::new(9),
        );
        assert_eq!(p1, p2);
    }

    #[test]
    fn empty_pool_returns_none() {
        let web = SimWeb::new(WorldSeed::new(6));
        let c = DomainCandidates::new([(dom("gmail.com"), 9000)]);
        assert!(select_domain(
            &c,
            "X",
            DomainStrategy::MostSimilar,
            &web,
            WorldSeed::new(1)
        )
        .is_none());
        let empty = DomainCandidates::default();
        assert!(empty.is_empty());
        assert!(
            select_domain(&empty, "X", DomainStrategy::Random, &web, WorldSeed::new(1)).is_none()
        );
    }

    #[test]
    fn singleton_pool_short_circuits() {
        let web = SimWeb::new(WorldSeed::new(7));
        let c = DomainCandidates::new([(dom("only.com"), 1)]);
        for strat in [
            DomainStrategy::Random,
            DomainStrategy::LeastCommon,
            DomainStrategy::MostSimilar,
        ] {
            assert_eq!(
                select_domain(&c, "X", strat, &web, WorldSeed::new(1))
                    .unwrap()
                    .as_str(),
                "only.com"
            );
        }
    }
}
