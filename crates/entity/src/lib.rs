//! # asdb-entity
//!
//! Entity resolution: the machinery for deciding *which organization* a
//! pile of messy WHOIS strings refers to.
//!
//! "Scaling requires both access to the full business datasets and
//! developing an automated method for looking up organizations" (§3.5).
//! The two halves implemented here:
//!
//! * [`similarity`]: string similarity primitives — Jaro, Jaro–Winkler,
//!   token-set Jaccard, and the combined name-similarity score used
//!   everywhere a "most similar" decision is made;
//! * [`domain_select`]: the §5.1 domain-extraction algorithm — pool
//!   candidate domains from RIR metadata and ASN-queryable sources, strip
//!   public email providers, apply the <100-ASes commonality filter, then
//!   pick by one of the three evaluated strategies (random / least common /
//!   most similar), where "most similar" compares the website's homepage
//!   title (or, for unreachable sites, the domain itself) against the AS
//!   name (Table 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain_select;
pub mod similarity;

pub use domain_select::{select_domain, DomainCandidates, DomainStrategy};
pub use similarity::{jaro, jaro_winkler, name_similarity, token_jaccard};
