//! Property tests: every registry dialect must survive the render → dump →
//! parse → extract chain for arbitrary registration data.

use asdb_model::{Asn, CountryCode, Email, Rir, Url};
use asdb_rir::dialect::{serialize, Address, Registration};
use asdb_rir::dump::{read_dump, write_dump};
use asdb_rir::extract;
use proptest::prelude::*;

fn arb_registration() -> impl Strategy<Value = Registration> {
    (
        1u32..4_000_000_000,
        "[A-Z][A-Z0-9-]{1,18}",
        proptest::option::of("[A-Za-z][A-Za-z ]{1,28}[A-Za-z]"),
        proptest::option::of("[A-Za-z][A-Za-z ]{1,28}[A-Za-z]"),
        proptest::option::of(("[0-9]{1,4} [A-Za-z]{2,12} St", "[A-Za-z]{3,12}")),
        any::<bool>(),
        proptest::option::of("[a-z]{2,10}"),
        proptest::option::of("[a-z]{2,10}\\.(com|net|org|de|jp)"),
    )
        .prop_map(
            |(asn, as_name, org, descr, addr, obfuscate, local, domain)| {
                let mut reg = Registration::bare(Asn::new(asn), &as_name);
                reg.org_name = org;
                reg.descr = descr;
                reg.address = addr.map(|(street, city)| Address {
                    street,
                    city,
                    state: String::new(),
                    postal: "12345".into(),
                });
                reg.obfuscate_address = obfuscate;
                reg.country = Some(CountryCode::new("US").expect("static"));
                if let (Some(l), Some(d)) = (local, domain) {
                    if let Ok(e) = Email::new(&format!("{l}@{d}")) {
                        reg.abuse_emails.push(e);
                    }
                    if let Ok(u) = Url::parse(&format!("https://www.{d}/")) {
                        reg.remark_urls.push(u);
                    }
                }
                reg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn render_dump_parse_extract_roundtrip(reg in arb_registration()) {
        for rir in Rir::ALL {
            let rendered = serialize(rir, &reg);
            let text = write_dump(std::slice::from_ref(&rendered));
            let back = read_dump(&text);
            prop_assert_eq!(back.len(), 1, "{} produced {} records", rir, back.len());
            prop_assert_eq!(back[0].asn, reg.asn);
            prop_assert_eq!(back[0].rir, rir);

            let direct = extract(&rendered);
            let via_text = extract(&back[0]);
            // The extraction must not depend on whether the record came
            // from memory or from re-parsed dump text.
            prop_assert_eq!(&direct.name, &via_text.name, "{}", rir);
            prop_assert_eq!(direct.name_source, via_text.name_source);
            prop_assert_eq!(&direct.address, &via_text.address, "{}", rir);
            prop_assert_eq!(&direct.phone, &via_text.phone);
            prop_assert_eq!(direct.country, via_text.country);
            prop_assert_eq!(direct.candidate_domains(), via_text.candidate_domains());
        }
    }

    #[test]
    fn name_preference_order_always_respected(reg in arb_registration()) {
        for rir in Rir::ALL {
            let parsed = extract(&serialize(rir, &reg));
            match (&reg.org_name, &reg.descr) {
                (Some(org), _) => prop_assert_eq!(&parsed.name, org, "{}", rir),
                // LACNIC routes the AS name through `owner`, so a missing
                // org name falls back to the AS name there regardless of
                // descr; other registries prefer the description.
                (None, Some(d)) if rir != Rir::Lacnic => {
                    prop_assert_eq!(&parsed.name, d, "{}", rir)
                }
                _ => prop_assert_eq!(&parsed.name, &reg.as_name, "{}", rir),
            }
        }
    }

    #[test]
    fn lacnic_never_leaks_domains(reg in arb_registration()) {
        let parsed = extract(&serialize(Rir::Lacnic, &reg));
        prop_assert!(parsed.candidate_domains().is_empty());
        prop_assert!(parsed.emails.is_empty());
    }

    #[test]
    fn afrinic_obfuscation_never_leaks_street(reg in arb_registration()) {
        prop_assume!(reg.address.is_some());
        let mut reg = reg;
        reg.obfuscate_address = true;
        let parsed = extract(&serialize(Rir::Afrinic, &reg));
        if let (Some(addr), Some(orig)) = (&parsed.address, &reg.address) {
            prop_assert!(
                !addr.contains(&orig.street),
                "street {:?} leaked into {:?}",
                orig.street,
                addr
            );
        }
    }
}
