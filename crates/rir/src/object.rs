//! The RPSL-style attribute/value object model.
//!
//! All five RIRs publish WHOIS as sequences of objects: blocks of
//! `attribute: value` lines separated by blank lines. Attribute names and
//! available fields differ per registry (see [`crate::dialect`]); this
//! module is the registry-agnostic core.

use asdb_model::{Asn, Rir};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One attribute line of an RPSL object. Attributes may repeat within an
/// object (e.g. multiple `address:` or `remarks:` lines) and order matters,
/// so objects store a `Vec<Attr>` rather than a map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attr {
    /// Attribute name, stored lower-cased without the trailing colon.
    pub name: String,
    /// Attribute value with continuation lines joined by a single space.
    pub value: String,
}

impl Attr {
    /// Build an attribute, normalizing the name to lower case.
    pub fn new(name: &str, value: &str) -> Attr {
        Attr {
            name: name.trim().to_ascii_lowercase(),
            value: value.trim().to_owned(),
        }
    }
}

/// One RPSL object: the first attribute determines the object class
/// (`aut-num`, `organisation`, `role`, …).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RpslObject {
    /// Attributes in original order.
    pub attrs: Vec<Attr>,
}

impl RpslObject {
    /// Empty object.
    pub fn new() -> RpslObject {
        RpslObject::default()
    }

    /// Append an attribute.
    pub fn push(&mut self, name: &str, value: &str) {
        self.attrs.push(Attr::new(name, value));
    }

    /// Builder-style append.
    pub fn with(mut self, name: &str, value: &str) -> RpslObject {
        self.push(name, value);
        self
    }

    /// The object class: the name of the first attribute, or `""` for an
    /// empty object.
    pub fn class(&self) -> &str {
        self.attrs.first().map(|a| a.name.as_str()).unwrap_or("")
    }

    /// First value of the named attribute, if present.
    pub fn first(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// All values of the named attribute, in order.
    pub fn all(&self, name: &str) -> Vec<&str> {
        let name = name.to_ascii_lowercase();
        self.attrs
            .iter()
            .filter(|a| a.name == name)
            .map(|a| a.value.as_str())
            .collect()
    }

    /// Whether the object has the named attribute.
    pub fn has(&self, name: &str) -> bool {
        self.first(name).is_some()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

impl fmt::Display for RpslObject {
    /// Serialize in canonical RPSL layout: `name:` padded to 16 columns.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.attrs {
            writeln!(f, "{:<15} {}", format!("{}:", a.name), a.value)?;
        }
        Ok(())
    }
}

/// All WHOIS objects describing one AS registration at one registry:
/// the `aut-num` object plus any connected `organisation` and contact
/// (`role`/`person`/`POC`) objects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhoisRecord {
    /// The registry this record came from.
    pub rir: Rir,
    /// The AS number (parsed from the `aut-num`/`asnumber` attribute).
    pub asn: Asn,
    /// The objects, `aut-num` first.
    pub objects: Vec<RpslObject>,
}

impl WhoisRecord {
    /// The `aut-num` object (always the first).
    pub fn aut_num(&self) -> Option<&RpslObject> {
        self.objects.first()
    }

    /// The organisation object, if any.
    pub fn organisation(&self) -> Option<&RpslObject> {
        self.objects
            .iter()
            .find(|o| matches!(o.class(), "organisation" | "org" | "orgname"))
    }

    /// Contact objects (role/person/poc).
    pub fn contacts(&self) -> impl Iterator<Item = &RpslObject> {
        self.objects
            .iter()
            .filter(|o| matches!(o.class(), "role" | "person" | "poc"))
    }

    /// First value of an attribute searched across all objects,
    /// `aut-num` first.
    pub fn first(&self, name: &str) -> Option<&str> {
        self.objects.iter().find_map(|o| o.first(name))
    }

    /// All values of an attribute across all objects.
    pub fn all(&self, name: &str) -> Vec<&str> {
        self.objects.iter().flat_map(|o| o.all(name)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RpslObject {
        RpslObject::new()
            .with("aut-num", "AS3356")
            .with("as-name", "LEVEL3")
            .with("remarks", "first remark")
            .with("remarks", "second remark")
    }

    #[test]
    fn class_is_first_attr() {
        assert_eq!(sample().class(), "aut-num");
        assert_eq!(RpslObject::new().class(), "");
    }

    #[test]
    fn first_and_all() {
        let o = sample();
        assert_eq!(o.first("as-name"), Some("LEVEL3"));
        assert_eq!(
            o.first("AS-NAME"),
            Some("LEVEL3"),
            "lookup is case-insensitive"
        );
        assert_eq!(o.all("remarks"), vec!["first remark", "second remark"]);
        assert!(o.first("mnt-by").is_none());
        assert!(o.has("remarks"));
    }

    #[test]
    fn display_is_rpsl_shaped() {
        let text = sample().to_string();
        assert!(text.starts_with("aut-num:        AS3356\n"));
        assert!(text.contains("as-name:        LEVEL3"));
    }

    #[test]
    fn record_navigation() {
        let rec = WhoisRecord {
            rir: Rir::Ripe,
            asn: Asn::new(3356),
            objects: vec![
                sample(),
                RpslObject::new()
                    .with("organisation", "ORG-L1")
                    .with("org-name", "Level 3 Communications"),
                RpslObject::new()
                    .with("role", "NOC")
                    .with("abuse-mailbox", "abuse@level3.com"),
            ],
        };
        assert_eq!(rec.aut_num().unwrap().class(), "aut-num");
        assert_eq!(
            rec.organisation().unwrap().first("org-name"),
            Some("Level 3 Communications")
        );
        assert_eq!(rec.contacts().count(), 1);
        assert_eq!(rec.first("abuse-mailbox"), Some("abuse@level3.com"));
        assert_eq!(rec.all("remarks").len(), 2);
    }
}
