//! Per-registry WHOIS dialects.
//!
//! "All RIRs release their own subset of information in a unique format"
//! (Appendix A). This module renders a registry-neutral [`Registration`]
//! into each RIR's attribute conventions, reproducing the quirks the
//! extraction rules must cope with:
//!
//! * **RIPE** has no address attribute — postal addresses ride in `descr`.
//! * **APNIC** has an `address:` attribute on 99.98% of entries.
//! * **AFRINIC** has `address:` on 90.01% of entries, but 92% of those
//!   obfuscate the street with `*` characters, leaving only city/state/
//!   country visible.
//! * **LACNIC** exposes only `city:`/`country:` — and no contact emails or
//!   remark URLs at all.
//! * **ARIN** uses CamelCase attribute names (`ASNumber`, `OrgName`, …) and
//!   publishes full street addresses and phone numbers for 100% of entries.

use crate::object::{RpslObject, WhoisRecord};
use asdb_model::{Asn, CountryCode, Email, Rir, Url};
use serde::{Deserialize, Serialize};

/// A structured postal address, before dialect rendering.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Address {
    /// Street line (number + street).
    pub street: String,
    /// City.
    pub city: String,
    /// State or province (may be empty).
    pub state: String,
    /// Postal code (may be empty).
    pub postal: String,
}

impl Address {
    /// Single-line rendering.
    pub fn one_line(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for p in [&self.street, &self.city, &self.state, &self.postal] {
            if !p.is_empty() {
                parts.push(p);
            }
        }
        parts.join(", ")
    }

    /// AFRINIC-style obfuscation: street and postal code replaced by `*`
    /// runs, city/state left visible.
    pub fn obfuscated(&self) -> Address {
        Address {
            street: "*".repeat(self.street.len().clamp(4, 12)),
            city: self.city.clone(),
            state: self.state.clone(),
            postal: if self.postal.is_empty() {
                String::new()
            } else {
                "*".repeat(self.postal.len().clamp(3, 8))
            },
        }
    }
}

/// Registry-neutral registration data: what an organization files with its
/// RIR. Field `Option`s model the paper's measured availability (§3.1:
/// 100% some name, 99.7% country, 61.7% address, 45% phone, 87.1% domain).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registration {
    /// The AS number.
    pub asn: Asn,
    /// The AS handle/name (always present; often uninformative).
    pub as_name: String,
    /// Organization name (present for 80.19% of ASes).
    pub org_name: Option<String>,
    /// Free-text description (present for 24.81%).
    pub descr: Option<String>,
    /// Postal address, if registered.
    pub address: Option<Address>,
    /// Whether an AFRINIC record obfuscates its address.
    pub obfuscate_address: bool,
    /// Contact phone number.
    pub phone: Option<String>,
    /// Country of registration.
    pub country: Option<CountryCode>,
    /// Abuse-contact emails.
    pub abuse_emails: Vec<Email>,
    /// Technical/NOC contact emails.
    pub tech_emails: Vec<Email>,
    /// URLs the registrant put in remarks.
    pub remark_urls: Vec<Url>,
}

impl Registration {
    /// Minimal registration with only the mandatory fields.
    pub fn bare(asn: Asn, as_name: &str) -> Registration {
        Registration {
            asn,
            as_name: as_name.to_owned(),
            org_name: None,
            descr: None,
            address: None,
            obfuscate_address: false,
            phone: None,
            country: None,
            abuse_emails: Vec::new(),
            tech_emails: Vec::new(),
            remark_urls: Vec::new(),
        }
    }
}

/// Render a registration in the given registry's dialect.
pub fn serialize(rir: Rir, reg: &Registration) -> WhoisRecord {
    let objects = match rir {
        Rir::Ripe => ripe_objects(reg),
        Rir::Apnic => apnic_objects(reg),
        Rir::Afrinic => afrinic_objects(reg),
        Rir::Lacnic => lacnic_objects(reg),
        Rir::Arin => arin_objects(reg),
    };
    WhoisRecord {
        rir,
        asn: reg.asn,
        objects,
    }
}

fn push_remarks(o: &mut RpslObject, name: &str, urls: &[Url]) {
    for u in urls {
        o.push(name, &format!("see {u}"));
    }
}

fn ripe_objects(reg: &Registration) -> Vec<RpslObject> {
    let mut aut = RpslObject::new()
        .with("aut-num", &reg.asn.to_string())
        .with("as-name", &reg.as_name);
    if let Some(d) = &reg.descr {
        aut.push("descr", d);
    }
    // RIPE has no address attribute; addresses appear as extra descr lines.
    if let Some(a) = &reg.address {
        aut.push("descr", &a.one_line());
    }
    if let Some(c) = reg.country {
        aut.push("country", c.as_str());
    }
    push_remarks(&mut aut, "remarks", &reg.remark_urls);
    let mut objects = vec![aut];
    if let Some(org) = &reg.org_name {
        let mut o = RpslObject::new()
            .with("organisation", &format!("ORG-{}", reg.asn.value()))
            .with("org-name", org);
        for e in &reg.abuse_emails {
            o.push("abuse-mailbox", &e.to_string());
        }
        objects.push(o);
    } else {
        // Abuse contacts still exist via a role object.
        let mut o = RpslObject::new().with("role", "Abuse contact");
        for e in &reg.abuse_emails {
            o.push("abuse-mailbox", &e.to_string());
        }
        objects.push(o);
    }
    if !reg.tech_emails.is_empty() {
        let mut o = RpslObject::new().with("role", "NOC");
        for e in &reg.tech_emails {
            o.push("e-mail", &e.to_string());
        }
        objects.push(o);
    }
    objects
}

fn apnic_objects(reg: &Registration) -> Vec<RpslObject> {
    let mut objects = ripe_objects(reg);
    // APNIC does have an address attribute (99.98% of entries).
    if let Some(a) = &reg.address {
        objects[0].push("address", &a.one_line());
    }
    // APNIC provides phone numbers for 100% of its ASes (Appendix A).
    if let Some(p) = &reg.phone {
        objects[0].push("phone", p);
    }
    objects
}

fn afrinic_objects(reg: &Registration) -> Vec<RpslObject> {
    let mut objects = ripe_objects(reg);
    if let Some(a) = &reg.address {
        let rendered = if reg.obfuscate_address {
            a.obfuscated()
        } else {
            a.clone()
        };
        objects[0].push("address", &rendered.one_line());
    }
    objects
}

fn lacnic_objects(reg: &Registration) -> Vec<RpslObject> {
    // LACNIC: owner + city/country only; "LACNIC does not provide domains
    // or contact emails" (Appendix A).
    let mut o = RpslObject::new().with("aut-num", &reg.asn.to_string());
    let owner = reg.org_name.as_deref().unwrap_or(&reg.as_name);
    o.push("owner", owner);
    o.push("ownerid", &format!("{}-LACNIC", reg.as_name));
    if let Some(a) = &reg.address {
        o.push("city", &a.city);
    }
    if let Some(c) = reg.country {
        o.push("country", c.as_str());
    }
    vec![o]
}

fn arin_objects(reg: &Registration) -> Vec<RpslObject> {
    let mut aut = RpslObject::new()
        .with("asnumber", &reg.asn.value().to_string())
        .with("asname", &reg.as_name);
    if let Some(d) = &reg.descr {
        aut.push("comment", d);
    }
    push_remarks(&mut aut, "comment", &reg.remark_urls);
    let mut org = RpslObject::new();
    if let Some(name) = &reg.org_name {
        org.push("orgname", name);
    }
    // ARIN: 100% of entries contain the entire street address.
    if let Some(a) = &reg.address {
        org.push("address", &a.street);
        org.push("city", &a.city);
        org.push("stateprov", &a.state);
        org.push("postalcode", &a.postal);
    }
    if let Some(c) = reg.country {
        org.push("country", c.as_str());
    }
    for e in &reg.abuse_emails {
        org.push("orgabuseemail", &e.to_string());
    }
    for e in &reg.tech_emails {
        org.push("orgtechemail", &e.to_string());
    }
    // ARIN provides phone numbers for 100% of its ASes (Appendix A).
    if let Some(p) = &reg.phone {
        org.push("orgabusephone", p);
    }
    vec![aut, org]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_reg() -> Registration {
        Registration {
            asn: Asn::new(64500),
            as_name: "EXAMPLE-AS".into(),
            org_name: Some("Example Networks LLC".into()),
            descr: Some("Example Networks backbone".into()),
            address: Some(Address {
                street: "1 Example Way".into(),
                city: "Springfield".into(),
                state: "IL".into(),
                postal: "62701".into(),
            }),
            obfuscate_address: false,
            phone: Some("+1-555-0100".into()),
            country: Some(CountryCode::new("US").unwrap()),
            abuse_emails: vec![Email::new("abuse@example.net").unwrap()],
            tech_emails: vec![Email::new("noc@example.net").unwrap()],
            remark_urls: vec![Url::parse("https://www.example.net/").unwrap()],
        }
    }

    #[test]
    fn ripe_has_no_address_attribute() {
        let rec = serialize(Rir::Ripe, &full_reg());
        assert!(rec.first("address").is_none());
        // The address is embedded in descr instead.
        let descrs = rec.all("descr");
        assert!(descrs.iter().any(|d| d.contains("Springfield")));
        assert!(rec.first("phone").is_none(), "RIPE publishes no phones");
    }

    #[test]
    fn apnic_has_address_and_phone() {
        let rec = serialize(Rir::Apnic, &full_reg());
        assert!(rec.first("address").unwrap().contains("1 Example Way"));
        assert_eq!(rec.first("phone"), Some("+1-555-0100"));
    }

    #[test]
    fn afrinic_obfuscation() {
        let mut reg = full_reg();
        reg.obfuscate_address = true;
        let rec = serialize(Rir::Afrinic, &reg);
        let addr = rec.first("address").unwrap();
        assert!(addr.contains('*'), "street must be starred out: {addr}");
        assert!(addr.contains("Springfield"), "city stays visible");
        assert!(!addr.contains("1 Example Way"));
    }

    #[test]
    fn lacnic_is_city_country_only() {
        let rec = serialize(Rir::Lacnic, &full_reg());
        assert_eq!(rec.first("city"), Some("Springfield"));
        assert_eq!(rec.first("country"), Some("US"));
        assert_eq!(rec.first("owner"), Some("Example Networks LLC"));
        // No emails, no remarks — LACNIC's defining gap.
        assert!(rec.all("abuse-mailbox").is_empty());
        assert!(rec.all("remarks").is_empty());
        assert!(rec.all("e-mail").is_empty());
    }

    #[test]
    fn arin_uses_camelcase_names_and_full_address() {
        let rec = serialize(Rir::Arin, &full_reg());
        assert_eq!(rec.first("asnumber"), Some("64500"));
        assert_eq!(rec.first("orgname"), Some("Example Networks LLC"));
        assert_eq!(rec.first("address"), Some("1 Example Way"));
        assert_eq!(rec.first("orgabuseemail"), Some("abuse@example.net"));
        assert_eq!(rec.first("orgabusephone"), Some("+1-555-0100"));
    }

    #[test]
    fn bare_registration_serializes_everywhere() {
        let reg = Registration::bare(Asn::new(65001), "BARE-AS");
        for rir in Rir::ALL {
            let rec = serialize(rir, &reg);
            assert!(!rec.objects.is_empty(), "{rir} produced no objects");
            assert_eq!(rec.asn, Asn::new(65001));
        }
    }

    #[test]
    fn roundtrips_through_parser() {
        let rec = serialize(Rir::Ripe, &full_reg());
        let text: String = rec
            .objects
            .iter()
            .map(|o| format!("{o}\n"))
            .collect::<Vec<_>>()
            .join("");
        let parsed = crate::parse::parse_dump(&text);
        assert_eq!(parsed.objects.len(), rec.objects.len());
        assert_eq!(parsed.objects[0].first("aut-num"), Some("AS64500"));
    }
}
