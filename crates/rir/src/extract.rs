//! Appendix A field extraction.
//!
//! Turns a raw [`WhoisRecord`] into the structured [`ParsedWhois`] the ASdb
//! pipeline consumes. The rules follow Appendix A exactly:
//!
//! * **Name**: "organization name (provided for 80.19% ASes), description
//!   (provided for 24.81% ASes) and AS name (provided for 100% of ASes)" —
//!   in that order of preference.
//! * **Street address**: per-RIR (RIPE: description field; APNIC/AFRINIC/
//!   ARIN: address field, with AFRINIC's `*`-obfuscated parts removed;
//!   LACNIC: city + country fields).
//! * **Phone**: only APNIC and ARIN publish phone numbers.
//! * **Domains**: "for all RIRs except LACNIC, we extract candidate domains
//!   by using the provided emails … in addition to a regex match to find all
//!   URLs in the remarks field."

use crate::object::WhoisRecord;
use asdb_model::{Asn, CountryCode, Domain, Email, Rir, Url};
use serde::{Deserialize, Serialize};

/// Where the preferred organization name came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NameSource {
    /// An organisation-name attribute (best).
    OrgName,
    /// A description attribute.
    Description,
    /// The AS name/handle (always present, often uninformative).
    AsName,
}

/// Structured WHOIS data for one AS, post-extraction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedWhois {
    /// The AS number.
    pub asn: Asn,
    /// Which registry the record came from.
    pub rir: Rir,
    /// The preferred name per the Appendix A preference order.
    pub name: String,
    /// Which field supplied [`ParsedWhois::name`].
    pub name_source: NameSource,
    /// The raw AS name attribute.
    pub as_name: String,
    /// Street address, if extractable (obfuscated parts removed).
    pub address: Option<String>,
    /// Contact phone, if published (APNIC/ARIN only).
    pub phone: Option<String>,
    /// Registration country.
    pub country: Option<CountryCode>,
    /// All contact emails found across objects.
    pub emails: Vec<Email>,
    /// URLs found in remark/comment attributes.
    pub urls: Vec<Url>,
}

impl ParsedWhois {
    /// Candidate organization domains: the registrable domains of contact
    /// emails plus remark-URL hosts, deduplicated, in discovery order.
    /// Empty for LACNIC records ("LACNIC does not provide domains or
    /// contact emails").
    pub fn candidate_domains(&self) -> Vec<Domain> {
        let mut seen = Vec::new();
        let mut push = |d: Domain| {
            if !seen.contains(&d) {
                seen.push(d);
            }
        };
        for e in &self.emails {
            push(e.domain.registrable());
        }
        for u in &self.urls {
            push(u.host.registrable());
        }
        seen
    }

    /// Whether the record exposes any domain signal at all.
    pub fn has_domain_signal(&self) -> bool {
        !self.emails.is_empty() || !self.urls.is_empty()
    }
}

/// Attribute names that may carry an organization name, in preference order
/// groups (Appendix A).
const ORG_NAME_ATTRS: [&str; 3] = ["org-name", "orgname", "owner"];
const DESCR_ATTRS: [&str; 2] = ["descr", "comment"];
const AS_NAME_ATTRS: [&str; 2] = ["as-name", "asname"];
const EMAIL_ATTRS: [&str; 6] = [
    "abuse-mailbox",
    "e-mail",
    "email",
    "orgabuseemail",
    "orgtechemail",
    "abuse-c",
];
const REMARK_ATTRS: [&str; 2] = ["remarks", "comment"];

/// Run the Appendix A extraction over a record.
pub fn extract(record: &WhoisRecord) -> ParsedWhois {
    let as_name = first_of(record, &AS_NAME_ATTRS).unwrap_or_else(|| record.asn.to_string());

    // Name preference: org name > description > AS name.
    let (name, name_source) = if let Some(n) = first_of(record, &ORG_NAME_ATTRS) {
        (n, NameSource::OrgName)
    } else if let Some(d) = first_non_address_descr(record) {
        (d, NameSource::Description)
    } else {
        (as_name.clone(), NameSource::AsName)
    };

    let address = extract_address(record);
    let phone = match record.rir {
        Rir::Apnic => record.first("phone").map(str::to_owned),
        Rir::Arin => record
            .first("orgabusephone")
            .or_else(|| record.first("orgtechphone"))
            .map(str::to_owned),
        _ => None,
    };
    let country = record
        .first("country")
        .and_then(|c| CountryCode::new(c).ok());

    let (emails, urls) = if record.rir == Rir::Lacnic {
        (Vec::new(), Vec::new())
    } else {
        (extract_emails(record), extract_urls(record))
    };

    ParsedWhois {
        asn: record.asn,
        rir: record.rir,
        name,
        name_source,
        as_name,
        address,
        phone,
        country,
        emails,
        urls,
    }
}

fn first_of(record: &WhoisRecord, attrs: &[&str]) -> Option<String> {
    attrs
        .iter()
        .find_map(|a| record.first(a))
        .map(str::to_owned)
}

/// The first description value that doesn't look like an embedded postal
/// address (RIPE records carry addresses in descr lines; using one as the
/// organization name would be wrong).
fn first_non_address_descr(record: &WhoisRecord) -> Option<String> {
    for attr in DESCR_ATTRS {
        for v in record.all(attr) {
            if !looks_like_address(v) && !v.starts_with("see http") {
                return Some(v.to_owned());
            }
        }
    }
    None
}

/// Heuristic: a value with multiple comma-separated parts, at least one of
/// which starts with a digit or is all-stars, reads as a postal address.
fn looks_like_address(v: &str) -> bool {
    let parts: Vec<&str> = v.split(',').map(str::trim).collect();
    parts.len() >= 2
        && parts
            .iter()
            .any(|p| p.starts_with(|c: char| c.is_ascii_digit()) || p.chars().all(|c| c == '*'))
}

fn extract_address(record: &WhoisRecord) -> Option<String> {
    match record.rir {
        Rir::Ripe => {
            // RIPE: "We use the description field; RIPE has no address
            // field." Find the descr line that looks like an address.
            record
                .all("descr")
                .into_iter()
                .find(|v| looks_like_address(v))
                .map(str::to_owned)
        }
        Rir::Apnic => record.first("address").map(str::to_owned),
        Rir::Afrinic => record
            .first("address")
            .map(strip_obfuscation)
            .filter(|s| !s.is_empty()),
        Rir::Lacnic => {
            // "We use the provided city and country fields."
            let city = record.first("city")?;
            let country = record.first("country").unwrap_or("");
            Some(if country.is_empty() {
                city.to_owned()
            } else {
                format!("{city}, {country}")
            })
        }
        Rir::Arin => {
            // ARIN spreads the address over several attributes.
            let mut parts = Vec::new();
            for attr in ["address", "city", "stateprov", "postalcode"] {
                if let Some(v) = record.first(attr) {
                    if !v.is_empty() {
                        parts.push(v.to_owned());
                    }
                }
            }
            (!parts.is_empty()).then(|| parts.join(", "))
        }
    }
}

/// Remove `*`-obfuscated components from an AFRINIC address: "we remove all
/// obfuscated parts of the address."
fn strip_obfuscation(addr: &str) -> String {
    addr.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty() && !p.chars().all(|c| c == '*'))
        .collect::<Vec<_>>()
        .join(", ")
}

fn extract_emails(record: &WhoisRecord) -> Vec<Email> {
    let mut out: Vec<Email> = Vec::new();
    for attr in EMAIL_ATTRS {
        for v in record.all(attr) {
            if let Ok(e) = Email::new(v) {
                if !out.contains(&e) {
                    out.push(e);
                }
            }
        }
    }
    out
}

/// Regex-free URL scan: find `http://` / `https://` tokens in remark
/// attributes and parse them ("a regex match to find all URLs in the
/// 'remarks' field").
pub fn scan_urls(text: &str) -> Vec<Url> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &text[i..];
        let at = match rest.find("http") {
            Some(p) => i + p,
            None => break,
        };
        let tail = &text[at..];
        if tail.starts_with("http://") || tail.starts_with("https://") {
            let end = tail
                .find(|c: char| c.is_whitespace() || c == '"' || c == '>' || c == ')')
                .unwrap_or(tail.len());
            let candidate = tail[..end].trim_end_matches(['.', ',', ';']);
            if let Ok(u) = Url::parse(candidate) {
                if !out.contains(&u) {
                    out.push(u);
                }
            }
            i = at + end.max(1);
        } else {
            i = at + 4;
        }
    }
    out
}

fn extract_urls(record: &WhoisRecord) -> Vec<Url> {
    let mut out = Vec::new();
    for attr in REMARK_ATTRS {
        for v in record.all(attr) {
            for u in scan_urls(v) {
                if !out.contains(&u) {
                    out.push(u);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{serialize, Address, Registration};
    use proptest::prelude::*;

    fn reg_with_everything() -> Registration {
        Registration {
            asn: Asn::new(3356),
            as_name: "LEVEL3".into(),
            org_name: Some("Level 3 Parent, LLC".into()),
            descr: Some("Tier 1 backbone".into()),
            address: Some(Address {
                street: "1025 Eldorado Blvd".into(),
                city: "Broomfield".into(),
                state: "CO".into(),
                postal: "80021".into(),
            }),
            obfuscate_address: false,
            phone: Some("+1-720-888-1000".into()),
            country: Some(CountryCode::new("US").unwrap()),
            abuse_emails: vec![Email::new("abuse@level3.com").unwrap()],
            tech_emails: vec![Email::new("noc@level3.com").unwrap()],
            remark_urls: vec![Url::parse("https://www.level3.com/").unwrap()],
        }
    }

    #[test]
    fn name_prefers_org_name() {
        let p = extract(&serialize(Rir::Ripe, &reg_with_everything()));
        assert_eq!(p.name, "Level 3 Parent, LLC");
        assert_eq!(p.name_source, NameSource::OrgName);
    }

    #[test]
    fn name_falls_back_to_descr_then_asname() {
        let mut reg = reg_with_everything();
        reg.org_name = None;
        let p = extract(&serialize(Rir::Ripe, &reg));
        assert_eq!(p.name, "Tier 1 backbone");
        assert_eq!(p.name_source, NameSource::Description);
        reg.descr = None;
        reg.address = None; // otherwise the address-descr would be skipped anyway
        let p = extract(&serialize(Rir::Ripe, &reg));
        assert_eq!(p.name, "LEVEL3");
        assert_eq!(p.name_source, NameSource::AsName);
    }

    #[test]
    fn address_descr_is_not_mistaken_for_name() {
        // RIPE record with no org and no descr, but an address embedded as
        // a descr line: the name must fall back to the AS name.
        let mut reg = reg_with_everything();
        reg.org_name = None;
        reg.descr = None;
        let p = extract(&serialize(Rir::Ripe, &reg));
        assert_eq!(p.name_source, NameSource::AsName);
        // …but the address is still extracted from that descr line.
        assert!(p.address.unwrap().contains("Broomfield"));
    }

    #[test]
    fn afrinic_obfuscated_parts_removed() {
        let mut reg = reg_with_everything();
        reg.obfuscate_address = true;
        let p = extract(&serialize(Rir::Afrinic, &reg));
        let addr = p.address.unwrap();
        assert!(!addr.contains('*'), "stars must be stripped: {addr}");
        assert!(addr.contains("Broomfield"));
    }

    #[test]
    fn lacnic_address_is_city_country_and_no_domains() {
        let p = extract(&serialize(Rir::Lacnic, &reg_with_everything()));
        assert_eq!(p.address.as_deref(), Some("Broomfield, US"));
        assert!(p.emails.is_empty());
        assert!(p.urls.is_empty());
        assert!(p.candidate_domains().is_empty());
        assert!(!p.has_domain_signal());
    }

    #[test]
    fn arin_full_extraction() {
        let p = extract(&serialize(Rir::Arin, &reg_with_everything()));
        assert_eq!(p.name, "Level 3 Parent, LLC");
        assert!(p.address.unwrap().contains("1025 Eldorado Blvd"));
        assert_eq!(p.phone.as_deref(), Some("+1-720-888-1000"));
        assert_eq!(p.country.unwrap().as_str(), "US");
        assert_eq!(p.emails.len(), 2);
    }

    #[test]
    fn phone_only_from_apnic_and_arin() {
        let reg = reg_with_everything();
        assert!(extract(&serialize(Rir::Ripe, &reg)).phone.is_none());
        assert!(extract(&serialize(Rir::Afrinic, &reg)).phone.is_none());
        assert!(extract(&serialize(Rir::Apnic, &reg)).phone.is_some());
        assert!(extract(&serialize(Rir::Arin, &reg)).phone.is_some());
    }

    #[test]
    fn candidate_domains_deduplicate_and_registrable() {
        let p = extract(&serialize(Rir::Ripe, &reg_with_everything()));
        let doms = p.candidate_domains();
        // abuse@level3.com, noc@level3.com, www.level3.com → one domain.
        assert_eq!(doms.len(), 1);
        assert_eq!(doms[0].as_str(), "level3.com");
    }

    #[test]
    fn scan_urls_finds_multiple() {
        let urls = scan_urls("visit https://example.com/a and http://other.org, or nothing");
        assert_eq!(urls.len(), 2);
        assert_eq!(urls[0].host.as_str(), "example.com");
        assert_eq!(urls[1].host.as_str(), "other.org");
    }

    #[test]
    fn scan_urls_ignores_non_urls() {
        assert!(scan_urls("httpd is a web server; see docs").is_empty());
        assert!(scan_urls("").is_empty());
    }

    proptest! {
        #[test]
        fn scan_urls_never_panics(s in ".{0,500}") {
            let _ = scan_urls(&s);
        }

        #[test]
        fn extract_never_panics_on_arbitrary_records(
            attrs in proptest::collection::vec(("[a-z-]{1,12}", ".{0,40}"), 0..10)
        ) {
            let mut obj = crate::object::RpslObject::new();
            for (n, v) in &attrs {
                obj.push(n, v);
            }
            for rir in Rir::ALL {
                let rec = WhoisRecord { rir, asn: Asn::new(1), objects: vec![obj.clone()] };
                let _ = extract(&rec);
            }
        }
    }
}
