//! # asdb-rir
//!
//! The WHOIS substrate: RPSL-style objects, per-registry dump dialects,
//! parsing, and the Appendix A field-extraction rules.
//!
//! "Regional Internet Registries (RIRs) like ARIN and RIPE maintain basic AS
//! ownership information … which they publish through WHOIS. Unfortunately,
//! WHOIS data is only semi-structured, and, in many cases, outdated or
//! incomplete" (§2). ASdb's pipeline "begins upon the receipt of WHOIS data
//! for an AS (e.g., ASN, AS name, organization name, address, abuse
//! contacts)" (§5.1), and Appendix A documents per-registry extraction
//! quirks — different address conventions, AFRINIC's `*`-obfuscated
//! addresses, LACNIC's missing contact emails.
//!
//! This crate provides:
//!
//! * [`object`]: the generic RPSL attribute-value object model,
//! * [`parse`]: a robust dump parser (comments, continuation lines,
//!   malformed input tolerated, never panics),
//! * [`dialect`]: each registry's attribute naming and serialization,
//! * [`mod@extract`]: the Appendix A rules turning raw objects into a
//!   structured [`extract::ParsedWhois`],
//! * [`dump`]: reading/writing multi-registry bulk dump files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dialect;
pub mod dump;
pub mod extract;
pub mod object;
pub mod parse;

pub use extract::{extract, ParsedWhois};
pub use object::{Attr, RpslObject, WhoisRecord};
pub use parse::parse_dump;
