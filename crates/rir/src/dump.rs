//! Bulk WHOIS dump framing.
//!
//! ASdb ingests bulk WHOIS: per-registry dump files containing thousands of
//! records. This module renders and re-reads multi-record dumps, with a
//! registry banner line (`% <rir> bulk dump`) so a combined file can carry
//! records from all five registries. Framing is line-oriented text; a
//! [`bytes::BytesMut`]-based incremental reader supports feeding the parser
//! from a network stream in arbitrary chunks, as a production pipeline
//! consuming RIR FTP mirrors would.

use crate::object::{RpslObject, WhoisRecord};
use crate::parse::parse_dump;
use asdb_model::{Asn, Rir};
use bytes::{Buf, BytesMut};
use std::str::FromStr;

/// Render records into a single dump string. Records are grouped by
/// registry, each group introduced by a `% <rir> bulk dump` banner.
pub fn write_dump(records: &[WhoisRecord]) -> String {
    let mut out = String::new();
    for rir in Rir::ALL {
        let group: Vec<&WhoisRecord> = records.iter().filter(|r| r.rir == rir).collect();
        if group.is_empty() {
            continue;
        }
        out.push_str(&format!("% {} bulk dump\n\n", rir.name()));
        for rec in group {
            for obj in &rec.objects {
                out.push_str(&obj.to_string());
                out.push('\n');
            }
        }
    }
    out
}

/// Read a dump produced by [`write_dump`] (or hand-written in the same
/// shape) back into records. Objects are grouped into a record starting at
/// each `aut-num`/`asnumber` object; registry attribution comes from the
/// most recent banner (defaulting to RIPE when absent, the largest
/// registry).
pub fn read_dump(input: &str) -> Vec<WhoisRecord> {
    let mut current_rir = Rir::Ripe;
    let mut records: Vec<WhoisRecord> = Vec::new();

    // Banners are comments, which the object parser skips, so scan them
    // separately and interleave by line position.
    let mut banner_at: Vec<(usize, Rir)> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if let Some(rest) = line.strip_prefix('%') {
            let rest = rest.trim();
            if let Some(name) = rest.strip_suffix("bulk dump") {
                if let Ok(rir) = Rir::from_str(name.trim()) {
                    banner_at.push((i, rir));
                }
            }
        }
    }

    // Re-parse per banner-delimited region so attribution is exact.
    let lines: Vec<&str> = input.lines().collect();
    let mut regions: Vec<(Rir, String)> = Vec::new();
    if banner_at.is_empty() {
        regions.push((current_rir, input.to_owned()));
    } else {
        // Any prefix before the first banner belongs to the default RIR.
        if banner_at[0].0 > 0 {
            regions.push((current_rir, lines[..banner_at[0].0].join("\n")));
        }
        for (k, (start, rir)) in banner_at.iter().enumerate() {
            current_rir = *rir;
            let end = banner_at.get(k + 1).map(|(e, _)| *e).unwrap_or(lines.len());
            regions.push((current_rir, lines[*start..end].join("\n")));
        }
    }

    for (rir, text) in regions {
        let parsed = parse_dump(&text);
        let mut pending: Option<WhoisRecord> = None;
        for obj in parsed.objects {
            if let Some(asn) = object_asn(&obj) {
                if let Some(rec) = pending.take() {
                    records.push(rec);
                }
                pending = Some(WhoisRecord {
                    rir,
                    asn,
                    objects: vec![obj],
                });
            } else if let Some(rec) = pending.as_mut() {
                rec.objects.push(obj);
            }
            // Objects before any aut-num in a region are dropped; bulk
            // dumps always lead with the aut-num object.
        }
        if let Some(rec) = pending {
            records.push(rec);
        }
    }
    records
}

fn object_asn(obj: &RpslObject) -> Option<Asn> {
    obj.first("aut-num")
        .or_else(|| obj.first("asnumber"))
        .and_then(|v| Asn::from_str(v).ok())
}

/// Incremental dump reader for streaming input: feed arbitrary byte chunks,
/// poll complete records as they become available. Internally buffers with
/// [`BytesMut`]; a record is complete once the *next* record's `aut-num`
/// line (or end-of-input) is seen.
#[derive(Debug)]
pub struct StreamingReader {
    buf: BytesMut,
    rir: Rir,
}

impl Default for StreamingReader {
    fn default() -> Self {
        StreamingReader::new()
    }
}

impl StreamingReader {
    /// New reader; records before any banner attribute to RIPE.
    pub fn new() -> StreamingReader {
        StreamingReader {
            buf: BytesMut::new(),
            rir: Rir::Ripe,
        }
    }

    /// Feed a chunk of bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Extract all records that are definitely complete (their terminating
    /// blank line and the start of the following object have been seen).
    /// Call [`StreamingReader::finish`] at end of input for the tail.
    pub fn poll(&mut self) -> Vec<WhoisRecord> {
        // Find the last double-newline; everything before it is settled.
        let data = self.buf.as_ref();
        let settled_end = match find_last_blank_line(data) {
            Some(p) => p,
            None => return Vec::new(),
        };
        let settled = String::from_utf8_lossy(&data[..settled_end]).into_owned();
        self.buf.advance(settled_end);
        self.consume_text(&settled)
    }

    /// Consume any remaining buffered input as the final records.
    pub fn finish(mut self) -> Vec<WhoisRecord> {
        let rest = String::from_utf8_lossy(self.buf.as_ref()).into_owned();
        self.buf.clear();
        self.consume_text(&rest)
    }

    fn consume_text(&mut self, text: &str) -> Vec<WhoisRecord> {
        // Track banner transitions across chunks.
        let mut combined = format!("% {} bulk dump\n\n", self.rir.name());
        combined.push_str(text);
        let recs = read_dump(&combined);
        if let Some(last) = recs.last() {
            self.rir = last.rir;
        }
        // Also pick up a trailing banner with no records after it yet.
        for line in text.lines().rev() {
            if let Some(rest) = line.strip_prefix('%') {
                if let Some(name) = rest.trim().strip_suffix("bulk dump") {
                    if let Ok(r) = Rir::from_str(name.trim()) {
                        self.rir = r;
                        break;
                    }
                }
            }
        }
        recs
    }
}

fn find_last_blank_line(data: &[u8]) -> Option<usize> {
    if data.len() < 2 {
        return None;
    }
    (1..data.len())
        .rev()
        .find(|&i| data[i] == b'\n' && data[i - 1] == b'\n')
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{serialize, Registration};
    use proptest::prelude::*;

    fn sample_records() -> Vec<WhoisRecord> {
        let mut recs = Vec::new();
        for (i, rir) in [Rir::Arin, Rir::Ripe, Rir::Ripe, Rir::Lacnic]
            .iter()
            .enumerate()
        {
            let mut reg = Registration::bare(Asn::new(1000 + i as u32), &format!("AS-NAME-{i}"));
            reg.org_name = Some(format!("Org {i}"));
            recs.push(serialize(*rir, &reg));
        }
        recs
    }

    #[test]
    fn write_read_roundtrip() {
        let recs = sample_records();
        let text = write_dump(&recs);
        let back = read_dump(&text);
        assert_eq!(back.len(), recs.len());
        // Grouped by RIR on write, so compare as sets of (rir, asn).
        let mut a: Vec<(Rir, Asn)> = recs.iter().map(|r| (r.rir, r.asn)).collect();
        let mut b: Vec<(Rir, Asn)> = back.iter().map(|r| (r.rir, r.asn)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn attribution_follows_banners() {
        let recs = sample_records();
        let text = write_dump(&recs);
        let back = read_dump(&text);
        for rec in &back {
            if rec.asn == Asn::new(1003) {
                assert_eq!(rec.rir, Rir::Lacnic);
            }
        }
    }

    #[test]
    fn bannerless_dump_defaults_to_ripe() {
        let back = read_dump("aut-num: AS99\nas-name: TEST\n");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].rir, Rir::Ripe);
    }

    #[test]
    fn connected_objects_attach_to_preceding_autnum() {
        let text = "aut-num: AS7\nas-name: X\n\norganisation: ORG-7\norg-name: Seven Ltd\n";
        let back = read_dump(text);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].objects.len(), 2);
        assert_eq!(
            back[0].organisation().unwrap().first("org-name"),
            Some("Seven Ltd")
        );
    }

    #[test]
    fn streaming_reader_matches_batch() {
        let recs = sample_records();
        let text = write_dump(&recs);
        let batch = read_dump(&text);

        let mut reader = StreamingReader::new();
        let mut streamed = Vec::new();
        // Feed in awkward 7-byte chunks.
        for chunk in text.as_bytes().chunks(7) {
            reader.feed(chunk);
            streamed.extend(reader.poll());
        }
        streamed.extend(reader.finish());
        let key = |r: &WhoisRecord| (r.rir, r.asn);
        let mut a: Vec<_> = batch.iter().map(key).collect();
        let mut b: Vec<_> = streamed.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn read_dump_never_panics(s in ".{0,1000}") {
            let _ = read_dump(&s);
        }

        #[test]
        fn streaming_never_panics(s in ".{0,500}", chunk in 1usize..32) {
            let mut r = StreamingReader::new();
            for c in s.as_bytes().chunks(chunk) {
                r.feed(c);
                let _ = r.poll();
            }
            let _ = r.finish();
        }
    }
}
