//! Parsing WHOIS dump text into [`RpslObject`]s.
//!
//! The parser is deliberately forgiving — real bulk WHOIS is full of
//! comments, blank-line noise, continuation lines, and outright malformed
//! lines ("WHOIS data is only semi-structured"). Malformed lines are
//! collected as diagnostics rather than aborting the parse, and the parser
//! never panics on any input (property-tested below).

use crate::object::{Attr, RpslObject};

/// A non-fatal parse diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWarning {
    /// 1-based line number in the input.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

/// Result of parsing a dump: the objects plus any diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Parsed objects in input order.
    pub objects: Vec<RpslObject>,
    /// Lines that could not be interpreted.
    pub warnings: Vec<ParseWarning>,
}

/// Parse a WHOIS dump: objects are blank-line separated blocks of
/// `attribute: value` lines. Handles:
///
/// * `%` and `#` comment lines (skipped),
/// * continuation lines (leading whitespace or `+`), appended to the
///   previous attribute's value with a single space,
/// * attribute names with arbitrary case (normalized to lower case),
/// * malformed lines (no colon): recorded as warnings and skipped.
pub fn parse_dump(input: &str) -> Parsed {
    let mut out = Parsed::default();
    let mut current = RpslObject::new();

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();

        if line.trim().is_empty() {
            if !current.is_empty() {
                out.objects.push(std::mem::take(&mut current));
            }
            continue;
        }
        if line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        // Continuation line: leading space/tab, or a '+' marker (RPSL).
        let is_continuation = raw.starts_with(' ') || raw.starts_with('\t') || raw.starts_with('+');
        if is_continuation {
            let cont = line.trim_start_matches('+').trim();
            if let Some(last) = current.attrs.last_mut() {
                if !cont.is_empty() {
                    if !last.value.is_empty() {
                        last.value.push(' ');
                    }
                    last.value.push_str(cont);
                }
            } else {
                out.warnings.push(ParseWarning {
                    line: lineno,
                    message: "continuation line with no preceding attribute".into(),
                });
            }
            continue;
        }
        match line.split_once(':') {
            Some((name, value)) if !name.trim().is_empty() => {
                current.attrs.push(Attr::new(name, value));
            }
            _ => out.warnings.push(ParseWarning {
                line: lineno,
                message: format!("unparseable line: {:?}", truncate(line)),
            }),
        }
    }
    if !current.is_empty() {
        out.objects.push(current);
    }
    out
}

fn truncate(s: &str) -> String {
    if s.len() <= 48 {
        s.to_owned()
    } else {
        let mut end = 48;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SAMPLE: &str = "\
% RIPE database dump
aut-num:    AS3356
as-name:    LEVEL3
descr:      Level 3 Parent, LLC
+           formerly Level 3 Communications
remarks:    http://www.level3.com
# trailing comment

organisation:  ORG-LPL1-RIPE
org-name:      Level 3 Parent, LLC
address:       1025 Eldorado Blvd
               Broomfield CO 80021
";

    #[test]
    fn parses_objects_and_continuations() {
        let p = parse_dump(SAMPLE);
        assert_eq!(p.objects.len(), 2);
        assert!(p.warnings.is_empty());
        let aut = &p.objects[0];
        assert_eq!(aut.class(), "aut-num");
        assert_eq!(
            aut.first("descr"),
            Some("Level 3 Parent, LLC formerly Level 3 Communications")
        );
        let org = &p.objects[1];
        assert_eq!(
            org.first("address"),
            Some("1025 Eldorado Blvd Broomfield CO 80021")
        );
    }

    #[test]
    fn comments_skipped() {
        let p = parse_dump("% comment\n# another\naut-num: AS1\n");
        assert_eq!(p.objects.len(), 1);
        assert!(p.warnings.is_empty());
    }

    #[test]
    fn malformed_lines_become_warnings() {
        let p = parse_dump("aut-num: AS1\nthis line has no colon at all\n");
        assert_eq!(p.objects.len(), 1);
        assert_eq!(p.warnings.len(), 1);
        assert_eq!(p.warnings[0].line, 2);
    }

    #[test]
    fn orphan_continuation_is_warned() {
        let p = parse_dump("   orphan continuation\n");
        assert!(p.objects.is_empty());
        assert_eq!(p.warnings.len(), 1);
    }

    #[test]
    fn empty_and_blank_inputs() {
        assert!(parse_dump("").objects.is_empty());
        assert!(parse_dump("\n\n\n").objects.is_empty());
    }

    #[test]
    fn colon_in_value_preserved() {
        let p = parse_dump("remarks: see http://example.com:8080/path\n");
        assert_eq!(
            p.objects[0].first("remarks"),
            Some("see http://example.com:8080/path")
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        let p = parse_dump(SAMPLE);
        let rendered: String = p
            .objects
            .iter()
            .map(|o| format!("{o}\n"))
            .collect::<Vec<_>>()
            .join("");
        let p2 = parse_dump(&rendered);
        assert_eq!(p.objects, p2.objects);
    }

    proptest! {
        #[test]
        fn never_panics(input in ".{0,2000}") {
            let _ = parse_dump(&input);
        }

        #[test]
        fn object_count_bounded_by_blocks(input in "([a-z]{1,8}: [a-z ]{0,20}\n|\n){0,50}") {
            let p = parse_dump(&input);
            // Can never produce more objects than non-empty lines.
            let lines = input.lines().filter(|l| !l.trim().is_empty()).count();
            prop_assert!(p.objects.len() <= lines.max(1));
        }
    }
}
