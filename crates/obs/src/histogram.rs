//! Fixed-bucket log-spaced latency histograms.
//!
//! Buckets are powers of two starting at 1024 ns: bucket `i` counts
//! observations with `value <= 1024 * 2^i` nanoseconds (the last bucket is
//! unbounded). 32 buckets span ~1 µs to ~36 minutes — wide enough for any
//! single pipeline phase and cheap enough (one relaxed `fetch_add`) to sit
//! on the per-AS hot path.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log-spaced buckets.
pub const BUCKETS: usize = 32;

/// Smallest bucket upper bound in nanoseconds (everything at or below one
/// microsecond lands in bucket 0).
const FIRST_BOUND_NANOS: u64 = 1 << 10;

/// Upper (inclusive) bound of bucket `i` in nanoseconds; the final bucket
/// reports `u64::MAX`.
pub fn bucket_bound_nanos(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        FIRST_BOUND_NANOS << i
    }
}

fn bucket_index(nanos: u64) -> usize {
    // Buckets are `value <= bound`, so a value exactly on a power-of-two
    // bound belongs to that bucket: ceil(log2(v)) via the bit length of
    // v - 1, shifted down by the 2^10 first-bound floor.
    let bits = 64 - nanos.saturating_sub(1).leading_zeros() as usize;
    bits.saturating_sub(10).min(BUCKETS - 1)
}

/// A thread-safe latency histogram with log-spaced buckets and
/// p50/p90/p99 summaries.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation, in nanoseconds.
    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record one observed duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos().checked_div(self.count()).unwrap_or(0)
    }

    /// Approximate quantile: the upper bound of the first bucket whose
    /// cumulative count reaches `q * count`. Returns 0 when empty. `q`
    /// is clamped to `[0, 1]`.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= target {
                return bucket_bound_nanos(i);
            }
        }
        bucket_bound_nanos(BUCKETS - 1)
    }

    /// Reset every bucket to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
    }

    /// Serializable point-in-time view with quantile summaries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<BucketSnapshot> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some(BucketSnapshot {
                    le_nanos: bucket_bound_nanos(i),
                    count,
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum_nanos: self.sum_nanos(),
            mean_nanos: self.mean_nanos(),
            p50_nanos: self.quantile_nanos(0.50),
            p90_nanos: self.quantile_nanos(0.90),
            p99_nanos: self.quantile_nanos(0.99),
            buckets,
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Inclusive upper bound of the bucket, in nanoseconds.
    pub le_nanos: u64,
    /// Observations that fell in this bucket.
    pub count: u64,
}

/// A serializable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations in nanoseconds.
    pub sum_nanos: u64,
    /// Mean observation in nanoseconds.
    pub mean_nanos: u64,
    /// Approximate median (bucket upper bound).
    pub p50_nanos: u64,
    /// Approximate 90th percentile.
    pub p90_nanos: u64,
    /// Approximate 99th percentile.
    pub p99_nanos: u64,
    /// The non-empty buckets, in bound order.
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Render `nanos` as a compact human duration (`1.2ms`, `340µs`…).
    pub fn human(nanos: u64) -> String {
        format_nanos(nanos)
    }
}

/// Render a nanosecond quantity as a compact human-readable duration.
pub fn format_nanos(nanos: u64) -> String {
    if nanos == u64::MAX {
        return "inf".to_owned();
    }
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log_spaced() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1024), 0);
        assert_eq!(bucket_index(1025), 1);
        assert_eq!(bucket_index(2048), 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every value is at or below its bucket's bound.
        for v in [1u64, 999, 12_345, 1_000_000, 123_456_789] {
            assert!(v <= bucket_bound_nanos(bucket_index(v)));
        }
    }

    #[test]
    fn quantiles_and_mean() {
        let h = Histogram::new();
        assert_eq!(h.quantile_nanos(0.5), 0);
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record_nanos(1_000); // bucket 0
        }
        for _ in 0..10 {
            h.record_nanos(1_000_000); // ~1ms
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_nanos(0.5), bucket_bound_nanos(0));
        assert_eq!(h.quantile_nanos(0.90), bucket_bound_nanos(0));
        assert!(h.quantile_nanos(0.99) >= 1_000_000);
        let mean = h.mean_nanos();
        assert!(mean > 1_000 && mean < 1_000_000, "mean = {mean}");
    }

    #[test]
    fn snapshot_only_keeps_nonempty_buckets() {
        let h = Histogram::new();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(2));
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets.len(), 2);
        assert!(s.buckets.iter().all(|b| b.count == 1));
        h.reset();
        assert_eq!(h.count(), 0);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn formats_durations() {
        assert_eq!(format_nanos(12), "12ns");
        assert_eq!(format_nanos(1_500), "1.5µs");
        assert_eq!(format_nanos(2_500_000), "2.50ms");
        assert_eq!(format_nanos(1_500_000_000), "1.50s");
        assert_eq!(format_nanos(u64::MAX), "inf");
    }
}
