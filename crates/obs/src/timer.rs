//! RAII latency timer.

use crate::histogram::Histogram;
use std::time::Instant;

/// A guard that records its lifetime into a [`Histogram`] on drop.
///
/// ```
/// use asdb_obs::{Histogram, Timer};
/// let h = Histogram::new();
/// {
///     let _t = Timer::start(&h);
///     // ... timed work ...
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct Timer<'a> {
    hist: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl<'a> Timer<'a> {
    /// Start timing against `hist`.
    pub fn start(hist: &'a Histogram) -> Timer<'a> {
        Timer {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Stop and record now (instead of at scope end).
    pub fn stop(mut self) {
        self.record();
    }

    /// Abandon the measurement: nothing is recorded.
    pub fn cancel(mut self) {
        self.armed = false;
    }

    fn record(&mut self) {
        if self.armed {
            self.armed = false;
            self.hist.record(self.start.elapsed());
        }
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let h = Histogram::new();
        {
            let _t = Timer::start(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_once() {
        let h = Histogram::new();
        let t = Timer::start(&h);
        t.stop();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::new();
        let t = Timer::start(&h);
        t.cancel();
        assert_eq!(h.count(), 0);
    }
}
