//! Named-metric registry: get-or-create handles, text render, JSON
//! snapshot.

use crate::counter::Counter;
use crate::histogram::{format_nanos, Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A registry of named counters and histograms.
///
/// Handles are `Arc`s: instrumented code holds them directly (no lock or
/// name lookup on the hot path), and the registry retains its own clone so
/// the whole set can be rendered or snapshotted at any time. Names use a
/// dotted hierarchy (`pipeline.stage.cached`, `source.dnb.queries`) which
/// the text renderer groups by first segment.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Names of every registered counter.
    pub fn counter_names(&self) -> Vec<String> {
        self.counters.read().keys().cloned().collect()
    }

    /// Reset every counter and histogram to zero.
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        for h in self.histograms.read().values() {
            h.reset();
        }
    }

    /// Serializable point-in-time view of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Human-readable rendering of the whole registry, grouped by the
    /// first dotted name segment.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// A serializable point-in-time view of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// The snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("registry snapshot serializes")
    }

    /// Parse a snapshot back from JSON.
    pub fn from_json(s: &str) -> Result<RegistrySnapshot, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// A counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Human-readable table, grouped by the first dotted name segment.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut last_group = "";
        for (name, value) in &self.counters {
            let group = name.split('.').next().unwrap_or("");
            if group != last_group {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&format!("== {group} ==\n"));
                last_group = group;
            }
            out.push_str(&format!("  {name:<42} {value:>10}\n"));
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&self.render_latency_text());
        }
        out
    }

    /// Just the histogram summaries, as a `== latency ==` table.
    pub fn render_latency_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== latency ==\n");
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  {:<42} n={:<8} mean={:<9} p50={:<9} p90={:<9} p99={}\n",
                name,
                h.count,
                format_nanos(h.mean_nanos),
                format_nanos(h.p50_nanos),
                format_nanos(h.p90_nanos),
                format_nanos(h.p99_nanos),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.counter_names(), vec!["x.hits".to_owned()]);
    }

    #[test]
    fn snapshot_roundtrips_json() {
        let r = Registry::new();
        r.counter("pipeline.total").add(7);
        r.histogram("pipeline.latency").record_nanos(5_000);
        let snap = r.snapshot();
        let json = snap.to_json();
        let back = RegistrySnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.counter("pipeline.total"), 7);
        assert_eq!(back.histograms["pipeline.latency"].count, 1);
    }

    #[test]
    fn render_groups_by_prefix() {
        let r = Registry::new();
        r.counter("cache.hits").add(3);
        r.counter("cache.misses").add(1);
        r.counter("pipeline.total").add(4);
        r.histogram("pipeline.classify").record_nanos(2_000_000);
        let text = r.render_text();
        assert!(text.contains("== cache =="), "{text}");
        assert!(text.contains("== pipeline =="), "{text}");
        assert!(text.contains("== latency =="), "{text}");
        assert!(text.contains("cache.hits"), "{text}");
    }

    #[test]
    fn reset_zeroes_everything() {
        let r = Registry::new();
        r.counter("a.b").add(9);
        r.histogram("a.h").record_nanos(10);
        r.reset();
        assert_eq!(r.snapshot().counter("a.b"), 0);
        assert_eq!(r.snapshot().histograms["a.h"].count, 0);
    }
}
