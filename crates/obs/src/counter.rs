//! Monotonic (well, resettable) atomic counters.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe event counter.
///
/// All operations use relaxed ordering: counters are statistics, not
/// synchronization primitives, and the hot paths they instrument must not
/// pay for fences they don't need.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrite the value (used for gauge-style values synced at
    /// snapshot time, e.g. cache occupancy).
    #[inline]
    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }

    /// Serializable point-in-time view.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot { value: self.get() }
    }
}

/// A serializable point-in-time view of a [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// The counter value at snapshot time.
    pub value: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn inc_add_get_reset() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
        c.store(42);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
