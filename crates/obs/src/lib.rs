//! # asdb-obs
//!
//! Pipeline-wide telemetry primitives for the ASdb system: atomic
//! [`Counter`]s, fixed-bucket log-spaced latency [`Histogram`]s with
//! p50/p90/p99 summaries, an RAII [`Timer`] guard, and a named-metric
//! [`Registry`] that renders to both a human-readable table and a serde
//! JSON [`RegistrySnapshot`].
//!
//! The paper's own evaluation is an observability exercise — Table 8
//! breaks classification down by pipeline mechanism, §5.1 reasons about
//! cache reuse, Tables 3/5 compare per-source coverage. This crate makes
//! those signals first-class, always-available artifacts instead of
//! eval-only ones, so every later performance PR can measure itself.
//!
//! Design constraints:
//!
//! * **Zero external dependencies** beyond the workspace's existing set
//!   (std atomics, `parking_lot`, `serde`).
//! * **Hot-path cost is one relaxed atomic op** per event: handles are
//!   `Arc`s held by instrumented code; the registry lock is only touched
//!   at construction and snapshot time.
//! * **Everything snapshots to serde** so CLI/bench/CI can diff runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod timer;

pub use counter::{Counter, CounterSnapshot};
pub use histogram::{format_nanos, Histogram, HistogramSnapshot};
pub use registry::{Registry, RegistrySnapshot};
pub use timer::Timer;
