//! Pipeline-wide telemetry (the operational counterpart of Table 8).
//!
//! [`PipelineMetrics`] instruments every mechanism the paper evaluates:
//! per-[`Stage`] outcome counters (Table 8's rows), per-source
//! query/match/reject counters (Tables 3/5's coverage axis), §5.1
//! domain-selection outcomes, ML fire/override counts (§5.2's "marked as
//! non-hosting by at least two data sources" override), cache reuse
//! (§5.1's same-organization shortcut), per-phase latency histograms, and
//! batch throughput. All of it lives in an [`asdb_obs::Registry`] so one
//! call renders the whole system as a text report or a serde JSON
//! snapshot.
//!
//! Hot-path cost is one relaxed atomic op per event; the registry's lock
//! is only touched at construction and snapshot time. The whole layer can
//! be turned into a no-op with [`PipelineMetrics::set_enabled`], which the
//! throughput bench uses to measure instrumentation overhead.

use crate::cache::OrgCache;
use crate::pipeline::{Classification, Stage};
use asdb_obs::{Counter, Histogram, Registry, RegistrySnapshot};
use asdb_sources::transport::{OutcomeKind, SourceOutcome};
use asdb_sources::SourceId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Dotted-name slug for a source (`dnb`, `crunchbase`, …).
fn source_slug(id: SourceId) -> &'static str {
    match id {
        SourceId::Dnb => "dnb",
        SourceId::Crunchbase => "crunchbase",
        SourceId::ZoomInfo => "zoominfo",
        SourceId::Clearbit => "clearbit",
        SourceId::Zvelo => "zvelo",
        SourceId::PeeringDb => "peeringdb",
        SourceId::Ipinfo => "ipinfo",
    }
}

/// Dotted-name slug for a stage (`cached`, `matched_by_asn`, …).
fn stage_slug(stage: Stage) -> &'static str {
    match stage {
        Stage::Cached => "cached",
        Stage::MatchedByAsn => "matched_by_asn",
        Stage::Classifier => "classifier",
        Stage::ZeroSources => "zero_sources",
        Stage::OneSource => "one_source",
        Stage::MultiAgree => "multi_agree",
        Stage::MultiNoneAgree => "multi_none_agree",
    }
}

fn per_source(registry: &Registry, what: &str) -> [Arc<Counter>; SourceId::ASDB_FIVE.len()] {
    std::array::from_fn(|i| {
        let id = SourceId::ASDB_FIVE[i];
        registry.counter(&format!("source.{}.{what}", source_slug(id)))
    })
}

fn source_index(id: SourceId) -> Option<usize> {
    SourceId::ASDB_FIVE.iter().position(|s| *s == id)
}

/// Per-system telemetry threaded through the Figure 4 pipeline.
#[derive(Debug)]
pub struct PipelineMetrics {
    registry: Registry,
    enabled: AtomicBool,

    // Table 8: which mechanism produced each label.
    stage: [Arc<Counter>; Stage::ALL.len()],

    // Per-source coverage (Tables 3/5): automated queries issued,
    // matches that survived filtering, matches rejected (entity
    // disagreement or empty label set).
    source_queries: [Arc<Counter>; SourceId::ASDB_FIVE.len()],
    source_matches: [Arc<Counter>; SourceId::ASDB_FIVE.len()],
    source_rejects: [Arc<Counter>; SourceId::ASDB_FIVE.len()],

    // Transport health per source: clean calls that found no entry,
    // calls lost to timeouts / hard failures, retry attempts beyond the
    // first, and calls shed by an open circuit breaker (which never reach
    // the wire and so do not count as queries).
    source_no_match: [Arc<Counter>; SourceId::ASDB_FIVE.len()],
    source_timeouts: [Arc<Counter>; SourceId::ASDB_FIVE.len()],
    source_failures: [Arc<Counter>; SourceId::ASDB_FIVE.len()],
    source_retries: [Arc<Counter>; SourceId::ASDB_FIVE.len()],
    source_breaker_open: [Arc<Counter>; SourceId::ASDB_FIVE.len()],

    // §5.1 domain selection outcomes.
    domain_selected: Arc<Counter>,
    domain_none: Arc<Counter>,

    // ML classifier behaviour (§5.2).
    ml_fired: Arc<Counter>,
    ml_abstained: Arc<Counter>,
    ml_overridden: Arc<Counter>,

    // Cache reuse (§5.1) — shared with the system's OrgCache.
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_inserts: Arc<Counter>,
    cache_coalesced: Arc<Counter>,
    cache_entries: Arc<Counter>,
    cache_shards: Arc<Counter>,

    // Per-phase latency.
    classify_latency: Arc<Histogram>,
    domain_latency: Arc<Histogram>,
    ml_latency: Arc<Histogram>,
    source_latency: Arc<Histogram>,
    fanout_latency: Arc<Histogram>,

    // Batch throughput.
    batch_runs: Arc<Counter>,
    batch_records: Arc<Counter>,
    batch_workers: Arc<Counter>,
    batch_chunks: Arc<Counter>,
    batch_steals: Arc<Counter>,
    batch_wall: Arc<Histogram>,
    batch_worker_wall: Arc<Histogram>,
}

impl Default for PipelineMetrics {
    fn default() -> PipelineMetrics {
        PipelineMetrics::new()
    }
}

impl PipelineMetrics {
    /// A fresh, enabled metrics set backed by its own registry.
    pub fn new() -> PipelineMetrics {
        let registry = Registry::new();
        let stage = std::array::from_fn(|i| {
            registry.counter(&format!("pipeline.stage.{}", stage_slug(Stage::ALL[i])))
        });
        let source_queries = per_source(&registry, "queries");
        let source_matches = per_source(&registry, "matches");
        let source_rejects = per_source(&registry, "rejects");
        let source_no_match = per_source(&registry, "no_match");
        let source_timeouts = per_source(&registry, "timeouts");
        let source_failures = per_source(&registry, "failures");
        let source_retries = per_source(&registry, "retries");
        let source_breaker_open = per_source(&registry, "breaker_open");
        PipelineMetrics {
            stage,
            source_queries,
            source_matches,
            source_rejects,
            source_no_match,
            source_timeouts,
            source_failures,
            source_retries,
            source_breaker_open,
            domain_selected: registry.counter("domain.selected"),
            domain_none: registry.counter("domain.none"),
            ml_fired: registry.counter("ml.fired"),
            ml_abstained: registry.counter("ml.abstained"),
            ml_overridden: registry.counter("ml.overridden"),
            cache_hits: registry.counter("cache.hits"),
            cache_misses: registry.counter("cache.misses"),
            cache_inserts: registry.counter("cache.inserts"),
            cache_coalesced: registry.counter("cache.coalesced"),
            cache_entries: registry.counter("cache.entries"),
            cache_shards: registry.counter("cache.shards"),
            classify_latency: registry.histogram("pipeline.classify"),
            domain_latency: registry.histogram("pipeline.domain_select"),
            ml_latency: registry.histogram("pipeline.ml"),
            source_latency: registry.histogram("pipeline.source_match"),
            fanout_latency: registry.histogram("pipeline.fanout"),
            batch_runs: registry.counter("batch.runs"),
            batch_records: registry.counter("batch.records"),
            batch_workers: registry.counter("batch.workers"),
            batch_chunks: registry.counter("batch.chunks"),
            batch_steals: registry.counter("batch.steals"),
            batch_wall: registry.histogram("batch.wall"),
            batch_worker_wall: registry.histogram("batch.worker_wall"),
            registry,
            enabled: AtomicBool::new(true),
        }
    }

    /// Whether recording is on (it is by default).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn the whole layer into a no-op (or back on). Used by the
    /// throughput bench to measure instrumentation overhead.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Build an [`OrgCache`] (default shard count) whose
    /// hit/miss/insert/coalesced traffic lands in this registry's
    /// `cache.*` counters.
    pub fn build_cache(&self) -> OrgCache {
        OrgCache::with_counters(
            Arc::clone(&self.cache_hits),
            Arc::clone(&self.cache_misses),
            Arc::clone(&self.cache_inserts),
            Arc::clone(&self.cache_coalesced),
        )
    }

    /// [`PipelineMetrics::build_cache`] with an explicit shard count
    /// (1 reproduces the legacy single-lock behavior).
    pub fn build_cache_with_shards(&self, n: usize) -> OrgCache {
        OrgCache::with_counters_and_shards(
            Arc::clone(&self.cache_hits),
            Arc::clone(&self.cache_misses),
            Arc::clone(&self.cache_inserts),
            Arc::clone(&self.cache_coalesced),
            n,
        )
    }

    /// Record a finished classification: its stage and end-to-end latency.
    pub fn record_classification(&self, c: &Classification, elapsed: Duration) {
        if !self.enabled() {
            return;
        }
        self.stage[c.stage.index()].inc();
        self.classify_latency.record(elapsed);
    }

    /// Record an automated query issued to a source.
    pub fn record_source_query(&self, id: SourceId) {
        if !self.enabled() {
            return;
        }
        if let Some(i) = source_index(id) {
            self.source_queries[i].inc();
        }
    }

    /// Record a source match that survived filtering.
    pub fn record_source_match(&self, id: SourceId) {
        if !self.enabled() {
            return;
        }
        if let Some(i) = source_index(id) {
            self.source_matches[i].inc();
        }
    }

    /// Record a source match rejected by entity disagreement or for
    /// carrying no labels.
    pub fn record_source_reject(&self, id: SourceId) {
        if !self.enabled() {
            return;
        }
        if let Some(i) = source_index(id) {
            self.source_rejects[i].inc();
        }
    }

    /// Record the transport facts of one fan-out source call, at call
    /// time: a breaker-shed call counts only as `breaker_open` (it never
    /// reached the wire); everything else counts as a query, plus its
    /// retries and — for degraded calls — a timeout or failure. Clean
    /// calls that found no entry count as `no_match`. Match/reject
    /// resolution is recorded separately by the fan-out's policy pass, so
    /// per source `queries == matches + rejects + no_match + timeouts +
    /// failures`.
    pub fn record_source_outcome(&self, o: &SourceOutcome) {
        if !self.enabled() {
            return;
        }
        let Some(i) = source_index(o.source) else {
            return;
        };
        if matches!(o.kind, OutcomeKind::BreakerOpen) {
            self.source_breaker_open[i].inc();
            return;
        }
        self.source_queries[i].inc();
        if o.retries > 0 {
            self.source_retries[i].add(u64::from(o.retries));
        }
        match o.kind {
            OutcomeKind::NoMatch => self.source_no_match[i].inc(),
            OutcomeKind::TimedOut => self.source_timeouts[i].inc(),
            OutcomeKind::Failed => self.source_failures[i].inc(),
            OutcomeKind::Matched(_) | OutcomeKind::BreakerOpen => {}
        }
    }

    /// Record one fan-out collection phase's wall-clock latency.
    pub fn record_fanout(&self, elapsed: Duration) {
        if !self.enabled() {
            return;
        }
        self.fanout_latency.record(elapsed);
    }

    /// Record a §5.1 domain-selection outcome.
    pub fn record_domain_outcome(&self, selected: bool, elapsed: Duration) {
        if !self.enabled() {
            return;
        }
        if selected {
            self.domain_selected.inc();
        } else {
            self.domain_none.inc();
        }
        self.domain_latency.record(elapsed);
    }

    /// Record an ML run: whether a verdict fired, and its latency.
    pub fn record_ml(&self, fired: bool, elapsed: Duration) {
        if !self.enabled() {
            return;
        }
        if fired {
            self.ml_fired.inc();
        } else {
            self.ml_abstained.inc();
        }
        self.ml_latency.record(elapsed);
    }

    /// Record a fired ML verdict overruled by ≥2 agreeing non-IT sources
    /// (§5.2).
    pub fn record_ml_override(&self) {
        if !self.enabled() {
            return;
        }
        self.ml_overridden.inc();
    }

    /// Record the source-matching phase latency.
    pub fn record_source_phase(&self, elapsed: Duration) {
        if !self.enabled() {
            return;
        }
        self.source_latency.record(elapsed);
    }

    /// Record one completed batch run.
    pub fn record_batch_run(&self, records: usize, workers: usize, wall: Duration) {
        if !self.enabled() {
            return;
        }
        self.batch_runs.inc();
        self.batch_records.add(records as u64);
        self.batch_workers.add(workers as u64);
        self.batch_wall.record(wall);
    }

    /// Record one batch worker's wall-clock.
    pub fn record_batch_worker(&self, wall: Duration) {
        if !self.enabled() {
            return;
        }
        self.batch_worker_wall.record(wall);
    }

    /// Record a batch run's scheduler activity: chunks claimed off the
    /// shared queue and how many of those were steals (claims beyond each
    /// worker's first).
    pub fn record_batch_chunks(&self, chunks: u64, steals: u64) {
        if !self.enabled() {
            return;
        }
        self.batch_chunks.add(chunks);
        self.batch_steals.add(steals);
    }

    /// Count for one stage.
    pub fn stage_count(&self, stage: Stage) -> u64 {
        self.stage[stage.index()].get()
    }

    /// All per-stage counts, in [`Stage::ALL`] order.
    pub fn stage_counts(&self) -> [(Stage, u64); Stage::ALL.len()] {
        std::array::from_fn(|i| (Stage::ALL[i], self.stage[i].get()))
    }

    /// Sum of every stage counter — equals the number of classifications
    /// recorded.
    pub fn stage_total(&self) -> u64 {
        self.stage.iter().map(|c| c.get()).sum()
    }

    /// Reset every counter and histogram to zero.
    pub fn reset(&self) {
        self.registry.reset();
    }

    /// Serializable snapshot of every metric. `cache` supplies current
    /// occupancy and shard layout (gauges, synced into `cache.entries` /
    /// `cache.shards` at snapshot time).
    pub fn snapshot(&self, cache: &OrgCache) -> RegistrySnapshot {
        if self.enabled() {
            self.cache_entries.store(cache.len() as u64);
            self.cache_shards.store(cache.shard_count() as u64);
        }
        self.registry.snapshot()
    }

    /// Human-readable report: Table 8-style stage breakdown, per-source
    /// coverage, domain/ML/cache statistics, latency summaries.
    pub fn render_text(&self, cache: &OrgCache) -> String {
        let mut out = String::new();
        let total = self.stage_total();
        out.push_str("== pipeline stages (Table 8) ==\n");
        for (stage, n) in self.stage_counts() {
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * n as f64 / total as f64
            };
            out.push_str(&format!("  {:<36} {:>8}  ({pct:5.1}%)\n", stage.label(), n));
        }
        out.push_str(&format!("  {:<36} {total:>8}\n", "total"));

        out.push_str("\n== sources (queries / matches / rejects / no-match) ==\n");
        for (i, id) in SourceId::ASDB_FIVE.iter().enumerate() {
            out.push_str(&format!(
                "  {:<12} {:>8} / {:>8} / {:>8} / {:>8}\n",
                id.to_string(),
                self.source_queries[i].get(),
                self.source_matches[i].get(),
                self.source_rejects[i].get(),
                self.source_no_match[i].get(),
            ));
        }

        out.push_str("\n== source transport (timeouts / failures / retries / breaker-open) ==\n");
        for (i, id) in SourceId::ASDB_FIVE.iter().enumerate() {
            out.push_str(&format!(
                "  {:<12} {:>8} / {:>8} / {:>8} / {:>8}\n",
                id.to_string(),
                self.source_timeouts[i].get(),
                self.source_failures[i].get(),
                self.source_retries[i].get(),
                self.source_breaker_open[i].get(),
            ));
        }

        out.push_str("\n== domain selection (§5.1) ==\n");
        out.push_str(&format!(
            "  selected {}   none {}\n",
            self.domain_selected.get(),
            self.domain_none.get()
        ));

        out.push_str("\n== ml classifier (§5.2) ==\n");
        out.push_str(&format!(
            "  fired {}   abstained {}   overridden-by-consensus {}\n",
            self.ml_fired.get(),
            self.ml_abstained.get(),
            self.ml_overridden.get()
        ));

        let cs = cache.snapshot();
        out.push_str("\n== org cache (§5.1) ==\n");
        out.push_str(&format!(
            "  entries {}   hits {}   misses {}   inserts {}   coalesced {}   hit-rate {:.1}%\n",
            cs.entries,
            cs.hits,
            cs.misses,
            cs.inserts,
            cs.coalesced,
            100.0 * cs.hit_rate
        ));
        let max_shard = cs.per_shard.iter().copied().max().unwrap_or(0);
        out.push_str(&format!(
            "  shards {}   max-shard-occupancy {}\n",
            cs.shards, max_shard
        ));

        out.push_str("\n== batch ==\n");
        out.push_str(&format!(
            "  runs {}   records {}   workers {}   chunks {}   steals {}\n",
            self.batch_runs.get(),
            self.batch_records.get(),
            self.batch_workers.get(),
            self.batch_chunks.get(),
            self.batch_steals.get()
        ));

        // The curated sections above already cover every counter; only the
        // latency histograms add information beyond them.
        out.push('\n');
        out.push_str(&self.snapshot(cache).render_latency_text());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_sum_to_total() {
        let m = PipelineMetrics::new();
        let cache = m.build_cache();
        let c = Classification {
            asn: asdb_model::Asn::new(1),
            categories: asdb_taxonomy::CategorySet::new(),
            stage: Stage::ZeroSources,
            sources: Vec::new(),
            chosen_domain: None,
            ml: None,
            match_labels: Vec::new(),
            degraded: Vec::new(),
        };
        m.record_classification(&c, Duration::from_micros(10));
        m.record_classification(&c, Duration::from_micros(20));
        assert_eq!(m.stage_count(Stage::ZeroSources), 2);
        assert_eq!(m.stage_total(), 2);
        let snap = m.snapshot(&cache);
        assert_eq!(snap.counter("pipeline.stage.zero_sources"), 2);
        assert_eq!(snap.histograms["pipeline.classify"].count, 2);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let m = PipelineMetrics::new();
        m.set_enabled(false);
        m.record_source_query(SourceId::Dnb);
        m.record_ml(true, Duration::from_micros(1));
        m.record_batch_run(10, 2, Duration::from_millis(1));
        assert_eq!(m.stage_total(), 0);
        let cache = m.build_cache();
        let snap = m.snapshot(&cache);
        assert!(snap.counters.values().all(|v| *v == 0));
        m.set_enabled(true);
        m.record_source_query(SourceId::Dnb);
        assert_eq!(m.snapshot(&cache).counter("source.dnb.queries"), 1);
    }

    #[test]
    fn non_asdb_sources_are_ignored() {
        let m = PipelineMetrics::new();
        m.record_source_query(SourceId::ZoomInfo);
        m.record_source_match(SourceId::Clearbit);
        m.record_source_outcome(&SourceOutcome {
            source: SourceId::ZoomInfo,
            kind: OutcomeKind::NoMatch,
            attempts: 1,
            retries: 0,
            elapsed: Duration::ZERO,
        });
        let cache = m.build_cache();
        let snap = m.snapshot(&cache);
        // `cache.shards` is a layout gauge, nonzero by construction.
        assert!(snap
            .counters
            .iter()
            .filter(|(k, _)| k.as_str() != "cache.shards")
            .all(|(_, v)| *v == 0));
    }

    #[test]
    fn batch_chunk_and_steal_counters() {
        let m = PipelineMetrics::new();
        let cache = m.build_cache_with_shards(8);
        assert_eq!(cache.shard_count(), 8);
        m.record_batch_chunks(12, 5);
        m.record_batch_chunks(4, 0);
        let snap = m.snapshot(&cache);
        assert_eq!(snap.counter("batch.chunks"), 16);
        assert_eq!(snap.counter("batch.steals"), 5);
        // Shard layout is a gauge synced at snapshot time.
        assert_eq!(snap.counter("cache.shards"), 8);
    }

    #[test]
    fn render_includes_every_section() {
        let m = PipelineMetrics::new();
        let cache = m.build_cache();
        let text = m.render_text(&cache);
        for section in [
            "pipeline stages",
            "sources",
            "source transport",
            "domain selection",
            "ml classifier",
            "org cache",
            "batch",
        ] {
            assert!(text.contains(section), "missing {section}:\n{text}");
        }
    }
}
