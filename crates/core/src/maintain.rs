//! The §5.3 maintenance loop.
//!
//! "It is crucial that ASdb is easily updated, as we estimate an average of
//! 140 ASes will need to be updated every week." The loop consumes a
//! registration-churn stream: new ASes of already-known organizations are
//! served from the cache, new organizations go through the full pipeline,
//! and ownership-metadata changes invalidate and re-classify. A community
//! corrections queue ("submitted corrections will be verified by a human
//! prior to ASdb integration") is modeled as a reviewed-override store.

use crate::cache::{CachedResult, OrgKey};
use crate::pipeline::{AsdbSystem, Stage};
use asdb_model::Asn;
use asdb_taxonomy::CategorySet;
use asdb_worldgen::churn::{ChurnConfig, DailyChurn};
use asdb_worldgen::World;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate statistics from a maintenance run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MaintenanceReport {
    /// Days processed.
    pub days: usize,
    /// New AS registrations seen.
    pub new_ases: usize,
    /// New ASes served from the organization cache.
    pub cache_hits: usize,
    /// New ASes requiring a full pipeline run.
    pub full_classifications: usize,
    /// Metadata-change invalidations processed.
    pub invalidations: usize,
    /// Community corrections applied.
    pub corrections_applied: usize,
}

impl MaintenanceReport {
    /// Average ASes touched per week — the paper's "140 ASes … every week"
    /// statistic.
    pub fn weekly_updates(&self) -> f64 {
        if self.days == 0 {
            return 0.0;
        }
        (self.new_ases + self.invalidations) as f64 / self.days as f64 * 7.0
    }

    /// Fraction of new ASes that were cache hits (≈ 2/21 per the paper's
    /// 21-ASes-from-19-orgs measurement).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.new_ases == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.new_ases as f64
    }
}

/// A community-submitted correction awaiting human review.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Correction {
    /// The AS being corrected.
    pub asn: Asn,
    /// The proposed labels.
    pub proposed: CategorySet,
    /// Whether a human reviewer approved it.
    pub approved: bool,
}

/// The maintenance driver.
pub struct Maintainer<'a> {
    system: &'a AsdbSystem,
    world: &'a World,
    report: MaintenanceReport,
    overrides: HashMap<Asn, CategorySet>,
}

impl<'a> Maintainer<'a> {
    /// New maintainer over a system and the world supplying WHOIS.
    pub fn new(system: &'a AsdbSystem, world: &'a World) -> Maintainer<'a> {
        Maintainer {
            system,
            world,
            report: MaintenanceReport::default(),
            overrides: HashMap::new(),
        }
    }

    /// Process one day of churn. New-AS events draw WHOIS templates from
    /// the world (the churn stream only carries identifiers); metadata
    /// changes invalidate the owning organization's cache entry and
    /// re-classify.
    pub fn process_day(&mut self, day: &DailyChurn) {
        self.report.days += 1;
        let mut rng = StdRng::seed_from_u64(
            self.world
                .config
                .seed
                .derive_index("maintain", day.date.days() as u64)
                .value(),
        );
        for (asn, _org, is_new_org) in &day.new_ases {
            self.report.new_ases += 1;
            // Template WHOIS: a real record from the world, re-numbered.
            let template = &self.world.ases[rng.random_range(0..self.world.ases.len())];
            let mut whois = template.parsed.clone();
            whois.asn = *asn;
            if *is_new_org {
                // A brand-new organization: ensure its cache key is fresh
                // by perturbing the name (new orgs have new names).
                whois.name = format!("{} {}", whois.name, asn.value() % 997);
            }
            let c = self.system.classify_cached(&whois);
            if c.stage == Stage::Cached {
                self.report.cache_hits += 1;
            } else {
                self.report.full_classifications += 1;
            }
        }
        for asn in &day.metadata_changes {
            if let Some(rec) = self.world.as_record(*asn) {
                let key = OrgKey::derive(
                    self.system.select_domain(&rec.parsed).as_ref(),
                    &rec.parsed.name,
                );
                if let Some(k) = key {
                    self.system.cache().invalidate(&k);
                    self.report.invalidations += 1;
                    let _ = self.system.classify_cached(&rec.parsed);
                }
            }
        }
    }

    /// Apply a reviewed community correction; rejected submissions are
    /// dropped ("verified by a human prior to ASdb integration").
    pub fn submit_correction(&mut self, correction: Correction) {
        if !correction.approved {
            return;
        }
        // The override wins over cached data.
        if let Some(rec) = self.world.as_record(correction.asn) {
            let key = OrgKey::derive(
                self.system.select_domain(&rec.parsed).as_ref(),
                &rec.parsed.name,
            );
            if let Some(k) = key {
                self.system.cache().put(
                    k,
                    CachedResult {
                        categories: correction.proposed.clone(),
                        provenance: "community-correction".to_owned(),
                    },
                );
            }
        }
        self.overrides.insert(correction.asn, correction.proposed);
        self.report.corrections_applied += 1;
    }

    /// A manually corrected label, if any.
    pub fn correction_for(&self, asn: Asn) -> Option<&CategorySet> {
        self.overrides.get(&asn)
    }

    /// The accumulated report.
    pub fn report(&self) -> &MaintenanceReport {
        &self.report
    }

    /// Run a whole churn stream.
    pub fn run(&mut self, stream: impl Iterator<Item = DailyChurn>) {
        for day in stream {
            self.process_day(&day);
        }
    }

    /// Convenience: the churn configuration the paper measured.
    pub fn paper_churn() -> ChurnConfig {
        ChurnConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::{Date, WorldSeed};
    use asdb_taxonomy::naicslite::known;
    use asdb_taxonomy::Category;
    use asdb_worldgen::churn::ChurnStream;
    use asdb_worldgen::WorldConfig;

    fn setup() -> (World, AsdbSystem) {
        let w = World::generate(WorldConfig::small(WorldSeed::new(31)));
        let s = AsdbSystem::build(&w, WorldSeed::new(32));
        (w, s)
    }

    fn stream(world: &World, days: u32) -> ChurnStream {
        let cfg = ChurnConfig {
            window_days: days,
            ..ChurnConfig::default()
        };
        ChurnStream::new(
            cfg,
            world.asns(),
            world.orgs.iter().map(|o| o.id).collect(),
            Date::from_ymd(2020, 10, 1).unwrap(),
            WorldSeed::new(33),
        )
    }

    #[test]
    fn maintenance_processes_churn() {
        let (w, s) = setup();
        let mut m = Maintainer::new(&s, &w);
        m.run(stream(&w, 14));
        let r = m.report();
        assert_eq!(r.days, 14);
        assert!(r.new_ases > 14 * 10, "new ases = {}", r.new_ases);
        assert!(r.full_classifications > 0);
        // Weekly updates near the paper's ~140–170 estimate.
        let weekly = r.weekly_updates();
        assert!(weekly > 100.0 && weekly < 250.0, "weekly = {weekly}");
    }

    #[test]
    fn existing_org_arrivals_hit_cache() {
        let (w, s) = setup();
        let mut m = Maintainer::new(&s, &w);
        m.run(stream(&w, 30));
        let r = m.report();
        assert!(r.cache_hits > 0, "no cache hits in 30 days");
        assert!(r.cache_hit_rate() < 0.5, "rate = {}", r.cache_hit_rate());
    }

    #[test]
    fn corrections_require_approval() {
        let (w, s) = setup();
        let mut m = Maintainer::new(&s, &w);
        let asn = w.ases[0].asn;
        m.submit_correction(Correction {
            asn,
            proposed: CategorySet::single(Category::l2(known::ixp())),
            approved: false,
        });
        assert!(m.correction_for(asn).is_none());
        m.submit_correction(Correction {
            asn,
            proposed: CategorySet::single(Category::l2(known::ixp())),
            approved: true,
        });
        assert!(m.correction_for(asn).is_some());
        assert_eq!(m.report().corrections_applied, 1);
    }

    #[test]
    fn metadata_changes_invalidate() {
        let (w, s) = setup();
        // Warm the cache.
        for rec in w.ases.iter().take(50) {
            let _ = s.classify_cached(&rec.parsed);
        }
        let before = s.cache().len();
        assert!(before > 0);
        let mut m = Maintainer::new(&s, &w);
        m.run(stream(&w, 60));
        assert!(m.report().invalidations > 0);
    }
}
