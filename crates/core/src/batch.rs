//! Parallel batch classification.
//!
//! Classifying the full AS population is embarrassingly parallel: the
//! pipeline is read-only apart from the lock-protected cache. Batches are
//! spread over scoped crossbeam threads ("Our model uses 6 CPU cores…").
//!
//! [`classify_batch`] is cache-free and therefore fully deterministic
//! regardless of thread count; [`classify_batch_cached`] shares the
//! system's organization cache, which is faster on multi-AS organizations
//! but makes the *stage* (not the label quality) of later duplicates
//! depend on scheduling.
//!
//! Both record wall-clock and per-worker timing into the system's
//! [`PipelineMetrics`](crate::metrics::PipelineMetrics) (`batch.*`), so
//! thread-scaling efficiency is visible in the `asdb metrics` report.
//! Worker panics are re-raised with their original payload.

use crate::pipeline::{AsdbSystem, Classification};
use asdb_rir::ParsedWhois;

fn run_batch(
    system: &AsdbSystem,
    records: &[ParsedWhois],
    n_threads: usize,
    cached: bool,
) -> Vec<Classification> {
    let n_threads = n_threads.max(1);
    if records.is_empty() {
        return Vec::new();
    }
    let wall = std::time::Instant::now();
    let chunk = records.len().div_ceil(n_threads);
    let n_workers = records.len().div_ceil(chunk);
    let mut out: Vec<Option<Classification>> = vec![None; records.len()];
    let result = crossbeam::thread::scope(|scope| {
        let mut rest = &mut out[..];
        let mut handles = Vec::new();
        for batch in records.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(batch.len().min(rest.len()));
            rest = tail;
            handles.push(scope.spawn(move |_| {
                let worker_wall = std::time::Instant::now();
                for (slot, rec) in head.iter_mut().zip(batch) {
                    *slot = Some(if cached {
                        system.classify_cached(rec)
                    } else {
                        system.classify(rec)
                    });
                }
                system.metrics().record_batch_worker(worker_wall.elapsed());
            }));
        }
        for h in handles {
            // Re-raise the worker's original panic payload so the real
            // failure message (assert text, index, …) reaches the caller
            // instead of a generic "worker thread panicked".
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
    system
        .metrics()
        .record_batch_run(records.len(), n_workers, wall.elapsed());
    out.into_iter()
        .map(|c| c.expect("every slot filled"))
        .collect()
}

/// Classify a batch across `n_threads` threads without the cache —
/// deterministic for any thread count, input order preserved.
pub fn classify_batch(
    system: &AsdbSystem,
    records: &[ParsedWhois],
    n_threads: usize,
) -> Vec<Classification> {
    run_batch(system, records, n_threads, false)
}

/// Classify a batch with the shared organization cache (production mode:
/// multi-AS organizations are classified once).
pub fn classify_batch_cached(
    system: &AsdbSystem,
    records: &[ParsedWhois],
    n_threads: usize,
) -> Vec<Classification> {
    run_batch(system, records, n_threads, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::{World, WorldConfig};

    #[test]
    fn parallel_matches_serial() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(3)));
        let s = AsdbSystem::build(&w, WorldSeed::new(4));
        let records: Vec<_> = w.ases.iter().take(60).map(|r| r.parsed.clone()).collect();
        let serial: Vec<_> = records.iter().map(|r| s.classify(r)).collect();
        let parallel = classify_batch(&s, &records, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.asn, b.asn);
            assert_eq!(a.categories, b.categories, "labels diverge for {}", a.asn);
            assert_eq!(a.stage, b.stage);
        }
    }

    #[test]
    fn cached_batch_fills_the_cache() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(9)));
        let s = AsdbSystem::build(&w, WorldSeed::new(10));
        let records: Vec<_> = w.ases.iter().take(40).map(|r| r.parsed.clone()).collect();
        assert!(s.cache().is_empty());
        let out = classify_batch_cached(&s, &records, 4);
        assert_eq!(out.len(), 40);
        assert!(!s.cache().is_empty());
    }

    #[test]
    fn batch_metrics_reconcile_with_records() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(11)));
        let s = AsdbSystem::build(&w, WorldSeed::new(12));
        let records: Vec<_> = w.ases.iter().take(24).map(|r| r.parsed.clone()).collect();
        let out = classify_batch(&s, &records, 3);
        assert_eq!(out.len(), 24);
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("batch.runs"), 1);
        assert_eq!(snap.counter("batch.records"), 24);
        assert_eq!(snap.counter("batch.workers"), 3);
        assert_eq!(snap.histograms["batch.worker_wall"].count, 3);
        assert_eq!(snap.histograms["batch.wall"].count, 1);
        // Stage counters reconcile with the number of records processed.
        assert_eq!(s.metrics().stage_total(), 24);
    }

    #[test]
    fn empty_batch() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(5)));
        let s = AsdbSystem::build(&w, WorldSeed::new(6));
        assert!(classify_batch(&s, &[], 4).is_empty());
    }

    #[test]
    fn more_threads_than_records() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(7)));
        let s = AsdbSystem::build(&w, WorldSeed::new(8));
        let records: Vec<_> = w.ases.iter().take(3).map(|r| r.parsed.clone()).collect();
        let out = classify_batch(&s, &records, 16);
        assert_eq!(out.len(), 3);
    }
}
