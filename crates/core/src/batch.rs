//! Parallel batch classification.
//!
//! Classifying the full AS population is embarrassingly parallel: the
//! pipeline is read-only apart from the sharded organization cache.
//! Batches are spread over scoped crossbeam threads ("Our model uses 6
//! CPU cores…") by a **work-stealing chunk scheduler**: the input is cut
//! into fixed-size chunks and workers claim them off a shared atomic
//! cursor, so cheap cached records never leave stragglers pinned behind
//! expensive scrape-heavy ones the way static contiguous chunking does.
//! Output order is preserved by reassembling chunks at their original
//! offsets.
//!
//! [`classify_batch`] is cache-free and therefore fully deterministic
//! regardless of thread count or chunk size; [`classify_batch_cached`]
//! shares the system's organization cache, which is faster on multi-AS
//! organizations but makes the *stage* (not the label quality) of later
//! duplicates depend on scheduling. Concurrent misses on the same
//! organization are coalesced by the cache's single-flight slots, so the
//! expensive pipeline body runs once per organization even inside one
//! batch.
//!
//! Both record wall-clock and per-worker timing into the system's
//! [`PipelineMetrics`](crate::metrics::PipelineMetrics) (`batch.*`,
//! including chunk and steal counts), so thread-scaling efficiency is
//! visible in the `asdb metrics` report. Worker panics are re-raised with
//! their original payload.

use crate::pipeline::{AsdbSystem, Classification};
use asdb_rir::ParsedWhois;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tuning knobs for a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads (minimum 1; capped at the number of chunks).
    pub n_threads: usize,
    /// Records per scheduler chunk. `None` picks ~4 chunks per worker,
    /// which keeps claim overhead negligible while still letting fast
    /// workers steal from slow ones. `Some(len.div_ceil(n_threads))`
    /// reproduces the legacy static contiguous split (one chunk per
    /// worker, nothing to steal).
    pub chunk_size: Option<usize>,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            n_threads: 4,
            chunk_size: None,
        }
    }
}

impl BatchConfig {
    /// `n` worker threads, automatic chunk size.
    pub fn with_threads(n: usize) -> BatchConfig {
        BatchConfig {
            n_threads: n.max(1),
            chunk_size: None,
        }
    }

    /// Builder-style chunk-size override (0 is treated as automatic).
    pub fn chunk_size(mut self, size: usize) -> BatchConfig {
        self.chunk_size = (size > 0).then_some(size);
        self
    }

    /// The chunk size actually used for a batch of `len` records.
    pub fn effective_chunk_size(&self, len: usize) -> usize {
        match self.chunk_size {
            Some(c) => c.max(1),
            None => len.div_ceil(4 * self.n_threads.max(1)).max(1),
        }
    }
}

fn run_batch(
    system: &AsdbSystem,
    records: &[ParsedWhois],
    config: BatchConfig,
    cached: bool,
) -> Vec<Classification> {
    let n_threads = config.n_threads.max(1);
    if records.is_empty() {
        return Vec::new();
    }
    let wall = std::time::Instant::now();
    let chunk = config.effective_chunk_size(records.len());
    let n_chunks = records.len().div_ceil(chunk);
    let n_workers = n_threads.min(n_chunks);
    let cursor = AtomicUsize::new(0);
    // Each worker returns the chunks it produced tagged with their input
    // offset; reassembly restores input order without any shared mutable
    // output state.
    let mut produced: Vec<(usize, Vec<Classification>)> = Vec::with_capacity(n_chunks);
    let mut steals = 0u64;
    let result = crossbeam::thread::scope(|scope| {
        let cursor = &cursor;
        let mut handles = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            handles.push(scope.spawn(move |_| {
                let worker_wall = std::time::Instant::now();
                let mut mine: Vec<(usize, Vec<Classification>)> = Vec::new();
                let mut claimed = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    claimed += 1;
                    let lo = i * chunk;
                    let hi = (lo + chunk).min(records.len());
                    let mut out = Vec::with_capacity(hi - lo);
                    for rec in &records[lo..hi] {
                        out.push(if cached {
                            system.classify_cached(rec)
                        } else {
                            system.classify(rec)
                        });
                    }
                    mine.push((lo, out));
                }
                system.metrics().record_batch_worker(worker_wall.elapsed());
                (mine, claimed)
            }));
        }
        for h in handles {
            // Re-raise the worker's original panic payload so the real
            // failure message (assert text, index, …) reaches the caller
            // instead of a generic "worker thread panicked".
            match h.join() {
                Ok((mine, claimed)) => {
                    // A worker's first claim is its own share; every
                    // further claim is a steal off the shared queue.
                    steals += claimed.saturating_sub(1);
                    produced.extend(mine);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
    let mut out: Vec<Option<Classification>> = Vec::new();
    out.resize_with(records.len(), || None);
    for (lo, chunk_out) in produced {
        for (j, c) in chunk_out.into_iter().enumerate() {
            out[lo + j] = Some(c);
        }
    }
    system
        .metrics()
        .record_batch_run(records.len(), n_workers, wall.elapsed());
    system
        .metrics()
        .record_batch_chunks(n_chunks as u64, steals);
    out.into_iter()
        .map(|c| c.expect("every slot filled"))
        .collect()
}

/// Classify a batch without the cache, with explicit scheduler tuning —
/// deterministic for any thread count and chunk size, input order
/// preserved.
pub fn classify_batch_with(
    system: &AsdbSystem,
    records: &[ParsedWhois],
    config: BatchConfig,
) -> Vec<Classification> {
    run_batch(system, records, config, false)
}

/// Classify a batch with the shared organization cache and explicit
/// scheduler tuning (production mode: multi-AS organizations are
/// classified once, concurrent duplicates coalesce).
pub fn classify_batch_cached_with(
    system: &AsdbSystem,
    records: &[ParsedWhois],
    config: BatchConfig,
) -> Vec<Classification> {
    run_batch(system, records, config, true)
}

/// Classify a batch across `n_threads` threads without the cache —
/// deterministic for any thread count, input order preserved.
pub fn classify_batch(
    system: &AsdbSystem,
    records: &[ParsedWhois],
    n_threads: usize,
) -> Vec<Classification> {
    classify_batch_with(system, records, BatchConfig::with_threads(n_threads))
}

/// Classify a batch with the shared organization cache (production mode:
/// multi-AS organizations are classified once).
pub fn classify_batch_cached(
    system: &AsdbSystem,
    records: &[ParsedWhois],
    n_threads: usize,
) -> Vec<Classification> {
    classify_batch_cached_with(system, records, BatchConfig::with_threads(n_threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_model::WorldSeed;
    use asdb_worldgen::{World, WorldConfig};

    #[test]
    fn parallel_matches_serial() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(3)));
        let s = AsdbSystem::build(&w, WorldSeed::new(4));
        let records: Vec<_> = w.ases.iter().take(60).map(|r| r.parsed.clone()).collect();
        let serial: Vec<_> = records.iter().map(|r| s.classify(r)).collect();
        let parallel = classify_batch(&s, &records, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.asn, b.asn);
            assert_eq!(a.categories, b.categories, "labels diverge for {}", a.asn);
            assert_eq!(a.stage, b.stage);
        }
    }

    #[test]
    fn any_thread_and_chunk_config_matches_serial() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(3)));
        let s = AsdbSystem::build(&w, WorldSeed::new(4));
        let records: Vec<_> = w.ases.iter().take(50).map(|r| r.parsed.clone()).collect();
        let serial: Vec<_> = records.iter().map(|r| s.classify(r)).collect();
        for n_threads in [1usize, 2, 3, 8] {
            for chunk_size in [1usize, 2, 7, 50, 1000] {
                let cfg = BatchConfig::with_threads(n_threads).chunk_size(chunk_size);
                let out = classify_batch_with(&s, &records, cfg);
                assert_eq!(out.len(), serial.len());
                for (a, b) in serial.iter().zip(&out) {
                    assert_eq!(a.asn, b.asn, "order broke at {n_threads}t/{chunk_size}c");
                    assert_eq!(
                        a.categories, b.categories,
                        "labels diverge for {} at {n_threads}t/{chunk_size}c",
                        a.asn
                    );
                    assert_eq!(a.stage, b.stage);
                }
            }
        }
    }

    #[test]
    fn cached_batch_fills_the_cache() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(9)));
        let s = AsdbSystem::build(&w, WorldSeed::new(10));
        let records: Vec<_> = w.ases.iter().take(40).map(|r| r.parsed.clone()).collect();
        assert!(s.cache().is_empty());
        let out = classify_batch_cached(&s, &records, 4);
        assert_eq!(out.len(), 40);
        assert!(!s.cache().is_empty());
    }

    #[test]
    fn batch_metrics_reconcile_with_records() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(11)));
        let s = AsdbSystem::build(&w, WorldSeed::new(12));
        let records: Vec<_> = w.ases.iter().take(24).map(|r| r.parsed.clone()).collect();
        let out = classify_batch(&s, &records, 3);
        assert_eq!(out.len(), 24);
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("batch.runs"), 1);
        assert_eq!(snap.counter("batch.records"), 24);
        assert_eq!(snap.counter("batch.workers"), 3);
        // Auto chunking: ~4 chunks per worker.
        assert_eq!(snap.counter("batch.chunks"), 12);
        assert_eq!(snap.histograms["batch.worker_wall"].count, 3);
        assert_eq!(snap.histograms["batch.wall"].count, 1);
        // Stage counters reconcile with the number of records processed.
        assert_eq!(s.metrics().stage_total(), 24);
    }

    #[test]
    fn single_chunk_records_no_steals() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(13)));
        let s = AsdbSystem::build(&w, WorldSeed::new(14));
        let records: Vec<_> = w.ases.iter().take(24).map(|r| r.parsed.clone()).collect();
        // The whole batch as one chunk: exactly one worker runs (worker
        // count is capped at the chunk count) and a worker's first claim
        // is never a steal. This is the only scheduler configuration
        // where zero steals is guaranteed rather than merely likely —
        // with one-chunk-per-worker splits, a fast worker can still grab
        // a chunk before its "owner" thread is scheduled.
        let cfg = BatchConfig::with_threads(4).chunk_size(records.len());
        let out = classify_batch_with(&s, &records, cfg);
        assert_eq!(out.len(), 24);
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("batch.chunks"), 1);
        assert_eq!(snap.counter("batch.workers"), 1);
        assert_eq!(snap.counter("batch.steals"), 0);
    }

    #[test]
    fn empty_batch() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(5)));
        let s = AsdbSystem::build(&w, WorldSeed::new(6));
        assert!(classify_batch(&s, &[], 4).is_empty());
    }

    #[test]
    fn more_threads_than_records() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(7)));
        let s = AsdbSystem::build(&w, WorldSeed::new(8));
        let records: Vec<_> = w.ases.iter().take(3).map(|r| r.parsed.clone()).collect();
        let out = classify_batch(&s, &records, 16);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn chunk_size_defaults_and_overrides() {
        let auto = BatchConfig::with_threads(4);
        assert_eq!(auto.effective_chunk_size(64), 4); // 16 chunks
        assert_eq!(auto.effective_chunk_size(1), 1);
        let explicit = BatchConfig::with_threads(4).chunk_size(10);
        assert_eq!(explicit.effective_chunk_size(64), 10);
        // 0 means automatic.
        let zero = BatchConfig::with_threads(2).chunk_size(0);
        assert_eq!(zero.chunk_size, None);
    }
}
