//! The Figure 4 classification pipeline.

use crate::cache::{CachedResult, Lookup, OrgCache, OrgKey};
use crate::classifier::{MlClassifiers, MlVerdict};
use crate::metrics::PipelineMetrics;
use crate::sources_set::{FanoutConfig, MatchPolicy, SourceFanout, SourceSet};
use asdb_entity::domain_select::{select_domain, DomainCandidates, DomainStrategy};
use asdb_model::{Domain, WorldSeed};
use asdb_rir::ParsedWhois;
use asdb_sources::{Query, SourceId, SourceMatch};
use asdb_taxonomy::naicslite::known;
use asdb_taxonomy::{Category, CategorySet, Layer1};
use asdb_websim::SimWeb;
use asdb_worldgen::World;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Which pipeline mechanism produced the final label — the rows of
/// Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Served from the organization cache.
    Cached,
    /// High-confidence ASN-indexed match (PeeringDB ISP label).
    MatchedByAsn,
    /// The ML classifier's verdict survived.
    Classifier,
    /// No source matched and the classifier did not fire.
    ZeroSources,
    /// Exactly one source matched.
    OneSource,
    /// ≥2 sources matched and at least two agreed.
    MultiAgree,
    /// ≥2 sources matched, none agreed; auto-choose picked the best-ranked.
    MultiNoneAgree,
}

impl Stage {
    /// Every stage, in Table 8 row order.
    pub const ALL: [Stage; 7] = [
        Stage::Cached,
        Stage::MatchedByAsn,
        Stage::Classifier,
        Stage::ZeroSources,
        Stage::OneSource,
        Stage::MultiAgree,
        Stage::MultiNoneAgree,
    ];

    /// Position in [`Stage::ALL`] (dense index for counter arrays).
    pub fn index(self) -> usize {
        match self {
            Stage::Cached => 0,
            Stage::MatchedByAsn => 1,
            Stage::Classifier => 2,
            Stage::ZeroSources => 3,
            Stage::OneSource => 4,
            Stage::MultiAgree => 5,
            Stage::MultiNoneAgree => 6,
        }
    }

    /// Human-readable name matching Table 8's row labels.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Cached => "Cached",
            Stage::MatchedByAsn => "Matched By ASN",
            Stage::Classifier => "Classifier",
            Stage::ZeroSources => "0 Sources Matched",
            Stage::OneSource => "1 Sources Matched",
            Stage::MultiAgree => ">=2 Sources Matched - >=2 Agree",
            Stage::MultiNoneAgree => ">=2 Sources Matched - None Agree",
        }
    }
}

/// The result of classifying one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classification {
    /// The AS.
    pub asn: asdb_model::Asn,
    /// The NAICSlite labels (empty = unclassified).
    pub categories: CategorySet,
    /// Which mechanism produced them.
    pub stage: Stage,
    /// Sources that contributed a (surviving) match.
    pub sources: Vec<SourceId>,
    /// The §5.1 most-likely domain, if one was selected.
    pub chosen_domain: Option<Domain>,
    /// The ML verdict, when a domain was classified.
    pub ml: Option<MlVerdict>,
    /// Each surviving source match's translated labels — kept so
    /// downstream consumers (e.g. crowdwork integration, Appendix B) can
    /// reconstruct "the union of category labels from external data
    /// sources".
    pub match_labels: Vec<(SourceId, CategorySet)>,
    /// Sources that were unavailable for this record (timed out, failed
    /// every attempt, or were shed by an open circuit breaker) — the
    /// consensus ran without them, so the label rests on partial §3.5
    /// coverage. Empty in a healthy run.
    #[serde(default)]
    pub degraded: Vec<SourceId>,
}

impl Classification {
    /// Whether ASdb produced any label.
    pub fn is_classified(&self) -> bool {
        !self.categories.is_empty()
    }
}

/// Pipeline feature switches, used by the ablation experiments to measure
/// what each design choice contributes. Production ASdb runs with
/// everything on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// Run the ISP/hosting classifiers (Figure 4's Classifier box).
    pub use_ml: bool,
    /// Arbitrate multi-source matches by agreement; when off, every
    /// multi-source case goes straight to the auto-choose rank.
    pub use_consensus: bool,
    /// Honor the PeeringDB-ISP high-confidence shortcut.
    pub use_asn_shortcut: bool,
    /// Reject source matches whose domain disagrees with the chosen one.
    pub reject_entity_disagreement: bool,
    /// Domain-selection strategy (§5.1 step 4).
    pub domain_strategy: DomainStrategy,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            use_ml: true,
            use_consensus: true,
            use_asn_shortcut: true,
            reject_entity_disagreement: true,
            domain_strategy: DomainStrategy::MostSimilar,
        }
    }
}

/// The assembled ASdb system.
#[derive(Debug)]
pub struct AsdbSystem {
    /// The five production data sources.
    pub sources: SourceSet,
    /// The ISP/hosting classifiers.
    pub ml: MlClassifiers,
    /// Feature switches (default: everything on).
    pub options: PipelineOptions,
    web: SimWeb,
    domain_counts: HashMap<Domain, usize>,
    cache: OrgCache,
    metrics: PipelineMetrics,
    seed: WorldSeed,
    fanout: SourceFanout,
    transport_seed: WorldSeed,
}

impl AsdbSystem {
    /// Build the full system over a world: construct the five sources,
    /// train the classifiers, and snapshot the WHOIS-wide domain counts
    /// the §5.1 filter needs.
    pub fn build(world: &World, seed: WorldSeed) -> AsdbSystem {
        let sources = SourceSet::build(world, seed.derive("sources"));
        let ml = MlClassifiers::train(world, seed.derive("ml"));
        let mut domain_counts: HashMap<Domain, usize> = HashMap::new();
        for rec in &world.ases {
            for d in rec.parsed.candidate_domains() {
                *domain_counts.entry(d).or_insert(0) += 1;
            }
        }
        let metrics = PipelineMetrics::new();
        let cache = metrics.build_cache();
        let transport_seed = seed.derive("transport");
        AsdbSystem {
            sources,
            ml,
            options: PipelineOptions::default(),
            web: world.web.clone(),
            domain_counts,
            cache,
            metrics,
            seed: seed.derive("pipeline"),
            fanout: SourceFanout::new(transport_seed),
            transport_seed,
        }
    }

    /// Builder-style: the same system with different feature switches
    /// (sources and classifiers are shared state, so this is cheap to call
    /// per ablation arm).
    pub fn with_options(mut self, options: PipelineOptions) -> AsdbSystem {
        self.options = options;
        self
    }

    /// Builder-style: rebuild the organization cache with an explicit
    /// shard count (1 reproduces the legacy single-lock behavior; the
    /// default is `next_power_of_two(4 × cores)`). Drops any cached
    /// entries, so call it right after [`AsdbSystem::build`]. The metrics
    /// counters stay shared.
    pub fn with_cache_shards(mut self, n: usize) -> AsdbSystem {
        self.cache = self.metrics.build_cache_with_shards(n);
        self
    }

    /// Builder-style: rebuild the source fan-out with explicit transport
    /// tuning and an injected fault plan. The fan-out's randomness derives
    /// from a seed fixed at [`AsdbSystem::build`] time, so the same build
    /// seed + config replays the exact same faults, retries, and backoff
    /// schedules. Clients and breaker state are rebuilt fresh.
    pub fn with_transport(mut self, config: FanoutConfig) -> AsdbSystem {
        self.fanout = SourceFanout::with_config(self.transport_seed, config);
        self
    }

    /// The fault-aware source fan-out.
    pub fn fanout(&self) -> &SourceFanout {
        &self.fanout
    }

    /// The simulated web the system scrapes.
    pub fn web(&self) -> &SimWeb {
        &self.web
    }

    /// The organization cache.
    pub fn cache(&self) -> &OrgCache {
        &self.cache
    }

    /// The system's telemetry: stage counters, per-source hit rates,
    /// latency histograms.
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Serializable snapshot of every metric (cache occupancy included).
    pub fn metrics_snapshot(&self) -> asdb_obs::RegistrySnapshot {
        self.metrics.snapshot(&self.cache)
    }

    /// The metrics snapshot as pretty-printed JSON.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Human-readable metrics report (Table 8-style stage breakdown,
    /// source coverage, cache reuse, latency summaries).
    pub fn metrics_text(&self) -> String {
        self.metrics.render_text(&self.cache)
    }

    /// WHOIS-wide AS count for a domain (§5.1 step 3 statistic).
    pub fn domain_count(&self, domain: &Domain) -> usize {
        self.domain_counts
            .get(&domain.registrable())
            .copied()
            .unwrap_or(0)
    }

    /// Run the §5.1 most-likely-domain algorithm for a WHOIS record,
    /// pooling RIR candidate domains with ASN-queryable source domains.
    pub fn select_domain(&self, whois: &ParsedWhois) -> Option<Domain> {
        self.select_domain_with(whois, self.options.domain_strategy)
    }

    /// Domain selection with an explicit strategy (ablation entry point).
    pub fn select_domain_with(
        &self,
        whois: &ParsedWhois,
        strategy: DomainStrategy,
    ) -> Option<Domain> {
        let mut pool: Vec<(Domain, usize)> = whois
            .candidate_domains()
            .into_iter()
            .map(|d| {
                let c = self.domain_count(&d).max(1);
                (d, c)
            })
            .collect();
        if let Some(d) = self.sources.ipinfo.domain_of(whois.asn) {
            let c = self.domain_count(&d).max(1);
            pool.push((d, c));
        }
        let candidates = DomainCandidates::new(pool);
        select_domain(&candidates, &whois.name, strategy, &self.web, self.seed)
    }

    /// Classify one AS, bypassing the cache (evaluation protocol).
    pub fn classify(&self, whois: &ParsedWhois) -> Classification {
        self.classify_with(whois, &self.options)
    }

    /// Classify with explicit feature switches — the ablation entry point
    /// (the expensive state, sources and trained classifiers, is shared).
    pub fn classify_with(&self, whois: &ParsedWhois, options: &PipelineOptions) -> Classification {
        let start = std::time::Instant::now();
        let c = self.classify_inner(whois, options, None);
        self.metrics.record_classification(&c, start.elapsed());
        c
    }

    /// The uninstrumented Figure 4 pipeline body. `preselected` carries an
    /// already-computed §5.1 domain decision (from the cached path's key
    /// derivation) so domain selection runs exactly once per record;
    /// `None` means select (and meter) it here.
    fn classify_inner(
        &self,
        whois: &ParsedWhois,
        options: &PipelineOptions,
        preselected: Option<Option<Domain>>,
    ) -> Classification {
        // Stage 1: ASN-indexed sources, through the fault-aware fan-out.
        let stage1 = self.fanout.stage1(&self.sources, whois.asn, &self.metrics);

        // High-confidence shortcut: "only if PeeringDB returns an ISP
        // label." The fan-out only surfaces a network type when the
        // PeeringDB call itself succeeded, so a degraded PeeringDB
        // disables the shortcut. Both stage-1 outcomes are resolved here
        // — including IPinfo's, whose already-computed answer used to be
        // silently dropped on this path.
        if options.use_asn_shortcut {
            if let Some(t) = stage1.network_type {
                if t.is_isp_signal() {
                    let resolved = self.fanout.finalize_shortcut(stage1, &self.metrics);
                    return Classification {
                        asn: whois.asn,
                        categories: t.to_naicslite(),
                        stage: Stage::MatchedByAsn,
                        sources: vec![SourceId::PeeringDb],
                        chosen_domain: None,
                        ml: None,
                        match_labels: vec![(SourceId::PeeringDb, t.to_naicslite())],
                        degraded: resolved.degraded,
                    };
                }
            }
        }

        // Stage 2: domain selection + ML. The cached path has already
        // selected (and metered) the domain while deriving the org key —
        // reuse it instead of running §5.1 a second time.
        let chosen_domain = match preselected {
            Some(domain) => domain,
            None => {
                let t_domain = std::time::Instant::now();
                let d = self.select_domain_with(whois, options.domain_strategy);
                self.metrics
                    .record_domain_outcome(d.is_some(), t_domain.elapsed());
                d
            }
        };
        let ml = if options.use_ml {
            let t_ml = std::time::Instant::now();
            let verdict = chosen_domain
                .as_ref()
                .and_then(|d| self.ml.classify(&self.web, d));
            if let Some(v) = &verdict {
                self.metrics.record_ml(v.fired(), t_ml.elapsed());
            }
            verdict
        } else {
            None
        };

        // Stage 3: fan out to the web sources and resolve everything —
        // stage-1 outcomes included — source-agnostically against the
        // match policy. All query/match/reject/timeout/retry accounting
        // lives in the fan-out layer.
        let t_sources = std::time::Instant::now();
        let query = Query {
            asn: Some(whois.asn),
            name: Some(whois.name.clone()),
            domain: chosen_domain.clone(),
            address: whois.address.clone(),
            phone: whois.phone.clone(),
        };
        let policy = MatchPolicy {
            reject_entity_disagreement: options.reject_entity_disagreement,
            chosen_domain: chosen_domain.as_ref(),
        };
        let resolved = self
            .fanout
            .stage3(&self.sources, &query, stage1, &policy, &self.metrics);
        self.metrics.record_source_phase(t_sources.elapsed());

        self.consensus(
            whois.asn,
            chosen_domain,
            ml,
            resolved.matches,
            resolved.degraded,
            options,
        )
    }

    /// Classify with the organization cache (production protocol).
    ///
    /// One-pass: the §5.1 domain is selected exactly once, serving both
    /// the cache-key derivation and (on a miss) the pipeline body. Misses
    /// go through the cache's single-flight protocol, so concurrent
    /// batch workers hitting the same organization run the expensive
    /// pipeline once and everyone else reuses the in-flight result
    /// (`cache.coalesced`).
    pub fn classify_cached(&self, whois: &ParsedWhois) -> Classification {
        let start = std::time::Instant::now();
        let t_domain = std::time::Instant::now();
        let chosen = self.select_domain(whois);
        self.metrics
            .record_domain_outcome(chosen.is_some(), t_domain.elapsed());
        let Some(key) = OrgKey::derive(chosen.as_ref(), &whois.name) else {
            // No identity signal → nothing to cache under; still reuse the
            // already-selected domain for the pipeline body.
            let c = self.classify_inner(whois, &self.options, Some(chosen));
            self.metrics.record_classification(&c, start.elapsed());
            return c;
        };
        match self.cache.begin(&key) {
            Lookup::Hit(hit) | Lookup::Coalesced(hit) => {
                let c = Classification {
                    asn: whois.asn,
                    categories: hit.categories,
                    stage: Stage::Cached,
                    sources: Vec::new(),
                    chosen_domain: chosen,
                    ml: None,
                    match_labels: Vec::new(),
                    degraded: Vec::new(),
                };
                self.metrics.record_classification(&c, start.elapsed());
                c
            }
            Lookup::Miss(flight) => {
                // We are the leader for this organization: run the full
                // pipeline with the domain we already selected. If it
                // panics, dropping `flight` abandons the slot and waiters
                // recover.
                let c = self.classify_inner(whois, &self.options, Some(chosen));
                self.metrics.record_classification(&c, start.elapsed());
                flight.complete(CachedResult {
                    categories: c.categories.clone(),
                    provenance: c.stage.label().to_owned(),
                });
                c
            }
        }
    }

    /// The consensus phase (§5.1): agreement → union of agreeing labels;
    /// no agreement → ML verdict if it fired, else auto-choose by accuracy
    /// rank.
    fn consensus(
        &self,
        asn: asdb_model::Asn,
        chosen_domain: Option<Domain>,
        ml: Option<MlVerdict>,
        matches: Vec<SourceMatch>,
        degraded: Vec<SourceId>,
        options: &PipelineOptions,
    ) -> Classification {
        let ml_cats = ml.filter(|v| v.fired()).map(|v| {
            let mut s = CategorySet::new();
            if v.is_isp() {
                s.insert(Category::l2(known::isp()));
            }
            if v.is_hosting() {
                s.insert(Category::l2(known::hosting()));
            }
            s
        });
        let source_ids: Vec<SourceId> = matches.iter().map(|m| m.source).collect();
        let match_labels: Vec<(SourceId, CategorySet)> = matches
            .iter()
            .map(|m| (m.source, m.categories.clone()))
            .collect();
        let base = |categories: CategorySet, stage: Stage| Classification {
            asn,
            categories,
            stage,
            sources: source_ids.clone(),
            chosen_domain: chosen_domain.clone(),
            ml,
            match_labels: match_labels.clone(),
            degraded: degraded.clone(),
        };

        // Layer-1 vote counting across sources (used both for consensus and
        // for the classifier-override check).
        let mut votes: HashMap<Layer1, usize> = HashMap::new();
        for m in &matches {
            for l1 in m.categories.layer1s() {
                *votes.entry(l1).or_insert(0) += 1;
            }
        }
        let agreed: BTreeSet<Layer1> = votes
            .into_iter()
            .filter(|(_, n)| *n >= 2)
            .map(|(l1, _)| l1)
            .collect();
        let union: CategorySet = matches
            .iter()
            .flat_map(|m| m.categories.iter())
            .filter(|c| agreed.contains(&c.layer1))
            .collect();

        // Figure 4: a fired classifier short-circuits to the results box —
        // *except* when at least two data sources agree the organization is
        // not a technology company at all, which is the documented way
        // hosting verdicts get overruled ("another 9% were marked as
        // non-hosting by at least two data sources, even when our
        // classifier classified the AS as hosting", §5.2).
        if let Some(mlc) = ml_cats {
            if !agreed.is_empty() && !agreed.contains(&Layer1::ComputerAndIT) {
                self.metrics.record_ml_override();
                return base(union, Stage::MultiAgree);
            }
            return base(mlc, Stage::Classifier);
        }

        if matches.len() >= 2 {
            if options.use_consensus && !agreed.is_empty() {
                return base(union, Stage::MultiAgree);
            }
            // No agreement: the §5.1 auto-choose rank.
            let best = matches
                .iter()
                .max_by(|a, b| {
                    a.source
                        .accuracy_rank()
                        .partial_cmp(&b.source.accuracy_rank())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("matches non-empty");
            return base(best.categories.clone(), Stage::MultiNoneAgree);
        }
        match matches.first() {
            Some(m) => base(m.categories.clone(), Stage::OneSource),
            None => base(CategorySet::new(), Stage::ZeroSources),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asdb_worldgen::WorldConfig;

    fn setup() -> (World, AsdbSystem) {
        let w = World::generate(WorldConfig::standard(WorldSeed::new(2021)));
        let s = AsdbSystem::build(&w, WorldSeed::new(1));
        (w, s)
    }

    #[test]
    fn classifies_most_ases() {
        let (w, s) = setup();
        let sample = w.sample_asns(200, "pipeline-test");
        let mut classified = 0usize;
        for asn in &sample {
            let rec = w.as_record(*asn).unwrap();
            let c = s.classify(&rec.parsed);
            classified += usize::from(c.is_classified());
        }
        let frac = classified as f64 / sample.len() as f64;
        // Paper: 96% coverage.
        assert!(frac > 0.85, "coverage = {frac}");
    }

    #[test]
    fn layer1_accuracy_beats_any_single_source(/* Table 8's headline */) {
        let (w, s) = setup();
        let sample = w.sample_asns(300, "pipeline-acc");
        let (mut ok, mut n) = (0usize, 0usize);
        for asn in &sample {
            let rec = w.as_record(*asn).unwrap();
            let c = s.classify(&rec.parsed);
            if !c.is_classified() {
                continue;
            }
            let truth = w.org_of(*asn).unwrap().truth();
            ok += usize::from(c.categories.overlaps_l1(&truth));
            n += 1;
        }
        let acc = ok as f64 / n as f64;
        assert!(acc > 0.85, "L1 accuracy = {acc} over {n}");
    }

    #[test]
    fn peeringdb_isp_shortcut_used() {
        let (w, s) = setup();
        let mut found = false;
        for rec in w.ases.iter().take(600) {
            let c = s.classify(&rec.parsed);
            if c.stage == Stage::MatchedByAsn {
                assert!(c.categories.layer2s().contains(&known::isp()));
                found = true;
                break;
            }
        }
        assert!(found, "shortcut never triggered in 600 ASes");
    }

    #[test]
    fn all_stages_occur() {
        let (w, s) = setup();
        let mut seen: BTreeSet<&'static str> = BTreeSet::new();
        for rec in w.ases.iter().take(1200) {
            let c = s.classify(&rec.parsed);
            seen.insert(c.stage.label());
        }
        for stage in [
            Stage::MatchedByAsn,
            Stage::Classifier,
            Stage::OneSource,
            Stage::MultiAgree,
        ] {
            assert!(
                seen.contains(stage.label()),
                "missing stage {stage:?}; saw {seen:?}"
            );
        }
    }

    #[test]
    fn cache_serves_second_as_of_same_org() {
        let (w, s) = setup();
        // Find an org with 2 ASes.
        let mut by_org: HashMap<_, Vec<_>> = HashMap::new();
        for rec in &w.ases {
            by_org.entry(rec.org).or_default().push(rec);
        }
        // ASdb unifies two ASes only when their identity signals (selected
        // domain / normalized name) coincide — find such a pair.
        let mut verified = false;
        for group in by_org.values().filter(|v| v.len() >= 2) {
            let key0 = crate::cache::OrgKey::derive(
                s.select_domain(&group[0].parsed).as_ref(),
                &group[0].parsed.name,
            );
            let key1 = crate::cache::OrgKey::derive(
                s.select_domain(&group[1].parsed).as_ref(),
                &group[1].parsed.name,
            );
            if key0.is_none() || key0 != key1 {
                continue;
            }
            let first = s.classify_cached(&group[0].parsed);
            let second = s.classify_cached(&group[1].parsed);
            assert_ne!(first.stage, Stage::Cached);
            assert_eq!(second.stage, Stage::Cached);
            assert_eq!(second.categories, first.categories);
            verified = true;
            break;
        }
        assert!(
            verified,
            "no multi-AS org with matching identity keys found"
        );
    }

    #[test]
    fn stage_counters_reconcile_with_classifications(/* metrics layer */) {
        let (w, s) = setup();
        let before = s.metrics().stage_total();
        assert_eq!(before, 0, "fresh system has clean counters");
        let n = 150usize;
        for rec in w.ases.iter().take(n) {
            let _ = s.classify(&rec.parsed);
        }
        assert_eq!(s.metrics().stage_total(), n as u64);
        // Per-source query counters: the ASN-indexed sources see every
        // classification, while the web sources are skipped whenever the
        // PeeringDB ISP shortcut resolves the AS at stage 1 (Figure 4).
        let snap = s.metrics_snapshot();
        let shortcut = s.metrics().stage_count(Stage::MatchedByAsn);
        assert_eq!(snap.counter("source.peeringdb.queries"), n as u64);
        assert_eq!(snap.counter("source.ipinfo.queries"), n as u64);
        assert_eq!(snap.counter("source.dnb.queries"), n as u64 - shortcut);
        // Latency histogram observed every classification.
        assert_eq!(snap.histograms["pipeline.classify"].count, n as u64);
        // Cached classifications count into the Cached stage.
        let c0 = s.classify_cached(&w.ases[0].parsed);
        let c1 = s.classify_cached(&w.ases[0].parsed);
        assert_ne!(c0.stage, Stage::Cached);
        assert_eq!(c1.stage, Stage::Cached);
        assert_eq!(s.metrics().stage_count(Stage::Cached), 1);
        assert!(s.cache().hits() >= 1);
        assert!(s.cache().hit_rate() > 0.0);
    }

    #[test]
    fn shortcut_path_accounts_for_the_ipinfo_stage1_result(/* regression */) {
        // The PeeringDB ISP shortcut ends the pipeline at stage 1, but
        // IPinfo's already-issued query must still resolve to exactly one
        // of match / reject / no-match — it used to be silently dropped,
        // leaving `source.ipinfo.queries` ahead of its outcomes and the
        // Table 8 bookkeeping unreconcilable.
        let (w, s) = setup();
        let n = 400usize;
        for rec in w.ases.iter().take(n) {
            let _ = s.classify(&rec.parsed);
        }
        assert!(
            s.metrics().stage_count(Stage::MatchedByAsn) > 0,
            "shortcut never fired; the regression path was not exercised"
        );
        let snap = s.metrics_snapshot();
        for slug in ["dnb", "crunchbase", "zvelo", "peeringdb", "ipinfo"] {
            let c = |what: &str| snap.counter(&format!("source.{slug}.{what}"));
            assert_eq!(
                c("queries"),
                c("matches") + c("rejects") + c("no_match") + c("timeouts") + c("failures"),
                "per-source outcome accounting does not reconcile for {slug}"
            );
        }
    }

    #[test]
    fn degraded_sources_are_surfaced_and_runs_replay_per_seed() {
        let w = World::generate(WorldConfig::small(WorldSeed::new(2021)));
        let noisy = || {
            AsdbSystem::build(&w, WorldSeed::new(1)).with_transport(
                crate::sources_set::FanoutConfig {
                    faults: asdb_sources::transport::FaultPlan::uniform(0.35),
                    ..Default::default()
                },
            )
        };
        let (a, b) = (noisy(), noisy());
        let mut saw_degraded = false;
        for rec in w.ases.iter().take(60) {
            let ca = a.classify(&rec.parsed);
            let cb = b.classify(&rec.parsed);
            // Same build seed + same fault plan ⇒ bit-identical replay,
            // unavailable-source record included.
            assert_eq!(ca.categories, cb.categories);
            assert_eq!(ca.stage, cb.stage);
            assert_eq!(ca.degraded, cb.degraded);
            saw_degraded |= !ca.degraded.is_empty();
        }
        assert!(saw_degraded, "35% fault rate never degraded a source");
    }

    #[test]
    fn fault_free_transport_is_transparent() {
        // With no fault plan the fan-out must not perturb labels: two
        // systems, one forced sequential, agree bitwise over a sample.
        let w = World::generate(WorldConfig::small(WorldSeed::new(2021)));
        let conc = AsdbSystem::build(&w, WorldSeed::new(1));
        let seq = AsdbSystem::build(&w, WorldSeed::new(1)).with_transport(
            crate::sources_set::FanoutConfig {
                concurrent: false,
                ..Default::default()
            },
        );
        for rec in w.ases.iter().take(80) {
            let ca = conc.classify(&rec.parsed);
            let cb = seq.classify(&rec.parsed);
            assert_eq!(ca.categories, cb.categories);
            assert_eq!(ca.stage, cb.stage);
            assert_eq!(ca.sources, cb.sources);
            assert!(ca.degraded.is_empty() && cb.degraded.is_empty());
        }
    }

    #[test]
    fn classification_is_deterministic() {
        let (w, s) = setup();
        let rec = &w.ases[17];
        let a = s.classify(&rec.parsed);
        let b = s.classify(&rec.parsed);
        assert_eq!(a.categories, b.categories);
        assert_eq!(a.stage, b.stage);
    }

    #[test]
    fn agreement_stage_is_most_accurate(/* Table 8's per-stage shape */) {
        let (w, s) = setup();
        let mut per_stage: HashMap<Stage, (usize, usize)> = HashMap::new();
        for rec in w.ases.iter().take(800) {
            let c = s.classify(&rec.parsed);
            if !c.is_classified() {
                continue;
            }
            let truth = w.org_of(rec.asn).unwrap().truth();
            let e = per_stage.entry(c.stage).or_insert((0, 0));
            e.0 += usize::from(c.categories.overlaps_l1(&truth));
            e.1 += 1;
        }
        let acc = |s: Stage| {
            per_stage
                .get(&s)
                .map(|(a, b)| *a as f64 / (*b).max(1) as f64)
                .unwrap_or(0.0)
        };
        assert!(
            acc(Stage::MultiAgree) >= acc(Stage::MultiNoneAgree),
            "agree {} < none-agree {}",
            acc(Stage::MultiAgree),
            acc(Stage::MultiNoneAgree)
        );
        assert!(acc(Stage::MultiAgree) > 0.9);
    }
}
